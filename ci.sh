#!/usr/bin/env bash
# Tier-1 gate: release build, lint-clean workspace, full test suite.
# Offline by design — the container vendors every dependency under
# vendor/ and must never reach for the network.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release --offline --workspace

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tests =="
cargo test -q --offline

echo "== bench smoke (writes BENCH_pipeline.json) =="
./target/release/bench_pipeline

echo "ci.sh: all green"
