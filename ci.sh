#!/usr/bin/env bash
# Tier-1 gate: release build, lint-clean workspace, full test suite.
# Offline by design — the container vendors every dependency under
# vendor/ and must never reach for the network.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release --offline --workspace

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tests =="
cargo test -q --offline

echo "== bench smoke (writes BENCH_pipeline.json) =="
# Stash the committed baseline before the bench overwrites it, so the
# fresh numbers can be compared against what the repo last recorded.
baseline=""
if [ -f BENCH_pipeline.json ]; then
    baseline="$(mktemp)"
    cp BENCH_pipeline.json "$baseline"
fi
./target/release/bench_pipeline

if [ -n "$baseline" ]; then
    echo "== bench regression check (study/geolocate/total/allocs vs committed baseline) =="
    python3 - "$baseline" BENCH_pipeline.json <<'EOF' || true
import json, sys

def seq_run(path):
    doc = json.load(open(path))
    for run in doc.get("runs", []):
        if run.get("threads") == 1:
            return run
    return {}

old, new = seq_run(sys.argv[1]), seq_run(sys.argv[2])
# study_allocs is deterministic (counting allocator over a fixed workload),
# so a >20% jump there means an allocation crept back into the hot path.
for stage in ("study_ms", "geolocate_ms", "total_ms", "study_allocs"):
    o, n = old.get(stage), new.get(stage)
    if o is None or n is None or o <= 0:
        print(f"bench check: no comparable threads=1 {stage} in baseline; skipping")
    elif n > o * 1.20:
        print(f"WARNING: {stage} regressed >20%: {o:,.1f} -> {n:,.1f} "
              f"({n / o - 1:+.0%})")
    else:
        print(f"bench check: {stage} {o:,.1f} -> {n:,.1f} "
              f"({n / o - 1:+.0%}), within the 20% budget")
EOF
    rm -f "$baseline"
fi

echo "ci.sh: all green"
