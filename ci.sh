#!/usr/bin/env bash
# Tier-1 gate: release build, lint-clean workspace, full test suite.
# Offline by design — the container vendors every dependency under
# vendor/ and must never reach for the network.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release --offline --workspace

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tests =="
cargo test -q --offline

echo "== bench smoke (writes BENCH_pipeline.json) =="
# Stash the committed baseline before the bench overwrites it, so the
# fresh numbers can be compared against what the repo last recorded.
baseline=""
if [ -f BENCH_pipeline.json ]; then
    baseline="$(mktemp)"
    cp BENCH_pipeline.json "$baseline"
fi
./target/release/bench_pipeline

if [ -n "$baseline" ]; then
    echo "== bench regression check (study stage vs committed baseline) =="
    python3 - "$baseline" BENCH_pipeline.json <<'EOF' || true
import json, sys

def seq_study_ms(path):
    doc = json.load(open(path))
    for run in doc.get("runs", []):
        if run.get("threads") == 1:
            return run.get("study_ms")
    return None

old, new = seq_study_ms(sys.argv[1]), seq_study_ms(sys.argv[2])
if old is None or new is None or old <= 0:
    print("bench check: no comparable threads=1 study_ms in baseline; skipping")
elif new > old * 1.20:
    print(f"WARNING: study stage regressed >20%: {old:.1f} ms -> {new:.1f} ms "
          f"({new / old - 1:+.0%})")
else:
    print(f"bench check: study stage {old:.1f} ms -> {new:.1f} ms "
          f"({new / old - 1:+.0%}), within the 20% budget")
EOF
    rm -f "$baseline"
fi

echo "ci.sh: all green"
