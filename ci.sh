#!/usr/bin/env bash
# Tier-1 gate: release build, lint-clean workspace, full test suite.
# Offline by design — the container vendors every dependency under
# vendor/ and must never reach for the network.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release --offline --workspace

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tests =="
cargo test -q --offline

echo "== bench smoke (writes BENCH_pipeline.json) =="
# Stash the committed baseline before the bench overwrites it, so the
# fresh numbers can be compared against what the repo last recorded.
baseline=""
if [ -f BENCH_pipeline.json ]; then
    baseline="$(mktemp)"
    cp BENCH_pipeline.json "$baseline"
fi
./target/release/bench_pipeline

echo "== bench output sanity (BENCH_pipeline.json must exist and parse) =="
python3 - BENCH_pipeline.json <<'EOF'
import json, sys
try:
    doc = json.load(open(sys.argv[1]))
except (OSError, ValueError) as e:
    print(f"FATAL: BENCH_pipeline.json missing or unparseable: {e}")
    sys.exit(1)
if not any(r.get("threads") == 1 for r in doc.get("runs", [])):
    print("FATAL: BENCH_pipeline.json has no threads=1 run")
    sys.exit(1)
if "streaming_ckpt_ms" not in doc.get("streaming", {}):
    print("FATAL: BENCH_pipeline.json has no streaming-mode row")
    sys.exit(1)
print("bench output sanity: ok")
EOF

echo "== netflow bench smoke (1e6 records; writes BENCH_netflow.json) =="
# The committed BENCH_netflow.json documents a full 1e8-record run; stash
# it so the smoke run's numbers can gate against it without clobbering it.
nf_baseline=""
if [ -f BENCH_netflow.json ]; then
    nf_baseline="$(mktemp)"
    cp BENCH_netflow.json "$nf_baseline"
fi
XBORDER_NETFLOW_MAX_RECORDS=1000000 ./target/release/bench_netflow

echo "== netflow bench sanity (BENCH_netflow.json must exist and parse) =="
python3 - BENCH_netflow.json <<'EOF'
import json, sys
try:
    doc = json.load(open(sys.argv[1]))
except (OSError, ValueError) as e:
    print(f"FATAL: BENCH_netflow.json missing or unparseable: {e}")
    sys.exit(1)
if doc.get("netflow_records_per_sec", 0) <= 0:
    print("FATAL: BENCH_netflow.json has no positive netflow_records_per_sec")
    sys.exit(1)
if doc.get("oracle", {}).get("speedup_vs_oracle", 0) < 5.0:
    print("FATAL: interval-set join under the 5x oracle floor")
    sys.exit(1)
print("netflow bench sanity: ok")
EOF

if [ -n "$nf_baseline" ]; then
    echo "== netflow regression check (records/sec vs committed baseline) =="
    python3 - "$nf_baseline" BENCH_netflow.json <<'EOF'
import json, sys

def load(path):
    try:
        return json.load(open(path))
    except (OSError, ValueError) as e:
        print(f"FATAL: {path} missing or unparseable: {e}")
        sys.exit(1)

old_doc, new_doc = load(sys.argv[1]), load(sys.argv[2])
# The headline is the 1e6-record threads=1 row in both docs, so the smoke
# run compares like-for-like against the committed full-scale document.
o = old_doc.get("netflow_records_per_sec")
n = new_doc.get("netflow_records_per_sec")
if not o or not n:
    print("netflow check: no comparable netflow_records_per_sec; skipping")
elif n < o * 0.80:
    print(f"WARNING: netflow_records_per_sec regressed >20%: "
          f"{o:,.0f} -> {n:,.0f} ({n / o - 1:+.0%})")
else:
    print(f"netflow check: netflow_records_per_sec {o:,.0f} -> {n:,.0f} "
          f"({n / o - 1:+.0%}), within the 20% budget")
EOF
    # Restore the committed full-scale document; the smoke doc is CI-only.
    cp "$nf_baseline" BENCH_netflow.json
    rm -f "$nf_baseline"
fi

echo "== worldscale bench smoke (1e5 users; writes BENCH_worldscale.json) =="
# The committed BENCH_worldscale.json documents a full 1e6-user run; stash
# it so the smoke run's numbers can gate against it without clobbering it.
# The binary itself asserts the resident-memory ceiling (segment-store
# peak under the configured budget) and fingerprint equality across
# segment sizes, so a smoke pass is also a memory-bound + determinism pass.
ws_baseline=""
if [ -f BENCH_worldscale.json ]; then
    ws_baseline="$(mktemp)"
    cp BENCH_worldscale.json "$ws_baseline"
fi
XBORDER_WORLDSCALE_MAX_USERS=100000 ./target/release/bench_worldscale

echo "== worldscale bench sanity (BENCH_worldscale.json must exist and parse) =="
python3 - BENCH_worldscale.json <<'EOF'
import json, sys
try:
    doc = json.load(open(sys.argv[1]))
except (OSError, ValueError) as e:
    print(f"FATAL: BENCH_worldscale.json missing or unparseable: {e}")
    sys.exit(1)
if doc.get("worldscale_users_per_sec", 0) <= 0:
    print("FATAL: BENCH_worldscale.json has no positive worldscale_users_per_sec")
    sys.exit(1)
budget = doc.get("resident_budget_bytes", 0)
runs = doc.get("runs", [])
if not runs or budget <= 0:
    print("FATAL: BENCH_worldscale.json has no runs or no resident budget")
    sys.exit(1)
over = [r for r in runs if r.get("peak_resident_bytes", 0) > budget]
if over:
    print(f"FATAL: {len(over)} run(s) over the resident-memory budget")
    sys.exit(1)
if not any(r.get("segments_spilled", 0) > 0 for r in runs):
    print("FATAL: no run exercised the spill path")
    sys.exit(1)
print("worldscale bench sanity: ok")
EOF

if [ -n "$ws_baseline" ]; then
    echo "== worldscale regression check (users/sec vs committed baseline) =="
    python3 - "$ws_baseline" BENCH_worldscale.json <<'EOF'
import json, sys

def load(path):
    try:
        return json.load(open(path))
    except (OSError, ValueError) as e:
        print(f"FATAL: {path} missing or unparseable: {e}")
        sys.exit(1)

old_doc, new_doc = load(sys.argv[1]), load(sys.argv[2])
# The committed doc goes up to 1e6 users, the smoke run stops at 1e5:
# compare like-for-like on the largest (users, segment) row both share.
def rows(doc):
    return {(r["users"], r["segment_users"]): r.get("users_per_sec")
            for r in doc.get("runs", [])}
common = sorted(set(rows(old_doc)) & set(rows(new_doc)))
if not common:
    print("worldscale check: no comparable runs; skipping")
else:
    key = common[-1]
    o, n = rows(old_doc)[key], rows(new_doc)[key]
    if not o or not n:
        print("worldscale check: no comparable users_per_sec; skipping")
    elif n < o * 0.80:
        print(f"WARNING: users_per_sec at {key} regressed >20%: "
              f"{o:,.0f} -> {n:,.0f} ({n / o - 1:+.0%})")
    else:
        print(f"worldscale check: users_per_sec at {key} {o:,.0f} -> {n:,.0f} "
              f"({n / o - 1:+.0%}), within the 20% budget")
EOF
    # Restore the committed full-scale document; the smoke doc is CI-only.
    cp "$ws_baseline" BENCH_worldscale.json
    rm -f "$ws_baseline"
fi

if [ -n "$baseline" ]; then
    echo "== bench regression check (study/geolocate/total/allocs/streaming vs committed baseline) =="
    # An unparseable baseline or fresh bench doc fails the gate; a >20%
    # wall-clock regression warns (CI boxes are noisy), a >20% allocation
    # jump is deterministic and still warns loudly for triage.
    python3 - "$baseline" BENCH_pipeline.json <<'EOF'
import json, sys

def load(path):
    try:
        return json.load(open(path))
    except (OSError, ValueError) as e:
        print(f"FATAL: {path} missing or unparseable: {e}")
        sys.exit(1)

def seq_run(doc):
    for run in doc.get("runs", []):
        if run.get("threads") == 1:
            return run
    return {}

old_doc, new_doc = load(sys.argv[1]), load(sys.argv[2])
old, new = seq_run(old_doc), seq_run(new_doc)
# study_allocs is deterministic (counting allocator over a fixed workload),
# so a >20% jump there means an allocation crept back into the hot path.
pairs = [(stage, old.get(stage), new.get(stage))
         for stage in ("study_ms", "geolocate_ms", "total_ms", "study_allocs",
                       "netflow_generate_ms", "netflow_match_ms")]
# The streaming row rides the same gate: the chunked driver, the
# checkpointed variant, the incremental classifier and the rolling
# snapshot emission must all stay within the budget.
old_s, new_s = old_doc.get("streaming", {}), new_doc.get("streaming", {})
pairs += [(f"streaming.{key}", old_s.get(key), new_s.get(key))
          for key in ("streaming_ms", "streaming_ckpt_ms",
                      "incremental_classify_ms", "snapshot_ms",
                      "classify_overhead_vs_batch_pct",
                      "checkpoint_overhead_ms")]
# The compiled rule engine's build and match costs are microbenched on a
# synthetic URL-dependent rule set, so they gate like any other stage.
old_e, new_e = old_doc.get("rule_engine", {}), new_doc.get("rule_engine", {})
pairs += [(f"rule_engine.{key}", old_e.get(key), new_e.get(key))
          for key in ("build_ms", "engine_match_ms")]
for stage, o, n in pairs:
    if o is None or n is None or o <= 0:
        print(f"bench check: no comparable {stage} in baseline; skipping")
    elif n > o * 1.20:
        print(f"WARNING: {stage} regressed >20%: {o:,.1f} -> {n:,.1f} "
              f"({n / o - 1:+.0%})")
    else:
        print(f"bench check: {stage} {o:,.1f} -> {n:,.1f} "
              f"({n / o - 1:+.0%}), within the 20% budget")
EOF
    rm -f "$baseline"
fi

echo "== resume smoke (kill at chunk 2 mid-write, resume, fingerprint vs batch) =="
./target/release/resume_smoke

echo "ci.sh: all green"
