//! The study driver: simulates the 4.5-month extension deployment and
//! produces the dataset behind the paper's Tables 1–2 and Figures 2–8.

use crate::render::{RenderConfig, RenderEngine};
use crate::request::{LoggedRequest, Referrer, RequestId};
use crate::user::{User, UserId, UserPopulation, UserPopulationConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use xborder_dns::{DnsCache, DnsSim, IndexedZoneView, PdnsIdObservation};
use xborder_faults::{derive_stream_seed, DegradationReport, FaultInjector};
use xborder_geo::CountryCode;
use xborder_netsim::time::{anchors, SimTime, TimeWindow};
use xborder_webgraph::{Audience, DomainId, DomainTable, PublisherId, WebGraph};

/// Configuration of the whole extension study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StudyConfig {
    /// Recruited population.
    pub population: UserPopulationConfig,
    /// Mean site visits per user over the study (paper: 76,507 first-party
    /// requests over 350 users ≈ 219 each).
    pub visits_per_user_mean: f64,
    /// Study window.
    pub window: TimeWindow,
    /// Render model.
    pub render: RenderConfig,
    /// Share of a user's visits going to national sites of their own
    /// country (domestic browsing locality; ~35-45 % in European traffic
    /// studies). Within each stage, sites are drawn by popularity.
    pub home_visit_share: f64,
    /// Weight multiplier for *foreign* national sites in the global stage
    /// (a Greek user rarely reads Polish local news).
    pub foreign_site_damping: f64,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            population: UserPopulationConfig::default(),
            visits_per_user_mean: 219.0,
            window: TimeWindow::new(anchors::STUDY_START, anchors::STUDY_END),
            render: RenderConfig::default(),
            home_visit_share: 0.42,
            foreign_site_damping: 0.02,
        }
    }
}

impl StudyConfig {
    /// Small study for tests.
    pub fn small() -> Self {
        StudyConfig {
            population: UserPopulationConfig::small(),
            visits_per_user_mean: 30.0,
            ..Default::default()
        }
    }
}

/// One first-party page view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Visit {
    /// Who.
    pub user: UserId,
    /// Which site.
    pub publisher: PublisherId,
    /// When.
    pub time: SimTime,
}

/// The produced dataset.
#[derive(Debug)]
pub struct ExtensionDataset {
    /// The recruited users.
    pub users: UserPopulation,
    /// Every first-party page view, in generation order.
    pub visits: Vec<Visit>,
    /// Every logged third-party request, in generation order (cascade
    /// referrers index into this vector).
    pub requests: Vec<LoggedRequest>,
    /// The world's domain interner (DESIGN.md §5f): resolves the
    /// `DomainId`s stored in [`LoggedRequest`] back to strings. A clone of
    /// [`WebGraph::domains`], carried here so the dataset stays
    /// self-contained for downstream analyses.
    pub domains: DomainTable,
}

impl ExtensionDataset {
    /// Table-1-style dataset statistics.
    pub fn stats(&self) -> DatasetStats {
        let mut visited_publishers: HashSet<PublisherId> = HashSet::new();
        for v in &self.visits {
            visited_publishers.insert(v.publisher);
        }
        let third_party_domains: HashSet<DomainId> = self.requests.iter().map(|r| r.host).collect();
        DatasetStats {
            n_users: self.users.users.len(),
            n_first_party_domains: visited_publishers.len(),
            n_first_party_requests: self.visits.len(),
            n_third_party_domains: third_party_domains.len(),
            n_third_party_requests: self.requests.len(),
        }
    }

    /// Distinct server IPs observed across all requests.
    pub fn observed_ips(&self) -> HashSet<std::net::IpAddr> {
        self.requests.iter().map(|r| r.ip).collect()
    }

    /// Request count per publisher (Fig. 2's per-website distribution).
    pub fn requests_per_publisher(&self) -> HashMap<PublisherId, usize> {
        let mut m = HashMap::new();
        for r in &self.requests {
            *m.entry(r.publisher).or_insert(0) += 1;
        }
        m
    }

    /// The country of a user, or `None` for an id outside the population.
    pub fn try_user_country(&self, id: UserId) -> Option<CountryCode> {
        self.users.users.get(id.0 as usize).map(|u| u.country)
    }

    /// The country of a user.
    ///
    /// Invariant: `UserId`s in a dataset's `visits`/`requests` are dense
    /// indices into `users.users` (the population generator assigns
    /// `id == position`), so lookups with ids taken from this dataset
    /// cannot miss. Panics (with a debug assertion first) on foreign ids —
    /// use [`ExtensionDataset::try_user_country`] for those.
    pub fn user_country(&self, id: UserId) -> CountryCode {
        debug_assert!(
            (id.0 as usize) < self.users.users.len(),
            "UserId {} outside population of {}",
            id.0,
            self.users.users.len()
        );
        self.try_user_country(id)
            .expect("UserId must index the dataset's own population")
    }
}

/// Table 1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Recruited users.
    pub n_users: usize,
    /// Distinct first-party domains visited.
    pub n_first_party_domains: usize,
    /// Total first-party page views.
    pub n_first_party_requests: usize,
    /// Distinct third-party FQDNs contacted.
    pub n_third_party_domains: usize,
    /// Total third-party requests logged.
    pub n_third_party_requests: usize,
}

/// Per-country publisher sampling, built once per country on demand.
///
/// Two-stage locality model shared by the extension study and the ISP
/// traffic generator: with probability `home_visit_share` a user visits a
/// national site of their own country (a Greek reader's top sites are
/// Greek portals, whatever their global rank); otherwise they draw from
/// the global pool (with foreign national sites damped). Within each
/// stage, sites are drawn by Zipf popularity.
#[derive(Debug, Default)]
pub struct VisitSampler {
    /// Per-country cumulative weights over the country's national sites.
    home: HashMap<CountryCode, (Vec<u32>, Vec<f64>)>,
    /// Per-country cumulative weights over the global/foreign pool.
    away: HashMap<CountryCode, Vec<f64>>,
}

impl VisitSampler {
    /// An empty sampler; per-country tables build lazily.
    pub fn new() -> Self {
        VisitSampler::default()
    }

    fn home_for(&mut self, country: CountryCode, graph: &WebGraph) -> &(Vec<u32>, Vec<f64>) {
        self.home.entry(country).or_insert_with(|| {
            let mut ids = Vec::new();
            let mut cum = Vec::new();
            let mut acc = 0.0;
            for p in &graph.publishers {
                if p.audience == Audience::National(country) {
                    ids.push(p.id.0);
                    acc += p.popularity;
                    cum.push(acc);
                }
            }
            (ids, cum)
        })
    }

    fn away_for(
        &mut self,
        country: CountryCode,
        graph: &WebGraph,
        foreign_site_damping: f64,
    ) -> &[f64] {
        self.away.entry(country).or_insert_with(|| {
            let mut acc = 0.0;
            graph
                .publishers
                .iter()
                .map(|p| {
                    let factor = match p.audience {
                        Audience::Global => 1.0,
                        // Home sites live in the home stage; excluded here.
                        Audience::National(c) if c == country => 0.0,
                        Audience::National(_) => foreign_site_damping,
                    };
                    acc += p.popularity * factor;
                    acc
                })
                .collect()
        })
    }

    /// Draws one publisher for a user in `country`.
    pub fn sample<R: Rng + ?Sized>(
        &mut self,
        country: CountryCode,
        graph: &WebGraph,
        home_visit_share: f64,
        foreign_site_damping: f64,
        rng: &mut R,
    ) -> PublisherId {
        if rng.gen::<f64>() < home_visit_share {
            let (ids, cum) = self.home_for(country, graph);
            if let Some(&total) = cum.last() {
                if total > 0.0 {
                    let x = rng.gen::<f64>() * total;
                    let idx = cum.partition_point(|&c| c < x).min(cum.len() - 1);
                    return PublisherId(ids[idx]);
                }
            }
            // No national sites for this country: fall through to global.
        }
        let cum = self.away_for(country, graph, foreign_site_damping);
        let total = *cum.last().expect("publishers exist");
        let x = rng.gen::<f64>() * total;
        let idx = cum.partition_point(|&c| c < x).min(cum.len() - 1);
        PublisherId(idx as u32)
    }
}

/// Runs the full study: generates the population, simulates every visit,
/// and returns the dataset. All DNS resolutions flow through `dns` (and
/// therefore into its passive-DNS sensor).
pub fn run_study<R: Rng>(
    cfg: &StudyConfig,
    graph: &WebGraph,
    dns: &mut DnsSim,
    rng: &mut R,
) -> ExtensionDataset {
    let inj = FaultInjector::inactive();
    let mut report = DegradationReport::default();
    run_study_degraded(cfg, graph, dns, rng, &inj, &mut report)
}

/// [`run_study`] with fault injection — the sequential entry point:
/// exactly [`run_study_sharded`] with a thread budget of 1.
///
/// Two fault layers apply:
///
/// * **In-path** (during rendering): resolver timeouts with bounded retry
///   and sim-clock backoff — a request whose resolution fails outright
///   never enters the log, and its cascade children fall back to the page
///   as referrer.
/// * **Post-hoc** (at the log layer): per-entry log loss and per-user log
///   truncation drop entries *after* generation — the request happened
///   (its DNS resolution fed the pDNS sensor) but never reached the
///   collection server. Referrers pointing at dropped entries are remapped
///   to [`Referrer::FirstParty`], mirroring what a real log-joiner sees
///   when a parent entry is missing.
///
/// With an inactive injector this is exactly [`run_study`] — same RNG
/// streams, same outputs.
pub fn run_study_degraded<R: Rng>(
    cfg: &StudyConfig,
    graph: &WebGraph,
    dns: &mut DnsSim,
    rng: &mut R,
    inj: &FaultInjector,
    report: &mut DegradationReport,
) -> ExtensionDataset {
    run_study_sharded(cfg, graph, dns, rng, inj, report, 1)
}

/// What one shard of contiguous users produces. Everything here is local
/// to the shard: request indices (and the cascade referrers into them)
/// start at 0, counters count only the shard's own events, and pDNS
/// observations are buffered instead of applied.
struct ShardOutput {
    visits: Vec<Visit>,
    requests: Vec<LoggedRequest>,
    observations: Vec<PdnsIdObservation>,
    report: DegradationReport,
}

/// Simulates one contiguous run of users. Each user gets an independent
/// hash-derived RNG stream (`derive_stream_seed(study_seed, user_id)`) and
/// their own stub-resolver cache, so this function's output depends only
/// on `(study_seed, the users given)` — never on which shard, thread, or
/// order it runs in.
#[allow(clippy::too_many_arguments)]
fn simulate_shard(
    shard: &[User],
    cfg: &StudyConfig,
    graph: &WebGraph,
    view: &IndexedZoneView<'_>,
    inj: &FaultInjector,
    study_seed: u64,
    mean_activity: f64,
    window_len: u64,
) -> ShardOutput {
    let engine = RenderEngine::new(graph, cfg.render);
    // Sampler tables are deterministic functions of the graph (no RNG), so
    // a per-shard instance reproduces the shared sequential tables.
    let mut sampler = VisitSampler::new();
    let mut out = ShardOutput {
        visits: Vec::new(),
        requests: Vec::new(),
        observations: Vec::new(),
        report: DegradationReport::default(),
    };
    for user in shard {
        let mut urng = StdRng::seed_from_u64(derive_stream_seed(study_seed, user.id.0 as u64));
        let mut cache = DnsCache::for_user(study_seed, user.id.0 as u64);
        let n_visits = ((cfg.visits_per_user_mean * user.activity / mean_activity).round()
            as usize)
            .max(1);
        for _ in 0..n_visits {
            let t = SimTime(cfg.window.start.0 + urng.gen_range(0..window_len));
            let pid = sampler.sample(
                user.country,
                graph,
                cfg.home_visit_share,
                cfg.foreign_site_damping,
                &mut urng,
            );
            let publisher = graph.publisher(pid);
            out.visits.push(Visit {
                user: user.id,
                publisher: pid,
                time: t,
            });
            engine.render_visit_cached(
                user,
                publisher,
                t,
                view,
                &mut cache,
                &mut out.requests,
                &mut urng,
                inj,
                &mut out.report,
            );
        }
        // Per-user caches die with the user; their would-have-been sensor
        // observations replay centrally afterwards, in user order.
        out.observations.extend(cache.take_id_observations());
    }
    out
}

/// What one append-only chunk of the study produces — the unit of work the
/// streaming ingestion path checkpoints after.
///
/// Everything is local to the chunk: request indices (and cascade
/// referrers into them) start at 0 and are already post-fault compacted,
/// counters count only the chunk's own events, and pDNS observations are
/// buffered for ordered replay at finalization. Appending chunks in user
/// order — rebasing referrers by the running request count — reproduces
/// the batch log byte for byte.
#[derive(Debug, Clone, PartialEq)]
pub struct StudyChunk {
    /// First-party page views, in generation (user-major) order.
    pub visits: Vec<Visit>,
    /// Logged requests, faults applied, referrers chunk-local.
    pub requests: Vec<LoggedRequest>,
    /// Buffered pDNS sensor observations, in user order.
    pub observations: Vec<PdnsIdObservation>,
    /// Counter deltas (including `requests_generated`/`_delivered`) for
    /// exactly this chunk; absorb into the run's report.
    pub report: DegradationReport,
}

/// The session-long state the per-chunk study simulation shares: the
/// generated population, the drawn `study_seed`, the population-wide mean
/// activity, and the read-only indexed DNS view.
///
/// Built once per run (batch or streaming); [`StudyStream::simulate_chunk`]
/// then simulates any contiguous user range independently. Chunking is a
/// pure availability knob for the same reason the thread budget is a pure
/// performance knob (DESIGN.md §5d): each user draws from a private
/// hash-derived RNG stream and resolves through a private cache, so a
/// user's output never depends on which chunk — or how large a chunk —
/// simulated them.
pub struct StudyStream<'a> {
    ctx: StudyCtx<'a>,
    users: UserPopulation,
}

/// The population-independent share of the study session: config, graph,
/// DNS view, `study_seed` and the population-wide mean activity.
///
/// [`StudyStream`] owns one next to its materialized population; the
/// out-of-core driver (`xborder::worldscale`) builds one directly and
/// feeds it regenerated user segments, never holding the population —
/// both paths run the same [`StudyCtx::simulate_users`], so segmenting
/// cannot change a single byte of output.
pub struct StudyCtx<'a> {
    cfg: &'a StudyConfig,
    graph: &'a WebGraph,
    view: IndexedZoneView<'a>,
    study_seed: u64,
    mean_activity: f64,
    window_len: u64,
}

impl<'a> StudyCtx<'a> {
    /// Builds the shared session state. `mean_activity` must be the
    /// *population-wide* mean (never a per-segment mean — visit budgets
    /// normalize by it, so a segment-local figure would make segment size
    /// observable).
    pub fn new(
        cfg: &'a StudyConfig,
        graph: &'a WebGraph,
        view: IndexedZoneView<'a>,
        study_seed: u64,
        mean_activity: f64,
    ) -> StudyCtx<'a> {
        StudyCtx {
            cfg,
            graph,
            view,
            study_seed,
            mean_activity,
            window_len: cfg.window.len_secs().max(1),
        }
    }

    /// Simulates `chunk_users` as one append-only chunk.
    ///
    /// `pre_fault_offset` is the total number of requests *generated*
    /// (pre-fault) by all earlier chunks: post-hoc log-loss coins key on
    /// the global pre-fault request index, so the chunk must know where in
    /// the global sequence its requests fall. Referrers in the returned
    /// chunk are chunk-local (they never cross users, hence never chunks).
    pub fn simulate_users(
        &self,
        chunk_users: &[User],
        inj: &FaultInjector,
        threads: usize,
        pre_fault_offset: u64,
    ) -> StudyChunk {
        let threads = threads.clamp(1, chunk_users.len().max(1));
        let shards: Vec<ShardOutput> = if threads <= 1 {
            vec![self.simulate(chunk_users, inj)]
        } else {
            let per = chunk_users.len().div_ceil(threads);
            std::thread::scope(|s| {
                let handles: Vec<_> = chunk_users
                    .chunks(per)
                    .map(|shard| s.spawn(move || self.simulate(shard, inj)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("study shard panicked"))
                    .collect()
            })
        };

        // Merge in user order: concatenation + referrer rebasing
        // reproduces the single-shard vectors exactly.
        let mut out = StudyChunk {
            visits: Vec::with_capacity(shards.iter().map(|o| o.visits.len()).sum()),
            requests: Vec::with_capacity(shards.iter().map(|o| o.requests.len()).sum()),
            observations: Vec::new(),
            report: DegradationReport::default(),
        };
        for shard in shards {
            let offset = out.requests.len() as u32;
            out.visits.extend(shard.visits);
            out.requests.extend(shard.requests.into_iter().map(|mut r| {
                if let Referrer::Request(RequestId(p)) = r.referrer {
                    r.referrer = Referrer::Request(RequestId(p + offset));
                }
                r
            }));
            out.observations.extend(shard.observations);
            out.report.absorb_counters(&shard.report);
        }

        out.report.requests_generated += out.requests.len() as u64;
        if inj.is_active() {
            let cutoff = truncation_cutoff(&self.cfg.window);
            out.requests = apply_log_faults(
                out.requests,
                inj,
                &mut out.report,
                cutoff,
                pre_fault_offset,
            );
            out.visits
                .retain(|v| !(inj.log_truncated(v.user.0 as u64) && v.time.0 >= cutoff.0));
        }
        out.report.requests_delivered += out.requests.len() as u64;
        out
    }

    fn simulate(&self, shard: &[User], inj: &FaultInjector) -> ShardOutput {
        simulate_shard(
            shard,
            self.cfg,
            self.graph,
            &self.view,
            inj,
            self.study_seed,
            self.mean_activity,
            self.window_len,
        )
    }
}

impl<'a> StudyStream<'a> {
    /// Prepares a chunked study over an already-generated population.
    ///
    /// `study_seed` must be the draw that followed population generation
    /// on the caller's world RNG (see [`run_study_sharded`]); `dns` is
    /// borrowed read-only for the stream's lifetime — observations are
    /// buffered per chunk and absorbed by the caller afterwards.
    pub fn new(
        cfg: &'a StudyConfig,
        graph: &'a WebGraph,
        dns: &'a DnsSim,
        users: UserPopulation,
        study_seed: u64,
    ) -> StudyStream<'a> {
        Self::with_view(cfg, graph, dns.indexed_view(graph.domains()), users, study_seed)
    }

    /// [`StudyStream::new`] over an externally built zone view — the
    /// split-borrow variant for callers that need the DNS sensor mutable
    /// between chunks (`DnsSim::indexed_view_and_pdns`) while the zones
    /// stay borrowed read-only here.
    pub fn with_view(
        cfg: &'a StudyConfig,
        graph: &'a WebGraph,
        view: IndexedZoneView<'a>,
        users: UserPopulation,
        study_seed: u64,
    ) -> StudyStream<'a> {
        // Mean activity normalizes per-user visit counts and is a
        // population-wide statistic: it must be computed over *all* users,
        // never per chunk, or chunking would change visit counts.
        let mean_activity: f64 =
            users.users.iter().map(|u| u.activity).sum::<f64>() / users.users.len().max(1) as f64;
        StudyStream {
            ctx: StudyCtx::new(cfg, graph, view, study_seed, mean_activity),
            users,
        }
    }

    /// Number of users in the population (the stream's total extent).
    pub fn n_users(&self) -> usize {
        self.users.users.len()
    }

    /// The recruited population.
    pub fn users(&self) -> &UserPopulation {
        &self.users
    }

    /// Simulates users `user_range` as one append-only chunk — see
    /// [`StudyCtx::simulate_users`] (this is that, over the owned
    /// population's slice).
    pub fn simulate_chunk(
        &self,
        user_range: std::ops::Range<usize>,
        inj: &FaultInjector,
        threads: usize,
        pre_fault_offset: u64,
    ) -> StudyChunk {
        self.ctx
            .simulate_users(&self.users.users[user_range], inj, threads, pre_fault_offset)
    }

    /// Consumes the stream, releasing the DNS borrow and yielding the
    /// population for the final dataset.
    pub fn into_users(self) -> UserPopulation {
        self.users
    }
}

/// [`run_study_degraded`] with an explicit thread budget — the parallel
/// study driver (DESIGN.md §5d).
///
/// The thread budget is a pure performance knob: every budget produces
/// bit-identical datasets, reports and pDNS state. That invariance rests
/// on three mechanisms:
///
/// 1. **Per-user RNG streams.** The caller's `rng` is consumed exactly
///    twice (population generation, then one `study_seed` draw); each
///    user's visits then draw from a private stream seeded by
///    `derive_stream_seed(study_seed, user_id)` — the same hash-derived
///    construction `xborder-faults` uses for fault coins.
/// 2. **A shardable DNS layer.** Shards resolve against a shared
///    read-only [`IndexedZoneView`] through per-user [`DnsCache`]s (the paper's
///    per-client caching, Sect. 5.1); cache-miss lookups use RNG derived
///    from `(user stream, host, time)`, and pDNS observations are
///    buffered and replayed into `dns` in user order after the join.
/// 3. **Order-restoring merges.** Shards cover contiguous user ranges;
///    their local vectors concatenate in user order with cascade referrer
///    indices rebased by the shard's request offset (referrers never
///    cross users, so rebasing is a pure shift). Report counters are
///    commutative sums. Post-hoc log faults key on global request index
///    and run after the merge, so they see identical state at any budget.
///
/// Structurally this is the streaming ingestion path run as one
/// whole-population chunk: [`StudyStream::simulate_chunk`] over
/// `0..n_users` at offset 0, followed by the same finalization
/// (observation replay, counter absorption, timestamp sort). The
/// checkpointed path in `xborder`'s `stream` module cuts the same
/// machinery into many chunks; both produce bit-identical datasets.
pub fn run_study_sharded<R: Rng>(
    cfg: &StudyConfig,
    graph: &WebGraph,
    dns: &mut DnsSim,
    rng: &mut R,
    inj: &FaultInjector,
    report: &mut DegradationReport,
    threads: usize,
) -> ExtensionDataset {
    let users = UserPopulation::generate(&cfg.population, rng);
    let study_seed: u64 = rng.gen();

    // The stream's indexed view borrows `dns` and the graph's interner; it
    // lives in this block so the borrow ends before observations are
    // absorbed back.
    let (chunk, users) = {
        let stream = StudyStream::new(cfg, graph, dns, users, study_seed);
        let chunk = stream.simulate_chunk(0..stream.n_users(), inj, threads, 0);
        (chunk, stream.into_users())
    };
    dns.absorb_id_observations(&chunk.observations, graph.domains());
    report.absorb_counters(&chunk.report);

    // Logs arrive at the collection server in timestamp order. The
    // pre-sort order (user-major, generation order within a user) is the
    // same at every thread budget, so this stable sort is too.
    // (Requests keep generation order because cascade referrers are
    // positional; visits can be sorted freely.)
    let mut visits = chunk.visits;
    visits.sort_by_key(|v| v.time);

    ExtensionDataset {
        users,
        visits,
        requests: chunk.requests,
        domains: graph.domains().clone(),
    }
}

/// A truncated user's log stops 3/4 of the way through the study window
/// (upload pipeline died; everything after never reached the server).
fn truncation_cutoff(window: &TimeWindow) -> SimTime {
    SimTime(window.start.0 + window.len_secs() / 4 * 3)
}

/// Applies per-entry log loss and per-user truncation to a generated
/// request log, remapping referrers so surviving entries stay consistent:
/// a child whose parent entry was dropped refers to the first party, and
/// surviving `Referrer::Request` indices are rewritten to the compacted
/// positions.
///
/// `offset` is the chunk's position in the global pre-fault request
/// sequence: loss coins key on `offset + local index`, so chunk-local
/// application is exact — the same requests drop whether faults run once
/// over the whole log (batch, offset 0) or chunk by chunk (streaming).
fn apply_log_faults(
    requests: Vec<LoggedRequest>,
    inj: &FaultInjector,
    report: &mut DegradationReport,
    cutoff: SimTime,
    offset: u64,
) -> Vec<LoggedRequest> {
    let mut keep = vec![true; requests.len()];
    for (i, r) in requests.iter().enumerate() {
        if inj.log_truncated(r.user.0 as u64) && r.time.0 >= cutoff.0 {
            keep[i] = false;
            report.requests_dropped_truncation += 1;
        } else if inj.log_lost(offset + i as u64) {
            keep[i] = false;
            report.requests_dropped_loss += 1;
        }
    }
    let mut new_idx = vec![u32::MAX; requests.len()];
    let mut kept = Vec::with_capacity(requests.len());
    for (i, mut r) in requests.into_iter().enumerate() {
        if !keep[i] {
            continue;
        }
        if let Referrer::Request(RequestId(p)) = r.referrer {
            // Referrers always point backwards, so the parent's fate and
            // compacted index are already known.
            r.referrer = if keep[p as usize] {
                Referrer::Request(RequestId(new_idx[p as usize]))
            } else {
                Referrer::FirstParty
            };
        }
        new_idx[i] = kept.len() as u32;
        kept.push(r);
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use xborder_dns::{MappingPolicy, ZoneEntry, ZoneServer};
    use xborder_geo::WORLD;
    use xborder_netsim::ServerId;
    use xborder_webgraph::{generate, WebGraphConfig};

    fn wire_all(graph: &WebGraph, dns: &mut DnsSim) {
        let de = WORLD.country_or_panic(CountryCode::parse("DE").unwrap());
        let mut next = 0u32;
        for s in &graph.services {
            for h in &s.hosts {
                next += 1;
                let ip = std::net::Ipv4Addr::from(0x0200_0000u32 + next);
                dns.add_zone(ZoneEntry {
                    host: h.clone(),
                    servers: vec![ZoneServer {
                        server: ServerId(next),
                        ip: std::net::IpAddr::V4(ip),
                        country: de.code,
                        location: de.centroid(),
                        valid: None,
                    }],
                    policy: MappingPolicy::Pinned,
                    ttl_secs: 300,
                })
                .unwrap();
            }
        }
    }

    fn run_small(seed: u64) -> (WebGraph, ExtensionDataset) {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = generate(&WebGraphConfig::small(), &mut rng);
        let mut dns = DnsSim::new();
        wire_all(&graph, &mut dns);
        let ds = run_study(&StudyConfig::small(), &graph, &mut dns, &mut rng);
        (graph, ds)
    }

    #[test]
    fn study_produces_consistent_stats() {
        let (_, ds) = run_small(1);
        let stats = ds.stats();
        assert_eq!(stats.n_users, 40);
        assert!(stats.n_first_party_requests >= 40);
        assert_eq!(stats.n_first_party_requests, ds.visits.len());
        assert_eq!(stats.n_third_party_requests, ds.requests.len());
        assert!(stats.n_third_party_requests > stats.n_first_party_requests,
            "third-party requests should dominate");
        assert!(stats.n_third_party_domains > 50);
    }

    #[test]
    fn study_is_deterministic() {
        let (_, a) = run_small(9);
        let (_, b) = run_small(9);
        assert_eq!(a.requests.len(), b.requests.len());
        assert_eq!(a.visits, b.visits);
        for (x, y) in a.requests.iter().zip(&b.requests) {
            assert_eq!(x.url, y.url);
            assert_eq!(x.ip, y.ip);
        }
    }

    #[test]
    fn visits_fall_in_window() {
        let (_, ds) = run_small(2);
        let w = StudyConfig::small().window;
        for v in &ds.visits {
            assert!(w.contains(v.time));
        }
    }

    #[test]
    fn national_users_visit_home_sites_more() {
        let (graph, ds) = run_small(3);
        // Count, per user country, the share of visits to national sites of
        // that same country vs foreign national sites.
        let mut home = 0usize;
        let mut foreign = 0usize;
        for v in &ds.visits {
            let p = graph.publisher(v.publisher);
            if let Audience::National(c) = p.audience {
                if c == ds.user_country(v.user) {
                    home += 1;
                } else {
                    foreign += 1;
                }
            }
        }
        assert!(home > foreign, "home {home} vs foreign {foreign}");
    }

    #[test]
    fn pdns_sensor_saw_resolutions() {
        let mut rng = StdRng::seed_from_u64(4);
        let graph = generate(&WebGraphConfig::small(), &mut rng);
        let mut dns = DnsSim::new();
        wire_all(&graph, &mut dns);
        let ds = run_study(&StudyConfig::small(), &graph, &mut dns, &mut rng);
        assert!(!dns.pdns().is_empty());
        assert!(dns.pdns().len() <= ds.stats().n_third_party_domains.max(1) * 2);
    }

    #[test]
    fn observed_ips_are_a_subset_of_wired_ips() {
        let (_, ds) = run_small(5);
        for ip in ds.observed_ips() {
            assert!(xborder_netsim::ip::is_simulator_address(ip));
        }
    }

    #[test]
    fn requests_per_publisher_sums_to_total() {
        let (_, ds) = run_small(6);
        let total: usize = ds.requests_per_publisher().values().sum();
        assert_eq!(total, ds.requests.len());
    }

    #[test]
    fn user_country_lookup_is_fallible_out_of_range() {
        let (_, ds) = run_small(7);
        let n = ds.users.users.len();
        assert!(ds.try_user_country(UserId(0)).is_some());
        assert!(ds.try_user_country(UserId(n as u32)).is_none());
    }

    /// One call of the sharded driver at a given budget, plus its report.
    fn run_sharded(seed: u64, threads: usize) -> (ExtensionDataset, DegradationReport, DnsSim) {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = generate(&WebGraphConfig::small(), &mut rng);
        let mut dns = DnsSim::new();
        wire_all(&graph, &mut dns);
        let inj = FaultInjector::inactive();
        let mut report = DegradationReport::default();
        let ds = run_study_sharded(
            &StudyConfig::small(),
            &graph,
            &mut dns,
            &mut rng,
            &inj,
            &mut report,
            threads,
        );
        (ds, report, dns)
    }

    #[test]
    fn thread_budget_is_invisible_in_output() {
        let (a, ra, dns_a) = run_sharded(11, 1);
        for threads in [2, 3, 8, 64] {
            let (b, rb, dns_b) = run_sharded(11, threads);
            assert_eq!(a.visits, b.visits, "visits differ at {threads} threads");
            assert_eq!(
                a.requests.len(),
                b.requests.len(),
                "request count differs at {threads} threads"
            );
            for (x, y) in a.requests.iter().zip(&b.requests) {
                assert_eq!(x.url, y.url);
                assert_eq!(x.ip, y.ip);
                assert_eq!(x.referrer, y.referrer);
                assert_eq!(x.time, y.time);
            }
            // Per-shard caches merge hit/miss counters to sequential totals.
            assert_eq!(ra.dns_cache_hits, rb.dns_cache_hits);
            assert_eq!(ra.dns_cache_misses, rb.dns_cache_misses);
            assert_eq!(ra.dns_attempts, rb.dns_attempts);
            // The replayed pDNS state matches too.
            assert_eq!(dns_a.pdns().len(), dns_b.pdns().len());
        }
        assert!(ra.dns_cache_hits > 0, "cache never hit in a whole study");
        assert!(ra.dns_cache_misses > 0);
    }

    #[test]
    fn sequential_entry_point_equals_sharded_at_one() {
        let mut rng_a = StdRng::seed_from_u64(13);
        let graph_a = generate(&WebGraphConfig::small(), &mut rng_a);
        let mut dns_a = DnsSim::new();
        wire_all(&graph_a, &mut dns_a);
        let inj = FaultInjector::inactive();
        let mut report_a = DegradationReport::default();
        let a = run_study_degraded(
            &StudyConfig::small(),
            &graph_a,
            &mut dns_a,
            &mut rng_a,
            &inj,
            &mut report_a,
        );
        let (b, report_b, _) = run_sharded(13, 1);
        assert_eq!(a.visits, b.visits);
        assert_eq!(a.requests.len(), b.requests.len());
        assert_eq!(report_a.dns_cache_misses, report_b.dns_cache_misses);
    }
}
