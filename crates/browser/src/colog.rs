//! Columnar study-log segments (SoA layout for out-of-core worlds).
//!
//! The AoS study log — `Vec<LoggedRequest>` with a `Box<str>` URL per
//! record — is what caps in-RAM worlds near 10⁵ users. This module is the
//! log's columnar twin, one [`SegmentBlock`] per driver chunk, following
//! the PR 9 `FlowBlock` idiom: every `LoggedRequest` field becomes a
//! dense column keyed by row index, URLs live in one shared byte arena
//! with an offset column, and the rare IPv6 addresses sit in sorted side
//! rows next to a packed IPv4 column. A block round-trips exactly to the
//! `StudyChunk` (plus per-row classification labels and fixpoint round
//! counts) it was built from, so storing blocks instead of AoS chunks is
//! invisible to every fingerprint.
//!
//! Blocks implement [`xborder_webgraph::SegmentPayload`], so the driver
//! can hold them in a [`xborder_webgraph::SegmentStore`] and spill cold
//! segments to disk behind a bounded resident window (DESIGN.md §5j).
//! The byte encoding doubles as the checkpoint chunk-blob payload: it
//! leads with exact column counts so decoding pre-reserves every column
//! and the downstream interners can size themselves before ingesting the
//! segment (no rehash spikes mid-chunk).

use crate::extension::{StudyChunk, Visit};
use crate::request::{LoggedRequest, Referrer, RequestId};
use crate::user::UserId;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};
use xborder_checkpoint::{ByteReader, ByteWriter, DecodeError};
use xborder_dns::PdnsIdObservation;
use xborder_faults::DegradationReport;
use xborder_netsim::time::SimTime;
use xborder_webgraph::{DomainId, PublisherId, SegmentPayload};

/// Referrer column sentinel: no referrer.
const REF_NONE: u32 = u32::MAX;
/// Referrer column sentinel: the first-party page.
const REF_FIRST_PARTY: u32 = u32::MAX - 1;

/// Per-row classification label: easylist-confirmed tracking. The tag
/// values are part of the checkpoint format and must match the streaming
/// driver's label codec in `xborder::stream`.
pub const LABEL_ABP: u8 = 0;
/// Per-row label: semi-automatic (Sect. 4.2) tracking.
pub const LABEL_SEMI: u8 = 1;
/// Per-row label: clean.
pub const LABEL_CLEAN: u8 = 2;

/// One study segment in columnar (SoA) form: the visits, faulted
/// requests, pDNS observations, per-row labels, fixpoint round counts
/// and counter deltas of one contiguous user range.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SegmentBlock {
    /// First user id (inclusive) this segment covers.
    pub user_start: u32,
    /// Last user id (exclusive).
    pub user_end: u32,

    // Visit columns (generation order, user-major).
    v_user: Vec<u32>,
    v_publisher: Vec<u32>,
    v_time: Vec<u64>,

    // Request columns (generation order; referrers are segment-local).
    r_user: Vec<u32>,
    r_time: Vec<u64>,
    r_first_party: Vec<u32>,
    r_publisher: Vec<u32>,
    r_host: Vec<u32>,
    /// Segment-local parent row, or [`REF_NONE`] / [`REF_FIRST_PARTY`].
    r_referrer: Vec<u32>,
    /// Row `i`'s URL is `url_bytes[url_off[i] as usize..url_off[i + 1] as usize]`.
    url_off: Vec<u32>,
    url_bytes: Vec<u8>,
    /// Packed IPv4 octets; rows with an IPv6 address hold 0 here and a
    /// side row below.
    r_ip4: Vec<u32>,
    /// `(row, octets)` for IPv6 rows, sorted by row.
    r_ip6: Vec<(u32, [u8; 16])>,

    // pDNS observation columns (user order).
    o_host: Vec<u32>,
    o_time: Vec<u64>,
    o_ip4: Vec<u32>,
    o_ip6: Vec<(u32, [u8; 16])>,

    /// Per-request classification labels ([`LABEL_ABP`] / [`LABEL_SEMI`] /
    /// [`LABEL_CLEAN`]); empty until the segment is classified.
    labels: Vec<u8>,
    /// Stage-2 fixpoint rounds the segment's classification ran.
    pub stage2_rounds: u32,
    /// Stage-3 fixpoint rounds.
    pub stage3_rounds: u32,
    /// The chunk report's commutative counters, in
    /// [`DegradationReport::counter_values`] order.
    counters: [u64; DegradationReport::N_COUNTERS],
}

fn pack_ip(ip: IpAddr, row: u32, ip4: &mut Vec<u32>, ip6: &mut Vec<(u32, [u8; 16])>) {
    match ip {
        IpAddr::V4(v4) => ip4.push(u32::from(v4)),
        IpAddr::V6(v6) => {
            ip4.push(0);
            ip6.push((row, v6.octets()));
        }
    }
}

fn unpack_ip(row: usize, ip4: &[u32], ip6: &[(u32, [u8; 16])]) -> IpAddr {
    match ip6.binary_search_by_key(&(row as u32), |&(r, _)| r) {
        Ok(pos) => IpAddr::V6(Ipv6Addr::from(ip6[pos].1)),
        Err(_) => IpAddr::V4(Ipv4Addr::from(ip4[row])),
    }
}

impl SegmentBlock {
    /// Builds a block from a simulated-and-classified chunk. `labels` are
    /// per-request tags (pass an empty slice for an unclassified chunk).
    ///
    /// # Panics
    /// If `labels` is non-empty but shorter than the request count, or a
    /// referrer row collides with the sentinel space (> 4 × 10⁹ rows).
    pub fn from_chunk(
        chunk: &StudyChunk,
        labels: &[u8],
        stage2_rounds: u32,
        stage3_rounds: u32,
        user_range: (u32, u32),
    ) -> SegmentBlock {
        assert!(
            labels.is_empty() || labels.len() == chunk.requests.len(),
            "labels/requests length mismatch"
        );
        let n_req = chunk.requests.len();
        let mut b = SegmentBlock {
            user_start: user_range.0,
            user_end: user_range.1,
            v_user: Vec::with_capacity(chunk.visits.len()),
            v_publisher: Vec::with_capacity(chunk.visits.len()),
            v_time: Vec::with_capacity(chunk.visits.len()),
            r_user: Vec::with_capacity(n_req),
            r_time: Vec::with_capacity(n_req),
            r_first_party: Vec::with_capacity(n_req),
            r_publisher: Vec::with_capacity(n_req),
            r_host: Vec::with_capacity(n_req),
            r_referrer: Vec::with_capacity(n_req),
            url_off: Vec::with_capacity(n_req + 1),
            url_bytes: Vec::with_capacity(chunk.requests.iter().map(|r| r.url.len()).sum()),
            r_ip4: Vec::with_capacity(n_req),
            r_ip6: Vec::new(),
            o_host: Vec::with_capacity(chunk.observations.len()),
            o_time: Vec::with_capacity(chunk.observations.len()),
            o_ip4: Vec::with_capacity(chunk.observations.len()),
            o_ip6: Vec::new(),
            labels: labels.to_vec(),
            stage2_rounds,
            stage3_rounds,
            counters: chunk.report.counter_values(),
        };
        for v in &chunk.visits {
            b.v_user.push(v.user.0);
            b.v_publisher.push(v.publisher.0);
            b.v_time.push(v.time.0);
        }
        b.url_off.push(0);
        for (row, r) in chunk.requests.iter().enumerate() {
            b.r_user.push(r.user.0);
            b.r_time.push(r.time.0);
            b.r_first_party.push(r.first_party.0);
            b.r_publisher.push(r.publisher.0);
            b.r_host.push(r.host.0);
            b.r_referrer.push(match r.referrer {
                Referrer::None => REF_NONE,
                Referrer::FirstParty => REF_FIRST_PARTY,
                Referrer::Request(RequestId(p)) => {
                    assert!(p < REF_FIRST_PARTY, "request row collides with sentinel");
                    p
                }
            });
            b.url_bytes.extend_from_slice(r.url.as_bytes());
            assert!(b.url_bytes.len() <= u32::MAX as usize, "URL arena > 4 GiB");
            b.url_off.push(b.url_bytes.len() as u32);
            pack_ip(r.ip, row as u32, &mut b.r_ip4, &mut b.r_ip6);
        }
        for (row, o) in chunk.observations.iter().enumerate() {
            b.o_host.push(o.host.0);
            b.o_time.push(o.time.0);
            pack_ip(o.ip, row as u32, &mut b.o_ip4, &mut b.o_ip6);
        }
        b
    }

    /// Reconstructs the AoS chunk plus `(labels, stage2, stage3)` this
    /// block was built from — the exact inverse of
    /// [`SegmentBlock::from_chunk`] (the report carries counters only;
    /// timings are run-level state and decode as zero, exactly like the
    /// checkpoint codec before segmentation).
    pub fn to_chunk(&self) -> (StudyChunk, Vec<u8>, u32, u32) {
        let mut visits = Vec::with_capacity(self.n_visits());
        for i in 0..self.n_visits() {
            visits.push(Visit {
                user: UserId(self.v_user[i]),
                publisher: PublisherId(self.v_publisher[i]),
                time: SimTime(self.v_time[i]),
            });
        }
        let mut requests = Vec::with_capacity(self.n_requests());
        for i in 0..self.n_requests() {
            requests.push(LoggedRequest {
                user: UserId(self.r_user[i]),
                time: SimTime(self.r_time[i]),
                first_party: DomainId(self.r_first_party[i]),
                publisher: PublisherId(self.r_publisher[i]),
                url: self.url(i).into(),
                host: DomainId(self.r_host[i]),
                referrer: match self.r_referrer[i] {
                    REF_NONE => Referrer::None,
                    REF_FIRST_PARTY => Referrer::FirstParty,
                    p => Referrer::Request(RequestId(p)),
                },
                ip: unpack_ip(i, &self.r_ip4, &self.r_ip6),
            });
        }
        let chunk = StudyChunk {
            visits,
            requests,
            observations: self.observations_vec(),
            report: DegradationReport::from_counter_values(&self.counters),
        };
        (chunk, self.labels.clone(), self.stage2_rounds, self.stage3_rounds)
    }

    /// Visit rows.
    pub fn n_visits(&self) -> usize {
        self.v_user.len()
    }

    /// Request rows.
    pub fn n_requests(&self) -> usize {
        self.r_user.len()
    }

    /// pDNS observation rows.
    pub fn n_observations(&self) -> usize {
        self.o_host.len()
    }

    /// Row `i`'s URL, straight from the arena (no allocation).
    pub fn url(&self, i: usize) -> &str {
        let s = self.url_off[i] as usize;
        let e = self.url_off[i + 1] as usize;
        std::str::from_utf8(&self.url_bytes[s..e]).expect("arena holds UTF-8 URL bytes")
    }

    /// Row `i`'s user id.
    pub fn request_user(&self, i: usize) -> u32 {
        self.r_user[i]
    }

    /// Row `i`'s timestamp.
    pub fn request_time(&self, i: usize) -> SimTime {
        SimTime(self.r_time[i])
    }

    /// Row `i`'s interned request host.
    pub fn request_host(&self, i: usize) -> DomainId {
        DomainId(self.r_host[i])
    }

    /// Row `i`'s first-party domain.
    pub fn request_first_party(&self, i: usize) -> DomainId {
        DomainId(self.r_first_party[i])
    }

    /// Row `i`'s publisher.
    pub fn request_publisher(&self, i: usize) -> PublisherId {
        PublisherId(self.r_publisher[i])
    }

    /// Row `i`'s response IP.
    pub fn request_ip(&self, i: usize) -> IpAddr {
        unpack_ip(i, &self.r_ip4, &self.r_ip6)
    }

    /// Per-row labels (empty if the segment was stored unclassified).
    pub fn labels(&self) -> &[u8] {
        &self.labels
    }

    /// True if row `i` is labelled tracking by either method.
    pub fn is_tracking(&self, i: usize) -> bool {
        self.labels[i] != LABEL_CLEAN
    }

    /// The chunk report's commutative counters (counters only — absorb
    /// with `DegradationReport::from_counter_values`).
    pub fn counters(&self) -> DegradationReport {
        DegradationReport::from_counter_values(&self.counters)
    }

    /// Materializes the pDNS observations (small: one row per DNS miss).
    pub fn observations_vec(&self) -> Vec<PdnsIdObservation> {
        let mut out = Vec::with_capacity(self.n_observations());
        for i in 0..self.n_observations() {
            out.push(PdnsIdObservation {
                host: DomainId(self.o_host[i]),
                ip: unpack_ip(i, &self.o_ip4, &self.o_ip6),
                time: SimTime(self.o_time[i]),
            });
        }
        out
    }

    /// Serializes the block. The header leads with every column count so
    /// [`SegmentBlock::decode_bytes`] (and interners fed from the
    /// decoded segment) can pre-reserve exactly.
    pub fn encode_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(
            64 + self.n_visits() * 16
                + self.n_requests() * 33
                + self.url_bytes.len()
                + self.n_observations() * 16
                + self.labels.len(),
        );
        w.put_u32(self.user_start);
        w.put_u32(self.user_end);
        w.put_usize(self.n_visits());
        w.put_usize(self.n_requests());
        w.put_usize(self.n_observations());
        w.put_usize(self.url_bytes.len());
        w.put_usize(self.r_ip6.len());
        w.put_usize(self.o_ip6.len());
        w.put_usize(self.labels.len());
        w.put_u32(self.stage2_rounds);
        w.put_u32(self.stage3_rounds);
        for &v in &self.counters {
            w.put_u64(v);
        }
        for &v in &self.v_user {
            w.put_u32(v);
        }
        for &v in &self.v_publisher {
            w.put_u32(v);
        }
        for &v in &self.v_time {
            w.put_u64(v);
        }
        for &v in &self.r_user {
            w.put_u32(v);
        }
        for &v in &self.r_time {
            w.put_u64(v);
        }
        for &v in &self.r_first_party {
            w.put_u32(v);
        }
        for &v in &self.r_publisher {
            w.put_u32(v);
        }
        for &v in &self.r_host {
            w.put_u32(v);
        }
        for &v in &self.r_referrer {
            w.put_u32(v);
        }
        // url_off[0] is always 0; store the n trailing offsets.
        for &v in &self.url_off[1..] {
            w.put_u32(v);
        }
        w.put_bytes(&self.url_bytes);
        for &v in &self.r_ip4 {
            w.put_u32(v);
        }
        for &(row, octets) in &self.r_ip6 {
            w.put_u32(row);
            w.put_bytes(&octets);
        }
        for &v in &self.o_host {
            w.put_u32(v);
        }
        for &v in &self.o_time {
            w.put_u64(v);
        }
        for &v in &self.o_ip4 {
            w.put_u32(v);
        }
        for &(row, octets) in &self.o_ip6 {
            w.put_u32(row);
            w.put_bytes(&octets);
        }
        w.put_bytes(&self.labels);
        w.into_bytes()
    }

    /// Reverses [`SegmentBlock::encode_bytes`]; every column is allocated
    /// at its exact final size from the header.
    pub fn decode_bytes(bytes: &[u8]) -> Result<SegmentBlock, DecodeError> {
        let mut r = ByteReader::new(bytes);
        let user_start = r.u32()?;
        let user_end = r.u32()?;
        let n_visits = r.len_prefix()?;
        let n_requests = r.len_prefix()?;
        let n_obs = r.len_prefix()?;
        let url_len = r.len_prefix()?;
        let n_r_ip6 = r.len_prefix()?;
        let n_o_ip6 = r.len_prefix()?;
        let n_labels = r.len_prefix()?;
        let stage2_rounds = r.u32()?;
        let stage3_rounds = r.u32()?;
        let mut counters = [0u64; DegradationReport::N_COUNTERS];
        for slot in &mut counters {
            *slot = r.u64()?;
        }
        fn col_u32(r: &mut ByteReader<'_>, n: usize) -> Result<Vec<u32>, DecodeError> {
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(r.u32()?);
            }
            Ok(v)
        }
        fn col_u64(r: &mut ByteReader<'_>, n: usize) -> Result<Vec<u64>, DecodeError> {
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(r.u64()?);
            }
            Ok(v)
        }
        fn col_ip6(
            r: &mut ByteReader<'_>,
            n: usize,
        ) -> Result<Vec<(u32, [u8; 16])>, DecodeError> {
            let mut v: Vec<(u32, [u8; 16])> = Vec::with_capacity(n);
            for _ in 0..n {
                let row = r.u32()?;
                let octets: [u8; 16] = r.bytes(16)?.try_into().expect("16 bytes");
                v.push((row, octets));
            }
            Ok(v)
        }
        let v_user = col_u32(&mut r, n_visits)?;
        let v_publisher = col_u32(&mut r, n_visits)?;
        let v_time = col_u64(&mut r, n_visits)?;
        let r_user = col_u32(&mut r, n_requests)?;
        let r_time = col_u64(&mut r, n_requests)?;
        let r_first_party = col_u32(&mut r, n_requests)?;
        let r_publisher = col_u32(&mut r, n_requests)?;
        let r_host = col_u32(&mut r, n_requests)?;
        let r_referrer = col_u32(&mut r, n_requests)?;
        let mut url_off = Vec::with_capacity(n_requests + 1);
        url_off.push(0);
        for _ in 0..n_requests {
            url_off.push(r.u32()?);
        }
        let url_bytes = r.bytes(url_len)?.to_vec();
        let r_ip4 = col_u32(&mut r, n_requests)?;
        let r_ip6 = col_ip6(&mut r, n_r_ip6)?;
        let o_host = col_u32(&mut r, n_obs)?;
        let o_time = col_u64(&mut r, n_obs)?;
        let o_ip4 = col_u32(&mut r, n_obs)?;
        let o_ip6 = col_ip6(&mut r, n_o_ip6)?;
        let labels = r.bytes(n_labels)?.to_vec();
        r.finish()?;
        Ok(SegmentBlock {
            user_start,
            user_end,
            v_user,
            v_publisher,
            v_time,
            r_user,
            r_time,
            r_first_party,
            r_publisher,
            r_host,
            r_referrer,
            url_off,
            url_bytes,
            r_ip4,
            r_ip6,
            o_host,
            o_time,
            o_ip4,
            o_ip6,
            labels,
            stage2_rounds,
            stage3_rounds,
            counters,
        })
    }

    /// Logical resident footprint: column lengths × element sizes. Based
    /// on lengths rather than capacities so the figure is deterministic.
    pub fn resident_bytes_logical(&self) -> usize {
        (self.v_user.len() + self.v_publisher.len()) * 4
            + self.v_time.len() * 8
            + (self.r_user.len()
                + self.r_first_party.len()
                + self.r_publisher.len()
                + self.r_host.len()
                + self.r_referrer.len()
                + self.r_ip4.len()
                + self.url_off.len())
                * 4
            + self.r_time.len() * 8
            + self.url_bytes.len()
            + self.r_ip6.len() * 20
            + (self.o_host.len() + self.o_ip4.len()) * 4
            + self.o_time.len() * 8
            + self.o_ip6.len() * 20
            + self.labels.len()
    }
}

impl SegmentPayload for SegmentBlock {
    fn encode(&self) -> Vec<u8> {
        self.encode_bytes()
    }

    fn decode(bytes: &[u8]) -> Result<SegmentBlock, String> {
        SegmentBlock::decode_bytes(bytes).map_err(|e| e.to_string())
    }

    fn resident_bytes(&self) -> usize {
        self.resident_bytes_logical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_chunk() -> StudyChunk {
        let report = DegradationReport {
            requests_generated: 3,
            requests_delivered: 3,
            dns_attempts: 5,
            ..Default::default()
        };
        StudyChunk {
            visits: vec![
                Visit {
                    user: UserId(7),
                    publisher: PublisherId(2),
                    time: SimTime(100),
                },
                Visit {
                    user: UserId(8),
                    publisher: PublisherId(3),
                    time: SimTime(220),
                },
            ],
            requests: vec![
                LoggedRequest {
                    user: UserId(7),
                    time: SimTime(101),
                    first_party: DomainId(10),
                    publisher: PublisherId(2),
                    url: "https://ads.t.com/pixel?id=1".into(),
                    host: DomainId(11),
                    referrer: Referrer::FirstParty,
                    ip: "1.2.3.4".parse().unwrap(),
                },
                LoggedRequest {
                    user: UserId(7),
                    time: SimTime(102),
                    first_party: DomainId(10),
                    publisher: PublisherId(2),
                    url: "https://sync.x.com/um?rtb=9".into(),
                    host: DomainId(12),
                    referrer: Referrer::Request(RequestId(0)),
                    ip: "2001:db8::7".parse().unwrap(),
                },
                LoggedRequest {
                    user: UserId(8),
                    time: SimTime(221),
                    first_party: DomainId(13),
                    publisher: PublisherId(3),
                    url: "https://cdn.y.com/w.js".into(),
                    host: DomainId(14),
                    referrer: Referrer::None,
                    ip: "5.6.7.8".parse().unwrap(),
                },
            ],
            observations: vec![PdnsIdObservation {
                host: DomainId(11),
                ip: "1.2.3.4".parse().unwrap(),
                time: SimTime(101),
            }],
            report,
        }
    }

    #[test]
    fn block_round_trips_chunk_exactly() {
        let chunk = sample_chunk();
        let labels = vec![LABEL_ABP, LABEL_SEMI, LABEL_CLEAN];
        let block = SegmentBlock::from_chunk(&chunk, &labels, 4, 2, (7, 9));
        assert_eq!(block.n_visits(), 2);
        assert_eq!(block.n_requests(), 3);
        assert_eq!(block.url(1), "https://sync.x.com/um?rtb=9");
        assert_eq!(block.request_ip(1), "2001:db8::7".parse::<IpAddr>().unwrap());
        assert!(block.is_tracking(1));
        assert!(!block.is_tracking(2));
        let (back, labels_back, s2, s3) = block.to_chunk();
        assert_eq!(back.visits, chunk.visits);
        assert_eq!(back.requests, chunk.requests);
        assert_eq!(back.observations, chunk.observations);
        assert_eq!(back.report.counter_values(), chunk.report.counter_values());
        assert_eq!(labels_back, labels);
        assert_eq!((s2, s3), (4, 2));
    }

    #[test]
    fn block_bytes_round_trip() {
        let chunk = sample_chunk();
        let labels = vec![LABEL_CLEAN, LABEL_ABP, LABEL_CLEAN];
        let block = SegmentBlock::from_chunk(&chunk, &labels, 3, 1, (7, 9));
        let bytes = block.encode_bytes();
        let back = SegmentBlock::decode_bytes(&bytes).unwrap();
        assert_eq!(back, block);
        // Deterministic encoding (spill files rely on it).
        assert_eq!(back.encode_bytes(), bytes);
    }

    #[test]
    fn truncated_bytes_are_typed_errors() {
        let chunk = sample_chunk();
        let block = SegmentBlock::from_chunk(&chunk, &[], 0, 0, (7, 9));
        let bytes = block.encode_bytes();
        for cut in [10, bytes.len() / 2, bytes.len() - 1] {
            assert!(SegmentBlock::decode_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing garbage is rejected too (finish()).
        let mut long = bytes.clone();
        long.push(0);
        assert!(SegmentBlock::decode_bytes(&long).is_err());
    }

    #[test]
    fn empty_block_round_trips() {
        let chunk = StudyChunk {
            visits: vec![],
            requests: vec![],
            observations: vec![],
            report: DegradationReport::default(),
        };
        let block = SegmentBlock::from_chunk(&chunk, &[], 0, 0, (0, 0));
        let back = SegmentBlock::decode_bytes(&block.encode_bytes()).unwrap();
        assert_eq!(back, block);
        assert_eq!(back.resident_bytes_logical(), 4); // url_off[0]
    }
}
