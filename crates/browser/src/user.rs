//! The recruited user population.

use rand::{rngs::StdRng, Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use xborder_dns::{ClientCtx, Resolver, ResolverKind};
use xborder_faults::{derive_stream_seed, DegradedResult};
use xborder_geo::{CountryCode, LatLon, WORLD};

/// Index of a user within the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UserId(pub u32);

/// One extension user.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct User {
    /// Study-local identifier (the paper deliberately stores no stronger
    /// identifier; neither do we).
    pub id: UserId,
    /// Country of residence.
    pub country: CountryCode,
    /// Home location (sampled inside the country).
    pub location: LatLon,
    /// Which resolver their traffic uses.
    pub resolver_kind: ResolverKind,
    /// Relative browsing activity (visits are proportional to this).
    pub activity: f64,
    /// Probability the user interacts with a page enough to reveal lazy ad
    /// slots (scroll; the crawler-vs-real-user gap of Sect. 3.1).
    pub interaction_p: f64,
}

impl User {
    /// The DNS client context for this user, failing gracefully when the
    /// user record carries a country missing from the world table (the
    /// request path surfaces this as a skipped request, not a panic).
    pub fn try_client_ctx(&self) -> DegradedResult<ClientCtx> {
        let resolver = match self.resolver_kind {
            ResolverKind::IspLocal => Resolver::try_isp_local(self.country)?,
            ResolverKind::PublicAnycast => Resolver::try_public_anycast(self.location)?,
        };
        Ok(ClientCtx {
            country: self.country,
            location: self.location,
            resolver,
        })
    }

    /// Infallible wrapper over [`User::try_client_ctx`] for generated
    /// populations (whose countries come from the world table).
    pub fn client_ctx(&self) -> ClientCtx {
        self.try_client_ctx().expect("user country in world table")
    }
}

/// Country mix of the recruited population.
///
/// Defaults approximate the paper's recruitment: a 183-user EU28 majority
/// (Spain-heavy), a sizeable South-American group (86), and small groups
/// elsewhere (Fig. 6's per-region user counts).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UserPopulationConfig {
    /// Total number of users (paper: 350).
    pub n_users: usize,
    /// `(country, weight)` recruitment mix.
    pub country_weights: Vec<(CountryCode, f64)>,
    /// Probability a (broadband) user has switched to public DNS.
    pub public_dns_share: f64,
    /// When set, each user is drawn from a private hash-derived RNG
    /// stream (`derive_stream_seed(pop_seed, user_id)`) instead of one
    /// sequential stream, making every user a pure function of
    /// `(pop_seed, user_id)` — the property that lets out-of-core
    /// drivers (re)generate any user range on demand without holding the
    /// population (DESIGN.md §5j). Changes which population a seed
    /// produces, so it is a *config* knob, not a perf knob; defaults off
    /// to keep every existing seed's world byte-identical.
    #[serde(default)]
    pub segmented: bool,
}

impl Default for UserPopulationConfig {
    fn default() -> Self {
        let w = |c: &str, w: f64| (CountryCode::parse(c).expect("static code"), w);
        UserPopulationConfig {
            n_users: 350,
            country_weights: vec![
                // EU28 (≈183 users, Spain-heavy like the paper's Fig. 8).
                w("ES", 60.0),
                w("GB", 25.0),
                w("DE", 20.0),
                w("IT", 14.0),
                w("GR", 12.0),
                w("PL", 12.0),
                w("RO", 10.0),
                w("DK", 7.0),
                w("BE", 7.0),
                w("CY", 6.0),
                w("HU", 5.0),
                w("FR", 3.0),
                w("PT", 2.0),
                // South America (≈86).
                w("BR", 40.0),
                w("AR", 20.0),
                w("CO", 14.0),
                w("CL", 8.0),
                w("PE", 4.0),
                // Rest of Europe (≈23).
                w("RS", 9.0),
                w("RU", 7.0),
                w("TR", 4.0),
                w("CH", 3.0),
                // Africa (≈22).
                w("EG", 8.0),
                w("NG", 6.0),
                w("MA", 4.0),
                w("TN", 2.0),
                w("KE", 2.0),
                // Asia (≈20).
                w("IN", 8.0),
                w("MY", 5.0),
                w("TH", 4.0),
                w("ID", 3.0),
                // North America (≈16).
                w("US", 12.0),
                w("CA", 3.0),
                w("MX", 1.0),
            ],
            public_dns_share: 0.35,
            segmented: false,
        }
    }
}

impl UserPopulationConfig {
    /// Small population for tests.
    pub fn small() -> Self {
        UserPopulationConfig {
            n_users: 40,
            ..Default::default()
        }
    }
}

/// The generated population.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UserPopulation {
    /// All users, indexed by [`UserId`].
    pub users: Vec<User>,
}

/// Samples one user's record from the given RNG (five draws: country,
/// two jitter coordinates, resolver coin, activity, interaction).
fn sample_user<R: Rng + ?Sized>(
    cfg: &UserPopulationConfig,
    total_w: f64,
    i: usize,
    rng: &mut R,
) -> User {
    let mut x = rng.gen::<f64>() * total_w;
    let mut country = cfg.country_weights[0].0;
    for (c, w) in &cfg.country_weights {
        x -= w;
        if x <= 0.0 {
            country = *c;
            break;
        }
    }
    let c = WORLD.country_or_panic(country);
    let location = c.centroid().jitter(c.radius_km * 0.8, rng);
    let resolver_kind = if rng.gen::<f64>() < cfg.public_dns_share {
        ResolverKind::PublicAnycast
    } else {
        ResolverKind::IspLocal
    };
    User {
        id: UserId(i as u32),
        country,
        location,
        resolver_kind,
        // Log-normal-ish activity spread: some users browse a lot.
        activity: 0.3 + rng.gen::<f64>().powi(2) * 3.0,
        interaction_p: 0.5 + rng.gen::<f64>() * 0.45,
    }
}

fn total_weight(cfg: &UserPopulationConfig) -> f64 {
    let total_w: f64 = cfg.country_weights.iter().map(|(_, w)| w).sum();
    assert!(total_w > 0.0, "country weights must be positive");
    total_w
}

impl UserPopulation {
    /// Samples a population from the config.
    ///
    /// With [`UserPopulationConfig::segmented`] set, one `pop_seed` is
    /// drawn from `rng` and every user comes from its own
    /// `derive_stream_seed(pop_seed, user_id)` stream — identical to
    /// [`UserPopulation::generate_range`] over the full range, which is
    /// what keeps materialized and out-of-core populations in agreement.
    pub fn generate<R: Rng + ?Sized>(cfg: &UserPopulationConfig, rng: &mut R) -> UserPopulation {
        if cfg.segmented {
            let pop_seed: u64 = rng.gen();
            return UserPopulation {
                users: Self::generate_range(cfg, pop_seed, 0..cfg.n_users as u32),
            };
        }
        let total_w = total_weight(cfg);
        let mut users = Vec::with_capacity(cfg.n_users);
        for i in 0..cfg.n_users {
            users.push(sample_user(cfg, total_w, i, rng));
        }
        UserPopulation { users }
    }

    /// One user of a segmented population, as a pure function of
    /// `(config, pop_seed, id)`.
    pub fn generate_user(cfg: &UserPopulationConfig, pop_seed: u64, id: u32) -> User {
        let total_w = total_weight(cfg);
        let mut rng = StdRng::seed_from_u64(derive_stream_seed(pop_seed, id as u64));
        sample_user(cfg, total_w, id as usize, &mut rng)
    }

    /// A contiguous user range of a segmented population. Pure in
    /// `(config, pop_seed, range)`: concatenating any partition of
    /// `0..n_users` reproduces the full population exactly.
    pub fn generate_range(
        cfg: &UserPopulationConfig,
        pop_seed: u64,
        range: std::ops::Range<u32>,
    ) -> Vec<User> {
        let total_w = total_weight(cfg);
        let mut users = Vec::with_capacity(range.len());
        for id in range {
            let mut rng = StdRng::seed_from_u64(derive_stream_seed(pop_seed, id as u64));
            users.push(sample_user(cfg, total_w, id as usize, &mut rng));
        }
        users
    }

    /// Population-wide mean activity of a segmented population, computed
    /// in one streaming pass without materializing any `User` vector
    /// (the study's visit budget normalizes by this, so out-of-core
    /// drivers need it before simulating the first segment).
    pub fn mean_activity_segmented(cfg: &UserPopulationConfig, pop_seed: u64) -> f64 {
        let total_w = total_weight(cfg);
        let mut sum = 0.0;
        for id in 0..cfg.n_users as u32 {
            let mut rng = StdRng::seed_from_u64(derive_stream_seed(pop_seed, id as u64));
            sum += sample_user(cfg, total_w, id as usize, &mut rng).activity;
        }
        sum / (cfg.n_users as f64).max(1.0)
    }

    /// Users residing in EU28 countries.
    pub fn eu28_users(&self) -> impl Iterator<Item = &User> {
        self.users
            .iter()
            .filter(|u| WORLD.country_or_panic(u.country).eu28)
    }

    /// Number of users per country.
    pub fn count_by_country(&self) -> std::collections::HashMap<CountryCode, usize> {
        let mut m = std::collections::HashMap::new();
        for u in &self.users {
            *m.entry(u.country).or_insert(0) += 1;
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use xborder_geo::cc;

    #[test]
    fn population_size_and_determinism() {
        let cfg = UserPopulationConfig::default();
        let a = UserPopulation::generate(&cfg, &mut StdRng::seed_from_u64(1));
        let b = UserPopulation::generate(&cfg, &mut StdRng::seed_from_u64(1));
        assert_eq!(a.users.len(), 350);
        for (x, y) in a.users.iter().zip(&b.users) {
            assert_eq!(x.country, y.country);
            assert_eq!(x.resolver_kind, y.resolver_kind);
        }
    }

    #[test]
    fn eu28_majority_and_spain_heavy() {
        let cfg = UserPopulationConfig::default();
        let pop = UserPopulation::generate(&cfg, &mut StdRng::seed_from_u64(2));
        let eu = pop.eu28_users().count();
        assert!((120..=260).contains(&eu), "EU28 users {eu}");
        let by_country = pop.count_by_country();
        let es = by_country.get(&cc!("ES")).copied().unwrap_or(0);
        let de = by_country.get(&cc!("DE")).copied().unwrap_or(0);
        assert!(es > de, "ES {es} vs DE {de}");
    }

    #[test]
    fn public_dns_share_respected() {
        let cfg = UserPopulationConfig {
            n_users: 2_000,
            ..Default::default()
        };
        let pop = UserPopulation::generate(&cfg, &mut StdRng::seed_from_u64(3));
        let public = pop
            .users
            .iter()
            .filter(|u| u.resolver_kind == ResolverKind::PublicAnycast)
            .count();
        let share = public as f64 / pop.users.len() as f64;
        assert!((share - 0.35).abs() < 0.05, "share {share}");
    }

    #[test]
    fn client_ctx_matches_resolver_kind() {
        let cfg = UserPopulationConfig::small();
        let pop = UserPopulation::generate(&cfg, &mut StdRng::seed_from_u64(4));
        for u in &pop.users {
            let ctx = u.client_ctx();
            assert_eq!(ctx.country, u.country);
            match u.resolver_kind {
                ResolverKind::IspLocal => assert_eq!(ctx.resolver.country, u.country),
                ResolverKind::PublicAnycast => assert_eq!(ctx.resolver.kind, ResolverKind::PublicAnycast),
            }
        }
    }

    #[test]
    fn segmented_ranges_partition_exactly() {
        let cfg = UserPopulationConfig {
            n_users: 53,
            segmented: true,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(9);
        let pop_seed: u64 = rng.gen();
        let whole = UserPopulation::generate_range(&cfg, pop_seed, 0..53);
        // generate() with the same upstream rng draws the same pop_seed.
        let full = UserPopulation::generate(&cfg, &mut StdRng::seed_from_u64(9));
        for (a, b) in whole.iter().zip(&full.users) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.country, b.country);
            assert_eq!(a.resolver_kind, b.resolver_kind);
            assert_eq!(a.activity.to_bits(), b.activity.to_bits());
            assert_eq!(a.interaction_p.to_bits(), b.interaction_p.to_bits());
        }
        // Any partition concatenates to the whole, bit-identically.
        for cuts in [vec![0u32, 1, 7, 20, 53], vec![0, 53], vec![0, 26, 53]] {
            let mut cat = Vec::new();
            for w in cuts.windows(2) {
                cat.extend(UserPopulation::generate_range(&cfg, pop_seed, w[0]..w[1]));
            }
            assert_eq!(cat.len(), whole.len());
            for (a, b) in cat.iter().zip(&whole) {
                assert_eq!(a.id, b.id);
                assert_eq!((a.location.lat.to_bits(), a.location.lon.to_bits()), (b.location.lat.to_bits(), b.location.lon.to_bits()));
            }
        }
        // Single-user purity matches too.
        let u17 = UserPopulation::generate_user(&cfg, pop_seed, 17);
        assert_eq!((u17.location.lat.to_bits(), u17.location.lon.to_bits()), (whole[17].location.lat.to_bits(), whole[17].location.lon.to_bits()));
        // The streaming mean equals the materialized mean.
        let mean: f64 = whole.iter().map(|u| u.activity).sum::<f64>() / 53.0;
        let streamed = UserPopulation::mean_activity_segmented(&cfg, pop_seed);
        assert_eq!(mean.to_bits(), streamed.to_bits());
    }

    #[test]
    fn segmented_population_is_statistically_sane() {
        let cfg = UserPopulationConfig {
            n_users: 2_000,
            segmented: true,
            ..Default::default()
        };
        let pop = UserPopulation::generate(&cfg, &mut StdRng::seed_from_u64(3));
        let public = pop
            .users
            .iter()
            .filter(|u| u.resolver_kind == ResolverKind::PublicAnycast)
            .count();
        let share = public as f64 / pop.users.len() as f64;
        assert!((share - 0.35).abs() < 0.05, "share {share}");
        let eu = pop.eu28_users().count();
        assert!(eu > 600, "EU28 users {eu}");
    }

    #[test]
    fn activity_is_positive() {
        let cfg = UserPopulationConfig::small();
        let pop = UserPopulation::generate(&cfg, &mut StdRng::seed_from_u64(5));
        for u in &pop.users {
            assert!(u.activity > 0.0);
            assert!((0.0..=1.0).contains(&u.interaction_p));
        }
    }
}
