//! The logged third-party request record.
//!
//! Mirrors the extension's ethics-constrained schema (paper Sect. 3.1):
//! first-party *domain* (never the full first-party URL), the third-party
//! request URL, the referrer relation, and the final server IP from the
//! response. User identity is a study-local index.

use crate::user::UserId;
use serde::{Deserialize, Serialize};
use std::net::IpAddr;
use xborder_netsim::time::SimTime;
use xborder_webgraph::{DomainId, PublisherId, Url};

/// Index of a request within an [`crate::ExtensionDataset`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RequestId(pub u32);

/// What the `Referer` header pointed at.
///
/// Stored as a relation rather than a copied URL string: the classifier
/// resolves [`Referrer::Request`] back to the parent's URL through the
/// dataset, which keeps 7M-record datasets compact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Referrer {
    /// No referrer was sent.
    None,
    /// The first-party page URL (embeds executing in first-party context).
    FirstParty,
    /// The URL of an earlier logged request (RTB cascade step).
    Request(RequestId),
}

/// One logged third-party request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoggedRequest {
    /// Who made it.
    pub user: UserId,
    /// When.
    pub time: SimTime,
    /// The site being visited (first party), interned in the world's
    /// `DomainTable` (DESIGN.md §5f) — resolve through
    /// `ExtensionDataset::domains` / `WebGraph::domains` for the string.
    pub first_party: DomainId,
    /// Generator-internal publisher id (stable join key for analyses; the
    /// real extension only had the domain, which maps 1:1 to this).
    pub publisher: PublisherId,
    /// The requested third-party URL, as a string (what the log stores).
    pub url: Box<str>,
    /// The request host, pre-extracted and interned for cheap grouping
    /// (4-byte `Copy` id instead of a cloned string per request).
    pub host: DomainId,
    /// Referrer relation.
    pub referrer: Referrer,
    /// Final server IP observed in the response.
    pub ip: IpAddr,
}

impl LoggedRequest {
    /// Parses the stored URL string back into a structured [`Url`].
    pub fn parse_url(&self) -> Option<Url> {
        Url::parse(&self.url)
    }

    /// True if the URL carries query arguments (cheap string check; agrees
    /// with [`Url::has_args`] for simulator-produced URLs).
    pub fn has_args(&self) -> bool {
        self.url.contains('?')
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LoggedRequest {
        LoggedRequest {
            user: UserId(3),
            time: SimTime(1000),
            first_party: DomainId(0),
            publisher: PublisherId(9),
            url: "https://sync.t.com/usermatch?rtb_id=abc".into(),
            host: DomainId(1),
            referrer: Referrer::FirstParty,
            ip: "1.2.3.4".parse().unwrap(),
        }
    }

    #[test]
    fn url_roundtrip() {
        let r = sample();
        let url = r.parse_url().unwrap();
        assert_eq!(url.host, xborder_webgraph::Domain::new("sync.t.com"));
        assert!(url.has_args());
        assert!(url.has_tracking_keyword());
        assert!(r.has_args());
    }

    #[test]
    fn args_check_without_query() {
        let mut r = sample();
        r.url = "https://cdn.x.com/js/widget.js".into();
        assert!(!r.has_args());
    }
}
