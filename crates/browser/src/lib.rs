//! Browser-extension measurement simulator.
//!
//! The paper's primary dataset comes from a Chrome extension on 350 real
//! CrowdFlower users: every outgoing third-party request is logged with the
//! first-party domain, the third-party URL, and the final server IP from
//! the response (Sect. 3.1). This crate simulates that instrument:
//!
//! * [`user`] — the recruited population (country mix, resolver choice,
//!   activity levels); ad-block users are excluded, as in the paper.
//! * [`render`] — the page-render model: embeds fire stochastically,
//!   user interaction reveals lazy ad slots (the reason real users see more
//!   than crawlers), and every rendered ad network runs its RTB cascade
//!   with realistic referrer chains.
//! * [`request`] — the compact logged-request record (the extension's
//!   schema: domains, URL string, IP — never full browsing history).
//! * [`extension`] — the study driver producing an [`ExtensionDataset`]
//!   over the simulated study window, plus Table-1-style statistics.
//! * [`colog`] — the log's columnar (SoA) twin: per-segment
//!   [`SegmentBlock`]s that spill to disk behind a bounded resident
//!   window for out-of-core million-user worlds (DESIGN.md §5j).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod colog;
pub mod extension;
pub mod render;
pub mod request;
pub mod user;

pub use colog::{SegmentBlock, LABEL_ABP, LABEL_CLEAN, LABEL_SEMI};
pub use extension::{
    run_study, run_study_degraded, run_study_sharded, DatasetStats, ExtensionDataset, StudyChunk,
    StudyConfig, StudyCtx, StudyStream, Visit, VisitSampler,
};
pub use render::{RenderConfig, RenderEngine};
pub use request::{LoggedRequest, Referrer, RequestId};
pub use user::{User, UserId, UserPopulation, UserPopulationConfig};
