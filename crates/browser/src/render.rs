//! The page-render model: embeds fire, cascades run, requests get logged.

use crate::request::{LoggedRequest, Referrer, RequestId};
use crate::user::{User, UserId};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use xborder_dns::{DnsCache, DnsSim, IndexedZoneView};
use xborder_faults::{DegradationReport, FaultInjector};
use xborder_netsim::time::SimTime;
use xborder_webgraph::{
    url, Domain, DomainId, EmbedMode, Publisher, ServiceId, ServiceKind, WebGraph,
};

/// How a render resolves hosts: either directly against the mutable
/// authoritative simulator (legacy path: resolution draws from the visit
/// RNG and captures pDNS immediately), or through a per-user stub cache
/// over a shared dense [`IndexedZoneView`] (study path: resolution draws
/// from a hash-derived per-lookup stream and buffers observations, so
/// user shards can render concurrently — with zero per-request clones,
/// DESIGN.md §5f).
enum HostResolver<'d, 'c> {
    Direct(&'d mut DnsSim),
    Cached {
        view: &'d IndexedZoneView<'d>,
        cache: &'c mut DnsCache,
    },
}

impl HostResolver<'_, '_> {
    #[allow(clippy::too_many_arguments)]
    fn resolve<R: Rng + ?Sized>(
        &mut self,
        host_id: DomainId,
        host: &Domain,
        ctx: &xborder_dns::ClientCtx,
        t: SimTime,
        rng: &mut R,
        inj: &FaultInjector,
        report: &mut DegradationReport,
    ) -> Option<(xborder_dns::ZoneServer, SimTime)> {
        match self {
            HostResolver::Direct(dns) => dns.resolve_degraded(host, ctx, t, rng, inj, report).ok(),
            HostResolver::Cached { view, cache } => {
                cache.resolve_shared_id(view, host_id, ctx, t, inj, report).ok()
            }
        }
    }
}

/// Tunables of the render model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RenderConfig {
    /// Mean number of *additional* requests a fired embed issues beyond its
    /// first (script fetch + beacons + refreshes).
    pub extra_requests_mean: f64,
    /// Share of requests expected over HTTPS (paper: 83.14 %).
    pub https_share: f64,
}

impl Default for RenderConfig {
    fn default() -> Self {
        RenderConfig {
            extra_requests_mean: 1.6,
            https_share: 0.8314,
        }
    }
}

/// Renders visits against a web graph, resolving hosts through DNS and
/// appending [`LoggedRequest`]s to the dataset under construction.
#[derive(Debug)]
pub struct RenderEngine<'a> {
    graph: &'a WebGraph,
    cfg: RenderConfig,
    /// Reused URL scratch buffer: the hot path renders each URL here and
    /// pays exactly one allocation per logged request (the `Box<str>`).
    /// `RefCell` keeps `issue_request` callable through `&self`; engines
    /// are per-shard (never shared across threads), so the non-`Sync`
    /// cell is fine.
    scratch: RefCell<String>,
    /// One-slot memo of the current user's [`ClientCtx`]: resolving the
    /// public-anycast egress PoP is a 14-country haversine scan, and the
    /// context is a pure function of the user — computing it per request
    /// dominated the study hot path. `None` in the slot records a failed
    /// lookup (corrupted user record), matching the per-request error
    /// behavior of `try_client_ctx` (the request is suppressed; RNG draws
    /// before the DNS stage still happen, so streams are unchanged).
    ctx_memo: RefCell<Option<(UserId, Option<xborder_dns::ClientCtx>)>>,
    /// Reused RTB-cascade scratch (`fired` step table), cleared per
    /// cascade instead of allocated per ad-network embed.
    cascade_scratch: RefCell<Vec<Option<RequestId>>>,
}

impl<'a> RenderEngine<'a> {
    /// Creates an engine over a web graph.
    pub fn new(graph: &'a WebGraph, cfg: RenderConfig) -> Self {
        RenderEngine {
            graph,
            cfg,
            scratch: RefCell::new(String::with_capacity(128)),
            ctx_memo: RefCell::new(None),
            cascade_scratch: RefCell::new(Vec::new()),
        }
    }

    /// The memoized client context for `user` (see `ctx_memo`). Shards
    /// walk users sequentially, so one slot keyed by [`UserId`] already
    /// hits on every request after a user's first.
    fn client_ctx_memo(&self, user: &User) -> Option<xborder_dns::ClientCtx> {
        let mut memo = self.ctx_memo.borrow_mut();
        match *memo {
            Some((id, ctx)) if id == user.id => ctx,
            _ => {
                let ctx = user.try_client_ctx().ok();
                *memo = Some((user.id, ctx));
                ctx
            }
        }
    }

    /// The underlying web graph.
    pub fn graph(&self) -> &WebGraph {
        self.graph
    }

    /// Issues one request to `service` and logs it. Returns the new
    /// request's id, or `None` if DNS could not resolve the chosen host
    /// (unwired worlds in tests, or a resolver that timed out past its
    /// retry budget under fault injection).
    ///
    /// `style_override` lets the caller force the URL shape: the first
    /// request of an embed is the tag/script fetch (plain), follow-ups are
    /// beacons in the service's own style.
    #[allow(clippy::too_many_arguments)]
    fn issue_request<R: Rng + ?Sized>(
        &self,
        out: &mut Vec<LoggedRequest>,
        user: &User,
        publisher: &Publisher,
        service: ServiceId,
        referrer: Referrer,
        style_override: Option<xborder_webgraph::url::UrlStyle>,
        t: SimTime,
        dns: &mut HostResolver<'_, '_>,
        rng: &mut R,
        inj: &FaultInjector,
        report: &mut DegradationReport,
    ) -> Option<RequestId> {
        let svc = self.graph.service(service);
        // Same RNG draw as the pre-interning host pick over `svc.hosts`;
        // the id table is parallel to it (validated by the graph).
        let host_idx = rng.gen_range(0..svc.hosts.len());
        let host_id = self.graph.service_host_id(service, host_idx);
        let host = self.graph.domains().domain(host_id);
        let ctx = self.client_ctx_memo(user)?;
        let (answer, t_eff) = dns.resolve(host_id, host, &ctx, t, rng, inj, report)?;
        // Stable per-(user, service) identity: the tracker's cookie id.
        let identity = (user.id.0 as u64) << 32 | service.0 as u64;
        let style = style_override.unwrap_or(svc.url_style);
        let enc = url::EncodedUrl::synth(rng, style, self.cfg.https_share, identity);
        // Deferred materialization: render into the reused scratch buffer
        // (byte-identical to the eager `Url` Display) and pay a single
        // allocation for the log's own `Box<str>`.
        let url = {
            let mut buf = self.scratch.borrow_mut();
            buf.clear();
            enc.write_into(host.as_str(), &mut buf);
            Box::<str>::from(buf.as_str())
        };
        let id = RequestId(out.len() as u32);
        out.push(LoggedRequest {
            user: user.id,
            time: t_eff,
            first_party: self.graph.publisher_domain_id(publisher.id),
            publisher: publisher.id,
            url,
            host: host_id,
            referrer,
            ip: answer.ip,
        });
        Some(id)
    }

    /// Additional requests a fired embed issues beyond its first.
    fn extra_requests<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let mean = self.cfg.extra_requests_mean;
        if mean <= 0.0 {
            return 0;
        }
        let p = 1.0 / (mean + 1.0);
        let cap = (mean * 6.0).ceil() as usize;
        let mut n = 0usize;
        while n < cap && rng.gen::<f64>() > p {
            n += 1;
        }
        n
    }

    /// Renders one visit of `user` to `publisher` at time `t`, appending
    /// all generated requests to `out`. Returns how many were appended.
    pub fn render_visit<R: Rng + ?Sized>(
        &self,
        user: &User,
        publisher: &Publisher,
        t: SimTime,
        dns: &mut DnsSim,
        out: &mut Vec<LoggedRequest>,
        rng: &mut R,
    ) -> usize {
        let inj = FaultInjector::inactive();
        let mut report = DegradationReport::default();
        self.render_visit_degraded(user, publisher, t, dns, out, rng, &inj, &mut report)
    }

    /// [`RenderEngine::render_visit`] with fault injection: resolver
    /// timeouts (with sim-clock backoff and bounded retry) can suppress or
    /// delay individual requests. With an inactive injector this is
    /// exactly the fault-free render path.
    #[allow(clippy::too_many_arguments)]
    pub fn render_visit_degraded<R: Rng + ?Sized>(
        &self,
        user: &User,
        publisher: &Publisher,
        t: SimTime,
        dns: &mut DnsSim,
        out: &mut Vec<LoggedRequest>,
        rng: &mut R,
        inj: &FaultInjector,
        report: &mut DegradationReport,
    ) -> usize {
        let mut resolver = HostResolver::Direct(dns);
        self.render_visit_with(user, publisher, t, &mut resolver, out, rng, inj, report)
    }

    /// The study's render path: resolves through the user's own stub
    /// cache against a shared dense id-indexed zone view. DNS never draws
    /// from the visit RNG here (cache misses use hash-derived per-lookup
    /// streams), which is what makes per-user renders independent and
    /// the study shardable (DESIGN.md §5d); host lookups and cache slots
    /// are all `DomainId`-indexed, so no strings are hashed or cloned
    /// (DESIGN.md §5f).
    #[allow(clippy::too_many_arguments)]
    pub fn render_visit_cached<R: Rng + ?Sized>(
        &self,
        user: &User,
        publisher: &Publisher,
        t: SimTime,
        view: &IndexedZoneView<'_>,
        cache: &mut DnsCache,
        out: &mut Vec<LoggedRequest>,
        rng: &mut R,
        inj: &FaultInjector,
        report: &mut DegradationReport,
    ) -> usize {
        let mut resolver = HostResolver::Cached { view, cache };
        self.render_visit_with(user, publisher, t, &mut resolver, out, rng, inj, report)
    }

    #[allow(clippy::too_many_arguments)]
    fn render_visit_with<R: Rng + ?Sized>(
        &self,
        user: &User,
        publisher: &Publisher,
        t: SimTime,
        dns: &mut HostResolver<'_, '_>,
        out: &mut Vec<LoggedRequest>,
        rng: &mut R,
        inj: &FaultInjector,
        report: &mut DegradationReport,
    ) -> usize {
        let before = out.len();
        for embed in &publisher.embeds {
            // Does the embed fire on this page view?
            let gate = match embed.mode {
                EmbedMode::OnInteraction => embed.probability * user.interaction_p,
                _ => embed.probability,
            };
            if rng.gen::<f64>() >= gate {
                continue;
            }
            // First request of the embed always has the first-party page as
            // its referrer (the snippet/iframe src is on the page).
            let Some(first_id) = self.issue_request(
                out,
                user,
                publisher,
                embed.service,
                Referrer::FirstParty,
                Some(xborder_webgraph::url::UrlStyle::Plain),
                t,
                dns,
                rng,
                inj,
                report,
            ) else {
                continue;
            };
            // Follow-up requests: first-party-context embeds keep the page
            // as referrer; third-party-context (iframe) requests refer to
            // the iframe's own first request.
            let followup_ref = match embed.mode {
                EmbedMode::FirstPartyContext | EmbedMode::OnInteraction => Referrer::FirstParty,
                EmbedMode::ThirdPartyContext => Referrer::Request(first_id),
            };
            for _ in 0..self.extra_requests(rng) {
                self.issue_request(
                    out, user, publisher, embed.service, followup_ref, None, t, dns, rng, inj,
                    report,
                );
            }
            // RTB cascade: only ad networks fan out further.
            let svc = self.graph.service(embed.service);
            if svc.kind == ServiceKind::AdNetwork {
                if let Some(template) = self.graph.cascades.get(&embed.service) {
                    // Track which steps fired and the request id of each, so
                    // children can refer to their parent's URL (reused
                    // scratch — cascades never nest).
                    let mut fired = self.cascade_scratch.borrow_mut();
                    fired.clear();
                    fired.resize(template.steps.len(), None);
                    for (i, step) in template.steps.iter().enumerate() {
                        let parent_req = match step.parent {
                            Some(p) => {
                                let Some(id) = fired[p as usize] else {
                                    continue; // parent never fired
                                };
                                Referrer::Request(id)
                            }
                            None => Referrer::Request(first_id),
                        };
                        if rng.gen::<f64>() >= step.probability {
                            continue;
                        }
                        fired[i] = self.issue_request(
                            out, user, publisher, step.service, parent_req, None, t, dns, rng,
                            inj, report,
                        );
                    }
                }
            }
        }
        out.len() - before
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::user::{UserPopulation, UserPopulationConfig};
    use rand::{rngs::StdRng, SeedableRng};
    use xborder_dns::{MappingPolicy, ZoneEntry, ZoneServer};
    use xborder_geo::{CountryCode, WORLD};
    use xborder_netsim::ServerId;
    use xborder_webgraph::{generate, WebGraphConfig};

    /// Wires every host in the graph to a single-server zone in a fixed
    /// country (enough for render-path tests).
    fn wire_all(graph: &WebGraph, dns: &mut DnsSim) {
        let de = WORLD.country_or_panic(CountryCode::parse("DE").unwrap());
        let mut next = 0u32;
        for s in &graph.services {
            for h in &s.hosts {
                next += 1;
                let ip = std::net::Ipv4Addr::from(0x0100_0000u32 + next);
                dns.add_zone(ZoneEntry {
                    host: h.clone(),
                    servers: vec![ZoneServer {
                        server: ServerId(next),
                        ip: std::net::IpAddr::V4(ip),
                        country: de.code,
                        location: de.centroid(),
                        valid: None,
                    }],
                    policy: MappingPolicy::Pinned,
                    ttl_secs: 300,
                })
                .unwrap();
            }
        }
    }

    fn setup() -> (WebGraph, DnsSim, UserPopulation) {
        let mut rng = StdRng::seed_from_u64(1);
        let graph = generate(&WebGraphConfig::small(), &mut rng);
        let mut dns = DnsSim::new();
        wire_all(&graph, &mut dns);
        let pop = UserPopulation::generate(&UserPopulationConfig::small(), &mut rng);
        (graph, dns, pop)
    }

    #[test]
    fn render_produces_requests() {
        let (graph, mut dns, pop) = setup();
        let engine = RenderEngine::new(&graph, RenderConfig::default());
        let mut rng = StdRng::seed_from_u64(2);
        let mut out = Vec::new();
        let mut total = 0usize;
        for p in graph.publishers.iter().take(30) {
            total += engine.render_visit(&pop.users[0], p, SimTime(100), &mut dns, &mut out, &mut rng);
        }
        assert_eq!(total, out.len());
        assert!(total > 100, "only {total} requests from 30 visits");
    }

    #[test]
    fn cascade_requests_have_request_referrers() {
        let (graph, mut dns, pop) = setup();
        let engine = RenderEngine::new(&graph, RenderConfig::default());
        let mut rng = StdRng::seed_from_u64(3);
        let mut out = Vec::new();
        for p in &graph.publishers {
            engine.render_visit(&pop.users[1], p, SimTime(100), &mut dns, &mut out, &mut rng);
        }
        let cascade_reqs = out
            .iter()
            .filter(|r| matches!(r.referrer, Referrer::Request(_)))
            .count();
        assert!(cascade_reqs > 20, "only {cascade_reqs} cascade requests");
        // Referrer indices always point backwards.
        for (i, r) in out.iter().enumerate() {
            if let Referrer::Request(RequestId(p)) = r.referrer {
                assert!((p as usize) < i, "forward referrer at {i}");
            }
        }
    }

    #[test]
    fn interaction_gates_lazy_embeds() {
        let (graph, mut dns, pop) = setup();
        let engine = RenderEngine::new(&graph, RenderConfig::default());

        let mut eager = pop.users[0].clone();
        eager.interaction_p = 1.0;
        let mut passive = pop.users[0].clone();
        passive.interaction_p = 0.0;

        let mut count_for = |user: &User, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut out = Vec::new();
            for p in &graph.publishers {
                engine.render_visit(user, p, SimTime(100), &mut dns, &mut out, &mut rng);
            }
            out.len()
        };
        // Average over a few seeds to avoid flakiness.
        let eager_total: usize = (0..3).map(|s| count_for(&eager, 100 + s)).sum();
        let passive_total: usize = (0..3).map(|s| count_for(&passive, 200 + s)).sum();
        assert!(
            eager_total > passive_total,
            "eager {eager_total} <= passive {passive_total}"
        );
    }

    #[test]
    fn requests_resolve_to_wired_ips() {
        let (graph, mut dns, pop) = setup();
        let engine = RenderEngine::new(&graph, RenderConfig::default());
        let mut rng = StdRng::seed_from_u64(4);
        let mut out = Vec::new();
        for p in graph.publishers.iter().take(10) {
            engine.render_visit(&pop.users[2], p, SimTime(100), &mut dns, &mut out, &mut rng);
        }
        for r in &out {
            assert!(xborder_netsim::ip::is_simulator_address(r.ip));
            // Host must belong to a known service.
            assert!(
                graph.service_by_host_id(r.host).is_some(),
                "orphan host {}",
                graph.domains().domain(r.host)
            );
        }
    }

    #[test]
    fn unwired_dns_yields_no_requests() {
        let mut rng = StdRng::seed_from_u64(5);
        let graph = generate(&WebGraphConfig::small(), &mut rng);
        let mut dns = DnsSim::new(); // nothing wired
        let pop = UserPopulation::generate(&UserPopulationConfig::small(), &mut rng);
        let engine = RenderEngine::new(&graph, RenderConfig::default());
        let mut out = Vec::new();
        let n = engine.render_visit(&pop.users[0], &graph.publishers[0], SimTime(0), &mut dns, &mut out, &mut rng);
        assert_eq!(n, 0);
        assert!(out.is_empty());
    }
}
