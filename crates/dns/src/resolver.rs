//! Recursive resolvers: the vantage point geo-DNS actually sees.
//!
//! Authoritative geo-DNS maps by *resolver* address, not end-user address.
//! An ISP resolver sits in the user's country, so mobile users (who almost
//! always use it) get mapped to in-country PoPs when available. Broadband
//! users increasingly point at third-party public DNS (Google DNS, Quad9,
//! Level3 — paper Sect. 7.3 citing Otto et al.), whose egress PoP may be in
//! a neighbouring hub country; the authoritative answer then optimizes for
//! the wrong place, lowering national confinement. That asymmetry is the
//! mechanism behind Table 8's mobile > broadband confinement.

use serde::{Deserialize, Serialize};
use xborder_faults::{DegradedResult, FaultError};
use xborder_geo::{CountryCode, LatLon, WORLD};

/// Countries where the modelled public-DNS services operate egress PoPs.
/// Hub-heavy on purpose: public anycast lives in datacenter countries.
pub const PUBLIC_DNS_POP_COUNTRIES: &[&str] =
    &["US", "GB", "IE", "NL", "DE", "FR", "PL", "ES", "IT", "SE", "SG", "JP", "AU", "BR"];

/// Which resolver a client uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResolverKind {
    /// The access ISP's own resolver, in the subscriber's country.
    IspLocal,
    /// A third-party anycast public resolver; queries egress from the
    /// nearest public-DNS PoP, which may be abroad.
    PublicAnycast,
}

/// A concrete resolver vantage point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Resolver {
    /// Flavor.
    pub kind: ResolverKind,
    /// Country the resolver egress sits in.
    pub country: CountryCode,
    /// Location the authoritative side optimizes for.
    pub location: LatLon,
}

impl Resolver {
    /// The ISP resolver for a subscriber in `country`, placed at the
    /// country centroid (close enough for country-level mapping).
    ///
    /// Fallible: a country missing from the world table surfaces as
    /// [`FaultError::UnknownCountry`] instead of a panic, so a corrupted
    /// user record degrades one client instead of the whole study.
    pub fn try_isp_local(country: CountryCode) -> DegradedResult<Resolver> {
        let c = WORLD
            .country(country)
            .map_err(|_| FaultError::UnknownCountry(country.to_string()))?;
        Ok(Resolver {
            kind: ResolverKind::IspLocal,
            country,
            location: c.centroid(),
        })
    }

    /// Infallible convenience wrapper over [`Resolver::try_isp_local`] for
    /// setup code with known-good countries.
    pub fn isp_local(country: CountryCode) -> Resolver {
        Resolver::try_isp_local(country).expect("country in world table")
    }

    /// The public-DNS egress PoP a user at `user_loc` is anycast-routed to:
    /// the nearest of [`PUBLIC_DNS_POP_COUNTRIES`].
    pub fn try_public_anycast(user_loc: LatLon) -> DegradedResult<Resolver> {
        let mut best: Option<(CountryCode, LatLon, f64)> = None;
        for code in PUBLIC_DNS_POP_COUNTRIES {
            let parsed = CountryCode::parse(code)
                .map_err(|_| FaultError::UnknownCountry((*code).to_string()))?;
            let c = WORLD
                .country(parsed)
                .map_err(|_| FaultError::UnknownCountry(parsed.to_string()))?;
            let d = user_loc.distance_km(&c.centroid());
            if best.is_none_or(|(_, _, bd)| d < bd) {
                best = Some((c.code, c.centroid(), d));
            }
        }
        let (country, location, _) = best.ok_or_else(|| {
            FaultError::UnknownCountry("no public-DNS PoP countries".to_string())
        })?;
        Ok(Resolver {
            kind: ResolverKind::PublicAnycast,
            country,
            location,
        })
    }

    /// Infallible convenience wrapper over [`Resolver::try_public_anycast`].
    pub fn public_anycast(user_loc: LatLon) -> Resolver {
        Resolver::try_public_anycast(user_loc).expect("static PoP list resolvable")
    }
}

/// Everything the DNS simulator needs to know about the querying client.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClientCtx {
    /// The user's country.
    pub country: CountryCode,
    /// The user's physical location.
    pub location: LatLon,
    /// The resolver their queries go through.
    pub resolver: Resolver,
}

impl ClientCtx {
    /// Client using their ISP's resolver.
    pub fn with_isp_resolver(country: CountryCode, location: LatLon) -> ClientCtx {
        ClientCtx {
            country,
            location,
            resolver: Resolver::isp_local(country),
        }
    }

    /// Fallible variant of [`ClientCtx::with_isp_resolver`].
    pub fn try_with_isp_resolver(country: CountryCode, location: LatLon) -> DegradedResult<ClientCtx> {
        Ok(ClientCtx {
            country,
            location,
            resolver: Resolver::try_isp_local(country)?,
        })
    }

    /// Client using anycast public DNS.
    pub fn with_public_resolver(country: CountryCode, location: LatLon) -> ClientCtx {
        ClientCtx {
            country,
            location,
            resolver: Resolver::public_anycast(location),
        }
    }

    /// Fallible variant of [`ClientCtx::with_public_resolver`].
    pub fn try_with_public_resolver(
        country: CountryCode,
        location: LatLon,
    ) -> DegradedResult<ClientCtx> {
        Ok(ClientCtx {
            country,
            location,
            resolver: Resolver::try_public_anycast(location)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xborder_geo::cc;

    #[test]
    fn isp_resolver_is_in_country() {
        let r = Resolver::isp_local(cc!("HU"));
        assert_eq!(r.country, cc!("HU"));
        assert_eq!(r.kind, ResolverKind::IspLocal);
    }

    #[test]
    fn public_resolver_for_user_with_local_pop() {
        // German user: Germany hosts public DNS PoPs, so egress is DE.
        let de = WORLD.country_or_panic(cc!("DE"));
        let r = Resolver::public_anycast(de.centroid());
        assert_eq!(r.country, cc!("DE"));
        assert_eq!(r.kind, ResolverKind::PublicAnycast);
    }

    #[test]
    fn public_resolver_for_user_without_local_pop_egresses_abroad() {
        // Hungarian user: no HU PoP in the list -> egress in a neighbour
        // hub, definitely not Hungary.
        let hu = WORLD.country_or_panic(cc!("HU"));
        let r = Resolver::public_anycast(hu.centroid());
        assert_ne!(r.country, cc!("HU"));
        // Should be somewhere in Europe, not the US.
        let c = WORLD.country_or_panic(r.country);
        assert_eq!(c.continent, xborder_geo::Continent::Europe);
    }

    #[test]
    fn client_ctx_constructors() {
        let hu = WORLD.country_or_panic(cc!("HU"));
        let isp = ClientCtx::with_isp_resolver(cc!("HU"), hu.centroid());
        assert_eq!(isp.resolver.country, cc!("HU"));
        let public = ClientCtx::with_public_resolver(cc!("HU"), hu.centroid());
        assert_ne!(public.resolver.country, cc!("HU"));
    }

    #[test]
    fn all_public_pop_countries_exist() {
        for code in PUBLIC_DNS_POP_COUNTRIES {
            let c = CountryCode::parse(code).unwrap();
            assert!(WORLD.contains(c), "{code} missing from world");
        }
    }
}
