//! DNS simulator for the `xborder` reproduction.
//!
//! Two paper mechanisms live here:
//!
//! 1. **Mapping users onto tracker servers.** Tracking operators with
//!    multiple PoPs use geo-DNS: the authoritative server answers with the
//!    PoP nearest *the resolver* that asked. Mobile subscribers use their
//!    ISP's resolver (in-country → mapped to nearby PoPs), while broadband
//!    users increasingly use third-party public DNS whose egress PoP may sit
//!    in another country — the paper's explanation for mobile ISPs showing
//!    higher national confinement (Sect. 7.3). [`resolver`] and the
//!    [`zone::MappingPolicy`] reproduce that machinery.
//!
//! 2. **Passive DNS replication** (Sect. 3.3). Production resolutions are
//!    recorded into a [`pdns::PassiveDnsDb`] with first/last-seen windows.
//!    Forward queries complete a tracker's IP set (the paper's +2.78 %);
//!    reverse queries tell whether an IP serves one domain (dedicated
//!    tracking) or many (ad exchange), Fig. 4/5.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod pdns;
pub mod resolver;
pub mod sim;
pub mod zone;

pub use cache::DnsCache;
pub use pdns::{PassiveDnsDb, PdnsRecord};
pub use resolver::{ClientCtx, Resolver, ResolverKind};
pub use sim::{DnsSim, IndexedZoneView, PdnsIdObservation, PdnsObservation, ZoneView};
pub use zone::{MappingPolicy, ZoneEntry, ZoneServer};

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DnsError {
    /// The queried name has no zone.
    NxDomain(xborder_webgraph::Domain),
    /// A zone was registered with no servers.
    EmptyZone(xborder_webgraph::Domain),
}

impl std::fmt::Display for DnsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DnsError::NxDomain(d) => write!(f, "NXDOMAIN: {d}"),
            DnsError::EmptyZone(d) => write!(f, "zone {d} has no servers"),
        }
    }
}

impl std::error::Error for DnsError {}
