//! Authoritative zones and mapping policies.

use serde::{Deserialize, Serialize};
use std::net::IpAddr;
use xborder_geo::{CountryCode, LatLon};
use xborder_netsim::time::{SimTime, TimeWindow};
use xborder_netsim::ServerId;
use xborder_webgraph::Domain;

/// One candidate server in a zone's answer set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ZoneServer {
    /// The server's registry id.
    pub server: ServerId,
    /// Its address (what goes in the A/AAAA answer).
    pub ip: IpAddr,
    /// Physical country of the server (ground truth; the authoritative
    /// operator knows where its own PoPs are).
    pub country: CountryCode,
    /// Physical location (used for nearest-PoP mapping).
    pub location: LatLon,
    /// When this server answers for the zone. Operators rotate addresses
    /// over a 4.5-month study — the paper's reason for attaching pDNS
    /// validity windows to every (domain, IP) pair (Sect. 3.3). `None`
    /// means the whole study.
    pub valid: Option<TimeWindow>,
}

impl ZoneServer {
    /// True if the server answers at time `t`.
    pub fn is_valid_at(&self, t: SimTime) -> bool {
        self.valid.map(|w| w.contains(t)).unwrap_or(true)
    }
}

/// How the authoritative side picks an answer among its servers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MappingPolicy {
    /// Geo-DNS: answer with the server nearest to the *resolver* that
    /// asked. With probability `epsilon` the answer is instead a uniformly
    /// random server — capacity balancing and stale mappings make real
    /// geo-DNS much coarser than pure nearest-PoP, and that dispersion is
    /// precisely the slack the paper's DNS-redirection what-if recovers
    /// (Table 5).
    NearestToResolver {
        /// Probability of answering with a random PoP (load balancing).
        epsilon: f64,
    },
    /// Uniform rotation over all servers (small operators without geo-DNS).
    RoundRobin,
    /// Always the same single answer (typical single-server deployment).
    Pinned,
}

/// The authoritative state for one FQDN.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ZoneEntry {
    /// The name this entry answers for.
    pub host: Domain,
    /// Candidate servers.
    pub servers: Vec<ZoneServer>,
    /// Selection policy.
    pub policy: MappingPolicy,
    /// Answer TTL in seconds. Short TTLs (Google-like 300 s) make DNS
    /// redirection a fast lever, long ones (Facebook-like 7,200 s) a slow
    /// one — the paper cites both (Sect. 5.1).
    pub ttl_secs: u32,
}

/// Capacity acceptance probability of a PoP in `country`. Quadratic:
/// mapping efficiency falls off steeply below the hubs. Reverse-engineered
/// from the paper's Table 6 (TLD-redirection potential vs default
/// confinement per country: DE ~86 % efficient, GB ~71 %, ES ~38 %).
fn p_accept(country: CountryCode) -> f64 {
    let it = xborder_geo::WORLD
        .country(country)
        .map(|c| c.it_index)
        .unwrap_or(0.5);
    0.08 + 0.85 * it * it
}

impl ZoneEntry {
    /// Stack capacity of the allocation-free [`ZoneEntry::select`] path:
    /// comfortably above any PoP count the world generators emit (the
    /// largest small-world zone carries ~92 servers). Bigger zones take a
    /// (heap-allocating) fallback with identical draws.
    const STACK_POPS: usize = 128;

    /// Picks an answer per policy. `resolver_loc` is where the query came
    /// from (the resolver, not the end user — geo-DNS cannot see past it);
    /// `t` scopes the candidate set to servers valid at query time.
    ///
    /// This sits on the study's DNS-miss hot path (DESIGN.md §5f), so the
    /// common case is allocation-free: candidate indices and distances
    /// live in stack arrays, and the distance-ordered capacity walk is a
    /// selection scan whose tie-breaking (first candidate wins on equal
    /// distance) matches the stable sort of the large-zone fallback.
    pub fn select<R: rand::Rng + ?Sized>(
        &self,
        resolver_loc: LatLon,
        t: SimTime,
        rng: &mut R,
    ) -> Option<ZoneServer> {
        if self.servers.len() > Self::STACK_POPS {
            return self.select_large(resolver_loc, t, rng);
        }
        let mut cand = [0u32; Self::STACK_POPS];
        let mut n = 0usize;
        for (i, s) in self.servers.iter().enumerate() {
            if s.is_valid_at(t) {
                cand[n] = i as u32;
                n += 1;
            }
        }
        if n == 0 {
            return None;
        }
        match self.policy {
            MappingPolicy::Pinned => Some(self.servers[cand[0] as usize]),
            MappingPolicy::RoundRobin => {
                Some(self.servers[cand[rng.gen_range(0..n)] as usize])
            }
            MappingPolicy::NearestToResolver { epsilon } => {
                if n == 1 {
                    return Some(self.servers[cand[0] as usize]);
                }
                if rng.gen::<f64>() < epsilon {
                    // Load-balanced / stale answer: any PoP.
                    return Some(self.servers[cand[rng.gen_range(0..n)] as usize]);
                }
                // Capacity-aware nearest mapping: walk PoPs by distance and
                // accept each with a probability tied to its country's
                // IT-infrastructure density. Small-country PoPs overflow to
                // the next site (typically a hub) — which is exactly the
                // correlation between datacenter density and national
                // confinement the paper reports (Sect. 5).
                let mut dist = [0.0f64; Self::STACK_POPS];
                for (k, d) in dist.iter_mut().enumerate().take(n) {
                    *d = resolver_loc.distance_km(&self.servers[cand[k] as usize].location);
                }
                let mut taken = [false; Self::STACK_POPS];
                let mut nearest = 0usize;
                for round in 0..n {
                    let mut best = usize::MAX;
                    for k in 0..n {
                        if !taken[k] && (best == usize::MAX || dist[k] < dist[best]) {
                            best = k;
                        }
                    }
                    taken[best] = true;
                    if round == 0 {
                        nearest = best;
                    }
                    let s = &self.servers[cand[best] as usize];
                    if rng.gen::<f64>() < p_accept(s.country) {
                        return Some(*s);
                    }
                }
                Some(self.servers[cand[nearest] as usize])
            }
        }
    }

    /// Heap fallback of [`ZoneEntry::select`] for zones with more servers
    /// than the stack path holds. Same candidate order, same RNG draws.
    fn select_large<R: rand::Rng + ?Sized>(
        &self,
        resolver_loc: LatLon,
        t: SimTime,
        rng: &mut R,
    ) -> Option<ZoneServer> {
        let candidates: Vec<&ZoneServer> =
            self.servers.iter().filter(|s| s.is_valid_at(t)).collect();
        if candidates.is_empty() {
            return None;
        }
        match self.policy {
            MappingPolicy::Pinned => Some(*candidates[0]),
            MappingPolicy::RoundRobin => {
                Some(*candidates[rng.gen_range(0..candidates.len())])
            }
            MappingPolicy::NearestToResolver { epsilon } => {
                if candidates.len() == 1 {
                    return Some(*candidates[0]);
                }
                if rng.gen::<f64>() < epsilon {
                    return Some(*candidates[rng.gen_range(0..candidates.len())]);
                }
                let mut order: Vec<(usize, f64)> = candidates
                    .iter()
                    .enumerate()
                    .map(|(i, s)| (i, resolver_loc.distance_km(&s.location)))
                    .collect();
                order.sort_by(|a, b| a.1.total_cmp(&b.1));
                for (i, _) in &order {
                    if rng.gen::<f64>() < p_accept(candidates[*i].country) {
                        return Some(*candidates[*i]);
                    }
                }
                Some(*candidates[order[0].0])
            }
        }
    }

    /// All distinct countries this zone can answer from.
    pub fn countries(&self) -> Vec<CountryCode> {
        let mut v: Vec<CountryCode> = self.servers.iter().map(|s| s.country).collect();
        v.sort();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use xborder_geo::cc;

    fn server(id: u32, ip: &str, country: &str, lat: f64, lon: f64) -> ZoneServer {
        ZoneServer {
            server: ServerId(id),
            ip: ip.parse().unwrap(),
            country: CountryCode::parse(country).unwrap(),
            location: LatLon::new(lat, lon),
            valid: None,
        }
    }

    fn three_pop_zone(policy: MappingPolicy) -> ZoneEntry {
        ZoneEntry {
            host: Domain::new("t.gtrack.com"),
            servers: vec![
                server(0, "1.0.0.1", "US", 39.0, -98.0),
                server(1, "1.0.1.1", "DE", 51.0, 10.0),
                server(2, "1.0.2.1", "SG", 1.35, 103.8),
            ],
            policy,
            ttl_secs: 300,
        }
    }

    #[test]
    fn nearest_picks_the_nearby_pop_mostly() {
        // Capacity-aware mapping is stochastic; the nearest high-capacity
        // PoP must still win the large majority of answers.
        let zone = three_pop_zone(MappingPolicy::NearestToResolver { epsilon: 0.0 });
        let mut rng = StdRng::seed_from_u64(1);
        let majority = |loc: LatLon, rng: &mut StdRng| {
            let mut counts = std::collections::HashMap::new();
            for _ in 0..300 {
                *counts.entry(zone.select(loc, SimTime(0), rng).unwrap().country).or_insert(0) += 1;
            }
            counts.into_iter().max_by_key(|(_, n)| *n).unwrap().0
        };
        // Resolver in Austria -> Germany.
        assert_eq!(majority(LatLon::new(48.2, 16.4), &mut rng), cc!("DE"));
        // Resolver in California -> US.
        assert_eq!(majority(LatLon::new(37.0, -122.0), &mut rng), cc!("US"));
        // Resolver in Jakarta -> Singapore.
        assert_eq!(majority(LatLon::new(-6.2, 106.8), &mut rng), cc!("SG"));
    }

    #[test]
    fn low_capacity_pops_overflow_to_hubs() {
        // A Cypriot PoP (it_index 0.10) next to a German one: even Cypriot
        // resolvers frequently get pushed to the hub.
        let zone = ZoneEntry {
            host: Domain::new("t.x.com"),
            servers: vec![
                server(0, "1.0.0.1", "CY", 35.1, 33.4),
                server(1, "1.0.1.1", "DE", 51.0, 10.0),
            ],
            policy: MappingPolicy::NearestToResolver { epsilon: 0.0 },
            ttl_secs: 300,
        };
        let mut rng = StdRng::seed_from_u64(9);
        let nicosia = LatLon::new(35.2, 33.4);
        let n = 2000;
        let local = (0..n)
            .filter(|_| zone.select(nicosia, SimTime(0), &mut rng).unwrap().country == cc!("CY"))
            .count();
        let share = local as f64 / n as f64;
        // Acceptance for CY is 0.08 + 0.85*0.10^2 = 0.0885; when CY
        // rejects, DE accepts with 0.847, otherwise the walk falls back to
        // the nearest (CY): 0.0885 + 0.9115 * 0.153 ≈ 0.228.
        assert!((share - 0.228).abs() < 0.04, "local share {share}");
    }

    #[test]
    fn epsilon_disperses_over_all_pops() {
        let zone = three_pop_zone(MappingPolicy::NearestToResolver { epsilon: 0.3 });
        let mut rng = StdRng::seed_from_u64(2);
        let vienna = LatLon::new(48.2, 16.4);
        let n = 3000;
        let mut non_de = 0usize;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..n {
            let ans = zone.select(vienna, SimTime(0), &mut rng).unwrap();
            seen.insert(ans.country);
            if ans.country != cc!("DE") {
                non_de += 1;
            }
        }
        // Random picks (epsilon * 2/3) plus occasional capacity overflow.
        let share = non_de as f64 / n as f64;
        assert!((0.15..0.40).contains(&share), "share {share}");
        assert_eq!(seen.len(), 3, "dispersion should reach every PoP");
    }

    #[test]
    fn round_robin_covers_all() {
        let zone = three_pop_zone(MappingPolicy::RoundRobin);
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(zone.select(LatLon::new(0.0, 0.0), SimTime(0), &mut rng).unwrap().server);
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn pinned_always_first() {
        let zone = three_pop_zone(MappingPolicy::Pinned);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..20 {
            assert_eq!(
                zone.select(LatLon::new(48.0, 16.0), SimTime(0), &mut rng).unwrap().server,
                ServerId(0)
            );
        }
    }

    #[test]
    fn empty_zone_selects_none() {
        let zone = ZoneEntry {
            host: Domain::new("x.com"),
            servers: vec![],
            policy: MappingPolicy::Pinned,
            ttl_secs: 60,
        };
        let mut rng = StdRng::seed_from_u64(5);
        assert!(zone.select(LatLon::new(0.0, 0.0), SimTime(0), &mut rng).is_none());
    }

    #[test]
    fn validity_windows_scope_answers_in_time() {
        use xborder_netsim::time::TimeWindow;
        let mut old = server(0, "1.0.0.1", "US", 39.0, -98.0);
        old.valid = Some(TimeWindow::new(SimTime(0), SimTime(1000)));
        let mut new = server(1, "1.0.0.2", "US", 39.0, -98.0);
        new.valid = Some(TimeWindow::new(SimTime(1000), SimTime(u64::MAX)));
        let zone = ZoneEntry {
            host: Domain::new("rotating.x.com"),
            servers: vec![old, new],
            policy: MappingPolicy::NearestToResolver { epsilon: 0.0 },
            ttl_secs: 300,
        };
        let mut rng = StdRng::seed_from_u64(10);
        let la = LatLon::new(34.0, -118.0);
        for _ in 0..20 {
            assert_eq!(zone.select(la, SimTime(500), &mut rng).unwrap().server, ServerId(0));
            assert_eq!(zone.select(la, SimTime(1500), &mut rng).unwrap().server, ServerId(1));
        }
        // A gap with no valid server yields no answer.
        let gap_zone = ZoneEntry {
            host: Domain::new("gap.x.com"),
            servers: vec![{
                let mut s = server(2, "1.0.0.3", "US", 39.0, -98.0);
                s.valid = Some(TimeWindow::new(SimTime(0), SimTime(10)));
                s
            }],
            policy: MappingPolicy::Pinned,
            ttl_secs: 300,
        };
        assert!(gap_zone.select(la, SimTime(11), &mut rng).is_none());
    }

    #[test]
    fn countries_deduplicated() {
        let mut zone = three_pop_zone(MappingPolicy::RoundRobin);
        zone.servers.push(server(3, "1.0.3.1", "DE", 50.0, 8.0));
        assert_eq!(zone.countries().len(), 3);
    }

    #[test]
    fn single_server_nearest_short_circuits() {
        let zone = ZoneEntry {
            host: Domain::new("x.com"),
            servers: vec![server(7, "1.2.3.4", "FR", 48.0, 2.0)],
            policy: MappingPolicy::NearestToResolver { epsilon: 0.5 },
            ttl_secs: 60,
        };
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..10 {
            assert_eq!(zone.select(LatLon::new(0.0, 0.0), SimTime(0), &mut rng).unwrap().server, ServerId(7));
        }
    }
}
