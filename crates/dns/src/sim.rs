//! The assembled DNS simulator: zones + resolution + pDNS capture.
//!
//! Two faces, split for the parallel study (DESIGN.md §5d):
//!
//! * [`DnsSim`] — the owning simulator: mutable zone registry plus the
//!   passive-DNS sensor. Resolution through it captures into pDNS inline.
//! * [`ZoneView`] — a shared, read-only view over the zone table that many
//!   study shards can resolve against concurrently. It never touches the
//!   sensor; callers collect [`PdnsObservation`]s and replay them into the
//!   simulator in a deterministic order afterwards
//!   ([`DnsSim::absorb_observations`]).

use crate::pdns::PassiveDnsDb;
use crate::resolver::ClientCtx;
use crate::zone::{ZoneEntry, ZoneServer};
use crate::DnsError;
use rand::Rng;
use std::collections::HashMap;
use std::net::IpAddr;
use xborder_faults::{stable_hash, DegradationReport, FaultError, FaultInjector};
use xborder_netsim::time::SimTime;
use xborder_webgraph::{Domain, DomainId, DomainTable};

/// One resolution a sensor would have seen, buffered by a study shard and
/// replayed into the central [`PassiveDnsDb`] after the shards join.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PdnsObservation {
    /// The resolved name.
    pub host: Domain,
    /// The answer address.
    pub ip: IpAddr,
    /// Effective resolution time (query time plus any fault backoff).
    pub time: SimTime,
}

/// A [`PdnsObservation`] with the host as an interned [`DomainId`]
/// (DESIGN.md §5f). The study hot path buffers these — 16 bytes smaller
/// and clone-free — and [`DnsSim::absorb_id_observations`] resolves ids
/// back to domains at replay time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PdnsIdObservation {
    /// The resolved name, interned in the world's [`DomainTable`].
    pub host: DomainId,
    /// The answer address.
    pub ip: IpAddr,
    /// Effective resolution time (query time plus any fault backoff).
    pub time: SimTime,
}

/// Authoritative DNS for a whole synthetic world, with a passive-DNS sensor
/// recording every resolution.
#[derive(Debug, Default)]
pub struct DnsSim {
    zones: HashMap<Domain, ZoneEntry>,
    pdns: PassiveDnsDb,
}

/// A read-only snapshot of the zone table, safe to share across study
/// shards (`Copy`, `Sync`). Resolution through it is *uncaptured*: the
/// caller is responsible for recording [`PdnsObservation`]s.
#[derive(Debug, Clone, Copy)]
pub struct ZoneView<'a> {
    zones: &'a HashMap<Domain, ZoneEntry>,
}

impl<'a> ZoneView<'a> {
    /// The zone registered for `host`, if any.
    pub fn zone(&self, host: &Domain) -> Option<&'a ZoneEntry> {
        self.zones.get(host)
    }

    /// Resolves `host` at time `t`, returning the answer together with the
    /// zone's TTL (so stub resolvers never need a second zone lookup).
    pub fn resolve<R: Rng + ?Sized>(
        &self,
        host: &Domain,
        client: &ClientCtx,
        t: SimTime,
        rng: &mut R,
    ) -> Result<(ZoneServer, u32), DnsError> {
        let zone = self
            .zones
            .get(host)
            .ok_or_else(|| DnsError::NxDomain(host.clone()))?;
        let answer = zone
            .select(client.resolver.location, t, rng)
            .ok_or_else(|| DnsError::EmptyZone(host.clone()))?;
        Ok((answer, zone.ttl_secs))
    }

    /// Fault-aware resolution: each attempt can time out per the plan's
    /// `resolver_timeout` rate; a timed-out attempt backs off exponentially
    /// on the *sim clock* (base `resolver_backoff_secs`, doubling per
    /// retry) and retries up to `resolver_max_retries` more times. Returns
    /// the answer, the effective resolution time (query time plus
    /// accumulated backoff) and the zone TTL, or
    /// [`FaultError::ResolverTimeout`] once the budget is exhausted.
    ///
    /// Under an inactive injector this is exactly [`ZoneView::resolve`]
    /// (one attempt, no coins, no extra RNG draws).
    pub fn resolve_degraded<R: Rng + ?Sized>(
        &self,
        host: &Domain,
        client: &ClientCtx,
        t: SimTime,
        rng: &mut R,
        inj: &FaultInjector,
        report: &mut DegradationReport,
    ) -> Result<(ZoneServer, SimTime, u32), FaultError> {
        if !inj.is_active() {
            report.dns_attempts += 1;
            return self
                .resolve(host, client, t, rng)
                .map(|(a, ttl)| (a, t, ttl))
                .map_err(|e| FaultError::Dns(e.to_string()));
        }
        let host_key = stable_hash(host.as_str().as_bytes());
        let max_attempts = 1 + inj.plan().resolver_max_retries;
        let mut t_eff = t;
        for attempt in 0..max_attempts {
            report.dns_attempts += 1;
            if inj.resolver_timed_out(host_key, t.0, attempt) {
                report.dns_timeouts += 1;
                let backoff = inj.plan().resolver_backoff_secs << attempt;
                report.dns_backoff_secs += backoff;
                t_eff = SimTime(t_eff.0 + backoff);
                continue;
            }
            if attempt > 0 {
                report.dns_retries += 1;
            }
            return self
                .resolve(host, client, t_eff, rng)
                .map(|(a, ttl)| (a, t_eff, ttl))
                .map_err(|e| FaultError::Dns(e.to_string()));
        }
        report.dns_failures += 1;
        Err(FaultError::ResolverTimeout {
            host: host.as_str().to_string(),
            attempts: max_attempts,
        })
    }
}

/// A dense, id-indexed snapshot of the zone table (DESIGN.md §5f), built
/// once per study by [`DnsSim::indexed_view`] and shared read-only across
/// shards. Zone lookup is a `Vec` index instead of a string hash, and the
/// per-host `stable_hash` the fault coins and miss-RNG seeds key on is
/// precomputed — so the id path draws *exactly* the same coins and seeds
/// as the string path without hashing a host per miss.
#[derive(Debug, Clone)]
pub struct IndexedZoneView<'a> {
    /// `DomainId → zone` (`None` for domains without a zone, e.g.
    /// publisher domains or unwired hosts).
    by_id: Vec<Option<&'a ZoneEntry>>,
    /// `DomainId → stable_hash(host bytes)`, precomputed.
    host_hash: Vec<u64>,
    domains: &'a DomainTable,
}

impl<'a> IndexedZoneView<'a> {
    /// The zone registered for the interned host, if any.
    pub fn zone_by_id(&self, id: DomainId) -> Option<&'a ZoneEntry> {
        self.by_id.get(id.0 as usize).copied().flatten()
    }

    /// `stable_hash` of the host's bytes — identical to
    /// `stable_hash(host.as_str().as_bytes())`, precomputed at view build.
    pub fn host_hash(&self, id: DomainId) -> u64 {
        self.host_hash[id.0 as usize]
    }

    /// The interner this view was built against.
    pub fn domains(&self) -> &'a DomainTable {
        self.domains
    }

    /// Dense-path equivalent of [`ZoneView::resolve`]: same answers, same
    /// RNG draws, no string hashing.
    pub fn resolve_id<R: Rng + ?Sized>(
        &self,
        host_id: DomainId,
        client: &ClientCtx,
        t: SimTime,
        rng: &mut R,
    ) -> Result<(ZoneServer, u32), DnsError> {
        let zone = self
            .zone_by_id(host_id)
            .ok_or_else(|| DnsError::NxDomain(self.domains.domain(host_id).clone()))?;
        let answer = zone
            .select(client.resolver.location, t, rng)
            .ok_or_else(|| DnsError::EmptyZone(self.domains.domain(host_id).clone()))?;
        Ok((answer, zone.ttl_secs))
    }

    /// Dense-path equivalent of [`ZoneView::resolve_degraded`]: the fault
    /// coins key on the precomputed [`IndexedZoneView::host_hash`], which
    /// equals the string path's `stable_hash(host bytes)` — bit-identical
    /// retry/backoff behaviour with zero per-call hashing.
    pub fn resolve_degraded_id<R: Rng + ?Sized>(
        &self,
        host_id: DomainId,
        client: &ClientCtx,
        t: SimTime,
        rng: &mut R,
        inj: &FaultInjector,
        report: &mut DegradationReport,
    ) -> Result<(ZoneServer, SimTime, u32), FaultError> {
        if !inj.is_active() {
            report.dns_attempts += 1;
            return self
                .resolve_id(host_id, client, t, rng)
                .map(|(a, ttl)| (a, t, ttl))
                .map_err(|e| FaultError::Dns(e.to_string()));
        }
        let host_key = self.host_hash(host_id);
        let max_attempts = 1 + inj.plan().resolver_max_retries;
        let mut t_eff = t;
        for attempt in 0..max_attempts {
            report.dns_attempts += 1;
            if inj.resolver_timed_out(host_key, t.0, attempt) {
                report.dns_timeouts += 1;
                let backoff = inj.plan().resolver_backoff_secs << attempt;
                report.dns_backoff_secs += backoff;
                t_eff = SimTime(t_eff.0 + backoff);
                continue;
            }
            if attempt > 0 {
                report.dns_retries += 1;
            }
            return self
                .resolve_id(host_id, client, t_eff, rng)
                .map(|(a, ttl)| (a, t_eff, ttl))
                .map_err(|e| FaultError::Dns(e.to_string()));
        }
        report.dns_failures += 1;
        Err(FaultError::ResolverTimeout {
            host: self.domains.domain(host_id).as_str().to_string(),
            attempts: max_attempts,
        })
    }
}

/// Shared body of [`DnsSim::indexed_view`] and
/// [`DnsSim::indexed_view_and_pdns`]: one string lookup plus one
/// `stable_hash` per interned domain.
fn build_indexed_view<'a>(
    zones: &'a HashMap<Domain, ZoneEntry>,
    domains: &'a DomainTable,
) -> IndexedZoneView<'a> {
    let mut by_id = vec![None; domains.len()];
    let mut host_hash = vec![0u64; domains.len()];
    for (id, d) in domains.iter() {
        by_id[id.0 as usize] = zones.get(d);
        host_hash[id.0 as usize] = stable_hash(d.as_str().as_bytes());
    }
    IndexedZoneView { by_id, host_hash, domains }
}

impl DnsSim {
    /// An empty simulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) the zone entry for a host.
    pub fn add_zone(&mut self, entry: ZoneEntry) -> Result<(), DnsError> {
        if entry.servers.is_empty() {
            return Err(DnsError::EmptyZone(entry.host.clone()));
        }
        self.zones.insert(entry.host.clone(), entry);
        Ok(())
    }

    /// A read-only view over the zone table, shareable across threads.
    pub fn view(&self) -> ZoneView<'_> {
        ZoneView { zones: &self.zones }
    }

    /// Builds the dense id-indexed view for a study (DESIGN.md §5f): one
    /// string lookup plus one `stable_hash` per interned domain *here*,
    /// zero on the hot path afterwards.
    pub fn indexed_view<'a>(&'a self, domains: &'a DomainTable) -> IndexedZoneView<'a> {
        build_indexed_view(&self.zones, domains)
    }

    /// [`DnsSim::indexed_view`] plus mutable access to the passive-DNS
    /// sensor: the two borrow disjoint fields, so a streaming driver can
    /// absorb each chunk's observations as it commits while the study
    /// stream keeps resolving through the (read-only) zone view.
    pub fn indexed_view_and_pdns<'a>(
        &'a mut self,
        domains: &'a DomainTable,
    ) -> (IndexedZoneView<'a>, &'a mut PassiveDnsDb) {
        (build_indexed_view(&self.zones, domains), &mut self.pdns)
    }

    /// Replays shard-buffered observations into the passive-DNS sensor.
    /// Callers replay buffers in a fixed order (user order in the study) so
    /// the database is identical for any shard layout.
    pub fn absorb_observations(&mut self, obs: &[PdnsObservation]) {
        for o in obs {
            self.pdns.observe(&o.host, o.ip, o.time);
        }
    }

    /// Replays shard-buffered id observations, resolving each interned
    /// host back to its domain through `domains`. Same replay-order
    /// contract as [`DnsSim::absorb_observations`].
    pub fn absorb_id_observations(&mut self, obs: &[PdnsIdObservation], domains: &DomainTable) {
        for o in obs {
            self.pdns.observe(domains.domain(o.host), o.ip, o.time);
        }
    }

    /// Resolves `host` for a client at time `t`, recording the answer into
    /// the passive-DNS database (sensors sit at production resolvers).
    pub fn resolve<R: Rng + ?Sized>(
        &mut self,
        host: &Domain,
        client: &ClientCtx,
        t: SimTime,
        rng: &mut R,
    ) -> Result<ZoneServer, DnsError> {
        self.resolve_with_ttl(host, client, t, rng).map(|(a, _)| a)
    }

    /// [`DnsSim::resolve`] returning the zone TTL alongside the answer, so
    /// caching stub resolvers never need a second zone lookup.
    pub fn resolve_with_ttl<R: Rng + ?Sized>(
        &mut self,
        host: &Domain,
        client: &ClientCtx,
        t: SimTime,
        rng: &mut R,
    ) -> Result<(ZoneServer, u32), DnsError> {
        let (answer, ttl) = self.view().resolve(host, client, t, rng)?;
        self.pdns.observe(host, answer.ip, t);
        Ok((answer, ttl))
    }

    /// Fault-aware resolution: each attempt can time out per the plan's
    /// `resolver_timeout` rate; a timed-out attempt backs off exponentially
    /// on the *sim clock* (base `resolver_backoff_secs`, doubling per
    /// retry) and retries up to `resolver_max_retries` more times. Returns
    /// the answer plus the effective resolution time (query time plus
    /// accumulated backoff), or [`FaultError::ResolverTimeout`] once the
    /// budget is exhausted.
    ///
    /// Under an inactive injector this is exactly [`DnsSim::resolve`]
    /// (one attempt, no coins, no extra RNG draws), which is what keeps
    /// `FaultPlan::none()` runs bit-identical.
    pub fn resolve_degraded<R: Rng + ?Sized>(
        &mut self,
        host: &Domain,
        client: &ClientCtx,
        t: SimTime,
        rng: &mut R,
        inj: &FaultInjector,
        report: &mut DegradationReport,
    ) -> Result<(ZoneServer, SimTime), FaultError> {
        let (answer, t_eff, _) = self
            .view()
            .resolve_degraded(host, client, t, rng, inj, report)?;
        self.pdns.observe(host, answer.ip, t_eff);
        Ok((answer, t_eff))
    }

    /// Resolution without pDNS capture (cache hits, internal queries).
    pub fn resolve_uncaptured<R: Rng + ?Sized>(
        &self,
        host: &Domain,
        client: &ClientCtx,
        t: SimTime,
        rng: &mut R,
    ) -> Result<ZoneServer, DnsError> {
        self.view().resolve(host, client, t, rng).map(|(a, _)| a)
    }

    /// The zone registered for `host`, if any.
    pub fn zone(&self, host: &Domain) -> Option<&ZoneEntry> {
        self.zones.get(host)
    }

    /// All registered zones.
    pub fn zones(&self) -> impl Iterator<Item = &ZoneEntry> {
        self.zones.values()
    }

    /// Number of registered zones.
    pub fn n_zones(&self) -> usize {
        self.zones.len()
    }

    /// Read access to the passive-DNS database.
    pub fn pdns(&self) -> &PassiveDnsDb {
        &self.pdns
    }

    /// Seeds the pDNS database with the *global* view: sensors all over the
    /// world see every zone answer over the study window, not just the
    /// answers our few hundred extension users happened to receive. This is
    /// what makes forward-pDNS completion find extra IPs (paper: +2.78 %).
    ///
    /// `coverage` is the fraction of (host, server) pairs the sensors catch
    /// (1.0 = perfect global visibility).
    pub fn seed_global_pdns<R: Rng + ?Sized>(
        &mut self,
        start: SimTime,
        end: SimTime,
        coverage: f64,
        rng: &mut R,
    ) {
        // Collect and sort first: the zone map has no stable iteration
        // order, and each entry consumes RNG coins — without sorting, two
        // worlds built from the same seed would diverge.
        let mut observations: Vec<(Domain, std::net::IpAddr, Option<xborder_netsim::time::TimeWindow>)> = self
            .zones
            .values()
            .flat_map(|z| z.servers.iter().map(|s| (z.host.clone(), s.ip, s.valid)))
            .collect();
        observations.sort_by(|a, b| (&a.0, a.1).cmp(&(&b.0, b.1)));
        for (host, ip, valid) in observations {
            if rng.gen::<f64>() <= coverage {
                // Sensors only see answers while the server actually
                // answers: clamp the observation span to the server's
                // validity window.
                let lo = valid.map(|w| w.start.max(start)).unwrap_or(start);
                let hi = valid.map(|w| SimTime(w.end.0.min(end.0))).unwrap_or(end);
                if hi.0 <= lo.0 {
                    continue;
                }
                let t0 = SimTime(lo.0 + rng.gen_range(0..(hi.0 - lo.0).max(1)));
                self.pdns.observe(&host, ip, t0);
                // A later observation widens the validity window.
                let t1 = SimTime(t0.0 + rng.gen_range(0..(hi.0 - t0.0).max(1)));
                self.pdns.observe(&host, ip, t1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zone::MappingPolicy;
    use rand::{rngs::StdRng, SeedableRng};
    use xborder_geo::{cc, CountryCode, WORLD};
    use xborder_netsim::ServerId;

    fn zone(host: &str, servers: &[(u32, &str, &str)]) -> ZoneEntry {
        ZoneEntry {
            host: Domain::new(host),
            servers: servers
                .iter()
                .map(|(id, ip, country)| {
                    let c = WORLD.country_or_panic(CountryCode::parse(country).unwrap());
                    ZoneServer {
                        server: ServerId(*id),
                        ip: ip.parse().unwrap(),
                        country: c.code,
                        location: c.centroid(),
                        valid: None,
                    }
                })
                .collect(),
            policy: MappingPolicy::NearestToResolver { epsilon: 0.0 },
            ttl_secs: 300,
        }
    }

    fn de_client() -> ClientCtx {
        let de = WORLD.country_or_panic(cc!("DE"));
        ClientCtx::with_isp_resolver(cc!("DE"), de.centroid())
    }

    #[test]
    fn resolve_records_into_pdns() {
        let mut dns = DnsSim::new();
        dns.add_zone(zone("t.x.com", &[(0, "1.0.0.1", "DE"), (1, "1.0.1.1", "US")]))
            .unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let ans = dns.resolve(&Domain::new("t.x.com"), &de_client(), SimTime(42), &mut rng).unwrap();
        assert_eq!(ans.country, cc!("DE"));
        let fwd = dns.pdns().forward(&Domain::new("t.x.com"));
        assert_eq!(fwd.len(), 1);
        assert_eq!(fwd[0].ip, ans.ip);
    }

    #[test]
    fn nxdomain() {
        let mut dns = DnsSim::new();
        let mut rng = StdRng::seed_from_u64(2);
        let err = dns.resolve(&Domain::new("missing.com"), &de_client(), SimTime(0), &mut rng);
        assert!(matches!(err, Err(DnsError::NxDomain(_))));
    }

    #[test]
    fn empty_zone_rejected_at_registration() {
        let mut dns = DnsSim::new();
        let e = ZoneEntry {
            host: Domain::new("e.com"),
            servers: vec![],
            policy: MappingPolicy::Pinned,
            ttl_secs: 60,
        };
        assert!(matches!(dns.add_zone(e), Err(DnsError::EmptyZone(_))));
    }

    #[test]
    fn uncaptured_resolution_leaves_pdns_empty() {
        let mut dns = DnsSim::new();
        dns.add_zone(zone("t.x.com", &[(0, "1.0.0.1", "DE")])).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        dns.resolve_uncaptured(&Domain::new("t.x.com"), &de_client(), SimTime(0), &mut rng).unwrap();
        assert!(dns.pdns().is_empty());
    }

    #[test]
    fn global_seed_sees_servers_users_never_hit() {
        let mut dns = DnsSim::new();
        // Pinned zone: clients only ever receive the first server, yet the
        // zone operates two more the sensors should know about.
        let mut z = zone(
            "t.x.com",
            &[(0, "1.0.0.1", "DE"), (1, "1.0.1.1", "US"), (2, "1.0.2.1", "SG")],
        );
        z.policy = MappingPolicy::Pinned;
        dns.add_zone(z).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            let a = dns.resolve(&Domain::new("t.x.com"), &de_client(), SimTime(10), &mut rng).unwrap();
            assert_eq!(a.country, cc!("DE"));
        }
        assert_eq!(dns.pdns().forward(&Domain::new("t.x.com")).len(), 1);
        // Global sensors see all three.
        dns.seed_global_pdns(SimTime(0), SimTime(1000), 1.0, &mut rng);
        assert_eq!(dns.pdns().forward(&Domain::new("t.x.com")).len(), 3);
    }

    #[test]
    fn seed_respects_coverage_zero() {
        let mut dns = DnsSim::new();
        dns.add_zone(zone("t.x.com", &[(0, "1.0.0.1", "DE")])).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        dns.seed_global_pdns(SimTime(0), SimTime(1000), 0.0, &mut rng);
        assert!(dns.pdns().is_empty());
    }

    #[test]
    fn indexed_view_matches_string_view_bit_for_bit() {
        use xborder_faults::{FaultInjector, FaultPlan};
        let mut dns = DnsSim::new();
        dns.add_zone(zone("t.x.com", &[(0, "1.0.0.1", "DE"), (1, "1.0.1.1", "US")]))
            .unwrap();
        let mut domains = DomainTable::new();
        // Intern an unwired domain first so the wired host's id is offset.
        let unwired = domains.intern(&Domain::new("nozone.example.com"));
        let host = Domain::new("t.x.com");
        let host_id = domains.intern(&host);
        let view = dns.view();
        let iview = dns.indexed_view(&domains);
        assert_eq!(
            iview.host_hash(host_id),
            stable_hash(host.as_str().as_bytes()),
            "precomputed hash must equal the string path's"
        );
        assert!(iview.zone_by_id(unwired).is_none());
        // Plain resolution: identical answers and RNG consumption.
        let client = de_client();
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = r1.clone();
        for i in 0..50u64 {
            let a = view.resolve(&host, &client, SimTime(i), &mut r1).unwrap();
            let b = iview.resolve_id(host_id, &client, SimTime(i), &mut r2).unwrap();
            assert_eq!(a, b);
        }
        assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
        // Degraded resolution under an active plan: same coins (keyed on
        // the precomputed hash), same timings, same counters.
        let inj = FaultInjector::new(FaultPlan::aggressive(3));
        let mut rep_a = DegradationReport::default();
        let mut rep_b = DegradationReport::default();
        let mut r1 = StdRng::seed_from_u64(11);
        let mut r2 = r1.clone();
        for i in 0..200u64 {
            let a = view.resolve_degraded(&host, &client, SimTime(i * 31), &mut r1, &inj, &mut rep_a);
            let b = iview.resolve_degraded_id(host_id, &client, SimTime(i * 31), &mut r2, &inj, &mut rep_b);
            match (a, b) {
                (Ok(x), Ok(y)) => assert_eq!(x, y),
                (Err(x), Err(y)) => assert_eq!(x.to_string(), y.to_string()),
                (x, y) => panic!("paths diverged at {i}: {x:?} vs {y:?}"),
            }
        }
        assert_eq!(rep_a.dns_attempts, rep_b.dns_attempts);
        assert_eq!(rep_a.dns_timeouts, rep_b.dns_timeouts);
        assert_eq!(rep_a.dns_backoff_secs, rep_b.dns_backoff_secs);
        assert_eq!(rep_a.dns_failures, rep_b.dns_failures);
    }

    #[test]
    fn id_observations_replay_like_string_observations() {
        let mut domains = DomainTable::new();
        let host = Domain::new("t.x.com");
        let id = domains.intern(&host);
        let mut via_string = DnsSim::new();
        let mut via_id = DnsSim::new();
        let obs_s = vec![PdnsObservation { host: host.clone(), ip: "1.0.0.1".parse().unwrap(), time: SimTime(5) }];
        let obs_i = vec![PdnsIdObservation { host: id, ip: "1.0.0.1".parse().unwrap(), time: SimTime(5) }];
        via_string.absorb_observations(&obs_s);
        via_id.absorb_id_observations(&obs_i, &domains);
        assert_eq!(via_string.pdns().forward(&host), via_id.pdns().forward(&host));
    }

    #[test]
    fn resolver_vantage_changes_mapping() {
        // A Greek user on public DNS egresses from a foreign hub (no GR PoP
        // in the public-DNS footprint); with a GR+IT zone the ISP-resolver
        // user maps home, the public-DNS one abroad.
        let mut dns = DnsSim::new();
        dns.add_zone(zone("t.x.com", &[(0, "1.0.0.1", "GR"), (1, "1.0.1.1", "IT")]))
            .unwrap();
        let gr = WORLD.country_or_panic(cc!("GR"));
        let mut rng = StdRng::seed_from_u64(6);

        let isp_user = ClientCtx::with_isp_resolver(cc!("GR"), gr.centroid());
        let a = dns.resolve(&Domain::new("t.x.com"), &isp_user, SimTime(0), &mut rng).unwrap();
        assert_eq!(a.country, cc!("GR"));

        let public_user = ClientCtx::with_public_resolver(cc!("GR"), gr.centroid());
        assert_ne!(public_user.resolver.country, cc!("GR"));
        let b = dns.resolve(&Domain::new("t.x.com"), &public_user, SimTime(0), &mut rng).unwrap();
        // Egress PoP is Italian -> mapping prefers the IT server.
        assert_eq!(b.country, cc!("IT"));
    }
}
