//! Passive DNS replication (Weimer, FIRST 2005; Robtex-style database).
//!
//! Sensors at production resolvers record every (name, address) resolution;
//! the database keeps, per pair, the first and last time it was seen. The
//! paper uses the forward view to *complete* a tracker's IP set (finding
//! IPs our users were never mapped to, +2.78 %) and the reverse view to
//! check whether an IP is *dedicated* to one tracking domain or shared by
//! many (Figs. 4–5), plus the validity windows that scope the NetFlow join.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::IpAddr;
use xborder_faults::{ip_key, stable_hash, DegradationReport, FaultInjector};
use xborder_netsim::time::{SimTime, TimeWindow};
use xborder_webgraph::Domain;

/// One (domain, ip) association with its observed validity window.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PdnsRecord {
    /// The resolved name.
    pub domain: Domain,
    /// The answer address.
    pub ip: IpAddr,
    /// First-seen .. last-seen window (half-open).
    pub window: TimeWindow,
    /// Number of observations folded into this record.
    pub count: u64,
}

/// The passive-DNS database: forward and reverse indexes over
/// [`PdnsRecord`]s.
#[derive(Debug, Default)]
pub struct PassiveDnsDb {
    records: Vec<PdnsRecord>,
    forward: HashMap<Domain, Vec<usize>>,
    reverse: HashMap<IpAddr, Vec<usize>>,
}

impl PassiveDnsDb {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// The record index of a (domain, ip) pair: one hash of the *borrowed*
    /// domain plus a scan of its record list. An FQDN maps to a handful of
    /// addresses, so the scan is shorter than hashing an owned
    /// `(Domain, IpAddr)` key would be — and needs no per-call clone,
    /// which used to dominate observation replay (DESIGN.md §5f).
    fn index_of(&self, domain: &Domain, ip: IpAddr) -> Option<usize> {
        self.forward
            .get(domain)?
            .iter()
            .copied()
            .find(|&i| self.records[i].ip == ip)
    }

    /// Records one observation of `domain` resolving to `ip` at time `t`.
    pub fn observe(&mut self, domain: &Domain, ip: IpAddr, t: SimTime) {
        match self.index_of(domain, ip) {
            Some(idx) => {
                let rec = &mut self.records[idx];
                rec.window.extend_to(t);
                rec.count += 1;
            }
            None => {
                let idx = self.records.len();
                self.records.push(PdnsRecord {
                    domain: domain.clone(),
                    ip,
                    window: TimeWindow::new(t, SimTime(t.0 + 1)),
                    count: 1,
                });
                self.forward.entry(domain.clone()).or_default().push(idx);
                self.reverse.entry(ip).or_default().push(idx);
            }
        }
    }

    /// Forward lookup: every address ever seen answering for `domain`.
    pub fn forward(&self, domain: &Domain) -> Vec<&PdnsRecord> {
        self.forward
            .get(domain)
            .map(|idxs| idxs.iter().map(|&i| &self.records[i]).collect())
            .unwrap_or_default()
    }

    /// Forward lookup under fault injection: sensor-gapped records are
    /// invisible, stale records keep only their first-seen stamp (the
    /// sensor stopped refreshing last-seen). Returns owned records because
    /// stale windows are rewritten. Coins key on the (domain, ip) pair, so
    /// repeated queries degrade identically.
    pub fn forward_degraded(
        &self,
        domain: &Domain,
        inj: &FaultInjector,
        report: &mut DegradationReport,
    ) -> Vec<PdnsRecord> {
        let mut out = Vec::new();
        for rec in self.forward(domain) {
            report.pdns_records_seen += 1;
            if !inj.is_active() {
                out.push(rec.clone());
                continue;
            }
            let key = stable_hash(rec.domain.as_str().as_bytes()) ^ ip_key(rec.ip);
            if inj.pdns_gapped(key) {
                report.pdns_records_gapped += 1;
                continue;
            }
            let mut rec = rec.clone();
            if inj.pdns_stale(key) {
                report.pdns_records_stale += 1;
                rec.window = TimeWindow::new(rec.window.start, SimTime(rec.window.start.0 + 1));
            }
            out.push(rec);
        }
        out
    }

    /// Reverse lookup: every name ever seen served from `ip`.
    pub fn reverse(&self, ip: IpAddr) -> Vec<&PdnsRecord> {
        self.reverse
            .get(&ip)
            .map(|idxs| idxs.iter().map(|&i| &self.records[i]).collect())
            .unwrap_or_default()
    }

    /// Forward lookup restricted to records whose window overlaps `w`.
    pub fn forward_in(&self, domain: &Domain, w: TimeWindow) -> Vec<&PdnsRecord> {
        self.forward(domain)
            .into_iter()
            .filter(|r| r.window.overlaps(&w))
            .collect()
    }

    /// Distinct pay-level domains ("TLDs") seen on `ip` within `w`.
    pub fn tlds_on_ip(&self, ip: IpAddr, w: TimeWindow) -> Vec<Domain> {
        let mut v: Vec<Domain> = self
            .reverse(ip)
            .into_iter()
            .filter(|r| r.window.overlaps(&w))
            .map(|r| r.domain.tld())
            .collect();
        v.sort();
        v.dedup();
        v
    }

    /// The validity window of a specific (domain, ip) pair, if recorded.
    pub fn window_of(&self, domain: &Domain, ip: IpAddr) -> Option<TimeWindow> {
        self.index_of(domain, ip).map(|i| self.records[i].window)
    }

    /// Total number of distinct (domain, ip) pairs.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no records exist.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates all records.
    pub fn iter(&self) -> impl Iterator<Item = &PdnsRecord> {
        self.records.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Domain {
        Domain::new(s)
    }
    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    #[test]
    fn observe_and_forward() {
        let mut db = PassiveDnsDb::new();
        db.observe(&d("t.x.com"), ip("1.2.3.4"), SimTime(100));
        db.observe(&d("t.x.com"), ip("1.2.3.5"), SimTime(200));
        let fwd = db.forward(&d("t.x.com"));
        assert_eq!(fwd.len(), 2);
        assert!(db.forward(&d("other.com")).is_empty());
    }

    #[test]
    fn windows_extend_with_observations() {
        let mut db = PassiveDnsDb::new();
        db.observe(&d("t.x.com"), ip("1.2.3.4"), SimTime(100));
        db.observe(&d("t.x.com"), ip("1.2.3.4"), SimTime(5000));
        let w = db.window_of(&d("t.x.com"), ip("1.2.3.4")).unwrap();
        assert_eq!(w.start, SimTime(100));
        assert!(w.contains(SimTime(5000)));
        assert_eq!(db.len(), 1);
        assert_eq!(db.forward(&d("t.x.com"))[0].count, 2);
    }

    #[test]
    fn reverse_lookup_collects_domains() {
        let mut db = PassiveDnsDb::new();
        let shared = ip("9.9.9.9");
        db.observe(&d("sync.a.com"), shared, SimTime(10));
        db.observe(&d("px.b.net"), shared, SimTime(20));
        db.observe(&d("t.a.com"), shared, SimTime(30));
        let rev = db.reverse(shared);
        assert_eq!(rev.len(), 3);
        let tlds = db.tlds_on_ip(shared, TimeWindow::new(SimTime(0), SimTime(100)));
        assert_eq!(tlds.len(), 2); // a.com appears twice but dedups
        assert!(tlds.contains(&d("a.com")));
        assert!(tlds.contains(&d("b.net")));
    }

    #[test]
    fn window_filter_excludes_stale_records() {
        let mut db = PassiveDnsDb::new();
        db.observe(&d("t.x.com"), ip("1.2.3.4"), SimTime(100));
        db.observe(&d("t.x.com"), ip("5.6.7.8"), SimTime(10_000));
        let early = db.forward_in(&d("t.x.com"), TimeWindow::new(SimTime(0), SimTime(200)));
        assert_eq!(early.len(), 1);
        assert_eq!(early[0].ip, ip("1.2.3.4"));
        let tlds = db.tlds_on_ip(ip("5.6.7.8"), TimeWindow::new(SimTime(0), SimTime(200)));
        assert!(tlds.is_empty());
    }

    #[test]
    fn empty_db() {
        let db = PassiveDnsDb::new();
        assert!(db.is_empty());
        assert_eq!(db.len(), 0);
        assert!(db.reverse(ip("1.1.1.1")).is_empty());
    }
}
