//! A TTL-honouring stub-resolver cache.
//!
//! Why it matters for the paper: DNS redirection (Table 5's best lever)
//! only takes effect once cached answers expire. The paper contrasts
//! Google's 300 s TTLs with Facebook's 7,200 s ones (Sect. 5.1) — a
//! redirection rolls out "from seconds to a few hours". This cache makes
//! that dynamic measurable: resolve through it, flip the zone, and watch
//! the old answer linger for exactly one TTL.

use crate::resolver::ClientCtx;
use crate::sim::DnsSim;
use crate::zone::ZoneServer;
use crate::DnsError;
use rand::Rng;
use std::collections::HashMap;
use xborder_netsim::time::SimTime;
use xborder_webgraph::Domain;

/// One cached answer.
#[derive(Debug, Clone, Copy)]
struct CacheEntry {
    answer: ZoneServer,
    expires: SimTime,
}

/// A per-client (or per-resolver) answer cache.
#[derive(Debug, Default)]
pub struct DnsCache {
    entries: HashMap<Domain, CacheEntry>,
    hits: u64,
    misses: u64,
}

impl DnsCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolves through the cache: returns the cached answer while its TTL
    /// lasts, otherwise asks the authoritative simulator and caches the
    /// fresh answer.
    pub fn resolve<R: Rng + ?Sized>(
        &mut self,
        dns: &mut DnsSim,
        host: &Domain,
        client: &ClientCtx,
        now: SimTime,
        rng: &mut R,
    ) -> Result<ZoneServer, DnsError> {
        if let Some(entry) = self.entries.get(host) {
            if now < entry.expires {
                self.hits += 1;
                return Ok(entry.answer);
            }
        }
        self.misses += 1;
        let answer = dns.resolve(host, client, now, rng)?;
        let ttl = dns.zone(host).map(|z| z.ttl_secs).unwrap_or(300);
        self.entries.insert(
            host.clone(),
            CacheEntry {
                answer,
                expires: now.plus_secs(ttl as u64),
            },
        );
        Ok(answer)
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses (authoritative queries) so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of live entries at `now`.
    pub fn live_entries(&self, now: SimTime) -> usize {
        self.entries.values().filter(|e| now < e.expires).count()
    }

    /// Drops expired entries (housekeeping; correctness never needs it).
    pub fn evict_expired(&mut self, now: SimTime) {
        self.entries.retain(|_, e| now < e.expires);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zone::{MappingPolicy, ZoneEntry};
    use rand::{rngs::StdRng, SeedableRng};
    use xborder_geo::{cc, CountryCode, WORLD};
    use xborder_netsim::ServerId;

    fn zone(host: &str, ip: &str, country: &str, ttl: u32) -> ZoneEntry {
        let c = WORLD.country_or_panic(CountryCode::parse(country).unwrap());
        ZoneEntry {
            host: Domain::new(host),
            servers: vec![ZoneServer {
                server: ServerId(1),
                ip: ip.parse().unwrap(),
                country: c.code,
                location: c.centroid(),
                        valid: None,
            }],
            policy: MappingPolicy::Pinned,
            ttl_secs: ttl,
        }
    }

    fn client() -> ClientCtx {
        let de = WORLD.country_or_panic(cc!("DE"));
        ClientCtx::with_isp_resolver(cc!("DE"), de.centroid())
    }

    #[test]
    fn caches_within_ttl() {
        let mut dns = DnsSim::new();
        dns.add_zone(zone("t.x.com", "1.0.0.1", "DE", 300)).unwrap();
        let mut cache = DnsCache::new();
        let mut rng = StdRng::seed_from_u64(1);
        let host = Domain::new("t.x.com");

        cache.resolve(&mut dns, &host, &client(), SimTime(0), &mut rng).unwrap();
        cache.resolve(&mut dns, &host, &client(), SimTime(299), &mut rng).unwrap();
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
        // The authoritative side (and its pDNS sensor) saw exactly one query.
        assert_eq!(dns.pdns().forward(&host).len(), 1);
        assert_eq!(dns.pdns().forward(&host)[0].count, 1);
    }

    #[test]
    fn expires_after_ttl() {
        let mut dns = DnsSim::new();
        dns.add_zone(zone("t.x.com", "1.0.0.1", "DE", 300)).unwrap();
        let mut cache = DnsCache::new();
        let mut rng = StdRng::seed_from_u64(2);
        let host = Domain::new("t.x.com");

        cache.resolve(&mut dns, &host, &client(), SimTime(0), &mut rng).unwrap();
        cache.resolve(&mut dns, &host, &client(), SimTime(300), &mut rng).unwrap();
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn redirection_takes_one_ttl_to_roll_out() {
        // The paper's Sect. 5.1 dynamic: flip the zone to a new country and
        // the old answer lingers until the TTL runs out.
        let mut dns = DnsSim::new();
        dns.add_zone(zone("t.x.com", "1.0.0.1", "US", 7200)).unwrap();
        let mut cache = DnsCache::new();
        let mut rng = StdRng::seed_from_u64(3);
        let host = Domain::new("t.x.com");

        let before = cache.resolve(&mut dns, &host, &client(), SimTime(0), &mut rng).unwrap();
        assert_eq!(before.country, cc!("US"));

        // Operator redirects to a German server ("GDPR-friendly DNS").
        dns.add_zone(zone("t.x.com", "1.0.0.2", "DE", 7200)).unwrap();

        // Mid-TTL: still the stale US answer.
        let stale = cache.resolve(&mut dns, &host, &client(), SimTime(3600), &mut rng).unwrap();
        assert_eq!(stale.country, cc!("US"));
        // Post-TTL: the redirection is live.
        let fresh = cache.resolve(&mut dns, &host, &client(), SimTime(7200), &mut rng).unwrap();
        assert_eq!(fresh.country, cc!("DE"));
    }

    #[test]
    fn eviction_and_live_count() {
        let mut dns = DnsSim::new();
        dns.add_zone(zone("a.x.com", "1.0.0.1", "DE", 100)).unwrap();
        dns.add_zone(zone("b.x.com", "1.0.0.2", "DE", 1000)).unwrap();
        let mut cache = DnsCache::new();
        let mut rng = StdRng::seed_from_u64(4);
        cache.resolve(&mut dns, &Domain::new("a.x.com"), &client(), SimTime(0), &mut rng).unwrap();
        cache.resolve(&mut dns, &Domain::new("b.x.com"), &client(), SimTime(0), &mut rng).unwrap();
        assert_eq!(cache.live_entries(SimTime(50)), 2);
        assert_eq!(cache.live_entries(SimTime(500)), 1);
        cache.evict_expired(SimTime(500));
        assert_eq!(cache.live_entries(SimTime(50)), 1);
    }

    #[test]
    fn nxdomain_is_not_cached() {
        let mut dns = DnsSim::new();
        let mut cache = DnsCache::new();
        let mut rng = StdRng::seed_from_u64(5);
        let host = Domain::new("missing.com");
        for _ in 0..3 {
            assert!(cache.resolve(&mut dns, &host, &client(), SimTime(0), &mut rng).is_err());
        }
        assert_eq!(cache.misses(), 3);
    }
}
