//! A TTL-honouring stub-resolver cache.
//!
//! Why it matters for the paper: DNS redirection (Table 5's best lever)
//! only takes effect once cached answers expire. The paper contrasts
//! Google's 300 s TTLs with Facebook's 7,200 s ones (Sect. 5.1) — a
//! redirection rolls out "from seconds to a few hours". This cache makes
//! that dynamic measurable: resolve through it, flip the zone, and watch
//! the old answer linger for exactly one TTL.
//!
//! Since the parallel-study refactor (DESIGN.md §5d) this is also the
//! *per-user* resolver state of the extension study, mirroring the paper's
//! per-client caching (Sect. 5.1): each simulated user owns one
//! `DnsCache`, resolves against a shared read-only [`ZoneView`], and
//! buffers the [`PdnsObservation`]s its cache misses would have produced
//! at a production resolver. Lookup RNG is hash-derived from
//! `(user stream, host, time)`, so a lookup's answer never depends on how
//! many lookups ran before it — the property that lets user shards run
//! concurrently and still merge bit-identically.

use crate::resolver::ClientCtx;
use crate::sim::{DnsSim, IndexedZoneView, PdnsIdObservation, PdnsObservation, ZoneView};
use crate::zone::ZoneServer;
use crate::DnsError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use xborder_faults::{
    derive_stream_seed, stable_hash, DegradationReport, FaultError, FaultInjector,
};
use xborder_netsim::time::SimTime;
use xborder_webgraph::{Domain, DomainId};

/// One cached answer.
#[derive(Debug, Clone, Copy)]
struct CacheEntry {
    answer: ZoneServer,
    expires: SimTime,
}

/// A per-client (or per-resolver) answer cache.
#[derive(Debug, Default)]
pub struct DnsCache {
    entries: HashMap<Domain, CacheEntry>,
    /// Dense id-indexed entries for the allocation-free study path
    /// (DESIGN.md §5f); grown lazily to the highest id touched.
    by_id: Vec<Option<CacheEntry>>,
    hits: u64,
    misses: u64,
    /// Seed of this client's lookup-RNG stream (see [`DnsCache::for_user`]).
    lookup_seed: u64,
    /// Observations buffered on cache misses, for deterministic replay
    /// into the central pDNS database.
    observations: Vec<PdnsObservation>,
    /// Id-form observations buffered by [`DnsCache::resolve_shared_id`].
    id_observations: Vec<PdnsIdObservation>,
}

impl DnsCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The stub-resolver state of one study user: lookup RNG derives from
    /// `(study_seed, user)`, so two users' DNS answers are independent and
    /// a user's answers are independent of every other user's progress.
    pub fn for_user(study_seed: u64, user: u64) -> Self {
        DnsCache {
            lookup_seed: derive_stream_seed(study_seed, user),
            ..Self::default()
        }
    }

    /// Resolves through the cache: returns the cached answer while its TTL
    /// lasts, otherwise asks the authoritative simulator and caches the
    /// fresh answer (one lookup: the answer carries its zone's TTL).
    pub fn resolve<R: Rng + ?Sized>(
        &mut self,
        dns: &mut DnsSim,
        host: &Domain,
        client: &ClientCtx,
        now: SimTime,
        rng: &mut R,
    ) -> Result<ZoneServer, DnsError> {
        if let Some(entry) = self.entries.get(host) {
            if now < entry.expires {
                self.hits += 1;
                return Ok(entry.answer);
            }
        }
        self.misses += 1;
        let (answer, ttl) = dns.resolve_with_ttl(host, client, now, rng)?;
        let fresh = CacheEntry {
            answer,
            expires: now.plus_secs(ttl as u64),
        };
        // Refresh in place when the host already has a (stale) slot; clone
        // the key only on a first-ever miss.
        match self.entries.get_mut(host) {
            Some(e) => *e = fresh,
            None => {
                self.entries.insert(host.clone(), fresh);
            }
        }
        Ok(answer)
    }

    /// Resolves through the cache against a shared read-only zone view —
    /// the study's per-user path. A hit answers from the cache (no
    /// authoritative query, no pDNS observation, no RNG); a miss resolves
    /// with a lookup RNG derived from `(user stream, host, time)`, buffers
    /// the observation a sensor would have recorded, and caches the answer
    /// until its TTL runs out (TTL measured from the *effective* resolve
    /// time, after any fault backoff).
    pub fn resolve_shared(
        &mut self,
        view: &ZoneView<'_>,
        host: &Domain,
        client: &ClientCtx,
        now: SimTime,
        inj: &FaultInjector,
        report: &mut DegradationReport,
    ) -> Result<(ZoneServer, SimTime), FaultError> {
        if let Some(entry) = self.entries.get(host) {
            if now < entry.expires {
                self.hits += 1;
                report.dns_cache_hits += 1;
                return Ok((entry.answer, now));
            }
        }
        self.misses += 1;
        report.dns_cache_misses += 1;
        let mut rng = StdRng::seed_from_u64(derive_stream_seed(
            self.lookup_seed,
            stable_hash(host.as_str().as_bytes()) ^ now.0.rotate_left(32),
        ));
        let (answer, t_eff, ttl) = view.resolve_degraded(host, client, now, &mut rng, inj, report)?;
        self.observations.push(PdnsObservation {
            host: host.clone(),
            ip: answer.ip,
            time: t_eff,
        });
        let fresh = CacheEntry {
            answer,
            expires: t_eff.plus_secs(ttl as u64),
        };
        // One clone per steady-state miss (the observation above): expired
        // entries refresh in place, so the key is cloned again only on a
        // host's first-ever miss. The id path below clones nothing at all.
        match self.entries.get_mut(host) {
            Some(e) => *e = fresh,
            None => {
                self.entries.insert(host.clone(), fresh);
            }
        }
        Ok((answer, t_eff))
    }

    /// The allocation-free study path (DESIGN.md §5f): semantics of
    /// [`DnsCache::resolve_shared`] over interned host ids. The miss-RNG
    /// seed derives from the view's precomputed `stable_hash` of the host
    /// bytes — the same value the string path hashes per miss — so answers,
    /// effective times, and fault coins are bit-identical. No `Domain` is
    /// cloned anywhere: cache slots are a dense `Vec` indexed by id and
    /// observations buffer the id.
    pub fn resolve_shared_id(
        &mut self,
        view: &IndexedZoneView<'_>,
        host_id: DomainId,
        client: &ClientCtx,
        now: SimTime,
        inj: &FaultInjector,
        report: &mut DegradationReport,
    ) -> Result<(ZoneServer, SimTime), FaultError> {
        let idx = host_id.0 as usize;
        if self.by_id.len() <= idx {
            self.by_id.resize(idx + 1, None);
        }
        if let Some(entry) = self.by_id[idx] {
            if now < entry.expires {
                self.hits += 1;
                report.dns_cache_hits += 1;
                return Ok((entry.answer, now));
            }
        }
        self.misses += 1;
        report.dns_cache_misses += 1;
        let mut rng = StdRng::seed_from_u64(derive_stream_seed(
            self.lookup_seed,
            view.host_hash(host_id) ^ now.0.rotate_left(32),
        ));
        let (answer, t_eff, ttl) =
            view.resolve_degraded_id(host_id, client, now, &mut rng, inj, report)?;
        self.id_observations.push(PdnsIdObservation {
            host: host_id,
            ip: answer.ip,
            time: t_eff,
        });
        self.by_id[idx] = Some(CacheEntry {
            answer,
            expires: t_eff.plus_secs(ttl as u64),
        });
        Ok((answer, t_eff))
    }

    /// Drains the buffered pDNS observations (in lookup order) for replay
    /// into [`DnsSim::absorb_observations`].
    pub fn take_observations(&mut self) -> Vec<PdnsObservation> {
        std::mem::take(&mut self.observations)
    }

    /// Drains the buffered id observations (in lookup order) for replay
    /// into [`DnsSim::absorb_id_observations`].
    pub fn take_id_observations(&mut self) -> Vec<PdnsIdObservation> {
        std::mem::take(&mut self.id_observations)
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses (authoritative queries) so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of live entries at `now`.
    pub fn live_entries(&self, now: SimTime) -> usize {
        self.entries.values().filter(|e| now < e.expires).count()
    }

    /// Drops expired entries (housekeeping; correctness never needs it).
    pub fn evict_expired(&mut self, now: SimTime) {
        self.entries.retain(|_, e| now < e.expires);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zone::{MappingPolicy, ZoneEntry};
    use rand::{rngs::StdRng, SeedableRng};
    use xborder_geo::{cc, CountryCode, WORLD};
    use xborder_netsim::ServerId;

    fn zone(host: &str, ip: &str, country: &str, ttl: u32) -> ZoneEntry {
        let c = WORLD.country_or_panic(CountryCode::parse(country).unwrap());
        ZoneEntry {
            host: Domain::new(host),
            servers: vec![ZoneServer {
                server: ServerId(1),
                ip: ip.parse().unwrap(),
                country: c.code,
                location: c.centroid(),
                valid: None,
            }],
            policy: MappingPolicy::Pinned,
            ttl_secs: ttl,
        }
    }

    fn client() -> ClientCtx {
        let de = WORLD.country_or_panic(cc!("DE"));
        ClientCtx::with_isp_resolver(cc!("DE"), de.centroid())
    }

    #[test]
    fn caches_within_ttl() {
        let mut dns = DnsSim::new();
        dns.add_zone(zone("t.x.com", "1.0.0.1", "DE", 300)).unwrap();
        let mut cache = DnsCache::new();
        let mut rng = StdRng::seed_from_u64(1);
        let host = Domain::new("t.x.com");

        cache.resolve(&mut dns, &host, &client(), SimTime(0), &mut rng).unwrap();
        cache.resolve(&mut dns, &host, &client(), SimTime(299), &mut rng).unwrap();
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
        // The authoritative side (and its pDNS sensor) saw exactly one query.
        assert_eq!(dns.pdns().forward(&host).len(), 1);
        assert_eq!(dns.pdns().forward(&host)[0].count, 1);
    }

    #[test]
    fn expires_after_ttl() {
        let mut dns = DnsSim::new();
        dns.add_zone(zone("t.x.com", "1.0.0.1", "DE", 300)).unwrap();
        let mut cache = DnsCache::new();
        let mut rng = StdRng::seed_from_u64(2);
        let host = Domain::new("t.x.com");

        cache.resolve(&mut dns, &host, &client(), SimTime(0), &mut rng).unwrap();
        cache.resolve(&mut dns, &host, &client(), SimTime(300), &mut rng).unwrap();
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn ttl_boundary_is_half_open() {
        // An answer cached at t with TTL d serves [t, t+d) — the instant
        // `now == expires` is already a miss, on both resolve paths.
        let mut dns = DnsSim::new();
        dns.add_zone(zone("t.x.com", "1.0.0.1", "DE", 100)).unwrap();
        let host = Domain::new("t.x.com");

        let mut cache = DnsCache::new();
        let mut rng = StdRng::seed_from_u64(7);
        cache.resolve(&mut dns, &host, &client(), SimTime(0), &mut rng).unwrap();
        cache.resolve(&mut dns, &host, &client(), SimTime(99), &mut rng).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        cache.resolve(&mut dns, &host, &client(), SimTime(100), &mut rng).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
        assert_eq!(cache.live_entries(SimTime(199)), 1);
        assert_eq!(cache.live_entries(SimTime(200)), 0);

        let mut shared = DnsCache::for_user(42, 7);
        let inj = FaultInjector::inactive();
        let mut report = DegradationReport::default();
        let view = dns.view();
        shared.resolve_shared(&view, &host, &client(), SimTime(0), &inj, &mut report).unwrap();
        shared.resolve_shared(&view, &host, &client(), SimTime(99), &inj, &mut report).unwrap();
        shared.resolve_shared(&view, &host, &client(), SimTime(100), &inj, &mut report).unwrap();
        assert_eq!((shared.hits(), shared.misses()), (1, 2));
        assert_eq!(report.dns_cache_hits, 1);
        assert_eq!(report.dns_cache_misses, 2);
        assert_eq!(shared.take_observations().len(), 2);
    }

    #[test]
    fn shared_path_buffers_observations_instead_of_capturing() {
        let mut dns = DnsSim::new();
        dns.add_zone(zone("t.x.com", "1.0.0.1", "DE", 300)).unwrap();
        let host = Domain::new("t.x.com");
        let inj = FaultInjector::inactive();
        let mut report = DegradationReport::default();

        let mut cache = DnsCache::for_user(1, 2);
        let view = dns.view();
        let (ans, t_eff) = cache
            .resolve_shared(&view, &host, &client(), SimTime(50), &inj, &mut report)
            .unwrap();
        assert_eq!(t_eff, SimTime(50));
        // Hit within TTL: no new observation.
        cache.resolve_shared(&view, &host, &client(), SimTime(60), &inj, &mut report).unwrap();
        assert!(dns.pdns().is_empty(), "view resolution must not capture");

        let obs = cache.take_observations();
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].ip, ans.ip);
        dns.absorb_observations(&obs);
        assert_eq!(dns.pdns().forward(&host).len(), 1);
        assert_eq!(dns.pdns().forward(&host)[0].count, 1);
        assert!(cache.take_observations().is_empty(), "drain is one-shot");
    }

    #[test]
    fn redirection_takes_one_ttl_to_roll_out() {
        // The paper's Sect. 5.1 dynamic: flip the zone to a new country and
        // the old answer lingers until the TTL runs out.
        let mut dns = DnsSim::new();
        dns.add_zone(zone("t.x.com", "1.0.0.1", "US", 7200)).unwrap();
        let mut cache = DnsCache::new();
        let mut rng = StdRng::seed_from_u64(3);
        let host = Domain::new("t.x.com");

        let before = cache.resolve(&mut dns, &host, &client(), SimTime(0), &mut rng).unwrap();
        assert_eq!(before.country, cc!("US"));

        // Operator redirects to a German server ("GDPR-friendly DNS").
        dns.add_zone(zone("t.x.com", "1.0.0.2", "DE", 7200)).unwrap();

        // Mid-TTL: still the stale US answer.
        let stale = cache.resolve(&mut dns, &host, &client(), SimTime(3600), &mut rng).unwrap();
        assert_eq!(stale.country, cc!("US"));
        // Post-TTL: the redirection is live.
        let fresh = cache.resolve(&mut dns, &host, &client(), SimTime(7200), &mut rng).unwrap();
        assert_eq!(fresh.country, cc!("DE"));
    }

    #[test]
    fn eviction_and_live_count() {
        let mut dns = DnsSim::new();
        dns.add_zone(zone("a.x.com", "1.0.0.1", "DE", 100)).unwrap();
        dns.add_zone(zone("b.x.com", "1.0.0.2", "DE", 1000)).unwrap();
        let mut cache = DnsCache::new();
        let mut rng = StdRng::seed_from_u64(4);
        cache.resolve(&mut dns, &Domain::new("a.x.com"), &client(), SimTime(0), &mut rng).unwrap();
        cache.resolve(&mut dns, &Domain::new("b.x.com"), &client(), SimTime(0), &mut rng).unwrap();
        assert_eq!(cache.live_entries(SimTime(50)), 2);
        assert_eq!(cache.live_entries(SimTime(500)), 1);
        cache.evict_expired(SimTime(500));
        assert_eq!(cache.live_entries(SimTime(50)), 1);
    }

    #[test]
    fn nxdomain_is_not_cached() {
        let mut dns = DnsSim::new();
        let mut cache = DnsCache::new();
        let mut rng = StdRng::seed_from_u64(5);
        let host = Domain::new("missing.com");
        for _ in 0..3 {
            assert!(cache.resolve(&mut dns, &host, &client(), SimTime(0), &mut rng).is_err());
        }
        assert_eq!(cache.misses(), 3);
    }

    #[test]
    fn id_path_matches_string_path_bit_for_bit() {
        use xborder_webgraph::DomainTable;
        // Same lookup stream, same hosts, same times: the dense id path
        // must produce identical answers, effective times, counters, and
        // (after id→domain replay) identical pDNS content.
        let mut dns = DnsSim::new();
        dns.add_zone(zone("a.x.com", "1.0.0.1", "DE", 100)).unwrap();
        dns.add_zone(zone("b.x.com", "1.0.0.2", "US", 300)).unwrap();
        let mut domains = DomainTable::new();
        let hosts = [Domain::new("a.x.com"), Domain::new("b.x.com")];
        let ids = [domains.intern(&hosts[0]), domains.intern(&hosts[1])];
        let view = dns.view();
        let iview = dns.indexed_view(&domains);
        let inj = FaultInjector::inactive();

        let mut string_cache = DnsCache::for_user(99, 3);
        let mut id_cache = DnsCache::for_user(99, 3);
        let mut rep_s = DegradationReport::default();
        let mut rep_i = DegradationReport::default();
        for step in 0..40u64 {
            let h = (step % 2) as usize;
            let t = SimTime(step * 37);
            let a = string_cache
                .resolve_shared(&view, &hosts[h], &client(), t, &inj, &mut rep_s)
                .unwrap();
            let b = id_cache
                .resolve_shared_id(&iview, ids[h], &client(), t, &inj, &mut rep_i)
                .unwrap();
            assert_eq!(a, b, "answers diverged at step {step}");
        }
        assert_eq!((string_cache.hits(), string_cache.misses()), (id_cache.hits(), id_cache.misses()));
        assert_eq!(rep_s.dns_cache_hits, rep_i.dns_cache_hits);
        assert_eq!(rep_s.dns_cache_misses, rep_i.dns_cache_misses);

        let obs_s = string_cache.take_observations();
        let obs_i = id_cache.take_id_observations();
        assert_eq!(obs_s.len(), obs_i.len());
        let mut replay_s = DnsSim::new();
        let mut replay_i = DnsSim::new();
        replay_s.absorb_observations(&obs_s);
        replay_i.absorb_id_observations(&obs_i, &domains);
        for h in &hosts {
            assert_eq!(replay_s.pdns().forward(h), replay_i.pdns().forward(h));
        }
    }

    #[test]
    fn lookup_streams_differ_per_user_and_are_reproducible() {
        // Two users' lookup seeds are decorrelated; the same user's seed is
        // stable — the per-user determinism the parallel study rests on.
        let a = DnsCache::for_user(9, 0);
        let b = DnsCache::for_user(9, 1);
        let a2 = DnsCache::for_user(9, 0);
        assert_ne!(a.lookup_seed, b.lookup_seed);
        assert_eq!(a.lookup_seed, a2.lookup_seed);
    }
}
