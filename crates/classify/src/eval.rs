//! Scoring the classifier against the synthetic world's ground truth.
//!
//! Ground truth (`ServiceKind::is_tracking`) exists only because this is a
//! simulation; the paper could not compute recall. We can, and use it to
//! verify the mechanism the paper argues for: blocklists alone miss a large
//! share of cascade traffic, and the semi-automatic pass recovers most of
//! it without flagging clean services.

use crate::classifier::ClassificationResult;
use serde::{Deserialize, Serialize};
use xborder_browser::LoggedRequest;
use xborder_webgraph::WebGraph;

/// Confusion counts of a classification run against ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Evaluation {
    /// Tracking requests correctly flagged.
    pub true_positives: usize,
    /// Clean requests incorrectly flagged.
    pub false_positives: usize,
    /// Tracking requests missed.
    pub false_negatives: usize,
    /// Clean requests correctly passed.
    pub true_negatives: usize,
}

impl Evaluation {
    /// Precision (1.0 when nothing was flagged).
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Recall (1.0 when nothing was trackable).
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// F1 score.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Evaluates a classification result against the web graph's ground truth.
pub fn evaluate(
    requests: &[LoggedRequest],
    result: &ClassificationResult,
    graph: &WebGraph,
) -> Evaluation {
    let mut e = Evaluation::default();
    for (i, r) in requests.iter().enumerate() {
        let truth = graph
            .service_by_host_id(r.host)
            .map(|s| graph.service(s).is_tracking())
            .unwrap_or(false);
        let flagged = result.is_tracking(i);
        match (truth, flagged) {
            (true, true) => e.true_positives += 1,
            (false, true) => e.false_positives += 1,
            (true, false) => e.false_negatives += 1,
            (false, false) => e.true_negatives += 1,
        }
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_formulas() {
        let e = Evaluation {
            true_positives: 80,
            false_positives: 0,
            false_negatives: 20,
            true_negatives: 100,
        };
        assert!((e.precision() - 1.0).abs() < 1e-9);
        assert!((e.recall() - 0.8).abs() < 1e-9);
        assert!((e.f1() - (2.0 * 0.8 / 1.8)).abs() < 1e-9);
    }

    #[test]
    fn degenerate_cases() {
        let empty = Evaluation::default();
        assert_eq!(empty.precision(), 1.0);
        assert_eq!(empty.recall(), 1.0);
        assert_eq!(empty.f1(), 1.0);
    }
}
