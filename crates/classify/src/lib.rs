//! Tracking-flow classification (paper Sect. 3.2).
//!
//! The paper identifies tracking flows in three stages:
//!
//! 1. **Blocklists, used passively.** The easylist/easyprivacy rules are
//!    matched against every logged request, but nothing is blocked — the
//!    extension let the page run, so cascade requests exist in the log.
//!    Matching requests form the initial *list of tracking flows* (LTF).
//! 2. **Referrer propagation.** A request whose referrer URL is already in
//!    the LTF *and* whose URL carries arguments (argument passing is how
//!    trackers move identifiers) joins the LTF. This is what catches the
//!    RTB cascade the blocklists never see, roughly doubling detected
//!    flows (Table 2).
//! 3. **Keyword matching.** Remaining requests with arguments and telltale
//!    keywords ("usermatch", "rtb", "cookiesync", ...) join the LTF.
//!
//! [`rules`] is the filter-list engine, [`listgen`] writes
//! easylist/easyprivacy-style lists from the synthetic world's blocklist
//! bits, [`classifier`] runs the three stages over a whole log,
//! [`incremental`] is the chunk-at-a-time delta-fixpoint twin the
//! streaming driver uses, and [`eval`] scores the result against ground
//! truth.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classifier;
pub mod engine;
pub mod eval;
pub mod incremental;
pub mod listgen;
pub mod rules;

pub use classifier::{
    classify, classify_with_stages, classify_with_stages_threads, method_counts,
    Classification, ClassificationResult, ClassifierStages, MethodCounts,
};
pub use engine::{AhoCorasick, HostRow, KeywordScanner, RuleEngine, TokenPrefilter};
pub use incremental::{ChunkClassification, IncrementalClassifier};
pub use eval::{evaluate, Evaluation};
pub use listgen::generate_lists;
pub use rules::{FilterList, FilterRule, HostGate};
