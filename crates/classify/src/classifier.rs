//! The three-stage tracking-flow classifier (paper Sect. 3.2).
//!
//! # Algorithm
//!
//! A prelude pass interns the log's URLs into dense ids (the log repeats a
//! few tens of thousands of URLs across ~100k requests) and remaps the
//! world-level `DomainId`s on each request (DESIGN.md §5f) to log-local
//! dense host ids — an array lookup, since hosts arrive pre-interned from
//! the study. Every stage below is then an array pass and all per-string
//! work — `tld()`, gate resolution, keyword scanning — runs once per
//! *unique* value, with host strings resolved through the caller's
//! [`DomainTable`] only at those once-per-unique sites.
//!
//! Stage 1 matches the blocklists through the compiled
//! [`RuleEngine`](crate::engine::RuleEngine) (DESIGN.md §5h): hosts
//! resolve once per unique host to a dense [`HostRow`] (always / never /
//! url-dependent + the host's TLD id), and URL-dependent verdicts are one
//! Aho-Corasick pass, memoized per unique URL. Stage 1 is embarrassingly
//! parallel and shards over the request log when given a thread budget.
//!
//! Stage 2 propagates tracking labels along referrer edges. Referrer
//! indices in a compacted log point *backwards* (a parent is logged before
//! its children), so one ordered forward sweep reaches the fixpoint — no
//! repeated whole-log rescans. Should an input ever violate that ordering,
//! the sweep detects the forward edge and falls back to an explicit
//! worklist that runs to true convergence, so deep chains are never
//! silently truncated (a previous revision capped the fixpoint at 16/32
//! rounds and mislabeled chains deeper than the cap).
//!
//! Stage 3 keyword-matches the remaining argument-carrying requests
//! (memoized per unique URL), then re-propagates from exactly the newly
//! labeled requests via the worklist — again to true convergence.

use crate::engine::{HostRow, KeywordScanner, RuleEngine};
use crate::rules::FilterList;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use xborder_browser::{LoggedRequest, Referrer};
use xborder_webgraph::{fx_hash, Domain, DomainTable, FxMap};

/// Per-request classification outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Classification {
    /// Matched by the easylist/easyprivacy rules (stage 1).
    AbpTracking,
    /// Added by the semi-automatic pass: referrer propagation (stage 2) or
    /// keyword matching (stage 3).
    SemiTracking,
    /// Not identified as tracking ("clean" third-party flow).
    Clean,
}

impl Classification {
    /// True for either tracking class.
    pub fn is_tracking(&self) -> bool {
        !matches!(self, Classification::Clean)
    }
}

/// Per-method aggregate counts — the columns of the paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MethodCounts {
    /// Distinct FQDNs among this method's tracking flows.
    pub n_fqdn: usize,
    /// Distinct pay-level domains ("TLD" in paper terms).
    pub n_tld: usize,
    /// Distinct request URLs.
    pub n_unique_urls: usize,
    /// Total requests.
    pub n_total_requests: usize,
}

/// The classifier's full output.
///
/// # Index invariant
///
/// `labels` is parallel to the classified request slice: label `i` belongs
/// to request `i`. Callers must index with positions from the *same* slice
/// the classifier ran over — after log faults drop entries, the remapping
/// in `xborder-browser`'s `extension.rs` compacts both the requests and
/// their referrer indices together, so compacted positions stay valid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassificationResult {
    /// Per-request labels, parallel to the input slice.
    pub labels: Vec<Classification>,
    /// Stage-1 (blocklist) counts: Table 2, row 1.
    pub abp: MethodCounts,
    /// Stage-2/3 (semi-automatic) counts: Table 2, row 2.
    pub semi: MethodCounts,
    /// Total propagation sweeps across both referrer stages (back-compat:
    /// the sum of [`ClassificationResult::stage2_rounds`] and
    /// [`ClassificationResult::stage3_rounds`]).
    pub propagation_rounds: usize,
    /// Sweeps the stage-2 referrer propagation needed: 1 for the ordered
    /// forward pass, plus the worklist depth if the input had forward-
    /// pointing referrers.
    pub stage2_rounds: usize,
    /// Propagation depth of the post-keyword re-propagation (0 when the
    /// keyword stage enabled nothing further).
    pub stage3_rounds: usize,
}

impl ClassificationResult {
    /// Label of request `i`.
    ///
    /// `i` must be a position in the request slice this result was computed
    /// from (see the struct-level index invariant).
    pub fn label(&self, i: usize) -> Classification {
        debug_assert!(
            i < self.labels.len(),
            "request index {i} out of range ({} labels): labels are parallel to the \
             classified slice; use positions from the same (compacted) request log",
            self.labels.len()
        );
        self.labels[i]
    }

    /// True if request `i` was classified as tracking by any stage.
    ///
    /// Same index invariant as [`ClassificationResult::label`].
    pub fn is_tracking(&self, i: usize) -> bool {
        debug_assert!(
            i < self.labels.len(),
            "request index {i} out of range ({} labels): labels are parallel to the \
             classified slice; use positions from the same (compacted) request log",
            self.labels.len()
        );
        self.labels[i].is_tracking()
    }

    /// Total tracking requests over both methods (Table 2, "Total" row).
    pub fn total_tracking_requests(&self) -> usize {
        self.abp.n_total_requests + self.semi.n_total_requests
    }
}

/// Stage toggles for the classifier-ablation experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassifierStages {
    /// Run the referrer-propagation stage.
    pub referrer_propagation: bool,
    /// Require URL arguments for referrer propagation (the paper does).
    pub require_args: bool,
    /// Run the keyword stage.
    pub keywords: bool,
}

impl Default for ClassifierStages {
    fn default() -> Self {
        ClassifierStages {
            referrer_propagation: true,
            require_args: true,
            keywords: true,
        }
    }
}

/// Runs the full classifier over a request log, single-threaded.
///
/// `domains` is the world interner the log's `DomainId`s index into
/// (`ExtensionDataset::domains` / `WebGraph::domains`).
pub fn classify(
    requests: &[LoggedRequest],
    domains: &DomainTable,
    easylist: &FilterList,
    easyprivacy: &FilterList,
) -> ClassificationResult {
    classify_with_stages(
        requests,
        domains,
        easylist,
        easyprivacy,
        ClassifierStages::default(),
    )
}

/// Runs the classifier with configurable stages (ablation entry point).
pub fn classify_with_stages(
    requests: &[LoggedRequest],
    domains: &DomainTable,
    easylist: &FilterList,
    easyprivacy: &FilterList,
    stages: ClassifierStages,
) -> ClassificationResult {
    classify_with_stages_threads(requests, domains, easylist, easyprivacy, stages, 1)
}

/// [`classify_with_stages`] with a thread budget for stage 1.
///
/// Output is bit-identical for every `threads` value: the shards write
/// disjoint label ranges and each request's stage-1 verdict depends only on
/// the request itself, never on shard-local state that could differ across
/// splits.
pub fn classify_with_stages_threads(
    requests: &[LoggedRequest],
    domains: &DomainTable,
    easylist: &FilterList,
    easyprivacy: &FilterList,
    stages: ClassifierStages,
    threads: usize,
) -> ClassificationResult {
    let mut engine = RuleEngine::compile(&[easylist, easyprivacy]);
    classify_with_engine(requests, domains, &mut engine, stages, threads)
}

/// Runs the classifier against an already-compiled [`RuleEngine`] (the
/// union of the lists it was compiled from). This is the amortized entry
/// point: compile once per filter-list freeze, classify many logs —
/// verdicts are identical to [`classify_with_stages_threads`] on the same
/// lists. `engine` is `&mut` only to let it fill its host-row/TLD caches;
/// reusing a warm engine across calls is the point.
pub fn classify_with_engine(
    requests: &[LoggedRequest],
    domains: &DomainTable,
    engine: &mut RuleEngine,
    stages: ClassifierStages,
    threads: usize,
) -> ClassificationResult {
    // Intern the log's heavily-repeated URLs into dense ids once and remap
    // the pre-interned host ids to log-local ones; every stage after this
    // is an array pass instead of repeated string hashing.
    let mut interned = Interned::build_core(requests);
    // One engine resolution per unique host yields the stage-1 gate AND
    // the dense TLD id in the same pass — the separate per-unique-host
    // `tld()` derivation the interner used to run is gone.
    let rows: Vec<HostRow> = interned
        .host_rep
        .iter()
        .map(|&rep| engine.host_row(requests[rep as usize].host, domains))
        .collect();
    interned.tld_of_host = rows.iter().map(|r| r.tld()).collect();
    interned.n_tlds = engine.n_tlds();
    // Per-unique-URL predicate memos, filled on demand. Stage 2 only ever
    // asks about requests whose parent is tracking, and stage 3 only about
    // requests still clean afterwards — in a tracker-heavy log that is a
    // small minority of the unique URLs, so evaluating eagerly during
    // interning (as a previous revision did) wastes the bulk of the
    // keyword-scanning work. Laziness is invisible in the output: both
    // predicates are pure functions of the URL string.
    let mut args_memo = UrlMemo::new(interned.n_urls());
    let mut kw_memo = UrlMemo::new(interned.n_urls());
    let scanner = KeywordScanner::new();

    // Stage 1: blocklists, matched passively against every request.
    let mut labels = stage1_blocklists(requests, &interned, domains, engine, &rows, threads.max(1));

    // Referrer edges are positional; children of dropped parents were
    // remapped to `Referrer::FirstParty` by the log compaction, so every
    // surviving index is in range (debug-asserted in the sweep).
    let mut children: Option<ChildIndex> = None;

    // Stage 2: referrer propagation to fixpoint. Referrers point backwards
    // in a compacted log, so one ordered forward sweep converges; if a
    // forward-pointing edge is ever present, fall back to the worklist for
    // true convergence instead of silently under-labeling.
    let mut stage2_rounds = 0usize;
    if stages.referrer_propagation {
        stage2_rounds = 1;
        let mut forward_edges = false;
        for i in 0..requests.len() {
            let p = interned.referrer_of[i] as usize;
            if p == NO_REFERRER as usize {
                continue;
            }
            debug_assert!(
                p < requests.len(),
                "referrer index {p} out of range ({} requests): log compaction must \
                 rewrite surviving referrer indices",
                requests.len()
            );
            if p >= i {
                forward_edges = true;
                continue;
            }
            if labels[i].is_tracking() || !labels[p].is_tracking() {
                continue;
            }
            if stages.require_args
                && !args_memo.get(interned.url_of[i], || requests[i].has_args())
            {
                continue;
            }
            labels[i] = Classification::SemiTracking;
        }
        if forward_edges {
            let idx = children.get_or_insert_with(|| ChildIndex::build(&interned.referrer_of));
            let seeds: Vec<usize> = (0..requests.len())
                .filter(|&i| labels[i].is_tracking())
                .collect();
            stage2_rounds +=
                propagate_worklist(requests, &interned, &mut labels, stages, &mut args_memo, idx, seeds);
        }
    }

    // Stage 3: argument + keyword matching on what's left, memoized per
    // unique URL so each distinct string is scanned at most once.
    let mut stage3_rounds = 0usize;
    if stages.keywords {
        let mut newly: Vec<usize> = Vec::new();
        for i in 0..requests.len() {
            if labels[i].is_tracking() {
                continue;
            }
            let u = interned.url_of[i];
            if !args_memo.get(u, || requests[i].has_args())
                || !kw_memo.get(u, || scanner.matches(&requests[i].url))
            {
                continue;
            }
            labels[i] = Classification::SemiTracking;
            newly.push(i);
        }
        // Keyword additions may unlock more referrer propagation: re-
        // propagate from exactly the newly labeled requests.
        if stages.referrer_propagation && !newly.is_empty() {
            let idx = children.get_or_insert_with(|| ChildIndex::build(&interned.referrer_of));
            stage3_rounds =
                propagate_worklist(requests, &interned, &mut labels, stages, &mut args_memo, idx, newly);
        }
    }

    let (abp, semi) = method_counts_both(&interned, &labels);

    ClassificationResult {
        labels,
        abp,
        semi,
        propagation_rounds: stage2_rounds + stage3_rounds,
        stage2_rounds,
        stage3_rounds,
    }
}

/// Recomputes both Table-2 [`MethodCounts`] rows from a request log and its
/// per-request labels.
///
/// This is the streaming pipeline's finalizer: per-chunk classification
/// yields exact labels (referrer chains never cross chunk boundaries, and
/// every other verdict is per-request), but the *distinct* FQDN / TLD /
/// URL counts are not additive across chunks — a host first seen in chunk
/// 0 must not count again in chunk 3. So the stream concatenates labels
/// and calls this once over the full log, which is exactly the
/// `method_counts_both` pass the batch classifier ends with.
///
/// `labels` must be parallel to `requests` (see the index invariant on
/// [`ClassificationResult`]).
pub fn method_counts(
    requests: &[LoggedRequest],
    domains: &DomainTable,
    labels: &[Classification],
) -> (MethodCounts, MethodCounts) {
    assert_eq!(
        requests.len(),
        labels.len(),
        "labels must be parallel to the request slice"
    );
    let interned = Interned::build(requests, domains);
    method_counts_both(&interned, labels)
}

/// Open-addressing URL interner specialized for one pass over a request log.
///
/// Two things make it faster than a general-purpose map here:
/// - slots are 12 bytes (tag, id, last occurrence), so the whole table for
///   ~47k unique URLs fits in ~768 KiB instead of ~1.4 MiB of key pointers;
/// - equality is verified against the *most recent* occurrence of the URL,
///   not the first. High-frequency URLs recur every few dozen requests, so
///   the comparison target is usually still in cache, where the first
///   occurrence of a hot URL is tens of megabytes of allocations away.
///
/// Lookups stay exact: a 32-bit hash tag only short-circuits the full byte
/// comparison, it never replaces it.
struct UrlTable {
    /// Slot array, length a power of two. One slot is 12 bytes so a probe
    /// costs at most one cache line.
    slots: Vec<Slot>,
    mask: usize,
    len: u32,
}

/// `id1` is the interned id plus one (0 = empty slot); `last` is the index
/// of the most recent request that carried this URL.
#[derive(Clone, Copy, Default)]
struct Slot {
    tag: u32,
    id1: u32,
    last: u32,
}

enum UrlSlot {
    /// URL was seen before; its id.
    Existing(u32),
    /// First occurrence; the caller must push the per-unique side tables.
    New(u32),
}

impl UrlTable {
    fn with_capacity(n: usize) -> UrlTable {
        // Slots ≈ 2× expected uniques keeps the load factor under ~0.75
        // without a growth path for the common case.
        let slots = n.max(16).next_power_of_two();
        UrlTable {
            slots: vec![Slot::default(); slots],
            mask: slots - 1,
            len: 0,
        }
    }

    /// Pulls the slot a hash maps to into cache ahead of its `intern` call.
    fn prefetch(&self, hash: u64) {
        std::hint::black_box(self.slots[hash as usize & self.mask].id1);
    }

    fn intern(&mut self, hash: u64, url: &str, i: u32, requests: &[LoggedRequest]) -> UrlSlot {
        if self.len as usize * 4 >= self.slots.len() * 3 {
            self.grow(requests);
        }
        let tag = (hash >> 32) as u32;
        let mut s = hash as usize & self.mask;
        loop {
            let slot = self.slots[s];
            if slot.id1 == 0 {
                self.len += 1;
                self.slots[s] = Slot {
                    tag,
                    id1: self.len,
                    last: i,
                };
                return UrlSlot::New(self.len - 1);
            }
            if slot.tag == tag && &*requests[slot.last as usize].url == url {
                self.slots[s].last = i;
                return UrlSlot::Existing(slot.id1 - 1);
            }
            s = (s + 1) & self.mask;
        }
    }

    /// Doubles the table, recomputing each slot's hash from its last-seen
    /// occurrence. Cold path: only reached if the caller's capacity guess
    /// undershot the unique-URL count by more than 2×.
    fn grow(&mut self, requests: &[LoggedRequest]) {
        let n = self.slots.len() * 2;
        let mut next = UrlTable {
            slots: vec![Slot::default(); n],
            mask: n - 1,
            len: self.len,
        };
        for slot in &self.slots {
            if slot.id1 == 0 {
                continue;
            }
            let hash = url_hash(requests[slot.last as usize].url.as_bytes());
            let mut d = hash as usize & next.mask;
            while next.slots[d].id1 != 0 {
                d = (d + 1) & next.mask;
            }
            next.slots[d] = *slot;
        }
        *self = next;
    }
}

/// Sentinel in [`Interned::referrer_of`] for "no positional referrer".
pub(crate) const NO_REFERRER: u32 = u32::MAX;

/// Dedup-probe hash for URL strings: FxHash over the final 32 bytes,
/// mixed with the length. Simulator URLs share long `scheme://host/path`
/// prefixes and differ in their identity-token/query tails, so the tail
/// carries nearly all the entropy at a fraction of the whole-string
/// hashing cost. Safe to weaken: the hash only *locates* probe slots —
/// equality is always verified byte-for-byte, and interned ids are
/// assigned in first-occurrence order, so collisions cost a compare, never
/// a wrong id.
pub(crate) fn url_hash(bytes: &[u8]) -> u64 {
    fx_hash(&bytes[bytes.len().saturating_sub(32)..])
        .wrapping_add((bytes.len() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Dense-id view of a request log, built in one sequential pass. Requests
/// repeat a small set of hosts and URLs thousands of times over; interning
/// them up front turns every later stage into an array pass and confines
/// expensive per-string work (`tld()`, gate resolution, keyword scans) to
/// once per *unique* value.
struct Interned {
    /// Request index -> unique-host id.
    host_of: Vec<u32>,
    /// Request index -> unique-URL id.
    url_of: Vec<u32>,
    /// Unique-host id -> a representative request index (to borrow the
    /// host string back without storing lifetimes here).
    host_rep: Vec<u32>,
    /// Unique-URL id -> a representative request index.
    url_rep: Vec<u32>,
    /// Unique-host id -> dense pay-level-domain id (one `tld()` call per
    /// unique host instead of one per request).
    tld_of_host: Vec<u32>,
    n_tlds: usize,
    /// Request index -> referrer request index, or `NO_REFERRER` for
    /// first-party/absent referrers. Extracted here so the propagation
    /// stages run over a dense array instead of re-streaming the (much
    /// larger) request structs.
    referrer_of: Vec<u32>,
}

/// Tri-state per-unique-URL memo for predicates that are pure functions of
/// the URL string (argument presence, keyword verdict): unknown until first
/// asked, then cached by dense URL id.
struct UrlMemo {
    v: Vec<u8>,
}

impl UrlMemo {
    const UNKNOWN: u8 = 0;
    const NO: u8 = 1;
    const YES: u8 = 2;

    fn new(n_urls: usize) -> UrlMemo {
        UrlMemo {
            v: vec![Self::UNKNOWN; n_urls],
        }
    }

    fn get(&mut self, url_id: u32, eval: impl FnOnce() -> bool) -> bool {
        let slot = &mut self.v[url_id as usize];
        if *slot == Self::UNKNOWN {
            *slot = if eval() { Self::YES } else { Self::NO };
        }
        *slot == Self::YES
    }
}

impl Interned {
    /// Full build including the standalone TLD pass — the path for callers
    /// without a [`RuleEngine`] (e.g. [`method_counts`]). The engine-backed
    /// classify path uses [`Interned::build_core`] and takes TLD ids from
    /// the engine's host rows instead.
    fn build(requests: &[LoggedRequest], domains: &DomainTable) -> Interned {
        let mut interned = Interned::build_core(requests);
        let mut tld_ids: FxMap<Domain, u32> = FxMap::default();
        let mut tld_of_host = Vec::with_capacity(interned.host_rep.len());
        for &rep in &interned.host_rep {
            let tld = domains.domain(requests[rep as usize].host).tld();
            let next = tld_ids.len() as u32;
            tld_of_host.push(*tld_ids.entry(tld).or_insert(next));
        }
        interned.tld_of_host = tld_of_host;
        interned.n_tlds = tld_ids.len();
        interned
    }

    /// Interns hosts/URLs/referrers but leaves `tld_of_host`/`n_tlds`
    /// empty for the caller to fill.
    fn build_core(requests: &[LoggedRequest]) -> Interned {
        let n = requests.len();
        // World `DomainId` -> log-local dense host id (`u32::MAX` =
        // unseen), lazily grown. Hosts arrive pre-interned from the study,
        // so the former per-request host-string hashing collapses to an
        // array lookup.
        let mut host_remap: Vec<u32> = Vec::new();
        let mut url_ids = UrlTable::with_capacity(n);
        let mut host_of = Vec::with_capacity(n);
        let mut url_of = Vec::with_capacity(n);
        let mut host_rep: Vec<u32> = Vec::new();
        let mut url_rep: Vec<u32> = Vec::new();
        let mut referrer_of = Vec::with_capacity(n);
        // Unique-URL id -> unique-host id. A URL string embeds its host,
        // so equal URLs share a host: repeated URLs resolve their host id
        // through the URL map without touching the host map — or the host
        // string — at all (debug-asserted below).
        let mut host_of_url: Vec<u32> = Vec::new();
        // The pass is software-pipelined around the log's two cache-hostile
        // access patterns:
        //  - each URL string is a fresh pointer chase the hardware
        //    prefetcher cannot follow, so a byte of the string BYTES_AHEAD
        //    iterations out is touched early to overlap the DRAM latency
        //    (`copied()` matters: it forces the load, not just the address);
        //  - the dedup table is a random probe per request, so the URL
        //    HASH_AHEAD iterations out is hashed early (its bytes arrived
        //    via the byte prefetch) and its slot pulled into cache, leaving
        //    the probe at iteration `i` to hit warm lines.
        // `ring` carries the HASH_AHEAD in-flight hashes; request `i` is
        // interned with the hash computed HASH_AHEAD iterations ago, while
        // its string bytes are still in L1.
        const BYTES_AHEAD: usize = 16;
        const HASH_AHEAD: usize = 8;
        let mut ring = [0u64; HASH_AHEAD];
        for (j, slot) in ring.iter_mut().enumerate().take(n.min(HASH_AHEAD)) {
            *slot = url_hash(requests[j].url.as_bytes());
            url_ids.prefetch(*slot);
        }
        for (i, r) in requests.iter().enumerate() {
            if let Some(ahead) = requests.get(i + BYTES_AHEAD) {
                let u = ahead.url.as_bytes();
                std::hint::black_box(u.first().copied());
                std::hint::black_box(u.last().copied());
            }
            let hash = if let Some(ahead) = requests.get(i + HASH_AHEAD) {
                let h = url_hash(ahead.url.as_bytes());
                url_ids.prefetch(h);
                std::mem::replace(&mut ring[i % HASH_AHEAD], h)
            } else {
                ring[i % HASH_AHEAD]
            };
            let u = match url_ids.intern(hash, &r.url, i as u32, requests) {
                UrlSlot::New(u) => {
                    url_rep.push(i as u32);
                    let hid = r.host.0 as usize;
                    if hid >= host_remap.len() {
                        host_remap.resize(hid + 1, u32::MAX);
                    }
                    let h = if host_remap[hid] == u32::MAX {
                        let next_h = host_rep.len() as u32;
                        host_remap[hid] = next_h;
                        host_rep.push(i as u32);
                        next_h
                    } else {
                        host_remap[hid]
                    };
                    host_of_url.push(h);
                    u
                }
                UrlSlot::Existing(u) => u,
            };
            debug_assert_eq!(
                requests[url_rep[u as usize] as usize].host,
                r.host,
                "requests sharing a URL string must share its embedded host"
            );
            url_of.push(u);
            host_of.push(host_of_url[u as usize]);
            referrer_of.push(match r.referrer {
                Referrer::Request(parent) => parent.0,
                Referrer::FirstParty | Referrer::None => NO_REFERRER,
            });
        }
        Interned {
            host_of,
            url_of,
            host_rep,
            url_rep,
            tld_of_host: Vec::new(),
            n_tlds: 0,
            referrer_of,
        }
    }

    fn n_hosts(&self) -> usize {
        self.host_rep.len()
    }

    fn n_urls(&self) -> usize {
        self.url_rep.len()
    }
}

/// Stage 1: blocklist matching through the compiled engine. Host rows are
/// already resolved (once per unique host, TLD ids included); the request
/// log shards over `threads` contiguous chunks, each a lookup pass over
/// dense ids, with a per-shard unique-URL memo where URL-dependent rules
/// remain. The engine is shared read-only across shards — `url_verdict`
/// takes `&self`, so no shard-local state can diverge.
fn stage1_blocklists(
    requests: &[LoggedRequest],
    interned: &Interned,
    domains: &DomainTable,
    engine: &RuleEngine,
    rows: &[HostRow],
    threads: usize,
) -> Vec<Classification> {
    let mut labels = vec![Classification::Clean; requests.len()];
    let n_urls = interned.n_urls();
    if threads <= 1 || requests.len() < 2 * threads {
        stage1_shard(
            requests,
            domains,
            n_urls,
            &interned.host_of,
            &interned.url_of,
            engine,
            rows,
            &mut labels,
        );
        return labels;
    }
    let chunk = requests.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for ((req_chunk, label_chunk), (host_ids, url_ids)) in requests
            .chunks(chunk)
            .zip(labels.chunks_mut(chunk))
            .zip(interned.host_of.chunks(chunk).zip(interned.url_of.chunks(chunk)))
        {
            scope.spawn(move || {
                stage1_shard(
                    req_chunk, domains, n_urls, host_ids, url_ids, engine, rows, label_chunk,
                )
            });
        }
    });
    labels
}

/// One stage-1 shard. A request's verdict depends only on its own host and
/// URL, so shards are independent; the unique-URL memo is shard-local (two
/// shards re-deriving the same URL's verdict produce the same bit).
#[allow(clippy::too_many_arguments)]
fn stage1_shard(
    requests: &[LoggedRequest],
    domains: &DomainTable,
    n_urls: usize,
    host_of: &[u32],
    url_of: &[u32],
    engine: &RuleEngine,
    rows: &[HostRow],
    labels: &mut [Classification],
) {
    // Per-unique-URL verdict: 0 = unevaluated, 1 = no match, 2 = match.
    // Allocated lazily — generated lists are all domain-anchored, so the
    // URL-dependent path usually never runs.
    let mut url_memo: Vec<u8> = Vec::new();
    for i in 0..requests.len() {
        let row = rows[host_of[i] as usize];
        let matched = if row.always() {
            true
        } else if row.never() {
            false
        } else {
            if url_memo.is_empty() {
                url_memo = vec![0u8; n_urls];
            }
            let u = url_of[i] as usize;
            match url_memo[u] {
                0 => {
                    let r = &requests[i];
                    let hit = engine.url_verdict(row, domains.domain(r.host), &r.url);
                    url_memo[u] = 1 + hit as u8;
                    hit
                }
                v => v == 2,
            }
        };
        if matched {
            labels[i] = Classification::AbpTracking;
        }
    }
}

/// Referrer children adjacency in CSR form, built once on demand.
pub(crate) struct ChildIndex {
    starts: Vec<u32>,
    children: Vec<u32>,
}

impl ChildIndex {
    pub(crate) fn build(referrer_of: &[u32]) -> ChildIndex {
        let n = referrer_of.len();
        let mut counts = vec![0u32; n + 1];
        for &p in referrer_of {
            if p != NO_REFERRER {
                counts[p as usize + 1] += 1;
            }
        }
        for i in 1..=n {
            counts[i] += counts[i - 1];
        }
        let starts = counts.clone();
        let mut fill = counts;
        let mut children = vec![0u32; starts[n] as usize];
        for (i, &p) in referrer_of.iter().enumerate() {
            if p != NO_REFERRER {
                children[fill[p as usize] as usize] = i as u32;
                fill[p as usize] += 1;
            }
        }
        ChildIndex { starts, children }
    }

    pub(crate) fn children_of(&self, i: usize) -> &[u32] {
        &self.children[self.starts[i] as usize..self.starts[i + 1] as usize]
    }
}

/// BFS worklist propagation from `seeds` (already-tracking requests) to
/// true convergence. Returns the propagation depth (0 when nothing new was
/// labeled). Labels are monotone, so the result is independent of
/// processing order.
#[allow(clippy::too_many_arguments)]
fn propagate_worklist(
    requests: &[LoggedRequest],
    interned: &Interned,
    labels: &mut [Classification],
    stages: ClassifierStages,
    args_memo: &mut UrlMemo,
    idx: &ChildIndex,
    seeds: Vec<usize>,
) -> usize {
    let mut queue: VecDeque<(usize, usize)> = seeds.into_iter().map(|i| (i, 0)).collect();
    let mut depth = 0usize;
    while let Some((i, d)) = queue.pop_front() {
        for &c in idx.children_of(i) {
            let c = c as usize;
            if labels[c].is_tracking() {
                continue;
            }
            if stages.require_args
                && !args_memo.get(interned.url_of[c], || requests[c].has_args())
            {
                continue;
            }
            labels[c] = Classification::SemiTracking;
            depth = depth.max(d + 1);
            queue.push_back((c, d + 1));
        }
    }
    depth
}

/// Single-pass computation of both Table-2 rows over the interned ids:
/// distinctness is a seen-bit per dense id (bit 0 = ABP, bit 1 = semi)
/// instead of hash-set inserts, and `tld()` is never re-derived here.
fn method_counts_both(interned: &Interned, labels: &[Classification]) -> (MethodCounts, MethodCounts) {
    let mut counts = [MethodCounts::default(), MethodCounts::default()];
    let mut host_seen = vec![0u8; interned.n_hosts()];
    let mut tld_seen = vec![0u8; interned.n_tlds];
    let mut url_seen = vec![0u8; interned.n_urls()];
    for (i, l) in labels.iter().enumerate() {
        let (slot, bit) = match l {
            Classification::AbpTracking => (0usize, 1u8),
            Classification::SemiTracking => (1usize, 2u8),
            Classification::Clean => continue,
        };
        counts[slot].n_total_requests += 1;
        let h = interned.host_of[i] as usize;
        if host_seen[h] & bit == 0 {
            host_seen[h] |= bit;
            counts[slot].n_fqdn += 1;
            // A TLD can only first appear alongside a new host (the TLD is
            // a function of the host), so the check nests here.
            let t = interned.tld_of_host[h] as usize;
            if tld_seen[t] & bit == 0 {
                tld_seen[t] |= bit;
                counts[slot].n_tld += 1;
            }
        }
        let u = interned.url_of[i] as usize;
        if url_seen[u] & bit == 0 {
            url_seen[u] |= bit;
            counts[slot].n_unique_urls += 1;
        }
    }
    (counts[0], counts[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::listgen::generate_lists;
    use rand::{rngs::StdRng, SeedableRng};
    use xborder_browser::{run_study, StudyConfig};
    use xborder_dns::{DnsSim, MappingPolicy, ZoneEntry, ZoneServer};
    use xborder_geo::{CountryCode, WORLD};
    use xborder_netsim::ServerId;
    use xborder_webgraph::{generate, WebGraph, WebGraphConfig};

    fn wire_all(graph: &WebGraph, dns: &mut DnsSim) {
        let de = WORLD.country_or_panic(CountryCode::parse("DE").unwrap());
        let mut next = 0u32;
        for s in &graph.services {
            for h in &s.hosts {
                next += 1;
                dns.add_zone(ZoneEntry {
                    host: h.clone(),
                    servers: vec![ZoneServer {
                        server: ServerId(next),
                        ip: std::net::IpAddr::V4(std::net::Ipv4Addr::from(0x0300_0000u32 + next)),
                        country: de.code,
                        location: de.centroid(),
                        valid: None,
                    }],
                    policy: MappingPolicy::Pinned,
                    ttl_secs: 300,
                })
                .unwrap();
            }
        }
    }

    fn dataset(seed: u64) -> (WebGraph, Vec<xborder_browser::LoggedRequest>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = generate(&WebGraphConfig::small(), &mut rng);
        let mut dns = DnsSim::new();
        wire_all(&graph, &mut dns);
        let ds = run_study(&StudyConfig::small(), &graph, &mut dns, &mut rng);
        (graph, ds.requests)
    }

    #[test]
    fn semi_pass_finds_more_than_lists_alone() {
        let (graph, requests) = dataset(1);
        let (el, ep) = generate_lists(&graph);
        let res = classify(&requests, graph.domains(), &el, &ep);
        assert!(res.abp.n_total_requests > 0);
        assert!(res.semi.n_total_requests > 0, "semi pass found nothing");
        // The headline mechanism: the semi pass adds a substantial fraction
        // on top of the lists (paper: ~80 % more; the small synthetic config
        // yields 0.12–0.20 across seeds under the vendored RNG stream, so the
        // threshold checks the mechanism rather than the paper's magnitude).
        let ratio = res.semi.n_total_requests as f64 / res.abp.n_total_requests as f64;
        assert!(ratio > 0.1, "semi/abp ratio {ratio}");
    }

    #[test]
    fn false_positives_on_clean_services_are_rare() {
        // The keyword stage string-matches the whole URL (as the paper
        // does), so a random identifier can spuriously contain "rtb" —
        // a tiny, realistic noise floor rather than a defect.
        let (graph, requests) = dataset(2);
        let (el, ep) = generate_lists(&graph);
        let res = classify(&requests, graph.domains(), &el, &ep);
        let mut clean_total = 0usize;
        let mut clean_flagged = 0usize;
        for (i, r) in requests.iter().enumerate() {
            let svc = graph.service_by_host_id(r.host).expect("known host");
            if !graph.service(svc).is_tracking() {
                clean_total += 1;
                if res.is_tracking(i) {
                    clean_flagged += 1;
                }
            }
        }
        assert!(clean_total > 0);
        let fp_rate = clean_flagged as f64 / clean_total as f64;
        assert!(fp_rate < 0.005, "false-positive rate {fp_rate}");
    }

    #[test]
    fn recall_improves_with_semi_stage() {
        let (graph, requests) = dataset(3);
        let (el, ep) = generate_lists(&graph);
        let full = classify(&requests, graph.domains(), &el, &ep);
        let lists_only = classify_with_stages(
            &requests,
            graph.domains(),
            &el,
            &ep,
            ClassifierStages {
                referrer_propagation: false,
                require_args: true,
                keywords: false,
            },
        );
        let tracking_truth = requests
            .iter()
            .filter(|r| {
                graph
                    .service_by_host_id(r.host)
                    .map(|s| graph.service(s).is_tracking())
                    .unwrap_or(false)
            })
            .count();
        let full_found = full.labels.iter().filter(|l| l.is_tracking()).count();
        let lists_found = lists_only.labels.iter().filter(|l| l.is_tracking()).count();
        assert!(full_found > lists_found);
        assert!(full_found <= tracking_truth, "classifier overshoots truth");
    }

    #[test]
    fn counts_are_consistent() {
        let (graph, requests) = dataset(4);
        let (el, ep) = generate_lists(&graph);
        let res = classify(&requests, graph.domains(), &el, &ep);
        let tracked = res.labels.iter().filter(|l| l.is_tracking()).count();
        assert_eq!(res.total_tracking_requests(), tracked);
        assert!(res.abp.n_unique_urls <= res.abp.n_total_requests);
        assert!(res.abp.n_tld <= res.abp.n_fqdn);
        assert!(res.semi.n_tld <= res.semi.n_fqdn);
    }

    #[test]
    fn labels_parallel_to_input() {
        let (graph, requests) = dataset(5);
        let (el, ep) = generate_lists(&graph);
        let res = classify(&requests, graph.domains(), &el, &ep);
        assert_eq!(res.labels.len(), requests.len());
    }

    #[test]
    fn empty_input() {
        let (graph, _) = dataset(6);
        let (el, ep) = generate_lists(&graph);
        let res = classify(&[], graph.domains(), &el, &ep);
        assert!(res.labels.is_empty());
        assert_eq!(res.abp.n_total_requests, 0);
        assert_eq!(res.semi.n_total_requests, 0);
    }

    /// Hand-built request with a clean (keyword-free) URL carrying args,
    /// interning its hosts into the test's own `DomainTable`.
    fn chain_request(
        i: usize,
        referrer: Referrer,
        domains: &mut DomainTable,
    ) -> xborder_browser::LoggedRequest {
        use xborder_browser::UserId;
        use xborder_netsim::time::SimTime;
        use xborder_webgraph::PublisherId;
        let host = Domain::new(format!("h{i}.example.com"));
        xborder_browser::LoggedRequest {
            user: UserId(0),
            time: SimTime(i as u64),
            first_party: domains.intern(&Domain::new("pub.example.org")),
            publisher: PublisherId(0),
            url: format!("https://{host}/p?x={i}").into_boxed_str(),
            host: domains.intern(&host),
            referrer,
            ip: "10.0.0.1".parse().unwrap(),
        }
    }

    /// A 40-link referrer chain stored in *reverse* order (each request's
    /// parent sits at a higher index), rooted in one blocklisted request.
    /// The pre-fix classifier labeled one link per whole-log rescan and
    /// stopped at the `rounds > 16` cap, silently dropping the deep tail;
    /// the worklist must label the entire chain.
    #[test]
    fn deep_reversed_chain_fully_labeled() {
        const LEN: usize = 40;
        let mut domains = DomainTable::new();
        let mut requests: Vec<xborder_browser::LoggedRequest> = (0..LEN - 1)
            .map(|i| {
                chain_request(
                    i,
                    Referrer::Request(xborder_browser::RequestId(i as u32 + 1)),
                    &mut domains,
                )
            })
            .collect();
        requests.push(chain_request(LEN - 1, Referrer::FirstParty, &mut domains)); // root
        let mut el = crate::rules::FilterList::new("easylist");
        el.push(crate::rules::FilterRule::DomainAnchor(Domain::new(format!(
            "h{}.example.com",
            LEN - 1
        ))));
        let ep = crate::rules::FilterList::new("easyprivacy");

        let res = classify(&requests, &domains, &el, &ep);
        let labeled = res.labels.iter().filter(|l| l.is_tracking()).count();
        assert_eq!(labeled, LEN, "whole chain must be labeled, got {labeled}/{LEN}");
        assert_eq!(res.labels[LEN - 1], Classification::AbpTracking);
        assert!(res.labels[0].is_tracking(), "deepest link dropped");
        // Depth bookkeeping: the chain needed more rounds than the old cap.
        assert!(
            res.stage2_rounds > 16,
            "stage-2 depth {} should exceed the old round cap",
            res.stage2_rounds
        );
        assert_eq!(res.stage3_rounds, 0);
        assert_eq!(res.propagation_rounds, res.stage2_rounds + res.stage3_rounds);
    }

    /// A chain stored in log order (referrers point backwards) converges in
    /// the single forward sweep — no worklist fallback.
    #[test]
    fn backward_chain_converges_in_one_sweep() {
        const LEN: usize = 40;
        let mut domains = DomainTable::new();
        let mut requests = vec![chain_request(0, Referrer::FirstParty, &mut domains)];
        requests.extend((1..LEN).map(|i| {
            chain_request(
                i,
                Referrer::Request(xborder_browser::RequestId(i as u32 - 1)),
                &mut domains,
            )
        }));
        let mut el = crate::rules::FilterList::new("easylist");
        el.push(crate::rules::FilterRule::DomainAnchor(Domain::new("h0.example.com")));
        let ep = crate::rules::FilterList::new("easyprivacy");

        let res = classify(&requests, &domains, &el, &ep);
        assert!(res.labels.iter().all(|l| l.is_tracking()));
        assert_eq!(res.stage2_rounds, 1, "backward chain must converge in one sweep");
    }

    /// The thread count must not change a single label.
    #[test]
    fn stage1_sharding_is_deterministic() {
        let (graph, requests) = dataset(7);
        let (el, ep) = generate_lists(&graph);
        let base = classify(&requests, graph.domains(), &el, &ep);
        for threads in [2, 3, 8] {
            let par = classify_with_stages_threads(
                &requests,
                graph.domains(),
                &el,
                &ep,
                ClassifierStages::default(),
                threads,
            );
            assert_eq!(par.labels, base.labels, "labels differ at threads={threads}");
            assert_eq!(par.abp, base.abp);
            assert_eq!(par.semi, base.semi);
        }
    }
}
