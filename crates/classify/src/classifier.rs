//! The three-stage tracking-flow classifier (paper Sect. 3.2).

use crate::rules::FilterList;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use xborder_browser::{LoggedRequest, Referrer};
use xborder_webgraph::url::TRACKING_KEYWORDS;

/// Per-request classification outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Classification {
    /// Matched by the easylist/easyprivacy rules (stage 1).
    AbpTracking,
    /// Added by the semi-automatic pass: referrer propagation (stage 2) or
    /// keyword matching (stage 3).
    SemiTracking,
    /// Not identified as tracking ("clean" third-party flow).
    Clean,
}

impl Classification {
    /// True for either tracking class.
    pub fn is_tracking(&self) -> bool {
        !matches!(self, Classification::Clean)
    }
}

/// Per-method aggregate counts — the columns of the paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MethodCounts {
    /// Distinct FQDNs among this method's tracking flows.
    pub n_fqdn: usize,
    /// Distinct pay-level domains ("TLD" in paper terms).
    pub n_tld: usize,
    /// Distinct request URLs.
    pub n_unique_urls: usize,
    /// Total requests.
    pub n_total_requests: usize,
}

/// The classifier's full output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassificationResult {
    /// Per-request labels, parallel to the input slice.
    pub labels: Vec<Classification>,
    /// Stage-1 (blocklist) counts: Table 2, row 1.
    pub abp: MethodCounts,
    /// Stage-2/3 (semi-automatic) counts: Table 2, row 2.
    pub semi: MethodCounts,
    /// How many fixpoint passes the referrer propagation needed.
    pub propagation_rounds: usize,
}

impl ClassificationResult {
    /// Label of request `i`.
    pub fn label(&self, i: usize) -> Classification {
        self.labels[i]
    }

    /// True if request `i` was classified as tracking by any stage.
    pub fn is_tracking(&self, i: usize) -> bool {
        self.labels[i].is_tracking()
    }

    /// Total tracking requests over both methods (Table 2, "Total" row).
    pub fn total_tracking_requests(&self) -> usize {
        self.abp.n_total_requests + self.semi.n_total_requests
    }
}

/// Stage toggles for the classifier-ablation experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassifierStages {
    /// Run the referrer-propagation stage.
    pub referrer_propagation: bool,
    /// Require URL arguments for referrer propagation (the paper does).
    pub require_args: bool,
    /// Run the keyword stage.
    pub keywords: bool,
}

impl Default for ClassifierStages {
    fn default() -> Self {
        ClassifierStages {
            referrer_propagation: true,
            require_args: true,
            keywords: true,
        }
    }
}

/// Runs the full classifier over a request log.
pub fn classify(
    requests: &[LoggedRequest],
    easylist: &FilterList,
    easyprivacy: &FilterList,
) -> ClassificationResult {
    classify_with_stages(requests, easylist, easyprivacy, ClassifierStages::default())
}

/// Runs the classifier with configurable stages (ablation entry point).
pub fn classify_with_stages(
    requests: &[LoggedRequest],
    easylist: &FilterList,
    easyprivacy: &FilterList,
    stages: ClassifierStages,
) -> ClassificationResult {
    let mut labels = vec![Classification::Clean; requests.len()];

    // Stage 1: blocklists, matched passively against every request.
    for (i, r) in requests.iter().enumerate() {
        if easylist.matches(&r.host, &r.url) || easyprivacy.matches(&r.host, &r.url) {
            labels[i] = Classification::AbpTracking;
        }
    }

    // Stage 2: referrer propagation to fixpoint. Referrers point backwards,
    // so one forward pass usually converges; keyword-stage additions can in
    // principle enable more, so we interleave and loop until stable.
    let mut rounds = 0usize;
    if stages.referrer_propagation {
        loop {
            rounds += 1;
            let mut changed = false;
            for i in 0..requests.len() {
                if labels[i].is_tracking() {
                    continue;
                }
                let r = &requests[i];
                let Referrer::Request(parent) = r.referrer else {
                    continue;
                };
                if !labels[parent.0 as usize].is_tracking() {
                    continue;
                }
                if stages.require_args && !r.has_args() {
                    continue;
                }
                labels[i] = Classification::SemiTracking;
                changed = true;
            }
            if !changed || rounds > 16 {
                break;
            }
        }
    }

    // Stage 3: argument + keyword matching on what's left.
    if stages.keywords {
        for (i, r) in requests.iter().enumerate() {
            if labels[i].is_tracking() || !r.has_args() {
                continue;
            }
            let lc = r.url.to_ascii_lowercase();
            if TRACKING_KEYWORDS.iter().any(|k| lc.contains(k)) {
                labels[i] = Classification::SemiTracking;
            }
        }
        // Keyword additions may unlock more referrer propagation.
        if stages.referrer_propagation {
            loop {
                rounds += 1;
                let mut changed = false;
                for i in 0..requests.len() {
                    if labels[i].is_tracking() {
                        continue;
                    }
                    let r = &requests[i];
                    let Referrer::Request(parent) = r.referrer else {
                        continue;
                    };
                    if !labels[parent.0 as usize].is_tracking() {
                        continue;
                    }
                    if stages.require_args && !r.has_args() {
                        continue;
                    }
                    labels[i] = Classification::SemiTracking;
                    changed = true;
                }
                if !changed || rounds > 32 {
                    break;
                }
            }
        }
    }

    let abp = method_counts(requests, &labels, Classification::AbpTracking);
    let semi = method_counts(requests, &labels, Classification::SemiTracking);

    ClassificationResult {
        labels,
        abp,
        semi,
        propagation_rounds: rounds,
    }
}

fn method_counts(
    requests: &[LoggedRequest],
    labels: &[Classification],
    which: Classification,
) -> MethodCounts {
    let mut fqdns = HashSet::new();
    let mut tlds = HashSet::new();
    let mut urls = HashSet::new();
    let mut total = 0usize;
    for (r, l) in requests.iter().zip(labels) {
        if *l != which {
            continue;
        }
        total += 1;
        fqdns.insert(&r.host);
        tlds.insert(r.host.tld());
        urls.insert(&r.url);
    }
    MethodCounts {
        n_fqdn: fqdns.len(),
        n_tld: tlds.len(),
        n_unique_urls: urls.len(),
        n_total_requests: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::listgen::generate_lists;
    use rand::{rngs::StdRng, SeedableRng};
    use xborder_browser::{run_study, StudyConfig};
    use xborder_dns::{DnsSim, MappingPolicy, ZoneEntry, ZoneServer};
    use xborder_geo::{CountryCode, WORLD};
    use xborder_netsim::ServerId;
    use xborder_webgraph::{generate, WebGraph, WebGraphConfig};

    fn wire_all(graph: &WebGraph, dns: &mut DnsSim) {
        let de = WORLD.country_or_panic(CountryCode::parse("DE").unwrap());
        let mut next = 0u32;
        for s in &graph.services {
            for h in &s.hosts {
                next += 1;
                dns.add_zone(ZoneEntry {
                    host: h.clone(),
                    servers: vec![ZoneServer {
                        server: ServerId(next),
                        ip: std::net::IpAddr::V4(std::net::Ipv4Addr::from(0x0300_0000u32 + next)),
                        country: de.code,
                        location: de.centroid(),
                        valid: None,
                    }],
                    policy: MappingPolicy::Pinned,
                    ttl_secs: 300,
                })
                .unwrap();
            }
        }
    }

    fn dataset(seed: u64) -> (WebGraph, Vec<xborder_browser::LoggedRequest>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = generate(&WebGraphConfig::small(), &mut rng);
        let mut dns = DnsSim::new();
        wire_all(&graph, &mut dns);
        let ds = run_study(&StudyConfig::small(), &graph, &mut dns, &mut rng);
        (graph, ds.requests)
    }

    #[test]
    fn semi_pass_finds_more_than_lists_alone() {
        let (graph, requests) = dataset(1);
        let (el, ep) = generate_lists(&graph);
        let res = classify(&requests, &el, &ep);
        assert!(res.abp.n_total_requests > 0);
        assert!(res.semi.n_total_requests > 0, "semi pass found nothing");
        // The headline mechanism: the semi pass adds a substantial fraction
        // on top of the lists (paper: ~80 % more; the small synthetic config
        // yields 0.12–0.20 across seeds under the vendored RNG stream, so the
        // threshold checks the mechanism rather than the paper's magnitude).
        let ratio = res.semi.n_total_requests as f64 / res.abp.n_total_requests as f64;
        assert!(ratio > 0.1, "semi/abp ratio {ratio}");
    }

    #[test]
    fn false_positives_on_clean_services_are_rare() {
        // The keyword stage string-matches the whole URL (as the paper
        // does), so a random identifier can spuriously contain "rtb" —
        // a tiny, realistic noise floor rather than a defect.
        let (graph, requests) = dataset(2);
        let (el, ep) = generate_lists(&graph);
        let res = classify(&requests, &el, &ep);
        let mut clean_total = 0usize;
        let mut clean_flagged = 0usize;
        for (i, r) in requests.iter().enumerate() {
            let svc = graph.service_by_host(&r.host).expect("known host");
            if !graph.service(svc).is_tracking() {
                clean_total += 1;
                if res.is_tracking(i) {
                    clean_flagged += 1;
                }
            }
        }
        assert!(clean_total > 0);
        let fp_rate = clean_flagged as f64 / clean_total as f64;
        assert!(fp_rate < 0.005, "false-positive rate {fp_rate}");
    }

    #[test]
    fn recall_improves_with_semi_stage() {
        let (graph, requests) = dataset(3);
        let (el, ep) = generate_lists(&graph);
        let full = classify(&requests, &el, &ep);
        let lists_only = classify_with_stages(
            &requests,
            &el,
            &ep,
            ClassifierStages {
                referrer_propagation: false,
                require_args: true,
                keywords: false,
            },
        );
        let tracking_truth = requests
            .iter()
            .filter(|r| {
                graph
                    .service_by_host(&r.host)
                    .map(|s| graph.service(s).is_tracking())
                    .unwrap_or(false)
            })
            .count();
        let full_found = full.labels.iter().filter(|l| l.is_tracking()).count();
        let lists_found = lists_only.labels.iter().filter(|l| l.is_tracking()).count();
        assert!(full_found > lists_found);
        assert!(full_found <= tracking_truth, "classifier overshoots truth");
    }

    #[test]
    fn counts_are_consistent() {
        let (graph, requests) = dataset(4);
        let (el, ep) = generate_lists(&graph);
        let res = classify(&requests, &el, &ep);
        let tracked = res.labels.iter().filter(|l| l.is_tracking()).count();
        assert_eq!(res.total_tracking_requests(), tracked);
        assert!(res.abp.n_unique_urls <= res.abp.n_total_requests);
        assert!(res.abp.n_tld <= res.abp.n_fqdn);
        assert!(res.semi.n_tld <= res.semi.n_fqdn);
    }

    #[test]
    fn labels_parallel_to_input() {
        let (graph, requests) = dataset(5);
        let (el, ep) = generate_lists(&graph);
        let res = classify(&requests, &el, &ep);
        assert_eq!(res.labels.len(), requests.len());
    }

    #[test]
    fn empty_input() {
        let (graph, _) = dataset(6);
        let (el, ep) = generate_lists(&graph);
        let res = classify(&[], &el, &ep);
        assert!(res.labels.is_empty());
        assert_eq!(res.abp.n_total_requests, 0);
        assert_eq!(res.semi.n_total_requests, 0);
    }
}
