//! Delta-fixpoint incremental classifier for the streaming driver.
//!
//! The batch classifier ([`crate::classify_with_stages_threads`]) interns
//! the whole log, labels it, and derives the Table-2 distinct counts in one
//! final pass. The streaming driver ingests the log in append-only chunks,
//! and until this module existed it re-ran the batch classifier per chunk
//! *and* re-interned the full concatenated log once more at finalize to
//! recover the distinct FQDN/TLD/URL counts — ~17% over batch at chunk=5.
//!
//! [`IncrementalClassifier`] closes that gap by persisting the classifier's
//! cross-chunk state between [`IncrementalClassifier::append_chunk`] calls:
//!
//! - the URL interner (owned strings + open-addressing dedup table), the
//!   host remap, and the compiled [`RuleEngine`] with its dense
//!   [`HostRow`] table (DESIGN.md §5h), so every string is hashed, every
//!   host gate-resolved and `tld()`-ed, once per *unique* value across the
//!   whole stream, not once per chunk it appears in — and the engine
//!   itself (automaton, anchor buckets, prefilter) is compiled exactly
//!   once, at construction;
//! - the per-unique-URL predicate memos (argument presence, keyword
//!   verdict, URL-dependent stage-1 gate verdict) — all pure functions of
//!   the URL string, so a memo filled in chunk 0 is exact in chunk 40;
//! - the Table-2 seen-bit arrays and running [`MethodCounts`], making the
//!   counts absorbable per chunk: finalize no longer re-walks anything.
//!
//! The propagation stages still run the PR 2 worklist, but only over the
//! frontier the new chunk introduces: referrer edges are positional within
//! a chunk and never cross users (hence never cross chunk boundaries —
//! chunks are whole-user ranges), so the fixpoint over the concatenated log
//! decomposes exactly into per-chunk fixpoints. Labels are monotone
//! (Clean → Semi/AbpTracking, never back), so a chunk's labels are final
//! the moment the chunk is processed.
//!
//! # Determinism
//!
//! Feeding chunks in log order reproduces the batch classifier bit for
//! bit, for every chunking: a URL's (and host's, and TLD's) dense id is
//! its global first-occurrence rank either way, the stage verdicts are
//! per-request or per-chunk-closed, and the absorbed counts walk requests
//! in the same global order over the same seen-bits as the batch
//! `method_counts_both` pass. `tests/streaming_resume.rs` pins this
//! against the batch fingerprints.
//!
//! # Serialization
//!
//! [`IncrementalClassifier::encode_delta`]/[`IncrementalClassifier::apply_delta`]
//! move the state through the `xborder-checkpoint` codec so a killed
//! streaming run resumes without re-deriving it (format: DESIGN.md §5g).
//! Each delta carries only what changed since the previous one — new
//! unique URLs/hosts plus the sparse memo/seen-bit mutations to older
//! entries — so the total serialized volume across a stream is O(unique
//! values), not O(chunks × state). Replaying a checkpoint applies the
//! chunk deltas in order, which reconstructs the exact live state. Gates,
//! TLD ids and the dedup table are *rebuilt* on apply from the stored
//! unique strings — they are deterministic functions of (filter lists,
//! domain table), both of which the resuming process re-derives from the
//! seed before the store is opened.

use crate::classifier::{url_hash, ChildIndex, Classification, ClassifierStages, MethodCounts, NO_REFERRER};
use crate::engine::{HostRow, KeywordScanner, RuleEngine};
use crate::rules::FilterList;
use std::collections::VecDeque;
use xborder_browser::{LoggedRequest, Referrer};
use xborder_checkpoint::{ByteReader, ByteWriter, DecodeError};
use xborder_webgraph::{DomainId, DomainTable};

/// Tri-state memo values (shared by the args/keyword/gate memos).
const MEMO_UNKNOWN: u8 = 0;
const MEMO_NO: u8 = 1;
const MEMO_YES: u8 = 2;

/// One chunk's classification, emitted by
/// [`IncrementalClassifier::append_chunk`]. `labels` is parallel to the
/// chunk's request slice; the rounds fields have the same per-chunk
/// semantics as [`crate::ClassificationResult`], so the streaming driver
/// reassembles whole-log rounds the same way it did for per-chunk batch
/// classification (`1 + max(stage2 - 1)` / `max(stage3)`).
#[derive(Debug, Clone)]
pub struct ChunkClassification {
    /// Per-request labels, parallel to the chunk slice.
    pub labels: Vec<Classification>,
    /// Stage-2 sweep count for this chunk (1 = ordered sweep sufficed).
    pub stage2_rounds: usize,
    /// Post-keyword re-propagation depth for this chunk.
    pub stage3_rounds: usize,
}

/// Owned unique-URL store: one contiguous byte buffer plus per-id spans.
///
/// The batch interner never copies a URL — it borrows equality targets
/// from the request log. Across chunks the log is gone, so the classifier
/// must own one copy per unique URL; an arena makes that ownership an
/// amortized byte append instead of a per-string allocation, and keeps
/// cold equality probes walking one linear buffer.
#[derive(Default)]
struct UrlArena {
    bytes: Vec<u8>,
    spans: Vec<(usize, u32)>,
}

impl UrlArena {
    fn len(&self) -> usize {
        self.spans.len()
    }

    fn push(&mut self, url: &str) {
        self.spans.push((self.bytes.len(), url.len() as u32));
        self.bytes.extend_from_slice(url.as_bytes());
    }

    fn bytes_of(&self, id: usize) -> &[u8] {
        let (off, len) = self.spans[id];
        &self.bytes[off..off + len as usize]
    }

    fn str_of(&self, id: usize) -> &str {
        std::str::from_utf8(self.bytes_of(id)).expect("arena bytes come from pushed &str")
    }
}

/// Cross-chunk dedup table over the classifier's owned URL strings —
/// level two of the two-level intern (see `append_chunk`). Same load
/// factor and linear probing as the batch `UrlTable`, so ids are assigned
/// in the same first-occurrence order, but it is only ever probed once
/// per *chunk-distinct* URL (the chunk-local [`ScratchSlots`] absorbs all
/// within-chunk repeats), so its slots carry no occurrence index — 8
/// bytes, equality always against the owned arena.
struct UrlSlots {
    slots: Vec<Slot>,
    mask: usize,
    len: u32,
    /// Interned id -> full 64-bit hash, dense. Kept so a table grow is a
    /// sequential re-insert of (hash, id) pairs instead of re-hashing
    /// every owned string through cold arena reads — on the streaming
    /// workload each of those rehashes cost multiple milliseconds (the
    /// arena is several MB by the time the table crosses a power of two).
    hashes: Vec<u64>,
}

/// `id1` is the interned id plus one (0 = empty slot).
#[derive(Clone, Copy, Default)]
struct Slot {
    tag: u32,
    id1: u32,
}

/// Chunk-local dedup table — level one of the two-level intern. Exactly
/// the batch `UrlTable`: ids are chunk-first-occurrence ranks, equality
/// compares against the most recent occurrence in the live chunk slice
/// (always warm), and the table is sized for the chunk up front, so at
/// streaming chunk sizes it stays cache-resident and absorbs the ~40% of
/// requests that repeat a URL within their own chunk without ever
/// touching the big cross-chunk table.
#[derive(Default)]
struct ScratchSlots {
    slots: Vec<ScratchSlot>,
    mask: usize,
}

#[derive(Clone, Copy, Default)]
struct ScratchSlot {
    tag: u32,
    uid1: u32,
    last: u32,
}

impl ScratchSlots {
    /// Re-sizes/clears the persistent table so `n` insertions stay under
    /// 3/4 load: no grow path needed, and at steady-state chunk sizes no
    /// allocation either — just a `fill` of an already-warm buffer. A
    /// larger-than-needed table from an earlier chunk is kept (table size
    /// only shifts probe positions; interned ids are first-occurrence
    /// ranks either way).
    fn reset_for_chunk(&mut self, n: usize) {
        let want = (n * 4 / 3 + 1).max(16).next_power_of_two();
        if self.slots.len() < want {
            self.slots.clear();
            self.slots.resize(want, ScratchSlot::default());
        } else {
            self.slots.fill(ScratchSlot::default());
        }
        self.mask = self.slots.len() - 1;
    }

    /// Interns one request against the live chunk slice. `next_uid` is the
    /// chunk-local id to assign on first occurrence.
    fn intern(
        &mut self,
        hash: u64,
        url: &str,
        requests: &[LoggedRequest],
        i: u32,
        next_uid: u32,
    ) -> UrlSlot {
        let tag = (hash >> 32) as u32;
        let mut s = hash as usize & self.mask;
        loop {
            let slot = self.slots[s];
            if slot.uid1 == 0 {
                self.slots[s] = ScratchSlot { tag, uid1: next_uid + 1, last: i };
                return UrlSlot::New(next_uid);
            }
            if slot.tag == tag && &*requests[slot.last as usize].url == url {
                self.slots[s].last = i;
                return UrlSlot::Existing(slot.uid1 - 1);
            }
            s = (s + 1) & self.mask;
        }
    }
}

enum UrlSlot {
    /// URL was seen before; its id.
    Existing(u32),
    /// First occurrence; the caller must push the per-unique side tables.
    New(u32),
}

impl UrlSlots {
    fn with_capacity(n: usize) -> UrlSlots {
        let slots = n.max(16).next_power_of_two();
        UrlSlots {
            slots: vec![Slot::default(); slots],
            mask: slots - 1,
            len: 0,
            hashes: Vec::new(),
        }
    }

    /// Pulls the slot a hash maps to into cache ahead of its `intern` call.
    fn prefetch(&self, hash: u64) {
        std::hint::black_box(self.slots[hash as usize & self.mask].id1);
    }

    /// Chases a probed slot into the arena: if the hash's home slot holds
    /// a tag match, its string is about to be equality-compared — touching
    /// the span and first byte a few iterations early overlaps those two
    /// dependent DRAM loads with the resolve loop.
    fn prefetch_arena(&self, hash: u64, urls: &UrlArena) {
        let slot = self.slots[hash as usize & self.mask];
        if slot.id1 != 0 && slot.tag == (hash >> 32) as u32 {
            std::hint::black_box(urls.bytes_of((slot.id1 - 1) as usize).first().copied());
        }
    }

    /// Interns against the owned unique-string store (both the pass-2
    /// resolve loop and the `apply_delta` path, where no chunk slice
    /// exists).
    fn intern_owned(&mut self, hash: u64, url: &str, urls: &UrlArena) -> UrlSlot {
        if self.len as usize * 4 >= self.slots.len() * 3 {
            self.grow();
        }
        let tag = (hash >> 32) as u32;
        let mut s = hash as usize & self.mask;
        loop {
            let slot = self.slots[s];
            if slot.id1 == 0 {
                self.len += 1;
                self.slots[s] = Slot { tag, id1: self.len };
                self.hashes.push(hash);
                return UrlSlot::New(self.len - 1);
            }
            // Tag (high 32 bits) filters in the slot line itself; the full
            // 64-bit hash from the dense sidecar then rejects nearly every
            // residual false tag match without touching the (colder) arena
            // bytes. The byte equality stays authoritative.
            if slot.tag == tag
                && self.hashes[(slot.id1 - 1) as usize] == hash
                && urls.bytes_of((slot.id1 - 1) as usize) == url.as_bytes()
            {
                return UrlSlot::Existing(slot.id1 - 1);
            }
            s = (s + 1) & self.mask;
        }
    }

    /// Sizes the table for a cumulative request total, rehashing at most
    /// once — the exact sizing rule of the batch `UrlTable::with_capacity`
    /// (one slot per request, rounded up to a power of two), applied per
    /// chunk with the running total. Matching batch sizing matters twice
    /// over: a table left to the 3/4 load-factor doublings runs ~2x longer
    /// probe chains (measurably dragging the pipelined intern pass), while
    /// oversizing it past the batch rule doubles the cache footprint every
    /// probe has to miss through. It also means a chunk never pays
    /// repeated doublings mid-pass.
    fn reserve_for_total(&mut self, total_requests: usize) {
        let target = total_requests.max(16).next_power_of_two();
        if target > self.slots.len() {
            self.grow_to(target);
        }
    }

    /// Doubles the table.
    fn grow(&mut self) {
        self.grow_to(self.slots.len() * 2);
    }

    /// Rebuilds the table at `n` slots from the dense id -> hash sidecar:
    /// one sequential walk, no arena reads. Linear-probe lookups only need
    /// every key reachable from its home slot without crossing an empty
    /// slot, and re-inserting every key into an empty table preserves that
    /// regardless of insertion order — slot layout is not part of the
    /// determinism contract (interned ids are, and they don't move).
    fn grow_to(&mut self, n: usize) {
        let mut slots = vec![Slot::default(); n];
        let mask = n - 1;
        for (id, &hash) in self.hashes.iter().enumerate() {
            let mut d = hash as usize & mask;
            while slots[d].id1 != 0 {
                d = (d + 1) & mask;
            }
            slots[d] = Slot { tag: (hash >> 32) as u32, id1: id as u32 + 1 };
        }
        self.slots = slots;
        self.mask = mask;
    }
}

/// Reusable per-chunk working memory: the chunk-local dedup table and the
/// dense per-request/per-chunk-distinct views. `append_chunk` used to
/// allocate these eight buffers afresh every chunk; at streaming chunk
/// sizes (~1.3K requests) that fixed cost repeats hundreds of times over a
/// stream, so the buffers persist across chunks and are cleared instead.
#[derive(Default)]
struct ChunkScratch {
    scratch: ScratchSlots,
    chunk_of: Vec<u32>,
    uid_first: Vec<u32>,
    uid_hash: Vec<u64>,
    uid_verdict: Vec<bool>,
    gid_of: Vec<u32>,
    url_of: Vec<u32>,
    host_of: Vec<u32>,
    referrer_of: Vec<u32>,
}

impl ChunkScratch {
    fn reset_for_chunk(&mut self, n: usize) {
        self.scratch.reset_for_chunk(n);
        self.chunk_of.clear();
        self.uid_first.clear();
        self.uid_hash.clear();
        self.uid_verdict.clear();
        self.gid_of.clear();
        self.url_of.clear();
        self.host_of.clear();
        self.referrer_of.clear();
        self.chunk_of.reserve(n);
        self.url_of.reserve(n);
        self.host_of.reserve(n);
        self.referrer_of.reserve(n);
    }
}

/// Cross-chunk classifier state. See the module docs for what persists and
/// why feeding chunks in order is bit-identical to batch classification.
pub struct IncrementalClassifier {
    /// The compiled filter-list engine (DESIGN.md §5h) — automaton, anchor
    /// buckets, prefilter, and the dense per-host row cache, all owned, so
    /// nothing about the frozen lists is re-derived per chunk.
    engine: RuleEngine,
    stages: ClassifierStages,
    scanner: KeywordScanner,

    /// Owned unique-URL arena. The batch classifier borrows equality
    /// targets from the request log; across chunks the log is gone, so the
    /// interner owns one copy per *unique* URL (contiguous, span-indexed).
    urls: UrlArena,
    url_slots: UrlSlots,
    /// Unique-URL id -> unique-host id (a URL embeds its host, so equal
    /// URLs share a host — same invariant the batch interner debug-asserts).
    host_of_url: Vec<u32>,
    /// World `DomainId` -> classifier-local dense host id (`u32::MAX` =
    /// unseen), lazily grown.
    host_remap: Vec<u32>,
    /// Dense host id -> world `DomainId` (serialization + row re-resolution
    /// on decode).
    host_ids: Vec<DomainId>,
    /// Dense host id -> compiled engine row (gate verdict + TLD id).
    rows: Vec<HostRow>,

    /// Per-unique-URL memos, all pure functions of the URL string:
    /// argument presence, keyword verdict, and the stage-1 URL-dependent
    /// gate verdict (shard-local in the batch classifier; persisting it is
    /// invisible because the verdict is the same every time).
    args_memo: Vec<u8>,
    kw_memo: Vec<u8>,
    gate_memo: Vec<u8>,

    /// Table-2 seen-bits (bit 0 = ABP, bit 1 = semi), indexed by dense id.
    host_seen: Vec<u8>,
    tld_seen: Vec<u8>,
    url_seen: Vec<u8>,
    abp: MethodCounts,
    semi: MethodCounts,
    n_requests: u64,

    /// Serialization baseline: high-water marks plus byte snapshots of the
    /// mutable per-entry state as of the last `encode_delta`/`apply_delta`,
    /// so the next delta carries only entries created or mutated since. A
    /// fresh classifier's baseline is empty, making its first delta a full
    /// encoding.
    enc_urls: usize,
    enc_hosts: usize,
    enc_args: Vec<u8>,
    enc_kw: Vec<u8>,
    enc_gate: Vec<u8>,
    enc_url_seen: Vec<u8>,
    enc_host_seen: Vec<u8>,

    /// Reusable per-chunk working memory (see [`ChunkScratch`]).
    chunk_scratch: ChunkScratch,
}

impl IncrementalClassifier {
    /// A fresh classifier over the given filter lists and stage toggles.
    /// Compiles the lists into a [`RuleEngine`] once, here — the
    /// classifier owns the compiled form, so the lists themselves are not
    /// borrowed past construction.
    pub fn new(
        easylist: &FilterList,
        easyprivacy: &FilterList,
        stages: ClassifierStages,
    ) -> IncrementalClassifier {
        IncrementalClassifier {
            engine: RuleEngine::compile(&[easylist, easyprivacy]),
            stages,
            scanner: KeywordScanner::new(),
            urls: UrlArena::default(),
            url_slots: UrlSlots::with_capacity(1024),
            host_of_url: Vec::new(),
            host_remap: Vec::new(),
            host_ids: Vec::new(),
            rows: Vec::new(),
            args_memo: Vec::new(),
            kw_memo: Vec::new(),
            gate_memo: Vec::new(),
            host_seen: Vec::new(),
            tld_seen: Vec::new(),
            url_seen: Vec::new(),
            abp: MethodCounts::default(),
            semi: MethodCounts::default(),
            n_requests: 0,
            enc_urls: 0,
            enc_hosts: 0,
            enc_args: Vec::new(),
            enc_kw: Vec::new(),
            enc_gate: Vec::new(),
            enc_url_seen: Vec::new(),
            enc_host_seen: Vec::new(),
            chunk_scratch: ChunkScratch::default(),
        }
    }

    /// Total requests absorbed so far.
    pub fn n_requests(&self) -> u64 {
        self.n_requests
    }

    /// The running Table-2 rows `(abp, semi)` over everything absorbed so
    /// far. Equals `classify` / `method_counts` over the concatenated log.
    pub fn counts(&self) -> (MethodCounts, MethodCounts) {
        (self.abp, self.semi)
    }

    /// Interns a first-occurrence URL's host, resolving its gate and TLD
    /// id exactly as the batch interner/stage-1 would (same order, same
    /// combine rule), and returns the dense host id.
    fn intern_host(&mut self, host_id: DomainId, domains: &DomainTable) -> u32 {
        let hid = host_id.0 as usize;
        if hid >= self.host_remap.len() {
            self.host_remap.resize(hid + 1, u32::MAX);
        }
        if self.host_remap[hid] != u32::MAX {
            return self.host_remap[hid];
        }
        let h = self.host_ids.len() as u32;
        self.host_remap[hid] = h;
        self.host_ids.push(host_id);
        self.host_seen.push(0);
        let row = self.engine.host_row(host_id, domains);
        self.rows.push(row);
        let t = row.tld() as usize;
        if t >= self.tld_seen.len() {
            self.tld_seen.resize(t + 1, 0);
        }
        h
    }

    /// Classifies one appended chunk and absorbs its counts.
    ///
    /// Chunks must arrive in log order; `requests` must be a whole-user
    /// range (referrer indices are chunk-local positions — the same
    /// contract the streaming driver already holds for per-chunk batch
    /// classification).
    pub fn append_chunk(
        &mut self,
        requests: &[LoggedRequest],
        domains: &DomainTable,
    ) -> ChunkClassification {
        let n = requests.len();
        // Size the cross-chunk table for the worst case (every request
        // unique) before the resolve pass, like the batch interner's
        // whole-log `with_capacity` — the pipelined loop never rehashes.
        self.url_slots
            .reserve_for_total(self.n_requests as usize + n);
        // Per-chunk working memory persists across chunks (reset, not
        // reallocated); taken out of `self` so the borrow checker lets the
        // passes below index `self`'s per-unique tables while filling it.
        let mut sc = std::mem::take(&mut self.chunk_scratch);
        sc.reset_for_chunk(n);
        let ChunkScratch {
            scratch,
            chunk_of,
            uid_first,
            uid_hash,
            uid_verdict,
            gid_of,
            url_of,
            host_of,
            referrer_of,
        } = &mut sc;

        // Two-level interning. Pass 1 dedups the chunk against itself in a
        // cache-resident scratch table — the batch interner's exact loop,
        // equality always against the live chunk slice (string bytes
        // touched BYTES_AHEAD out so each fresh pointer chase overlaps the
        // previous iterations). Chunk-local ids are first-occurrence
        // ranks, so walking them in order preserves the global
        // first-occurrence id assignment the determinism contract pins.
        const BYTES_AHEAD: usize = 16;
        for (i, r) in requests.iter().enumerate() {
            if let Some(ahead) = requests.get(i + BYTES_AHEAD) {
                let u = ahead.url.as_bytes();
                std::hint::black_box(u.first().copied());
                std::hint::black_box(u.last().copied());
            }
            let hash = url_hash(r.url.as_bytes());
            let uid = match scratch.intern(hash, &r.url, requests, i as u32, uid_first.len() as u32)
            {
                UrlSlot::New(uid) => {
                    uid_first.push(i as u32);
                    uid_hash.push(hash);
                    uid
                }
                UrlSlot::Existing(uid) => uid,
            };
            chunk_of.push(uid);
        }

        // Pass 2 resolves each chunk-distinct URL to its cross-chunk id in
        // one tight pipelined loop: the big table's slot is prefetched
        // SLOT_AHEAD out, and the arena span it points at (the equality
        // target for a recurring URL) ARENA_AHEAD out, once the slot line
        // has had time to arrive — the two dependent DRAM chases that
        // otherwise stall every first-recurrence-this-chunk probe.
        const SLOT_AHEAD: usize = 8;
        const ARENA_AHEAD: usize = 4;
        gid_of.reserve(uid_first.len());
        // Worst case every chunk-distinct URL is stream-new: reserving the
        // per-unique side tables once keeps the New arm's scattered pushes
        // from re-amortizing six separate grows mid-loop.
        let worst_new = uid_first.len();
        self.urls.spans.reserve(worst_new);
        self.host_of_url.reserve(worst_new);
        self.args_memo.reserve(worst_new);
        self.kw_memo.reserve(worst_new);
        self.gate_memo.reserve(worst_new);
        self.url_seen.reserve(worst_new);
        for (j, &h) in uid_hash.iter().enumerate().take(SLOT_AHEAD.min(uid_hash.len())) {
            self.url_slots.prefetch(h);
            if j < ARENA_AHEAD {
                self.url_slots.prefetch_arena(h, &self.urls);
            }
        }
        for (k, &hash) in uid_hash.iter().enumerate() {
            if let Some(&h) = uid_hash.get(k + SLOT_AHEAD) {
                self.url_slots.prefetch(h);
            }
            if let Some(&h) = uid_hash.get(k + ARENA_AHEAD) {
                self.url_slots.prefetch_arena(h, &self.urls);
            }
            let r = &requests[uid_first[k] as usize];
            let u = match self.url_slots.intern_owned(hash, &r.url, &self.urls) {
                UrlSlot::New(u) => {
                    self.urls.push(&r.url);
                    self.args_memo.push(MEMO_UNKNOWN);
                    self.kw_memo.push(MEMO_UNKNOWN);
                    self.gate_memo.push(MEMO_UNKNOWN);
                    self.url_seen.push(0);
                    let h = self.intern_host(r.host, domains);
                    self.host_of_url.push(h);
                    u
                }
                UrlSlot::Existing(u) => u,
            };
            debug_assert_eq!(
                self.host_ids[self.host_of_url[u as usize] as usize],
                r.host,
                "requests sharing a URL string must share its embedded host"
            );
            // Stage-1 verdict, hoisted to the chunk-distinct level: the
            // blocklist verdict is a pure function of the URL (the host is
            // embedded in it), so it is decided once per chunk-distinct
            // URL here — where the request string is already in cache —
            // and the per-request loop below only projects a bool.
            let row = self.rows[self.host_of_url[u as usize] as usize];
            let hit = if row.always() {
                true
            } else if row.never() {
                false
            } else {
                match self.gate_memo[u as usize] {
                    MEMO_UNKNOWN => {
                        let hit = self.engine.url_verdict(row, domains.domain(r.host), &r.url);
                        self.gate_memo[u as usize] = 1 + hit as u8;
                        hit
                    }
                    v => v == MEMO_YES,
                }
            };
            uid_verdict.push(hit);
            gid_of.push(u);
        }

        // Pass 3 projects the per-request views (and the stage-1 labels)
        // through the two maps — linear over arrays that are all still
        // warm.
        let mut labels = vec![Classification::Clean; n];
        for (i, r) in requests.iter().enumerate() {
            let cu = chunk_of[i] as usize;
            let u = gid_of[cu];
            url_of.push(u);
            host_of.push(self.host_of_url[u as usize]);
            referrer_of.push(match r.referrer {
                Referrer::Request(parent) => parent.0,
                Referrer::FirstParty | Referrer::None => NO_REFERRER,
            });
            if uid_verdict[cu] {
                labels[i] = Classification::AbpTracking;
            }
        }

        // Stage 2: ordered forward sweep over the chunk's (backward-
        // pointing) referrer edges, with the worklist fallback for forward
        // edges — the frontier is exactly the new chunk, since chains
        // never cross chunk boundaries.
        let mut children: Option<ChildIndex> = None;
        let mut stage2_rounds = 0usize;
        if self.stages.referrer_propagation {
            stage2_rounds = 1;
            let mut forward_edges = false;
            for i in 0..n {
                let p = referrer_of[i] as usize;
                if p == NO_REFERRER as usize {
                    continue;
                }
                debug_assert!(
                    p < n,
                    "referrer index {p} out of range ({n} requests): chunk referrers \
                     must be chunk-local positions"
                );
                if p >= i {
                    forward_edges = true;
                    continue;
                }
                if labels[i].is_tracking() || !labels[p].is_tracking() {
                    continue;
                }
                if self.stages.require_args
                    && !memo_get(&mut self.args_memo, url_of[i], || requests[i].has_args())
                {
                    continue;
                }
                labels[i] = Classification::SemiTracking;
            }
            if forward_edges {
                let idx = children.get_or_insert_with(|| ChildIndex::build(referrer_of));
                let seeds: Vec<usize> = (0..n).filter(|&i| labels[i].is_tracking()).collect();
                stage2_rounds += propagate_worklist(
                    requests,
                    url_of,
                    &mut labels,
                    self.stages,
                    &mut self.args_memo,
                    idx,
                    seeds,
                );
            }
        }

        // Stage 3: argument + keyword matching on what's left, then re-
        // propagation from exactly the newly labeled requests.
        let mut stage3_rounds = 0usize;
        if self.stages.keywords {
            let mut newly: Vec<usize> = Vec::new();
            for i in 0..n {
                if labels[i].is_tracking() {
                    continue;
                }
                let u = url_of[i];
                if !memo_get(&mut self.args_memo, u, || requests[i].has_args())
                    || !memo_get(&mut self.kw_memo, u, || self.scanner.matches(&requests[i].url))
                {
                    continue;
                }
                labels[i] = Classification::SemiTracking;
                newly.push(i);
            }
            if self.stages.referrer_propagation && !newly.is_empty() {
                let idx = children.get_or_insert_with(|| ChildIndex::build(referrer_of));
                stage3_rounds = propagate_worklist(
                    requests,
                    url_of,
                    &mut labels,
                    self.stages,
                    &mut self.args_memo,
                    idx,
                    newly,
                );
            }
        }

        // Absorb the Table-2 counts: identical walk to the batch
        // `method_counts_both`, except the seen-bits persist so a host
        // first counted in chunk 0 never counts again in chunk 3.
        for (i, l) in labels.iter().enumerate() {
            let (slot, bit) = match l {
                Classification::AbpTracking => (&mut self.abp, 1u8),
                Classification::SemiTracking => (&mut self.semi, 2u8),
                Classification::Clean => continue,
            };
            slot.n_total_requests += 1;
            let h = host_of[i] as usize;
            if self.host_seen[h] & bit == 0 {
                self.host_seen[h] |= bit;
                slot.n_fqdn += 1;
                let t = self.rows[h].tld() as usize;
                if self.tld_seen[t] & bit == 0 {
                    self.tld_seen[t] |= bit;
                    slot.n_tld += 1;
                }
            }
            let u = url_of[i] as usize;
            if self.url_seen[u] & bit == 0 {
                self.url_seen[u] |= bit;
                slot.n_unique_urls += 1;
            }
        }
        self.n_requests += n as u64;
        self.chunk_scratch = sc;

        ChunkClassification {
            labels,
            stage2_rounds,
            stage3_rounds,
        }
    }

    /// Serializes everything that changed since the previous
    /// `encode_delta`/`apply_delta` (format: DESIGN.md §5g) and advances
    /// the baseline. New hosts come first so new URLs can reference them;
    /// the sparse update sections carry pre-baseline entries whose memos
    /// filled in or whose seen-bits gained bits when an old value recurred.
    /// Gates, TLD ids and the dedup table are derivable and not stored.
    /// On a fresh classifier this is a full encoding of the state.
    pub fn encode_delta(&mut self, w: &mut ByteWriter) {
        w.put_u64(self.n_requests);
        w.put_usize(self.enc_hosts);
        w.put_usize(self.enc_urls);
        w.put_usize(self.host_ids.len() - self.enc_hosts);
        for h in self.enc_hosts..self.host_ids.len() {
            w.put_u32(self.host_ids[h].0);
            w.put_u8(self.host_seen[h]);
        }
        w.put_usize(self.urls.len() - self.enc_urls);
        for u in self.enc_urls..self.urls.len() {
            w.put_str(self.urls.str_of(u));
            w.put_u32(self.host_of_url[u]);
            w.put_u8(self.args_memo[u]);
            w.put_u8(self.kw_memo[u]);
            w.put_u8(self.gate_memo[u]);
            w.put_u8(self.url_seen[u]);
        }
        let dirty_hosts: Vec<u32> = (0..self.enc_hosts)
            .filter(|&h| self.host_seen[h] != self.enc_host_seen[h])
            .map(|h| h as u32)
            .collect();
        w.put_usize(dirty_hosts.len());
        for &h in &dirty_hosts {
            w.put_u32(h);
            w.put_u8(self.host_seen[h as usize]);
        }
        let dirty_urls: Vec<u32> = (0..self.enc_urls)
            .filter(|&u| {
                self.args_memo[u] != self.enc_args[u]
                    || self.kw_memo[u] != self.enc_kw[u]
                    || self.gate_memo[u] != self.enc_gate[u]
                    || self.url_seen[u] != self.enc_url_seen[u]
            })
            .map(|u| u as u32)
            .collect();
        w.put_usize(dirty_urls.len());
        for &u in &dirty_urls {
            let u = u as usize;
            w.put_u32(u as u32);
            w.put_u8(self.args_memo[u]);
            w.put_u8(self.kw_memo[u]);
            w.put_u8(self.gate_memo[u]);
            w.put_u8(self.url_seen[u]);
        }
        for c in [&self.abp, &self.semi] {
            w.put_usize(c.n_fqdn);
            w.put_usize(c.n_tld);
            w.put_usize(c.n_unique_urls);
            w.put_usize(c.n_total_requests);
        }
        self.sync_baseline();
    }

    /// Applies one [`IncrementalClassifier::encode_delta`] chunk onto the
    /// current state and advances the baseline. Deltas must be applied in
    /// the order they were encoded, starting from a fresh classifier — the
    /// baseline counts in the delta pin this, so an out-of-order or
    /// skipped chunk is a typed error, not silent corruption.
    ///
    /// The filter lists, stage toggles and `domains` must be the ones the
    /// encoding run used — the streaming driver guarantees this by
    /// re-deriving all three from the seed before opening the store (and
    /// the store refuses foreign seeds via the config fingerprint).
    pub fn apply_delta(
        &mut self,
        r: &mut ByteReader<'_>,
        domains: &DomainTable,
    ) -> Result<(), DecodeError> {
        let bad = |detail: String| DecodeError { offset: 0, detail };
        let n_requests = r.u64()?;
        if n_requests < self.n_requests {
            return Err(bad(format!(
                "delta total {} below the {} requests already applied",
                n_requests, self.n_requests
            )));
        }
        let base_hosts = r.len_prefix()?;
        let base_urls = r.len_prefix()?;
        if base_hosts != self.host_ids.len() || base_urls != self.urls.len() {
            return Err(bad(format!(
                "delta baseline ({base_hosts} hosts, {base_urls} urls) does not match \
                 state ({} hosts, {} urls): chunk deltas must be applied in order",
                self.host_ids.len(),
                self.urls.len()
            )));
        }
        let n_new_hosts = r.len_prefix()?;
        // Pre-reserve the host-side tables from the delta header, and the
        // world-id remap to its final extent, so cross-segment replay
        // never pays doubling spikes mid-chunk (the same cold-growth
        // class `reserve_for_total` kills for the URL table below).
        self.host_ids.reserve(n_new_hosts);
        self.host_seen.reserve(n_new_hosts);
        self.rows.reserve(n_new_hosts);
        if self.host_remap.len() < domains.len() {
            self.host_remap.resize(domains.len(), u32::MAX);
        }
        for _ in 0..n_new_hosts {
            let wid = r.u32()?;
            if wid as usize >= domains.len() {
                return Err(bad(format!(
                    "host id {wid} out of range ({} interned domains)",
                    domains.len()
                )));
            }
            let seen = r.u8()?;
            if seen > 3 {
                return Err(bad(format!("host seen-bits {seen} out of range")));
            }
            let h = self.intern_host(DomainId(wid), domains);
            if h as usize + 1 != self.host_ids.len() {
                return Err(bad(format!("duplicate host id {wid} in delta")));
            }
            self.host_seen[h as usize] = seen;
        }
        let n_new_urls = r.len_prefix()?;
        if (base_urls + n_new_urls) as u64 > n_requests {
            return Err(bad(format!(
                "{} unique urls exceed {n_requests} total requests",
                base_urls + n_new_urls
            )));
        }
        // Size the open-addressing URL table for the post-chunk total
        // before interning (the batch interner's sizing rule; without
        // this, replaying a large run rehashes the full table mid-delta),
        // and every dense per-URL column alongside it.
        self.url_slots.reserve_for_total(n_requests as usize);
        self.urls.spans.reserve(n_new_urls);
        self.host_of_url.reserve(n_new_urls);
        self.args_memo.reserve(n_new_urls);
        self.kw_memo.reserve(n_new_urls);
        self.gate_memo.reserve(n_new_urls);
        self.url_seen.reserve(n_new_urls);
        for _ in 0..n_new_urls {
            let url = r.str()?;
            match self.url_slots.intern_owned(url_hash(url.as_bytes()), url, &self.urls) {
                UrlSlot::New(u) => debug_assert_eq!(u as usize, self.urls.len()),
                UrlSlot::Existing(_) => {
                    return Err(bad(format!("duplicate url in delta: {url}")));
                }
            }
            self.urls.push(url);
            let h = r.u32()?;
            if h as usize >= self.host_ids.len() {
                return Err(bad(format!(
                    "url host ref {h} out of range ({} hosts)",
                    self.host_ids.len()
                )));
            }
            self.host_of_url.push(h);
            let memos = [r.u8()?, r.u8()?, r.u8()?];
            for m in memos {
                if m > MEMO_YES {
                    return Err(bad(format!("memo byte {m} out of range")));
                }
            }
            self.args_memo.push(memos[0]);
            self.kw_memo.push(memos[1]);
            self.gate_memo.push(memos[2]);
            let seen = r.u8()?;
            if seen > 3 {
                return Err(bad(format!("url seen-bits {seen} out of range")));
            }
            self.url_seen.push(seen);
        }
        let n_host_updates = r.len_prefix()?;
        for _ in 0..n_host_updates {
            let h = r.u32()? as usize;
            if h >= base_hosts {
                return Err(bad(format!(
                    "host update {h} outside the {base_hosts}-host baseline"
                )));
            }
            let seen = r.u8()?;
            // Seen-bits are monotone: an update that drops a bit means the
            // delta does not belong to this state.
            if seen > 3 || seen & self.host_seen[h] != self.host_seen[h] {
                return Err(bad(format!(
                    "host {h} seen-bits update {seen} is not a superset of {}",
                    self.host_seen[h]
                )));
            }
            self.host_seen[h] = seen;
        }
        let n_url_updates = r.len_prefix()?;
        for _ in 0..n_url_updates {
            let u = r.u32()? as usize;
            if u >= base_urls {
                return Err(bad(format!(
                    "url update {u} outside the {base_urls}-url baseline"
                )));
            }
            let memos = [r.u8()?, r.u8()?, r.u8()?];
            for m in memos {
                if m > MEMO_YES {
                    return Err(bad(format!("memo byte {m} out of range")));
                }
            }
            self.args_memo[u] = memos[0];
            self.kw_memo[u] = memos[1];
            self.gate_memo[u] = memos[2];
            let seen = r.u8()?;
            if seen > 3 || seen & self.url_seen[u] != self.url_seen[u] {
                return Err(bad(format!(
                    "url {u} seen-bits update {seen} is not a superset of {}",
                    self.url_seen[u]
                )));
            }
            self.url_seen[u] = seen;
        }
        // TLD seen-bits are the union of their hosts' (a TLD bit is only
        // ever set alongside a host bit in the absorb pass), so they are
        // recomputed rather than stored.
        self.tld_seen.fill(0);
        for h in 0..self.host_ids.len() {
            self.tld_seen[self.rows[h].tld() as usize] |= self.host_seen[h];
        }
        for c in [&mut self.abp, &mut self.semi] {
            c.n_fqdn = r.len_prefix()?;
            c.n_tld = r.len_prefix()?;
            c.n_unique_urls = r.len_prefix()?;
            c.n_total_requests = r.len_prefix()?;
        }
        self.n_requests = n_requests;
        self.sync_baseline();
        Ok(())
    }

    /// Advances the serialization baseline to the current state.
    fn sync_baseline(&mut self) {
        self.enc_urls = self.urls.len();
        self.enc_hosts = self.host_ids.len();
        self.enc_args.clone_from(&self.args_memo);
        self.enc_kw.clone_from(&self.kw_memo);
        self.enc_gate.clone_from(&self.gate_memo);
        self.enc_url_seen.clone_from(&self.url_seen);
        self.enc_host_seen.clone_from(&self.host_seen);
    }
}

/// Tri-state memo lookup (free function so callers can split borrows of
/// the classifier's fields inside loops).
fn memo_get(memo: &mut [u8], url_id: u32, eval: impl FnOnce() -> bool) -> bool {
    let slot = &mut memo[url_id as usize];
    if *slot == MEMO_UNKNOWN {
        *slot = if eval() { MEMO_YES } else { MEMO_NO };
    }
    *slot == MEMO_YES
}

/// BFS worklist propagation to true convergence within one chunk — the
/// incremental twin of the batch `propagate_worklist`, over chunk-local
/// arrays and the persistent args memo.
fn propagate_worklist(
    requests: &[LoggedRequest],
    url_of: &[u32],
    labels: &mut [Classification],
    stages: ClassifierStages,
    args_memo: &mut [u8],
    idx: &ChildIndex,
    seeds: Vec<usize>,
) -> usize {
    let mut queue: VecDeque<(usize, usize)> = seeds.into_iter().map(|i| (i, 0)).collect();
    let mut depth = 0usize;
    while let Some((i, d)) = queue.pop_front() {
        for &c in idx.children_of(i) {
            let c = c as usize;
            if labels[c].is_tracking() {
                continue;
            }
            if stages.require_args && !memo_get(args_memo, url_of[c], || requests[c].has_args()) {
                continue;
            }
            labels[c] = Classification::SemiTracking;
            depth = depth.max(d + 1);
            queue.push_back((c, d + 1));
        }
    }
    depth
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::{classify, classify_with_stages_threads};
    use crate::listgen::generate_lists;
    use rand::{rngs::StdRng, SeedableRng};
    use xborder_browser::{run_study, StudyConfig};
    use xborder_dns::{DnsSim, MappingPolicy, ZoneEntry, ZoneServer};
    use xborder_geo::{CountryCode, WORLD};
    use xborder_netsim::ServerId;
    use xborder_webgraph::{generate, Domain, WebGraph, WebGraphConfig};

    fn dataset(seed: u64) -> (WebGraph, Vec<LoggedRequest>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = generate(&WebGraphConfig::small(), &mut rng);
        let mut dns = DnsSim::new();
        let de = WORLD.country_or_panic(CountryCode::parse("DE").unwrap());
        let mut next = 0u32;
        for s in &graph.services {
            for h in &s.hosts {
                next += 1;
                dns.add_zone(ZoneEntry {
                    host: h.clone(),
                    servers: vec![ZoneServer {
                        server: ServerId(next),
                        ip: std::net::IpAddr::V4(std::net::Ipv4Addr::from(0x0300_0000u32 + next)),
                        country: de.code,
                        location: de.centroid(),
                        valid: None,
                    }],
                    policy: MappingPolicy::Pinned,
                    ttl_secs: 300,
                })
                .unwrap();
            }
        }
        let ds = run_study(&StudyConfig::small(), &graph, &mut dns, &mut rng);
        (graph, ds.requests)
    }

    /// User-boundary chunk splits (referrer chains never cross users, so
    /// any split at a user boundary is a legal chunking).
    fn user_chunks(requests: &[LoggedRequest], users_per_chunk: usize) -> Vec<&[LoggedRequest]> {
        let mut chunks = Vec::new();
        let mut start = 0usize;
        while start < requests.len() {
            let first_user = requests[start].user.0 as usize;
            let mut end = start;
            while end < requests.len()
                && (requests[end].user.0 as usize) < first_user + users_per_chunk
            {
                end += 1;
            }
            chunks.push(&requests[start..end]);
            start = end;
        }
        chunks
    }

    /// Rebase chunk-global referrers to chunk-local positions, as the
    /// streaming study emits them.
    fn rebased(chunk: &[LoggedRequest], offset: usize) -> Vec<LoggedRequest> {
        chunk
            .iter()
            .map(|r| {
                let mut r = r.clone();
                if let Referrer::Request(p) = r.referrer {
                    r.referrer =
                        Referrer::Request(xborder_browser::RequestId(p.0 - offset as u32));
                }
                r
            })
            .collect()
    }

    fn run_incremental(
        requests: &[LoggedRequest],
        graph: &WebGraph,
        users_per_chunk: usize,
    ) -> (Vec<Classification>, MethodCounts, MethodCounts, IncrementalClassifier) {
        let (el, ep) = generate_lists(graph);
        let mut cls = IncrementalClassifier::new(&el, &ep, ClassifierStages::default());
        let mut labels = Vec::new();
        let mut offset = 0usize;
        for chunk in user_chunks(requests, users_per_chunk) {
            let local = rebased(chunk, offset);
            let out = cls.append_chunk(&local, graph.domains());
            labels.extend(out.labels);
            offset += chunk.len();
        }
        let (abp, semi) = cls.counts();
        (labels, abp, semi, cls)
    }

    #[test]
    fn incremental_matches_batch_across_chunkings() {
        let (graph, requests) = dataset(21);
        let (el, ep) = generate_lists(&graph);
        let batch = classify(&requests, graph.domains(), &el, &ep);
        for users_per_chunk in [1, 3, 1000] {
            let (labels, abp, semi, cls) = run_incremental(&requests, &graph, users_per_chunk);
            assert_eq!(labels, batch.labels, "labels differ at chunk={users_per_chunk}");
            assert_eq!(abp, batch.abp, "abp counts differ at chunk={users_per_chunk}");
            assert_eq!(semi, batch.semi, "semi counts differ at chunk={users_per_chunk}");
            assert_eq!(cls.n_requests(), requests.len() as u64);
        }
    }

    #[test]
    fn incremental_matches_per_chunk_batch_rounds() {
        // Per-chunk labels and rounds must equal running the batch
        // classifier on the chunk alone — the contract the streaming
        // driver's rounds reassembly depends on.
        let (graph, requests) = dataset(22);
        let (el, ep) = generate_lists(&graph);
        let mut cls = IncrementalClassifier::new(&el, &ep, ClassifierStages::default());
        let mut offset = 0usize;
        for chunk in user_chunks(&requests, 4) {
            let local = rebased(chunk, offset);
            let inc = cls.append_chunk(&local, graph.domains());
            let batch = classify_with_stages_threads(
                &local,
                graph.domains(),
                &el,
                &ep,
                ClassifierStages::default(),
                1,
            );
            assert_eq!(inc.labels, batch.labels);
            assert_eq!(inc.stage2_rounds, batch.stage2_rounds);
            assert_eq!(inc.stage3_rounds, batch.stage3_rounds);
            offset += chunk.len();
        }
    }

    #[test]
    fn state_roundtrip_mid_stream_continues_identically() {
        let (graph, requests) = dataset(23);
        let (el, ep) = generate_lists(&graph);
        let chunks = user_chunks(&requests, 3);
        let split = chunks.len() / 2;

        // Encode one delta per chunk (exactly what the streaming driver
        // persists) and replay them in order onto a fresh classifier.
        let mut live = IncrementalClassifier::new(&el, &ep, ClassifierStages::default());
        let mut deltas: Vec<Vec<u8>> = Vec::new();
        let mut offset = 0usize;
        for chunk in &chunks[..split] {
            let local = rebased(chunk, offset);
            live.append_chunk(&local, graph.domains());
            let mut w = ByteWriter::new();
            live.encode_delta(&mut w);
            deltas.push(w.into_bytes());
            offset += chunk.len();
        }

        let mut resumed = IncrementalClassifier::new(&el, &ep, ClassifierStages::default());
        for bytes in &deltas {
            let mut r = ByteReader::new(bytes);
            resumed
                .apply_delta(&mut r, graph.domains())
                .expect("delta applies");
            r.finish().expect("no trailing bytes");
        }

        for chunk in &chunks[split..] {
            let local = rebased(chunk, offset);
            let a = live.append_chunk(&local, graph.domains());
            let b = resumed.append_chunk(&local, graph.domains());
            assert_eq!(a.labels, b.labels);
            assert_eq!(a.stage2_rounds, b.stage2_rounds);
            assert_eq!(a.stage3_rounds, b.stage3_rounds);
            offset += chunk.len();
        }
        assert_eq!(live.counts(), resumed.counts());
        let batch = classify(&requests, graph.domains(), &el, &ep);
        assert_eq!(resumed.counts(), (batch.abp, batch.semi));
    }

    #[test]
    fn truncated_state_is_typed_error() {
        let (graph, requests) = dataset(24);
        let (el, ep) = generate_lists(&graph);
        let mut cls = IncrementalClassifier::new(&el, &ep, ClassifierStages::default());
        cls.append_chunk(&requests, graph.domains());
        let mut w = ByteWriter::new();
        cls.encode_delta(&mut w);
        let bytes = w.into_bytes();
        for cut in [0, 1, 9, bytes.len() / 2, bytes.len() - 1] {
            let mut r = ByteReader::new(&bytes[..cut]);
            let mut fresh = IncrementalClassifier::new(&el, &ep, ClassifierStages::default());
            assert!(
                fresh.apply_delta(&mut r, graph.domains()).is_err(),
                "truncation at {cut} must not apply"
            );
        }
    }

    #[test]
    fn out_of_order_delta_is_typed_error() {
        // Applying chunk 1's delta without chunk 0's (or the same delta
        // twice when it interned anything) must fail the baseline pin.
        let (graph, requests) = dataset(25);
        let (el, ep) = generate_lists(&graph);
        let chunks = user_chunks(&requests, 2);
        assert!(chunks.len() >= 2, "dataset must span multiple chunks");
        let mut live = IncrementalClassifier::new(&el, &ep, ClassifierStages::default());
        let mut deltas: Vec<Vec<u8>> = Vec::new();
        let mut offset = 0usize;
        for chunk in &chunks[..2] {
            let local = rebased(chunk, offset);
            live.append_chunk(&local, graph.domains());
            let mut w = ByteWriter::new();
            live.encode_delta(&mut w);
            deltas.push(w.into_bytes());
            offset += chunk.len();
        }
        let mut fresh = IncrementalClassifier::new(&el, &ep, ClassifierStages::default());
        let mut r = ByteReader::new(&deltas[1]);
        let err = fresh
            .apply_delta(&mut r, graph.domains())
            .expect_err("skipping chunk 0's delta must not apply");
        assert!(err.detail.contains("baseline"), "unexpected error: {err}");
        // The failed apply interned nothing, so chunk 0's delta still fits.
        let mut r = ByteReader::new(&deltas[0]);
        fresh
            .apply_delta(&mut r, graph.domains())
            .expect("chunk 0's delta applies after the rejected skip");
        let mut r = ByteReader::new(&deltas[0]);
        fresh
            .apply_delta(&mut r, graph.domains())
            .expect_err("re-applying a state-growing delta must fail");
    }

    /// A deep forward-pointing chain inside one chunk still exercises the
    /// worklist fallback (same guarantee the batch classifier pins).
    #[test]
    fn forward_chain_within_chunk_fully_labeled() {
        use xborder_browser::{RequestId, UserId};
        use xborder_netsim::time::SimTime;
        use xborder_webgraph::PublisherId;
        const LEN: usize = 40;
        let mut domains = DomainTable::new();
        let mk = |i: usize, referrer: Referrer, domains: &mut DomainTable| {
            let host = Domain::new(format!("h{i}.example.com"));
            LoggedRequest {
                user: UserId(0),
                time: SimTime(i as u64),
                first_party: domains.intern(&Domain::new("pub.example.org")),
                publisher: PublisherId(0),
                url: format!("https://{host}/p?x={i}").into_boxed_str(),
                host: domains.intern(&host),
                referrer,
                ip: "10.0.0.1".parse().unwrap(),
            }
        };
        let mut requests: Vec<LoggedRequest> = (0..LEN - 1)
            .map(|i| mk(i, Referrer::Request(RequestId(i as u32 + 1)), &mut domains))
            .collect();
        requests.push(mk(LEN - 1, Referrer::FirstParty, &mut domains));
        let mut el = FilterList::new("easylist");
        el.push(crate::rules::FilterRule::DomainAnchor(Domain::new(format!(
            "h{}.example.com",
            LEN - 1
        ))));
        let ep = FilterList::new("easyprivacy");
        let mut cls = IncrementalClassifier::new(&el, &ep, ClassifierStages::default());
        let out = cls.append_chunk(&requests, &domains);
        assert!(out.labels.iter().all(|l| l.is_tracking()));
        assert!(out.stage2_rounds > 16);
    }
}
