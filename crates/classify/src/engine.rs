//! Compiled filter-list engine: Aho-Corasick literal matching with a
//! token-indexed prefilter and dense per-host gate rows (DESIGN.md §5h).
//!
//! [`crate::rules`] keeps the reference semantics: a [`FilterList`] matches
//! a request by scanning every candidate rule's substring against the URL,
//! O(rules) per call. Production adblock engines instead compile the whole
//! rule set once and answer each URL with a single automaton pass; this
//! module is that compiled form, built by [`RuleEngine::compile`] from one
//! or more frozen lists:
//!
//! - every URL-dependent rule contributes one *distinguishing literal* to a
//!   single [`AhoCorasick`] automaton — the substring itself for
//!   [`FilterRule::UrlSubstring`], `domain + path_prefix` for
//!   [`FilterRule::DomainWithPath`] (a matching URL contains the host,
//!   which ends with the anchored domain, immediately followed by the
//!   prefix, so the concatenation must occur verbatim). One pass over the
//!   URL bytes yields the candidate rules; substring candidates are
//!   matches outright, path candidates re-check the oracle's positional
//!   condition, so the verdict is exactly the reference implementation's;
//! - a 512-bit token bloom ([`TokenPrefilter`]) over each literal's
//!   *interior* alphanumeric token rejects URLs whose token stream cannot
//!   contain any literal before the automaton ever runs — and, via
//!   [`RuleEngine::may_match_encoded`], before a deferred
//!   [`EncodedUrl`] is even rendered to a string;
//! - host-level work is cached as dense [`HostRow`]s keyed by
//!   [`DomainId`]: anchor verdicts, the pay-level-domain id, and a
//!   content-interned bitset of the host-gated path rules — replacing the
//!   per-host `Vec<&FilterRule>` gates the classifier used to allocate.
//!
//! The engine owns all of its data (no borrows into the source lists), so
//! the streaming classifier persists it across chunks and stops re-deriving
//! gates. Everything is deterministic: automaton states are numbered in
//! BFS order over byte classes assigned in ascending byte order, rule and
//! pattern ids follow list insertion order, and TLD/row-set ids follow
//! first-resolution order — no hash-order-dependent value ever escapes.

use crate::rules::{FilterList, FilterRule};
use std::collections::VecDeque;
use xborder_webgraph::url::{EncodedUrl, TRACKING_KEYWORDS};
use xborder_webgraph::{Domain, DomainId, DomainTable, FxMap};

/// Sentinel for an absent goto transition during construction.
const ABSENT: u32 = u32::MAX;

/// A dense, byte-class-compressed Aho-Corasick DFA over a fixed pattern
/// set.
///
/// Construction builds the classic goto trie + BFS failure links, then
/// converts to a full DFA in place (each state row maps every byte class
/// to a next state, so matching is one table read per input byte with no
/// failure chasing). Two layout tricks keep the hot loop tight:
///
/// - input bytes map through a 256-entry *class* table first; only bytes
///   that occur in some pattern get distinct classes (class 0 = "any other
///   byte"), shrinking each state row from 256 to `n_classes` entries;
/// - states are renumbered so every accepting state (own or inherited
///   match) sits at the tail, making "did anything match" a single
///   `state >= first_accepting` comparison per byte.
///
/// Patterns must be non-empty (an empty needle matches everything; callers
/// fold that case out — see [`RuleEngine::compile`]). With
/// `case_insensitive`, patterns are lowercased at build time and upper-case
/// input bytes share their lower-case byte's class, so matching needs no
/// per-byte folding.
#[derive(Debug, Clone)]
pub struct AhoCorasick {
    /// Input byte -> dense class id.
    classes: [u8; 256],
    n_classes: u32,
    /// Row-major `n_states x n_classes` transition table.
    next: Vec<u32>,
    /// States `>= first_accepting` have at least one pattern ending there.
    first_accepting: u32,
    /// CSR offsets into `out`: patterns ending at each state (inherited
    /// matches included).
    out_start: Vec<u32>,
    out: Vec<u32>,
}

impl AhoCorasick {
    /// Compiles the automaton. Panics if any pattern is empty.
    pub fn new(patterns: &[&[u8]], case_insensitive: bool) -> AhoCorasick {
        assert!(
            patterns.iter().all(|p| !p.is_empty()),
            "empty patterns must be folded out before automaton construction"
        );
        let folded: Vec<Vec<u8>> = patterns
            .iter()
            .map(|p| {
                if case_insensitive {
                    p.iter().map(|b| b.to_ascii_lowercase()).collect()
                } else {
                    p.to_vec()
                }
            })
            .collect();

        // Byte classes, assigned in ascending byte order for determinism.
        let mut present = [false; 256];
        for p in &folded {
            for &b in p {
                present[b as usize] = true;
            }
        }
        let distinct = present.iter().filter(|&&p| p).count();
        let mut classes = [0u8; 256];
        let n_classes;
        if distinct >= 256 {
            // No byte left over to serve as the shared "other" class: fall
            // back to the identity map (only reachable case-sensitively).
            for (b, c) in classes.iter_mut().enumerate() {
                *c = b as u8;
            }
            n_classes = 256u32;
        } else {
            let mut nxt = 1u8;
            for b in 0..256 {
                if present[b] {
                    classes[b] = nxt;
                    nxt += 1;
                }
            }
            if case_insensitive {
                for b in b'a'..=b'z' {
                    classes[b.to_ascii_uppercase() as usize] = classes[b as usize];
                }
            }
            n_classes = nxt as u32;
        }
        let nc = n_classes as usize;

        // Goto trie.
        let mut next: Vec<u32> = vec![ABSENT; nc];
        let mut out_pats: Vec<Vec<u32>> = vec![Vec::new()];
        for (pid, p) in folded.iter().enumerate() {
            let mut s = 0usize;
            for &b in p {
                let slot = s * nc + classes[b as usize] as usize;
                if next[slot] == ABSENT {
                    let t = out_pats.len() as u32;
                    next.resize(next.len() + nc, ABSENT);
                    out_pats.push(Vec::new());
                    next[slot] = t;
                }
                s = next[slot] as usize;
            }
            out_pats[s].push(pid as u32);
        }
        let n_states = out_pats.len();

        // BFS failure links with in-place goto -> DFA conversion: when a
        // state is dequeued its fail target (strictly shallower) is already
        // fully converted, so absent transitions copy the fail row and
        // output lists inherit the fail state's completed list.
        let mut fail = vec![0u32; n_states];
        let mut queue: VecDeque<u32> = VecDeque::new();
        for slot in next.iter_mut().take(nc) {
            match *slot {
                ABSENT => *slot = 0,
                t => {
                    fail[t as usize] = 0;
                    queue.push_back(t);
                }
            }
        }
        while let Some(s) = queue.pop_front() {
            let s = s as usize;
            let f = fail[s] as usize;
            if !out_pats[f].is_empty() {
                let inherited = out_pats[f].clone();
                out_pats[s].extend(inherited);
            }
            for c in 0..nc {
                let slot = s * nc + c;
                match next[slot] {
                    ABSENT => next[slot] = next[f * nc + c],
                    t => {
                        fail[t as usize] = next[f * nc + c];
                        queue.push_back(t);
                    }
                }
            }
        }

        // Renumber accepting states to the tail (stable within each group,
        // so the permutation is deterministic). The root cannot accept —
        // empty patterns are asserted out — so it stays state 0.
        let n_accepting = out_pats.iter().filter(|o| !o.is_empty()).count();
        let first_accepting = (n_states - n_accepting) as u32;
        let mut perm = vec![0u32; n_states];
        let (mut lo, mut hi) = (0u32, first_accepting);
        for (s, o) in out_pats.iter().enumerate() {
            if o.is_empty() {
                perm[s] = lo;
                lo += 1;
            } else {
                perm[s] = hi;
                hi += 1;
            }
        }
        let mut dfa = vec![0u32; n_states * nc];
        for s in 0..n_states {
            let base = perm[s] as usize * nc;
            for c in 0..nc {
                dfa[base + c] = perm[next[s * nc + c] as usize];
            }
        }
        let mut inv = vec![0u32; n_states];
        for (s, &p) in perm.iter().enumerate() {
            inv[p as usize] = s as u32;
        }
        let mut out_start = Vec::with_capacity(n_states + 1);
        let mut out = Vec::new();
        for &old in &inv {
            out_start.push(out.len() as u32);
            out.extend_from_slice(&out_pats[old as usize]);
        }
        out_start.push(out.len() as u32);

        AhoCorasick {
            classes,
            n_classes,
            next: dfa,
            first_accepting,
            out_start,
            out,
        }
    }

    /// True if any pattern occurs in `hay` — one table read per byte.
    pub fn contains(&self, hay: &[u8]) -> bool {
        let nc = self.n_classes as usize;
        let mut s = 0usize;
        for &b in hay {
            s = self.next[s * nc + self.classes[b as usize] as usize] as usize;
            if s as u32 >= self.first_accepting {
                return true;
            }
        }
        false
    }

    /// Streams every pattern occurrence (by pattern id, at each match end
    /// position) into `on_match`; a `true` return stops the scan early.
    /// Returns whether the scan was stopped.
    pub fn scan(&self, hay: &[u8], mut on_match: impl FnMut(u32) -> bool) -> bool {
        let nc = self.n_classes as usize;
        let mut s = 0usize;
        for &b in hay {
            s = self.next[s * nc + self.classes[b as usize] as usize] as usize;
            if s as u32 >= self.first_accepting {
                let (a, z) = (self.out_start[s] as usize, self.out_start[s + 1] as usize);
                for &pid in &self.out[a..z] {
                    if on_match(pid) {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Number of DFA states (build-cost/bench reporting).
    pub fn n_states(&self) -> usize {
        self.out_start.len() - 1
    }

    /// Number of byte classes (build-cost/bench reporting).
    pub fn n_classes(&self) -> usize {
        self.n_classes as usize
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

fn is_token_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric()
}

/// 512-bit bloom filter over the *required token* of every automaton
/// pattern: the longest alphanumeric run bounded by non-alphanumeric bytes
/// on **both sides within the literal**. Wherever the literal occurs in a
/// URL, those two boundary bytes come with it, so the run appears as a
/// complete token of the URL's own token stream — which means a URL none
/// of whose tokens hits the bloom cannot contain any literal, and the scan
/// (or even the string rendering, via [`EncodedUrl::visit_bytes`]) can be
/// skipped. Runs touching a literal's edge are *not* usable: they can
/// extend into neighboring URL bytes and hash differently.
///
/// Only built when every pattern has such an interior token; false
/// positives merely cost the scan that would have run anyway.
#[derive(Debug, Clone)]
pub struct TokenPrefilter {
    bloom: [u64; 8],
}

impl TokenPrefilter {
    /// Builds the bloom, or `None` if some pattern has no interior token
    /// (the prefilter would then be unsound to consult).
    fn build(patterns: &[Vec<u8>]) -> Option<TokenPrefilter> {
        if patterns.is_empty() {
            return None;
        }
        let mut bloom = [0u64; 8];
        for p in patterns {
            let h = required_token_hash(p)?;
            bloom[(h >> 6) as usize & 7] |= 1u64 << (h & 63);
        }
        Some(TokenPrefilter { bloom })
    }

    fn hit(&self, h: u64) -> bool {
        self.bloom[(h >> 6) as usize & 7] & (1u64 << (h & 63)) != 0
    }

    /// True unless the byte stream provably contains no pattern literal.
    pub fn may_match(&self, bytes: &[u8]) -> bool {
        let mut scan = TokenScan::new(self);
        scan.feed(bytes);
        scan.finish()
    }
}

/// FNV-1a hash of the longest interior alphanumeric run of `p`.
fn required_token_hash(p: &[u8]) -> Option<u64> {
    let mut best: Option<(usize, usize)> = None;
    let mut i = 0usize;
    while i < p.len() {
        if is_token_byte(p[i]) {
            let start = i;
            while i < p.len() && is_token_byte(p[i]) {
                i += 1;
            }
            if start > 0 && i < p.len() && best.is_none_or(|(s, e)| i - start > e - s) {
                best = Some((start, i));
            }
        } else {
            i += 1;
        }
    }
    best.map(|(s, e)| fnv1a(&p[s..e]))
}

/// Incremental token-stream walker over a byte sequence delivered in
/// slices (the shape [`EncodedUrl::visit_bytes`] produces), carrying the
/// in-progress token hash across slice boundaries.
struct TokenScan<'a> {
    pf: &'a TokenPrefilter,
    h: u64,
    in_token: bool,
    hit: bool,
}

impl<'a> TokenScan<'a> {
    fn new(pf: &'a TokenPrefilter) -> TokenScan<'a> {
        TokenScan {
            pf,
            h: FNV_OFFSET,
            in_token: false,
            hit: false,
        }
    }

    fn feed(&mut self, bytes: &[u8]) {
        if self.hit {
            return;
        }
        for &b in bytes {
            if is_token_byte(b) {
                if !self.in_token {
                    self.h = FNV_OFFSET;
                    self.in_token = true;
                }
                self.h = (self.h ^ b as u64).wrapping_mul(FNV_PRIME);
            } else if self.in_token {
                self.in_token = false;
                if self.pf.hit(self.h) {
                    self.hit = true;
                    return;
                }
            }
        }
    }

    fn finish(mut self) -> bool {
        if !self.hit && self.in_token {
            self.hit = self.pf.hit(self.h);
        }
        self.hit
    }
}

/// ASCII-case-insensitive multi-keyword matcher over
/// [`TRACKING_KEYWORDS`] — a thin wrapper around a case-folded
/// [`AhoCorasick`], replacing the first-byte-dispatch scanner the
/// classifier used to carry (which rescanned from every candidate start
/// byte; the automaton reads each URL byte exactly once).
#[derive(Debug, Clone)]
pub struct KeywordScanner {
    ac: AhoCorasick,
}

impl KeywordScanner {
    /// Builds the automaton over the paper's keyword list.
    pub fn new() -> KeywordScanner {
        let patterns: Vec<&[u8]> = TRACKING_KEYWORDS.iter().map(|k| k.as_bytes()).collect();
        KeywordScanner {
            ac: AhoCorasick::new(&patterns, true),
        }
    }

    /// True if the URL contains any tracking keyword, case-insensitively.
    pub fn matches(&self, url: &str) -> bool {
        self.ac.contains(url.as_bytes())
    }
}

impl Default for KeywordScanner {
    fn default() -> Self {
        KeywordScanner::new()
    }
}

const ROW_UNRESOLVED: u8 = 0;
const ROW_NEVER: u8 = 1;
const ROW_ALWAYS: u8 = 2;
const ROW_SCAN: u8 = 3;

/// A host's compiled gate: the engine-level replacement for
/// [`crate::rules::HostGate`], 12 bytes and `Copy` instead of a
/// heap-allocated rule vector.
///
/// Exactly one of three verdict shapes, plus the host's dense
/// pay-level-domain id (resolved here so classifiers stop re-deriving
/// `tld()` separately):
/// - **always**: an anchor rule covers the host — every URL matches;
/// - **never**: no rule of any compiled list can match the host;
/// - **url-dependent**: only the automaton scan can decide, against this
///   row's bitset of host-gated path rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostRow {
    kind: u8,
    /// Index of this host's path-rule bitset in the engine's interned
    /// set pool (0 = the empty set).
    set: u32,
    tld: u32,
}

impl HostRow {
    const UNRESOLVED: HostRow = HostRow {
        kind: ROW_UNRESOLVED,
        set: 0,
        tld: 0,
    };

    /// Every URL on this host matches (anchor-covered).
    pub fn always(&self) -> bool {
        self.kind == ROW_ALWAYS
    }

    /// No URL on this host can ever match.
    pub fn never(&self) -> bool {
        self.kind == ROW_NEVER
    }

    /// The verdict needs a per-URL [`RuleEngine::url_verdict`] scan.
    pub fn url_dependent(&self) -> bool {
        self.kind == ROW_SCAN
    }

    /// Dense pay-level-domain id (engine-assigned, first-resolution
    /// order).
    pub fn tld(&self) -> u32 {
        self.tld
    }
}

/// One compiled `DomainWithPath` rule (owned copy).
struct PathRule {
    domain: Domain,
    prefix: String,
}

/// What an automaton pattern id stands for.
enum LitRef {
    /// A `UrlSubstring` literal: a candidate hit *is* a match.
    Substring,
    /// A `DomainWithPath` literal: candidate for path rule `.0`, subject
    /// to the host bitset and the positional verify.
    Path(u32),
}

/// Consulting the token prefilter costs a second pass over the URL bytes,
/// which only pays off once the automaton (and its candidate set) is big
/// enough to be worth skipping; below this many patterns the scan itself
/// is the cheaper filter.
const PREFILTER_HOT_MIN_PATTERNS: usize = 16;

/// The compiled engine over one or more frozen filter lists. See the
/// module docs for the construction; the verdict contract is
///
/// ```text
/// engine.matches(host, url) == lists.iter().any(|l| l.matches(host, url))
/// ```
///
/// for every host and URL (property-pinned against the reference
/// implementation in this module's tests). The engine owns all compiled
/// data and is `Send + Sync` for shared read-only use across stage-1
/// shards; only host-row resolution ([`RuleEngine::host_row`] /
/// [`RuleEngine::resolve`]) takes `&mut self`, to fill caches.
pub struct RuleEngine {
    /// Anchor domains bucketed by their pay-level domain (the same
    /// `tld_key` bucketing [`FilterList`] uses, so bucket-miss semantics —
    /// e.g. an anchor on a bare public suffix — replicate exactly).
    anchors_by_tld: FxMap<Domain, Vec<Domain>>,
    path_rules: Vec<PathRule>,
    /// Path-rule ids bucketed by the anchored domain's pay-level domain.
    path_by_tld: FxMap<Domain, Vec<u32>>,
    /// Automaton pattern id -> rule meaning (parallel to the pattern set).
    lit_ref: Vec<LitRef>,
    /// The literal automaton; `None` when no URL-dependent literals exist
    /// (anchor-only lists — the generated-list hot path).
    ac: Option<AhoCorasick>,
    /// An empty `UrlSubstring` rule was present: everything matches.
    match_all: bool,
    /// Any non-empty `UrlSubstring` rules (they apply to every host).
    has_substrings: bool,
    prefilter: Option<TokenPrefilter>,
    prefilter_hot: bool,
    /// Words per path-rule bitset (`ceil(path_rules / 64)`).
    n_path_words: usize,
    n_rules: usize,

    /// Dense per-[`DomainId`] row cache, lazily resolved.
    rows: Vec<HostRow>,
    /// Interned bitset pool, `n_path_words` words per set; set 0 is the
    /// empty set.
    row_sets: Vec<u64>,
    row_dedup: FxMap<Box<[u64]>, u32>,
    /// Pay-level domain -> dense id, assigned in first-resolution order.
    tld_ids: FxMap<Domain, u32>,
    /// Reused scratch for building a host's bitset during resolution.
    scratch_set: Vec<u64>,
}

impl RuleEngine {
    /// Compiles the union of `lists` (rule ids follow list order, then
    /// insertion order within each list — the reference evaluation order).
    pub fn compile(lists: &[&FilterList]) -> RuleEngine {
        let mut anchors_by_tld: FxMap<Domain, Vec<Domain>> = FxMap::default();
        let mut path_rules: Vec<PathRule> = Vec::new();
        let mut path_by_tld: FxMap<Domain, Vec<u32>> = FxMap::default();
        let mut lit_ref: Vec<LitRef> = Vec::new();
        let mut patterns: Vec<Vec<u8>> = Vec::new();
        let mut match_all = false;
        let mut has_substrings = false;
        let mut n_rules = 0usize;
        for list in lists {
            for rule in list.rules() {
                n_rules += 1;
                match rule {
                    FilterRule::DomainAnchor(d) => {
                        anchors_by_tld.entry(d.tld()).or_default().push(d.clone());
                    }
                    FilterRule::DomainWithPath { domain, path_prefix } => {
                        if domain.as_str().is_empty() && path_prefix.is_empty() {
                            // Degenerate rule: its literal is empty, but it
                            // can only ever match the empty host (the only
                            // subdomain of ""), for which `url.find("")`
                            // always succeeds — i.e. exact anchor
                            // semantics. Fold it there instead of feeding
                            // the automaton an empty needle.
                            anchors_by_tld.entry(domain.tld()).or_default().push(domain.clone());
                            continue;
                        }
                        let rid = path_rules.len() as u32;
                        let mut lit =
                            Vec::with_capacity(domain.as_str().len() + path_prefix.len());
                        lit.extend_from_slice(domain.as_str().as_bytes());
                        lit.extend_from_slice(path_prefix.as_bytes());
                        path_by_tld.entry(domain.tld()).or_default().push(rid);
                        path_rules.push(PathRule {
                            domain: domain.clone(),
                            prefix: path_prefix.clone(),
                        });
                        lit_ref.push(LitRef::Path(rid));
                        patterns.push(lit);
                    }
                    FilterRule::UrlSubstring(s) => {
                        if s.is_empty() {
                            // `url.contains("")` is always true.
                            match_all = true;
                            continue;
                        }
                        has_substrings = true;
                        lit_ref.push(LitRef::Substring);
                        patterns.push(s.as_bytes().to_vec());
                    }
                }
            }
        }
        let prefilter = TokenPrefilter::build(&patterns);
        let prefilter_hot = patterns.len() >= PREFILTER_HOT_MIN_PATTERNS;
        let ac = if patterns.is_empty() {
            None
        } else {
            let refs: Vec<&[u8]> = patterns.iter().map(|p| p.as_slice()).collect();
            // The reference predicate is case-sensitive `str::contains`.
            Some(AhoCorasick::new(&refs, false))
        };
        let n_path_words = path_rules.len().div_ceil(64);
        let mut row_dedup: FxMap<Box<[u64]>, u32> = FxMap::default();
        row_dedup.insert(vec![0u64; n_path_words].into_boxed_slice(), 0);
        RuleEngine {
            anchors_by_tld,
            path_rules,
            path_by_tld,
            lit_ref,
            ac,
            match_all,
            has_substrings,
            prefilter,
            prefilter_hot,
            n_path_words,
            n_rules,
            rows: Vec::new(),
            row_sets: vec![0u64; n_path_words],
            row_dedup,
            tld_ids: FxMap::default(),
            scratch_set: Vec::new(),
        }
    }

    /// The cached [`HostRow`] for an interned host, resolving (and
    /// memoizing, keyed by the dense [`DomainId`]) on first sight.
    pub fn host_row(&mut self, host_id: DomainId, domains: &DomainTable) -> HostRow {
        let i = host_id.0 as usize;
        if i >= self.rows.len() {
            self.rows.resize(i + 1, HostRow::UNRESOLVED);
        }
        if self.rows[i].kind != ROW_UNRESOLVED {
            return self.rows[i];
        }
        let row = self.resolve(domains.domain(host_id));
        self.rows[i] = row;
        row
    }

    /// Resolves a host's row without consulting or filling the
    /// [`DomainId`] cache (still interns TLD ids and bitsets). One `tld()`
    /// derivation per call — the classifiers' former three per unique host
    /// (two `host_gate`s plus the interner's own pass) collapse into this.
    pub fn resolve(&mut self, host: &Domain) -> HostRow {
        let tld = host.tld();
        let next_t = self.tld_ids.len() as u32;
        let t = *self.tld_ids.entry(tld.clone()).or_insert(next_t);
        if self.match_all {
            return HostRow { kind: ROW_ALWAYS, set: 0, tld: t };
        }
        if let Some(anchors) = self.anchors_by_tld.get(&tld) {
            if anchors.iter().any(|d| host.is_subdomain_of(d)) {
                return HostRow { kind: ROW_ALWAYS, set: 0, tld: t };
            }
        }
        let mut scratch = std::mem::take(&mut self.scratch_set);
        scratch.clear();
        scratch.resize(self.n_path_words, 0);
        let mut any_path = false;
        if let Some(rids) = self.path_by_tld.get(&tld) {
            for &rid in rids {
                if host.is_subdomain_of(&self.path_rules[rid as usize].domain) {
                    scratch[rid as usize >> 6] |= 1u64 << (rid & 63);
                    any_path = true;
                }
            }
        }
        let row = if !any_path && !self.has_substrings {
            HostRow { kind: ROW_NEVER, set: 0, tld: t }
        } else {
            let set = if any_path { self.intern_set(&scratch) } else { 0 };
            HostRow { kind: ROW_SCAN, set, tld: t }
        };
        self.scratch_set = scratch;
        row
    }

    /// Content-interns a path-rule bitset into the pool.
    fn intern_set(&mut self, set: &[u64]) -> u32 {
        debug_assert!(self.n_path_words > 0, "non-empty set with no path rules");
        if let Some(&id) = self.row_dedup.get(set) {
            return id;
        }
        let id = (self.row_sets.len() / self.n_path_words) as u32;
        self.row_sets.extend_from_slice(set);
        self.row_dedup.insert(set.to_vec().into_boxed_slice(), id);
        id
    }

    /// The URL-dependent verdict for a host whose row is
    /// [`HostRow::url_dependent`]: one automaton pass over the URL bytes
    /// (behind the token prefilter when the pattern set is large enough to
    /// make the extra pass pay), with candidates filtered through the
    /// row's bitset and the positional path verify.
    pub fn url_verdict(&self, row: HostRow, host: &Domain, url: &str) -> bool {
        debug_assert_eq!(row.kind, ROW_SCAN, "url_verdict wants a url-dependent row");
        let Some(ac) = &self.ac else {
            return false;
        };
        let bytes = url.as_bytes();
        if self.prefilter_hot {
            if let Some(pf) = &self.prefilter {
                if !pf.may_match(bytes) {
                    return false;
                }
            }
        }
        let words = &self.row_sets[row.set as usize * self.n_path_words..][..self.n_path_words];
        ac.scan(bytes, |pid| match self.lit_ref[pid as usize] {
            LitRef::Substring => true,
            LitRef::Path(rid) => {
                words[rid as usize >> 6] & (1u64 << (rid & 63)) != 0
                    && verify_path(&self.path_rules[rid as usize], host, url)
            }
        })
    }

    /// Full per-request verdict (row resolution + URL scan). The
    /// classifiers inline these steps around their own caches; this entry
    /// point exists for the equivalence tests and ad-hoc callers.
    pub fn matches(&mut self, host: &Domain, url: &str) -> bool {
        let row = self.resolve(host);
        match row.kind {
            ROW_ALWAYS => true,
            ROW_NEVER => false,
            _ => self.url_verdict(row, host, url),
        }
    }

    /// Token-prefilter screen over a rendered URL: `false` means no
    /// URL-dependent rule can match it (host rows still apply). `true`
    /// when the prefilter is unavailable.
    pub fn may_match_url(&self, url: &str) -> bool {
        match &self.prefilter {
            Some(pf) => pf.may_match(url.as_bytes()),
            None => true,
        }
    }

    /// Token-prefilter screen over a *deferred* URL: walks the exact byte
    /// stream [`EncodedUrl::write_into`] would render — via
    /// [`EncodedUrl::visit_bytes`] — without materializing the string, so
    /// a rejected URL is never allocated at all.
    pub fn may_match_encoded(&self, enc: &EncodedUrl, host: &str) -> bool {
        match &self.prefilter {
            Some(pf) => {
                let mut scan = TokenScan::new(pf);
                enc.visit_bytes(host, |chunk| scan.feed(chunk));
                scan.finish()
            }
            None => true,
        }
    }

    /// Distinct pay-level domains interned so far (sizes the classifiers'
    /// TLD seen-bit arrays).
    pub fn n_tlds(&self) -> usize {
        self.tld_ids.len()
    }

    /// Total rules compiled in.
    pub fn n_rules(&self) -> usize {
        self.n_rules
    }

    /// Automaton pattern count (0 = anchor-only lists).
    pub fn n_patterns(&self) -> usize {
        self.lit_ref.len()
    }

    /// The compiled automaton, when URL-dependent literals exist.
    pub fn automaton(&self) -> Option<&AhoCorasick> {
        self.ac.as_ref()
    }

    /// Whether the token prefilter was buildable *and* is consulted on the
    /// hot path.
    pub fn prefilter_active(&self) -> bool {
        self.prefilter.is_some() && self.prefilter_hot
    }
}

/// The oracle's positional condition for a path rule, minus the subdomain
/// check (already encoded in the host bitset): the path starts right after
/// the *first occurrence of the host* in the URL string.
fn verify_path(rule: &PathRule, host: &Domain, url: &str) -> bool {
    match url.find(host.as_str()) {
        Some(i) => url[i + host.as_str().len()..].starts_with(rule.prefix.as_str()),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn d(s: &str) -> Domain {
        Domain::new(s)
    }

    /// Naive multi-pattern reference for the automaton tests.
    fn naive_occurring(patterns: &[&[u8]], hay: &[u8]) -> Vec<u32> {
        patterns
            .iter()
            .enumerate()
            .filter(|(_, p)| hay.windows(p.len()).any(|w| w == **p))
            .map(|(i, _)| i as u32)
            .collect()
    }

    #[test]
    fn ac_basics() {
        let pats: Vec<&[u8]> = vec![b"he", b"she", b"his", b"hers"];
        let ac = AhoCorasick::new(&pats, false);
        assert!(ac.contains(b"ushers"));
        assert!(ac.contains(b"this"));
        assert!(!ac.contains(b"thi"));
        assert!(!ac.contains(b""));
        let mut seen = Vec::new();
        ac.scan(b"ushers", |p| {
            seen.push(p);
            false
        });
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen, vec![0, 1, 3]); // "he", "she", "hers"
    }

    #[test]
    fn ac_case_insensitive() {
        let pats: Vec<&[u8]> = vec![b"rtb", b"usermatch"];
        let ac = AhoCorasick::new(&pats, true);
        assert!(ac.contains(b"https://x.com/RTB_id=1"));
        assert!(ac.contains(b"/UserMatch?p=1"));
        assert!(!ac.contains(b"/collect?p=1"));
    }

    #[test]
    fn ac_overlapping_and_nested_literals() {
        let pats: Vec<&[u8]> = vec![b"ab", b"abab", b"baba", b"b"];
        let ac = AhoCorasick::new(&pats, false);
        let mut seen = Vec::new();
        ac.scan(b"ababab", |p| {
            seen.push(p);
            false
        });
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "empty patterns")]
    fn ac_rejects_empty_pattern() {
        let pats: Vec<&[u8]> = vec![b"a", b""];
        AhoCorasick::new(&pats, false);
    }

    #[test]
    fn keyword_scanner_equivalent_to_reference() {
        let scanner = KeywordScanner::new();
        let cases = [
            ("https://x.com/usermatch?p=1", true),
            ("https://x.com/UserMatch?p=1", true),
            ("https://x.com/collect?rtb_id=abc", true),
            ("https://x.com/collect?uid=abc", false),
            ("https://x.com/js/widget.js", false),
            ("https://x.com/PIXEL", true),
            ("", false),
        ];
        for (url, want) in cases {
            assert_eq!(scanner.matches(url), want, "{url}");
            // Reference: lowercase + contains over the keyword list.
            let lc = url.to_ascii_lowercase();
            let reference = TRACKING_KEYWORDS.iter().any(|k| lc.contains(k));
            assert_eq!(scanner.matches(url), reference, "{url}");
        }
    }

    fn engine_for(rules: Vec<FilterRule>) -> (FilterList, RuleEngine) {
        let mut list = FilterList::new("t");
        for r in rules {
            list.push(r);
        }
        let engine = RuleEngine::compile(&[&list]);
        (list, engine)
    }

    #[test]
    fn engine_matches_reference_on_fixed_cases() {
        let (list, mut engine) = engine_for(vec![
            FilterRule::DomainAnchor(d("tracker.com")),
            FilterRule::DomainWithPath {
                domain: d("cdn.com"),
                path_prefix: "/ads/".into(),
            },
            FilterRule::DomainWithPath {
                domain: d("cdn.com"),
                path_prefix: "".into(),
            },
            FilterRule::UrlSubstring("cookiesync".into()),
        ]);
        let cases = [
            (d("px.tracker.com"), "https://px.tracker.com/x"),
            (d("tracker.com.evil.net"), "https://tracker.com.evil.net/x"),
            (d("cdn.com"), "https://cdn.com/ads/banner.js"),
            (d("a.cdn.com"), "http://a.cdn.com/ads/x?y=1"),
            (d("cdn.com"), "https://cdn.com/static/app.js"),
            (d("clean.org"), "https://clean.org/cookiesync?x=1"),
            (d("clean.org"), "https://clean.org/app.js"),
            (d("clean.org"), "mismatched-host-not-in-url"),
        ];
        for (host, url) in &cases {
            assert_eq!(
                engine.matches(host, url),
                list.matches(host, url),
                "host {host} url {url}"
            );
        }
    }

    #[test]
    fn empty_substring_matches_everything() {
        let (list, mut engine) = engine_for(vec![FilterRule::UrlSubstring(String::new())]);
        for (host, url) in [(d("a.com"), "https://a.com/x"), (d("b.net"), "")] {
            assert!(list.matches(&host, url));
            assert!(engine.matches(&host, url));
            assert!(engine.resolve(&host).always());
        }
    }

    #[test]
    fn empty_lists_match_nothing() {
        let (list, mut engine) = engine_for(vec![]);
        assert!(!list.matches(&d("a.com"), "https://a.com/x"));
        assert!(!engine.matches(&d("a.com"), "https://a.com/x"));
        assert!(engine.resolve(&d("a.com")).never());
    }

    #[test]
    fn host_rows_are_cached_and_bitsets_interned() {
        let mut list = FilterList::new("t");
        for i in 0..70usize {
            list.push(FilterRule::DomainWithPath {
                domain: d("cdn.com"),
                path_prefix: format!("/p{i}/"),
            });
        }
        let mut engine = RuleEngine::compile(&[&list]);
        assert_eq!(engine.n_patterns(), 70);
        let mut domains = DomainTable::new();
        let a = domains.intern(&d("a.cdn.com"));
        let b = domains.intern(&d("b.cdn.com"));
        let ra = engine.host_row(a, &domains);
        let rb = engine.host_row(b, &domains);
        assert!(ra.url_dependent() && rb.url_dependent());
        // Same rule subset -> same interned bitset, and the cache returns
        // the identical row on re-query.
        assert_eq!(ra.set, rb.set);
        assert_eq!(engine.host_row(a, &domains), ra);
        assert!(engine.url_verdict(ra, &d("a.cdn.com"), "https://a.cdn.com/p42/x"));
        assert!(!engine.url_verdict(ra, &d("a.cdn.com"), "https://a.cdn.com/q/x"));
    }

    #[test]
    fn prefilter_soundness_on_simulator_urls() {
        let mut list = FilterList::new("t");
        for i in 0..20usize {
            list.push(FilterRule::UrlSubstring(format!("/seg{i}?x")));
        }
        let engine = RuleEngine::compile(&[&list]);
        assert!(engine.prefilter_active());
        // A URL that matches must pass the prefilter…
        assert!(engine.may_match_url("https://a.com/seg7?x=1"));
        // …and one with token-disjoint content must be rejected.
        assert!(!engine.may_match_url("https://a.com/collect?uid=abc"));
    }

    // ---- randomized equivalence: engine == reference lists ----
    //
    // The vendored proptest shim only generates primitives, so the
    // structured inputs (rule sets, hosts, URLs) are derived from a seeded
    // RNG inside each case — still a fresh input space per case, still
    // fully deterministic per test name.

    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Domains drawn from small overlapping pools so anchors, subdomain
    /// relations, and tld-bucket collisions all actually occur (`zz` is an
    /// unknown public suffix, exercising the fallback).
    fn rand_domain(rng: &mut StdRng) -> Domain {
        const LABELS: &[&str] = &["a", "b", "ads", "tr1", "x9", "sync"];
        const SUFFIXES: &[&str] = &["com", "net", "co.uk", "zz"];
        let depth = rng.gen_range(1..=2);
        let mut s = String::new();
        for _ in 0..depth {
            s.push_str(LABELS[rng.gen_range(0..LABELS.len())]);
            s.push('.');
        }
        s.push_str(SUFFIXES[rng.gen_range(0..SUFFIXES.len())]);
        Domain::new(s)
    }

    fn rand_text(rng: &mut StdRng, max_len: usize) -> String {
        const CHARS: &[u8] = b"ab1/?=._-";
        let len = rng.gen_range(0..=max_len);
        (0..len).map(|_| CHARS[rng.gen_range(0..CHARS.len())] as char).collect()
    }

    fn rand_rule(rng: &mut StdRng) -> FilterRule {
        match rng.gen_range(0..6u32) {
            0 | 1 => FilterRule::DomainAnchor(rand_domain(rng)),
            2 | 3 => {
                // Empty prefixes are common on purpose.
                let path_prefix = if rng.gen_bool(0.3) {
                    String::new()
                } else {
                    format!("/{}", rand_text(rng, 5))
                };
                FilterRule::DomainWithPath { domain: rand_domain(rng), path_prefix }
            }
            4 => FilterRule::UrlSubstring(rand_text(rng, 8)), // possibly empty
            _ => FilterRule::UrlSubstring(
                ["/ads/", "cookiesync", "b1", "?="][rng.gen_range(0..4)].to_string(),
            ),
        }
    }

    /// URLs that usually embed the host (simulator-shaped) but sometimes
    /// don't (exercising the positional verify's `find` miss).
    fn rand_url(rng: &mut StdRng, host: &Domain) -> String {
        if rng.gen_bool(0.7) {
            format!("https://{host}{}", rand_text(rng, 16))
        } else {
            rand_text(rng, 24)
        }
    }

    proptest! {
        /// Tentpole satellite: for random rule sets x hosts x URLs
        /// (overlapping literals, empty prefixes, empty substrings, empty
        /// lists all reachable), the compiled engine's verdict equals the
        /// reference `FilterList::matches` for each list union, and the
        /// prefilter never rejects a matching URL.
        #[test]
        fn engine_equals_reference(seed in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut la = FilterList::new("a");
            for _ in 0..rng.gen_range(0..10) { la.push(rand_rule(&mut rng)); }
            let mut lb = FilterList::new("b");
            for _ in 0..rng.gen_range(0..6) { lb.push(rand_rule(&mut rng)); }
            let mut engine = RuleEngine::compile(&[&la, &lb]);
            let mut single = RuleEngine::compile(&[&la]);
            for _ in 0..rng.gen_range(1..20) {
                let host = rand_domain(&mut rng);
                let url = rand_url(&mut rng, &host);
                let want = la.matches(&host, &url) || lb.matches(&host, &url);
                prop_assert_eq!(
                    engine.matches(&host, &url), want,
                    "union verdict diverged for host {} url {:?}", host, url
                );
                prop_assert_eq!(
                    single.matches(&host, &url), la.matches(&host, &url),
                    "single-list verdict diverged for host {} url {:?}", host, url
                );
                // Prefilter soundness: a URL matched by a *URL-dependent*
                // rule is never screened out (anchor matches carry no
                // literal, so the screen owes them nothing).
                let row = engine.resolve(&host);
                if row.url_dependent() && engine.url_verdict(row, &host, &url) {
                    prop_assert!(engine.may_match_url(&url));
                }
            }
        }

        /// The automaton agrees with naive multi-substring search on
        /// arbitrary byte patterns and haystacks, in both case modes, and
        /// `scan` reports exactly the occurring pattern set.
        #[test]
        fn ac_equals_naive(seed in any::<u64>(), ci in any::<bool>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            // Narrow alphabet so patterns overlap and nest frequently.
            let rand_bytes = |rng: &mut StdRng, lo: usize, hi: usize| -> Vec<u8> {
                let len = rng.gen_range(lo..hi);
                (0..len).map(|_| rng.gen_range(b'a'..=b'd')).collect()
            };
            let pats: Vec<Vec<u8>> =
                (0..rng.gen_range(1..12)).map(|_| rand_bytes(&mut rng, 1, 6)).collect();
            let hay = rand_bytes(&mut rng, 0, 64);
            let folded: Vec<Vec<u8>> = pats
                .iter()
                .map(|p| if ci { p.iter().map(|b| b.to_ascii_lowercase()).collect() } else { p.clone() })
                .collect();
            let hay_folded: Vec<u8> = if ci {
                hay.iter().map(|b| b.to_ascii_lowercase()).collect()
            } else {
                hay.clone()
            };
            let refs: Vec<&[u8]> = pats.iter().map(|p| p.as_slice()).collect();
            let folded_refs: Vec<&[u8]> = folded.iter().map(|p| p.as_slice()).collect();
            let ac = AhoCorasick::new(&refs, ci);
            let want = naive_occurring(&folded_refs, &hay_folded);
            prop_assert_eq!(ac.contains(&hay), !want.is_empty());
            let mut seen = Vec::new();
            ac.scan(&hay, |p| { seen.push(p); false });
            seen.sort_unstable();
            seen.dedup();
            prop_assert_eq!(seen, want);
        }

        /// Prefilter screens computed over the deferred byte stream agree
        /// with the rendered-string screen (the streaming sink must hash
        /// tokens across slice boundaries identically).
        #[test]
        fn encoded_prefilter_agrees_with_rendered(
            seed in any::<u64>(),
            style_idx in 0usize..3,
            identity in any::<u64>(),
        ) {
            use xborder_webgraph::url::{Scheme, UrlStyle};
            let mut rng = StdRng::seed_from_u64(seed);
            let mut list = FilterList::new("t");
            for _ in 0..rng.gen_range(16..24) {
                let a: String =
                    (0..rng.gen_range(2..6)).map(|_| rng.gen_range(b'a'..=b'z') as char).collect();
                let b: String =
                    (0..rng.gen_range(1..4)).map(|_| rng.gen_range(b'a'..=b'z') as char).collect();
                list.push(FilterRule::UrlSubstring(format!("{a}?{b}")));
            }
            let engine = RuleEngine::compile(&[&list]);
            let style = [UrlStyle::Plain, UrlStyle::Args, UrlStyle::ArgsAndKeywords][style_idx];
            let enc = EncodedUrl {
                scheme: Scheme::Https,
                style,
                path_idx: 0,
                event_idx: 0,
                identity,
                cb: None,
            };
            let host = "sync.gtrack.com";
            let mut rendered = String::new();
            enc.write_into(host, &mut rendered);
            prop_assert_eq!(
                engine.may_match_encoded(&enc, host),
                engine.may_match_url(&rendered)
            );
        }
    }
}
