//! Generates the easylist/easyprivacy analogues for a synthetic world.
//!
//! Real filter lists are crowd-maintained: canonical ad and tracking
//! domains are well covered, cascade-only RTB endpoints much less so. The
//! web-graph generator decided per service whether the community "knows"
//! it (`in_blocklist`); this module renders those bits into actual rule
//! lists, split the way the real ones are: **easylist** carries
//! advertising rules, **easyprivacy** carries tracker/analytics rules.

use crate::engine::RuleEngine;
use crate::rules::{FilterList, FilterRule};
use xborder_webgraph::{ServiceKind, WebGraph};

/// Builds `(easylist, easyprivacy)` from a web graph's blocklist bits.
pub fn generate_lists(graph: &WebGraph) -> (FilterList, FilterList) {
    let mut easylist = FilterList::new("easylist");
    let mut easyprivacy = FilterList::new("easyprivacy");
    for s in &graph.services {
        if !s.in_blocklist {
            continue;
        }
        let rule = FilterRule::DomainAnchor(s.tld.clone());
        match s.kind {
            // Advertising-delivery kinds -> easylist.
            ServiceKind::AdNetwork | ServiceKind::AdExchange | ServiceKind::Ssp
            | ServiceKind::Dsp | ServiceKind::AdCdn => easylist.push(rule),
            // Tracking/analytics kinds -> easyprivacy.
            ServiceKind::Analytics | ServiceKind::CookieSync | ServiceKind::SocialWidget => {
                easyprivacy.push(rule)
            }
            // Clean kinds are never listed (the generator should not have
            // set the bit; tolerate it without emitting a rule).
            ServiceKind::ChatWidget | ServiceKind::Comments | ServiceKind::Fonts
            | ServiceKind::Video => {}
        }
    }
    (easylist, easyprivacy)
}

/// Builds the lists and compiles them straight into a [`RuleEngine`]
/// (DESIGN.md §5h) — the form every matching path consumes. The textual
/// lists stay the source of truth (and the test oracle); callers that
/// only ever match should take the compiled engine and skip holding the
/// lists alive.
pub fn generate_engine(graph: &WebGraph) -> (RuleEngine, FilterList, FilterList) {
    let (easylist, easyprivacy) = generate_lists(graph);
    let engine = RuleEngine::compile(&[&easylist, &easyprivacy]);
    (engine, easylist, easyprivacy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use xborder_webgraph::{generate, WebGraphConfig};

    fn graph() -> WebGraph {
        let mut rng = StdRng::seed_from_u64(21);
        generate(&WebGraphConfig::small(), &mut rng)
    }

    #[test]
    fn lists_are_nonempty_and_disjoint_by_role() {
        let g = graph();
        let (el, ep) = generate_lists(&g);
        assert!(!el.is_empty());
        assert!(!ep.is_empty());
    }

    #[test]
    fn listed_services_match_their_own_hosts() {
        let g = graph();
        let (el, ep) = generate_lists(&g);
        for s in &g.services {
            if !s.in_blocklist || !s.kind.is_tracking() {
                continue;
            }
            for h in &s.hosts {
                let url = format!("https://{h}/t?x=1");
                assert!(
                    el.matches(h, &url) || ep.matches(h, &url),
                    "listed service host {h} unmatched"
                );
            }
        }
    }

    #[test]
    fn unlisted_clean_services_never_match() {
        let g = graph();
        let (el, ep) = generate_lists(&g);
        for s in &g.services {
            if s.kind.is_tracking() {
                continue;
            }
            for h in &s.hosts {
                let url = format!("https://{h}/js/widget.js");
                assert!(!el.matches(h, &url), "clean host {h} in easylist");
                assert!(!ep.matches(h, &url), "clean host {h} in easyprivacy");
            }
        }
    }

    #[test]
    fn compiled_engine_agrees_with_lists_on_every_service_host() {
        // `generate_engine` must be a pure repackaging: the compiled
        // engine's verdict equals the union of the two lists' on every
        // host the generator can emit, listed or not.
        let g = graph();
        let (mut engine, el, ep) = generate_engine(&g);
        for s in &g.services {
            for h in &s.hosts {
                for url in [format!("https://{h}/t?x=1"), format!("https://{h}/js/widget.js")] {
                    assert_eq!(
                        engine.matches(h, &url),
                        el.matches(h, &url) || ep.matches(h, &url),
                        "engine/list divergence on {h} {url}"
                    );
                }
            }
        }
    }

    #[test]
    fn coverage_is_partial() {
        // The whole point: some tracking services are NOT in the lists.
        let g = graph();
        let (el, ep) = generate_lists(&g);
        let unlisted_tracking = g
            .services
            .iter()
            .filter(|s| s.kind.is_tracking())
            .filter(|s| {
                let h = &s.hosts[0];
                let url = format!("https://{h}/t?x=1");
                !el.matches(h, &url) && !ep.matches(h, &url)
            })
            .count();
        assert!(unlisted_tracking > 0, "lists cover everything — gap model broken");
    }
}
