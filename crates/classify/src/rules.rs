//! An easylist-style filter-rule engine.
//!
//! Supports the two rule shapes that do almost all the work in the real
//! lists: domain anchors (`||tracker.com^`, matching the domain and every
//! subdomain) and URL substrings (`/usermatch?`). Rules are indexed by
//! pay-level domain so matching a request is O(rules-on-that-TLD), not
//! O(all rules) — the real engines do the same.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use xborder_webgraph::Domain;

/// One filter rule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FilterRule {
    /// `||domain^` — matches the domain itself and any subdomain.
    DomainAnchor(Domain),
    /// `||domain^path` — domain anchor plus a path prefix requirement.
    DomainWithPath {
        /// Anchored domain.
        domain: Domain,
        /// Required path prefix (starting with `/`).
        path_prefix: String,
    },
    /// A bare substring that must occur in the full URL string.
    UrlSubstring(String),
}

impl FilterRule {
    /// True if the rule matches a request to `host` with full URL `url`.
    pub fn matches(&self, host: &Domain, url: &str) -> bool {
        match self {
            FilterRule::DomainAnchor(d) => host.is_subdomain_of(d),
            FilterRule::DomainWithPath { domain, path_prefix } => {
                if !host.is_subdomain_of(domain) {
                    return false;
                }
                // Path starts right after the host in simulator URLs.
                match url.find(host.as_str()) {
                    Some(i) => url[i + host.as_str().len()..].starts_with(path_prefix.as_str()),
                    None => false,
                }
            }
            FilterRule::UrlSubstring(s) => url.contains(s.as_str()),
        }
    }

    /// The pay-level domain this rule is specific to (`None` for global
    /// substring rules).
    pub fn tld_key(&self) -> Option<Domain> {
        match self {
            FilterRule::DomainAnchor(d) => Some(d.tld()),
            FilterRule::DomainWithPath { domain, .. } => Some(domain.tld()),
            FilterRule::UrlSubstring(_) => None,
        }
    }
}

/// A named, indexed rule list (easylist / easyprivacy analogue).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FilterList {
    /// List name ("easylist", "easyprivacy").
    pub name: String,
    rules: Vec<FilterRule>,
    by_tld: HashMap<Domain, Vec<usize>>,
    global: Vec<usize>,
}

impl FilterList {
    /// An empty list.
    pub fn new(name: impl Into<String>) -> FilterList {
        FilterList {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Adds a rule.
    pub fn push(&mut self, rule: FilterRule) {
        let idx = self.rules.len();
        match rule.tld_key() {
            Some(tld) => self.by_tld.entry(tld).or_default().push(idx),
            None => self.global.push(idx),
        }
        self.rules.push(rule);
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True if the list has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// All rules, in insertion order.
    pub fn rules(&self) -> &[FilterRule] {
        &self.rules
    }

    /// True if any rule matches the request.
    pub fn matches(&self, host: &Domain, url: &str) -> bool {
        if let Some(idxs) = self.by_tld.get(&host.tld()) {
            if idxs.iter().any(|&i| self.rules[i].matches(host, url)) {
                return true;
            }
        }
        self.global.iter().any(|&i| self.rules[i].matches(host, url))
    }

    /// The list's verdict for a host, factored so a classifier can hoist
    /// the host-dependent work out of its per-request loop:
    ///
    /// * [`HostGate::Always`] — a domain-anchor rule matches the host, so
    ///   every URL on it matches regardless of path.
    /// * [`HostGate::UrlDependent`] — only the returned rules (host-gated
    ///   path rules plus global substring rules) can still match; an empty
    ///   set means no rule of this list can ever match the host.
    ///
    /// For any `url`, `list.matches(host, url)` equals the gate's verdict.
    pub fn host_gate(&self, host: &Domain) -> HostGate<'_> {
        let mut url_rules: Vec<&FilterRule> = Vec::new();
        if let Some(idxs) = self.by_tld.get(&host.tld()) {
            for &i in idxs {
                match &self.rules[i] {
                    FilterRule::DomainAnchor(d) => {
                        if host.is_subdomain_of(d) {
                            return HostGate::Always;
                        }
                    }
                    rule @ FilterRule::DomainWithPath { domain, .. } => {
                        if host.is_subdomain_of(domain) {
                            url_rules.push(rule);
                        }
                    }
                    // Substring rules are never TLD-indexed.
                    FilterRule::UrlSubstring(_) => {}
                }
            }
        }
        url_rules.extend(self.global.iter().map(|&i| &self.rules[i]));
        HostGate::UrlDependent(url_rules)
    }
}

/// A [`FilterList`]'s host-level verdict — see [`FilterList::host_gate`].
#[derive(Debug)]
pub enum HostGate<'a> {
    /// A domain anchor covers the host: every URL matches.
    Always,
    /// Only these URL-dependent rules can match (none match if empty).
    UrlDependent(Vec<&'a FilterRule>),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Domain {
        Domain::new(s)
    }

    #[test]
    fn domain_anchor_matches_subdomains() {
        let r = FilterRule::DomainAnchor(d("tracker.com"));
        assert!(r.matches(&d("tracker.com"), "https://tracker.com/x"));
        assert!(r.matches(&d("px.tracker.com"), "https://px.tracker.com/x"));
        assert!(!r.matches(&d("nottracker.com"), "https://nottracker.com/x"));
        assert!(!r.matches(&d("tracker.com.evil.net"), "https://tracker.com.evil.net/x"));
    }

    #[test]
    fn domain_with_path() {
        let r = FilterRule::DomainWithPath {
            domain: d("cdn.com"),
            path_prefix: "/ads/".into(),
        };
        assert!(r.matches(&d("cdn.com"), "https://cdn.com/ads/banner.js"));
        assert!(!r.matches(&d("cdn.com"), "https://cdn.com/static/app.js"));
        assert!(r.matches(&d("a.cdn.com"), "http://a.cdn.com/ads/x?y=1"));
    }

    #[test]
    fn substring_rule() {
        let r = FilterRule::UrlSubstring("/usermatch".into());
        assert!(r.matches(&d("x.com"), "https://x.com/usermatch?p=1"));
        assert!(!r.matches(&d("x.com"), "https://x.com/collect?p=1"));
    }

    #[test]
    fn list_indexing_by_tld() {
        let mut list = FilterList::new("easylist");
        list.push(FilterRule::DomainAnchor(d("tracker.com")));
        list.push(FilterRule::DomainAnchor(d("ads.net")));
        list.push(FilterRule::UrlSubstring("cookiesync".into()));
        assert_eq!(list.len(), 3);
        assert!(list.matches(&d("px.tracker.com"), "https://px.tracker.com/t"));
        assert!(list.matches(&d("ads.net"), "https://ads.net/"));
        assert!(!list.matches(&d("clean.org"), "https://clean.org/app.js"));
        // Global substring applies to any host.
        assert!(list.matches(&d("clean.org"), "https://clean.org/cookiesync?x=1"));
    }

    #[test]
    fn empty_list_matches_nothing() {
        let list = FilterList::new("empty");
        assert!(list.is_empty());
        assert!(!list.matches(&d("a.com"), "https://a.com/"));
    }

    #[test]
    fn host_gate_agrees_with_matches() {
        let mut list = FilterList::new("mixed");
        list.push(FilterRule::DomainAnchor(d("tracker.com")));
        list.push(FilterRule::DomainWithPath {
            domain: d("cdn.com"),
            path_prefix: "/ads/".into(),
        });
        list.push(FilterRule::UrlSubstring("cookiesync".into()));
        let cases = [
            (d("px.tracker.com"), "https://px.tracker.com/x"),
            (d("cdn.com"), "https://cdn.com/ads/banner.js"),
            (d("cdn.com"), "https://cdn.com/static/app.js"),
            (d("clean.org"), "https://clean.org/cookiesync?x=1"),
            (d("clean.org"), "https://clean.org/app.js"),
        ];
        for (host, url) in &cases {
            let via_gate = match list.host_gate(host) {
                HostGate::Always => true,
                HostGate::UrlDependent(rules) => rules.iter().any(|r| r.matches(host, url)),
            };
            assert_eq!(via_gate, list.matches(host, url), "host {host} url {url}");
        }
        // Anchored host short-circuits; clean host keeps only the global rule.
        assert!(matches!(list.host_gate(&d("tracker.com")), HostGate::Always));
        match list.host_gate(&d("clean.org")) {
            HostGate::UrlDependent(rules) => assert_eq!(rules.len(), 1),
            HostGate::Always => panic!("clean host cannot be anchor-matched"),
        }
    }
}
