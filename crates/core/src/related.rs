//! The related-work comparison matrix (Table 9).
//!
//! Static data: the paper rates fourteen studies (itself included) along
//! the methodological axes its challenges define. Reproduced here so the
//! repro harness can regenerate the table.

use serde::{Deserialize, Serialize};

/// A three-valued feature rating, as in the paper's legend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Rating {
    /// "X Positive" in the paper.
    Positive,
    /// "† Negative".
    Negative,
    /// "• Neutral".
    Neutral,
    /// Feature not applicable / not used.
    Absent,
}

impl Rating {
    /// The paper's legend symbol.
    pub fn symbol(&self) -> &'static str {
        match self {
            Rating::Positive => "X",
            Rating::Negative => "†",
            Rating::Neutral => "•",
            Rating::Absent => "",
        }
    }
}

/// One related-work row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RelatedWork {
    /// Citation key as the paper numbers it.
    pub cite: &'static str,
    /// Short description.
    pub name: &'static str,
    /// Request classification via ABP lists.
    pub abp_lists: Rating,
    /// Uses custom corrections / own lists.
    pub custom_lists: Rating,
    /// Covers ads, tracking, or both.
    pub covers_ads: bool,
    /// Covers tracking requests.
    pub covers_tracking: bool,
    /// Active measurement.
    pub active: bool,
    /// Passive measurement.
    pub passive: bool,
    /// Desktop platform.
    pub desktop: bool,
    /// Mobile platform.
    pub mobile: bool,
    /// Data from real users (vs crawling).
    pub real_users: Rating,
    /// Infrastructure geolocation quality.
    pub geolocation: Rating,
    /// Works on encrypted (HTTPS) traffic.
    pub https: Rating,
}

/// The fourteen rows of Table 9 (condensed to the axes the paper scores).
pub fn table9() -> Vec<RelatedWork> {
    use Rating::*;
    let row = |cite,
               name,
               abp: Rating,
               custom: Rating,
               ads,
               tracking,
               active,
               passive,
               desktop,
               mobile,
               real: Rating,
               geo: Rating,
               https: Rating| RelatedWork {
        cite,
        name,
        abp_lists: abp,
        custom_lists: custom,
        covers_ads: ads,
        covers_tracking: tracking,
        active,
        passive,
        desktop,
        mobile,
        real_users: real,
        geolocation: geo,
        https,
    };
    vec![
        row("[52]", "Razaghpanah et al., NDSS'18", Neutral, Positive, true, true, true, true, false, true, Positive, Negative, Positive),
        row("[36]", "Gervais et al.", Neutral, Positive, true, true, true, false, true, false, Negative, Negative, Positive),
        row("[29]", "Bangera & Gorinsky", Neutral, Absent, true, true, true, false, true, false, Negative, Absent, Positive),
        row("[58]", "Englehardt & Narayanan, CCS'16", Neutral, Positive, true, true, true, false, true, false, Negative, Absent, Positive),
        row("[30]", "Bashir et al.", Neutral, Absent, true, true, true, false, true, false, Negative, Absent, Positive),
        row("[42]", "Leung et al., IMC'16", Neutral, Absent, true, true, true, false, true, true, Negative, Absent, Positive),
        row("[53]", "Reuben et al.", Neutral, Absent, false, true, true, false, false, true, Negative, Negative, Positive),
        row("[41]", "Lerner et al., USENIX Sec'16", Neutral, Absent, true, true, true, false, true, false, Negative, Absent, Negative),
        row("[35]", "Fruchter et al.", Neutral, Absent, false, true, true, false, true, false, Negative, Absent, Negative),
        row("[61]", "Walls et al., IMC'15", Neutral, Negative, true, false, true, false, true, false, Negative, Absent, Negative),
        row("[28]", "Balebako et al.", Absent, Negative, true, false, true, false, true, false, Negative, Absent, Negative),
        row("[60]", "Vallina-Rodriguez et al., IMC'12", Absent, Absent, true, true, false, true, false, true, Negative, Absent, Negative),
        row("[51]", "Pujol et al., IMC'15", Neutral, Positive, true, false, false, true, true, false, Positive, Absent, Positive),
        row("This Work", "Iordanou et al., IMC'18", Neutral, Positive, true, true, true, true, true, false, Positive, Positive, Positive),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fourteen_rows() {
        assert_eq!(table9().len(), 14);
    }

    #[test]
    fn this_work_scores_best() {
        let rows = table9();
        let this = rows.last().unwrap();
        assert_eq!(this.cite, "This Work");
        assert_eq!(this.real_users, Rating::Positive);
        assert_eq!(this.geolocation, Rating::Positive);
        assert_eq!(this.https, Rating::Positive);
        assert!(this.active && this.passive);
        // No other row is positive on real users, geolocation AND https.
        let rivals = rows
            .iter()
            .take(rows.len() - 1)
            .filter(|r| {
                r.real_users == Rating::Positive
                    && r.geolocation == Rating::Positive
                    && r.https == Rating::Positive
            })
            .count();
        assert_eq!(rivals, 0);
    }

    #[test]
    fn symbols_match_legend() {
        assert_eq!(Rating::Positive.symbol(), "X");
        assert_eq!(Rating::Negative.symbol(), "†");
        assert_eq!(Rating::Neutral.symbol(), "•");
    }
}
