//! Tracker IP-set construction and passive-DNS completion (Sect. 3.3).
//!
//! The extension logs give `(tracking FQDN, server IP)` pairs — but only
//! the IPs *our* users were mapped to. Forward passive-DNS lookups complete
//! the set with addresses other resolvers saw for the same names (the
//! paper gained +2.78 %), and attach validity windows that later scope the
//! NetFlow matching.

use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::net::IpAddr;
use xborder_browser::ExtensionDataset;
use xborder_classify::ClassificationResult;
use xborder_dns::PassiveDnsDb;
use xborder_faults::{DegradationReport, FaultInjector};
use xborder_netsim::time::TimeWindow;
use xborder_webgraph::Domain;

/// Everything known about one tracker IP.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IpInfo {
    /// Tracking requests observed to this IP in the extension dataset
    /// (zero for pDNS-completed IPs).
    pub requests: u64,
    /// Tracking FQDNs seen answering from this IP.
    pub hosts: HashSet<Domain>,
    /// Validity window: observation span, widened by pDNS records.
    pub window: TimeWindow,
    /// True if the IP came only from pDNS completion, never from a user.
    pub from_pdns_only: bool,
}

/// The tracker IP set.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct TrackerIpSet {
    /// Per-IP records.
    pub ips: HashMap<IpAddr, IpInfo>,
}

/// Summary of the completion step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompletionStats {
    /// IPs observed directly by users.
    pub n_observed: usize,
    /// IPs added by forward pDNS.
    pub n_added: usize,
    /// Share of IPv4 among all tracker IPs.
    pub v4_share: f64,
    /// Share of IPv4 among the pDNS additions.
    pub added_v4_share: f64,
}

impl CompletionStats {
    /// pDNS increase over the observed set, as a fraction.
    pub fn added_fraction(&self) -> f64 {
        if self.n_observed == 0 {
            0.0
        } else {
            self.n_added as f64 / self.n_observed as f64
        }
    }
}

impl TrackerIpSet {
    /// Builds the observed IP set from classified extension data.
    pub fn from_dataset(dataset: &ExtensionDataset, labels: &ClassificationResult) -> TrackerIpSet {
        let mut set = TrackerIpSet::default();
        for (i, r) in dataset.requests.iter().enumerate() {
            if !labels.is_tracking(i) {
                continue;
            }
            set.absorb_tracking_request(r.ip, dataset.domains.domain(r.host), r.time);
        }
        set
    }

    /// Absorbs one tracking request into the observed set. Request order
    /// never matters — the per-IP record is a commutative fold (count,
    /// host-set union, window hull) — so the out-of-core driver can feed
    /// this segment by segment and land on exactly
    /// [`TrackerIpSet::from_dataset`] over the concatenated log.
    pub fn absorb_tracking_request(
        &mut self,
        ip: IpAddr,
        host: &Domain,
        time: xborder_netsim::time::SimTime,
    ) {
        let info = self.ips.entry(ip).or_insert_with(|| IpInfo {
            requests: 0,
            hosts: HashSet::new(),
            window: TimeWindow::new(time, time.plus_secs(1)),
            from_pdns_only: false,
        });
        info.requests += 1;
        // Hosts arrive as interned ids resolved through the domain table;
        // clone the string only on first sight of an (ip, host) pair —
        // repeat requests (the common case) stay allocation-free.
        if !info.hosts.contains(host) {
            info.hosts.insert(host.clone());
        }
        info.window.extend_to(time);
    }

    /// All tracking FQDNs currently in the set.
    pub fn tracking_hosts(&self) -> HashSet<Domain> {
        self.ips
            .values()
            .flat_map(|i| i.hosts.iter().cloned())
            .collect()
    }

    /// Forward-pDNS completion: for every known tracking FQDN, pull every
    /// address the sensors ever saw for it and add the missing ones with
    /// their validity windows. Returns the completion summary.
    pub fn complete_with_pdns(&mut self, pdns: &PassiveDnsDb) -> CompletionStats {
        let inj = FaultInjector::inactive();
        let mut report = DegradationReport::default();
        self.complete_with_pdns_degraded(pdns, &inj, &mut report)
    }

    /// [`TrackerIpSet::complete_with_pdns`] under fault injection: the
    /// sensor network can have gaps (records invisible → fewer completed
    /// IPs) and stale records (windows collapsed to first-seen → narrower
    /// validity scoping downstream). Per-record accounting lands in
    /// `report`.
    pub fn complete_with_pdns_degraded(
        &mut self,
        pdns: &PassiveDnsDb,
        inj: &FaultInjector,
        report: &mut DegradationReport,
    ) -> CompletionStats {
        let n_observed = self.ips.len();
        // Canonical (sorted) host order: when two tracking FQDNs resolve to
        // the same pdns-only IP, the host recorded on the new record is the
        // first one iterated, so the iteration order must not depend on the
        // hasher. The out-of-core fingerprint hashes these host sets.
        let mut hosts: Vec<Domain> = self.tracking_hosts().into_iter().collect();
        hosts.sort_unstable();
        for host in &hosts {
            for rec in pdns.forward_degraded(host, inj, report) {
                match self.ips.get_mut(&rec.ip) {
                    Some(info) => {
                        // Known IP: pDNS can still widen its validity window.
                        info.window.extend_to(rec.window.start);
                        if rec.window.end.0 > 0 {
                            info.window
                                .extend_to(xborder_netsim::time::SimTime(rec.window.end.0 - 1));
                        }
                    }
                    None => {
                        let mut hs = HashSet::new();
                        hs.insert(host.clone());
                        self.ips.insert(
                            rec.ip,
                            IpInfo {
                                requests: 0,
                                hosts: hs,
                                window: rec.window,
                                from_pdns_only: true,
                            },
                        );
                    }
                }
            }
        }
        let n_added = self.ips.len() - n_observed;
        let v4 = self.ips.keys().filter(|ip| ip.is_ipv4()).count();
        let added_v4 = self
            .ips
            .iter()
            .filter(|(ip, i)| i.from_pdns_only && ip.is_ipv4())
            .count();
        CompletionStats {
            n_observed,
            n_added,
            v4_share: if self.ips.is_empty() {
                0.0
            } else {
                v4 as f64 / self.ips.len() as f64
            },
            added_v4_share: if n_added == 0 {
                0.0
            } else {
                added_v4 as f64 / n_added as f64
            },
        }
    }

    /// `(ip, request_weight)` pairs for weighted geolocation evaluation.
    pub fn weighted_ips(&self) -> Vec<(IpAddr, u64)> {
        let mut v: Vec<(IpAddr, u64)> = self.ips.iter().map(|(ip, i)| (*ip, i.requests)).collect();
        v.sort();
        v
    }

    /// Number of tracker IPs.
    pub fn len(&self) -> usize {
        self.ips.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.ips.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xborder_netsim::time::SimTime;

    fn d(s: &str) -> Domain {
        Domain::new(s)
    }

    #[test]
    fn completion_adds_unseen_ips() {
        let mut set = TrackerIpSet::default();
        let mut hosts = HashSet::new();
        hosts.insert(d("t.x.com"));
        set.ips.insert(
            "1.0.0.1".parse().unwrap(),
            IpInfo {
                requests: 10,
                hosts,
                window: TimeWindow::new(SimTime(10), SimTime(20)),
                from_pdns_only: false,
            },
        );
        let mut pdns = PassiveDnsDb::new();
        pdns.observe(&d("t.x.com"), "1.0.0.1".parse().unwrap(), SimTime(5));
        pdns.observe(&d("t.x.com"), "1.0.0.2".parse().unwrap(), SimTime(7));
        pdns.observe(&d("other.com"), "1.0.0.3".parse().unwrap(), SimTime(8));

        let stats = set.complete_with_pdns(&pdns);
        assert_eq!(stats.n_observed, 1);
        assert_eq!(stats.n_added, 1);
        assert!((stats.added_fraction() - 1.0).abs() < 1e-9);
        // The unrelated domain's IP is not pulled in.
        assert!(!set.ips.contains_key(&"1.0.0.3".parse::<IpAddr>().unwrap()));
        // The added IP is flagged and windowed.
        let added = &set.ips[&"1.0.0.2".parse::<IpAddr>().unwrap()];
        assert!(added.from_pdns_only);
        assert_eq!(added.requests, 0);
        // Known IP's window got widened backwards to the pDNS first-seen.
        let known = &set.ips[&"1.0.0.1".parse::<IpAddr>().unwrap()];
        assert!(known.window.contains(SimTime(5)));
    }

    #[test]
    fn empty_set_completion_is_noop() {
        let mut set = TrackerIpSet::default();
        let pdns = PassiveDnsDb::new();
        let stats = set.complete_with_pdns(&pdns);
        assert_eq!(stats.n_observed, 0);
        assert_eq!(stats.n_added, 0);
        assert_eq!(stats.added_fraction(), 0.0);
        assert!(set.is_empty());
    }
}
