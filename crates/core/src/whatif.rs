//! "What-if" localization scenarios (Sect. 5, Tables 5–6).
//!
//! Could tracking operators keep flows local without new infrastructure?
//! The paper evaluates, over every EU28-origin tracking flow:
//!
//! * **DNS redirection (FQDN)** — answer with an alternative server already
//!   observed for the *same FQDN*;
//! * **DNS redirection (TLD)** — allow any server of any FQDN under the
//!   same pay-level domain;
//! * **PoP mirroring (Cloud)** — operators already renting from one of the
//!   nine public clouds may light up that provider's other PoPs;
//! * **Migration to cloud** — the extreme case: any PoP of any of the nine
//!   providers;
//! * combinations thereof.
//!
//! A flow counts as confinable at country level when the candidate set
//! contains the user's country, and at continent level when it contains
//! any European country (EU28 users only, so "continent" = Europe).

use crate::pipeline::{EstimateMap, StudyOutputs};
use crate::worldgen::World;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use xborder_geo::{Continent, CountryCode, WORLD};
use xborder_netsim::CLOUDS;
use xborder_webgraph::{Domain, DomainId};

/// One scenario's confinement percentages (a row of Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenarioRow {
    /// Share of flows confinable within the user's country.
    pub country: f64,
    /// Share of flows confinable within Europe.
    pub continent: f64,
}

impl ScenarioRow {
    /// Improvement over a baseline row, in percentage points.
    pub fn improvement_over(&self, base: &ScenarioRow) -> ScenarioRow {
        ScenarioRow {
            country: self.country - base.country,
            continent: self.continent - base.continent,
        }
    }
}

/// All scenario rows (Table 5) plus the per-country views (Table 6).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WhatIfResults {
    /// Flows evaluated (EU28-origin tracking flows with an estimate).
    pub n_flows: u64,
    /// Baseline: where flows terminate today.
    pub default: ScenarioRow,
    /// DNS redirection within the same FQDN.
    pub redirect_fqdn: ScenarioRow,
    /// DNS redirection within the same TLD.
    pub redirect_tld: ScenarioRow,
    /// PoP mirroring over the operator's existing cloud providers.
    pub pop_mirroring: ScenarioRow,
    /// TLD redirection + PoP mirroring combined.
    pub tld_plus_mirroring: ScenarioRow,
    /// Full migration to any of the nine clouds.
    pub cloud_migration: ScenarioRow,
    /// Per-origin-country confinement shares under selected scenarios:
    /// (flows, default, tld, tld+mirror, migration).
    pub per_country: HashMap<CountryCode, CountryScenarios>,
}

/// Per-origin-country scenario outcomes (Table 6 source data).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct CountryScenarios {
    /// EU28-origin flows from this country.
    pub flows: u64,
    /// Nationally confined today.
    pub default: f64,
    /// Confinable nationally under TLD redirection.
    pub tld: f64,
    /// Confinable nationally under TLD redirection + PoP mirroring.
    pub tld_plus_mirroring: f64,
    /// Confinable nationally under full cloud migration.
    pub migration: f64,
}

fn is_europe(c: CountryCode) -> bool {
    WORLD.country_or_panic(c).continent == Continent::Europe
}

/// Runs every scenario.
pub fn run(world: &World, out: &StudyOutputs, estimates: &EstimateMap) -> WhatIfResults {
    // --- Candidate-set preparation -------------------------------------
    // Destinations observed in the dataset per FQDN and per TLD, using the
    // same estimates that place the default destinations.
    let domains = &out.dataset.domains;
    let mut fqdn_alts: HashMap<DomainId, HashSet<CountryCode>> = HashMap::new();
    let mut tld_alts: HashMap<Domain, HashSet<CountryCode>> = HashMap::new();
    for (i, r) in out.dataset.requests.iter().enumerate() {
        if !out.classification.is_tracking(i) {
            continue;
        }
        if let Some(est) = estimates.get(&r.ip) {
            fqdn_alts.entry(r.host).or_default().insert(est.country);
            tld_alts
                .entry(domains.domain(r.host).tld())
                .or_default()
                .insert(est.country);
        }
    }
    // Cloud PoP countries per *service* (mirroring can only use the
    // providers the specific tracking domain already rents from — paper
    // Sect. 5.2).
    let mut service_cloud_countries: HashMap<u32, HashSet<CountryCode>> = HashMap::new();
    for svc in &world.graph.services {
        let clouds = world.service_clouds(svc.id);
        if clouds.is_empty() {
            continue;
        }
        let countries: HashSet<CountryCode> = clouds
            .iter()
            .flat_map(|cid| {
                CLOUDS
                    .iter()
                    .find(|c| c.id == *cid)
                    .map(|c| c.pop_countries.clone())
                    .unwrap_or_default()
            })
            .collect();
        service_cloud_countries.insert(svc.id.0, countries);
    }
    let all_cloud_countries: HashSet<CountryCode> =
        xborder_netsim::cloud::any_cloud_countries().into_iter().collect();

    // --- Per-flow evaluation --------------------------------------------
    let mut n_flows = 0u64;
    let mut tallies = [Tally::default(); 6]; // default, fqdn, tld, mirror, tld+mirror, migration
    let mut per_country: HashMap<CountryCode, CountryScenarios> = HashMap::new();

    for (i, r) in out.dataset.requests.iter().enumerate() {
        if !out.classification.is_tracking(i) {
            continue;
        }
        let user_country = out.dataset.user_country(r.user);
        if !WORLD.country_or_panic(user_country).eu28 {
            continue;
        }
        let Some(est) = estimates.get(&r.ip) else {
            continue;
        };
        n_flows += 1;
        let dest = est.country;
        let cs = per_country.entry(user_country).or_default();
        cs.flows += 1;

        // Candidate sets per scenario; every set implicitly contains the
        // current destination.
        let empty: HashSet<CountryCode> = HashSet::new();
        let fqdn_set = fqdn_alts.get(&r.host).unwrap_or(&empty);
        let tld_set = tld_alts
            .get(&domains.domain(r.host).tld())
            .unwrap_or(&empty);
        let mirror_set = world
            .graph
            .service_by_host_id(r.host)
            .and_then(|sid| service_cloud_countries.get(&sid.0).cloned())
            .unwrap_or_default();

        let eval = |set: &HashSet<CountryCode>, extra: Option<&HashSet<CountryCode>>| -> (bool, bool) {
            let country_ok = dest == user_country
                || set.contains(&user_country)
                || extra.is_some_and(|e| e.contains(&user_country));
            let continent_ok = is_europe(dest)
                || set.iter().any(|c| is_europe(*c))
                || extra.is_some_and(|e| e.iter().any(|c| is_europe(*c)));
            (country_ok, continent_ok)
        };

        // Default: only the current destination.
        tallies[0].add(dest == user_country, is_europe(dest));
        if dest == user_country {
            cs.default += 1.0;
        }
        // FQDN redirection.
        let (c, k) = eval(fqdn_set, None);
        tallies[1].add(c, k);
        // TLD redirection.
        let (c_tld, k_tld) = eval(tld_set, None);
        tallies[2].add(c_tld, k_tld);
        if c_tld {
            cs.tld += 1.0;
        }
        // PoP mirroring only.
        let (c, k) = eval(&mirror_set, None);
        tallies[3].add(c, k);
        // TLD + mirroring.
        let (c_comb, k_comb) = eval(tld_set, Some(&mirror_set));
        tallies[4].add(c_comb, k_comb);
        if c_comb {
            cs.tld_plus_mirroring += 1.0;
        }
        // Full cloud migration.
        let (c_mig, k_mig) = eval(&all_cloud_countries, None);
        tallies[5].add(c_mig, k_mig);
        if c_mig {
            cs.migration += 1.0;
        }
    }

    // Normalize per-country counters into shares.
    for cs in per_country.values_mut() {
        let f = cs.flows.max(1) as f64;
        cs.default /= f;
        cs.tld /= f;
        cs.tld_plus_mirroring /= f;
        cs.migration /= f;
    }

    WhatIfResults {
        n_flows,
        default: tallies[0].row(n_flows),
        redirect_fqdn: tallies[1].row(n_flows),
        redirect_tld: tallies[2].row(n_flows),
        pop_mirroring: tallies[3].row(n_flows),
        tld_plus_mirroring: tallies[4].row(n_flows),
        cloud_migration: tallies[5].row(n_flows),
        per_country,
    }
}

/// How fast would a DNS redirection actually roll out? (Sect. 5.1)
///
/// Every cached answer lingers for up to one TTL, so the flow-weighted TTL
/// distribution is the rollout-latency distribution. Short-TTL operators
/// (the Google-like majors at 300 s) can redirect "within seconds", the
/// long-TTL tail takes hours — the paper's exact point.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RolloutStats {
    /// Tracking-flow count per TTL value (seconds).
    pub flows_per_ttl: HashMap<u32, u64>,
    /// Total tracking flows considered.
    pub total: u64,
}

impl RolloutStats {
    /// Share of flows redirectable within `seconds`.
    pub fn share_within(&self, seconds: u32) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let covered: u64 = self
            .flows_per_ttl
            .iter()
            .filter(|(ttl, _)| **ttl <= seconds)
            .map(|(_, n)| n)
            .sum();
        covered as f64 / self.total as f64
    }

    /// Flow-weighted mean TTL in seconds.
    pub fn mean_ttl(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: u64 = self.flows_per_ttl.iter().map(|(t, n)| *t as u64 * n).sum();
        sum as f64 / self.total as f64
    }
}

/// Computes the redirection-rollout distribution over all tracking flows.
pub fn redirection_rollout(world: &World, out: &StudyOutputs) -> RolloutStats {
    let mut stats = RolloutStats::default();
    for (i, r) in out.dataset.requests.iter().enumerate() {
        if !out.classification.is_tracking(i) {
            continue;
        }
        let Some(zone) = world.dns.zone(out.dataset.domains.domain(r.host)) else {
            continue;
        };
        *stats.flows_per_ttl.entry(zone.ttl_secs).or_insert(0) += 1;
        stats.total += 1;
    }
    stats
}

#[derive(Debug, Clone, Copy, Default)]
struct Tally {
    country: u64,
    continent: u64,
}

impl Tally {
    fn add(&mut self, country: bool, continent: bool) {
        if country {
            self.country += 1;
        }
        if continent {
            self.continent += 1;
        }
    }

    fn row(&self, total: u64) -> ScenarioRow {
        let t = total.max(1) as f64;
        ScenarioRow {
            country: self.country as f64 / t,
            continent: self.continent as f64 / t,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::run_extension_pipeline;
    use crate::worldgen::WorldConfig;
    use xborder_geo::cc;

    fn results() -> WhatIfResults {
        let mut world = World::build(WorldConfig::small(13));
        let out = run_extension_pipeline(&mut world);
        run(&world, &out, &out.ipmap_estimates)
    }

    #[test]
    fn scenarios_are_monotone() {
        let r = results();
        assert!(r.n_flows > 100);
        // Each widening of the candidate set can only help.
        assert!(r.redirect_fqdn.country >= r.default.country);
        assert!(r.redirect_tld.country >= r.redirect_fqdn.country);
        assert!(r.tld_plus_mirroring.country >= r.redirect_tld.country);
        assert!(r.tld_plus_mirroring.country >= r.pop_mirroring.country);
        assert!(r.redirect_tld.continent >= r.redirect_fqdn.continent);
        assert!(r.redirect_fqdn.continent >= r.default.continent);
    }

    #[test]
    fn redirection_improves_country_confinement_substantially() {
        let r = results();
        let gain = r.redirect_tld.country - r.default.country;
        assert!(gain > 0.05, "TLD redirection gained only {gain}");
    }

    #[test]
    fn shares_are_probabilities() {
        let r = results();
        for row in [
            r.default,
            r.redirect_fqdn,
            r.redirect_tld,
            r.pop_mirroring,
            r.tld_plus_mirroring,
            r.cloud_migration,
        ] {
            assert!((0.0..=1.0).contains(&row.country), "{row:?}");
            assert!((0.0..=1.0).contains(&row.continent), "{row:?}");
            assert!(row.continent >= row.country, "{row:?}");
        }
    }

    #[test]
    fn cyprus_gains_nothing_from_cloud_migration() {
        let r = results();
        if let Some(cy) = r.per_country.get(&cc!("CY")) {
            // No cloud PoP in Cyprus: migration cannot add national
            // confinement beyond what redirection finds.
            assert!(
                cy.migration <= cy.tld + 1e-9,
                "CY migration {} > tld {}",
                cy.migration,
                cy.tld
            );
        }
    }

    #[test]
    fn per_country_shares_are_normalized() {
        let r = results();
        for (c, cs) in &r.per_country {
            assert!(cs.flows > 0, "{c} has zero flows");
            for v in [cs.default, cs.tld, cs.tld_plus_mirroring, cs.migration] {
                assert!((0.0..=1.0).contains(&v), "{c}: {v}");
            }
            assert!(cs.tld >= cs.default - 1e-9, "{c} tld < default");
        }
    }

    #[test]
    fn rollout_distribution_is_bimodal() {
        // Majors run 300 s TTLs, the tail 7,200 s: both modes must carry
        // flows, and every flow must be counted once.
        let mut world = World::build(WorldConfig::small(14));
        let out = crate::pipeline::run_extension_pipeline(&mut world);
        let stats = redirection_rollout(&world, &out);
        assert!(stats.total > 100);
        assert!(stats.flows_per_ttl.get(&300).copied().unwrap_or(0) > 0, "no short-TTL flows");
        assert!(stats.flows_per_ttl.get(&7200).copied().unwrap_or(0) > 0, "no long-TTL flows");
        let within_5m = stats.share_within(300);
        let within_2h = stats.share_within(7200);
        assert!(within_5m > 0.0 && within_5m < 1.0);
        assert!((within_2h - 1.0).abs() < 1e-9);
        assert!(stats.mean_ttl() > 300.0 && stats.mean_ttl() < 7200.0);
    }

    #[test]
    fn improvement_arithmetic() {
        let a = ScenarioRow { country: 0.6, continent: 0.95 };
        let b = ScenarioRow { country: 0.3, continent: 0.9 };
        let d = a.improvement_over(&b);
        assert!((d.country - 0.3).abs() < 1e-9);
        assert!((d.continent - 0.05).abs() < 1e-9);
    }
}
