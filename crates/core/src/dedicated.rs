//! Dedicated-IP analysis (Sect. 3.3, Figs. 4–5).
//!
//! Is a tracker IP *dedicated* to one pay-level domain, or shared ad-
//! exchange infrastructure serving many? The paper answers with reverse
//! passive DNS: ~85 % of requests hit single-TLD IPs, under 2 % of IPs
//! serve more than one TLD, and a small set (114) serves ten or more —
//! ad exchanges, RTB auction points and cookie-sync hubs.

use crate::pipeline::{EstimateMap, StudyOutputs};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::IpAddr;
use xborder_dns::PassiveDnsDb;
use xborder_geo::CountryCode;
use xborder_netsim::time::{anchors, TimeWindow};

/// Per-IP domain-sharing record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IpSharing {
    /// The IP.
    pub ip: IpAddr,
    /// Distinct pay-level domains served (reverse pDNS within the study
    /// window).
    pub n_tlds: usize,
    /// Tracking requests observed to this IP.
    pub requests: u64,
}

/// The full dedicated-IP analysis output.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DedicatedAnalysis {
    /// One record per tracker IP.
    pub per_ip: Vec<IpSharing>,
}

impl DedicatedAnalysis {
    /// Runs the analysis over the study's tracker IPs using reverse pDNS.
    pub fn run(out: &StudyOutputs, pdns: &PassiveDnsDb) -> DedicatedAnalysis {
        let window = TimeWindow::new(anchors::STUDY_START, anchors::STUDY_END);
        let mut per_ip: Vec<IpSharing> = out
            .tracker_ips
            .ips
            .iter()
            .map(|(ip, info)| {
                // Reverse pDNS: every TLD seen answering from this IP.
                let mut tlds = pdns.tlds_on_ip(*ip, window);
                // The IP's own observed hosts count even if sensors missed
                // them.
                for h in &info.hosts {
                    let t = h.tld();
                    if !tlds.contains(&t) {
                        tlds.push(t);
                    }
                }
                IpSharing {
                    ip: *ip,
                    n_tlds: tlds.len(),
                    requests: info.requests,
                }
            })
            .collect();
        per_ip.sort_by_key(|r| r.ip);
        DedicatedAnalysis { per_ip }
    }

    /// Share of *requests* served by IPs hosting exactly one TLD
    /// (paper: ~85 %).
    pub fn single_tld_request_share(&self) -> f64 {
        let total: u64 = self.per_ip.iter().map(|r| r.requests).sum();
        if total == 0 {
            return 0.0;
        }
        let single: u64 = self
            .per_ip
            .iter()
            .filter(|r| r.n_tlds <= 1)
            .map(|r| r.requests)
            .sum();
        single as f64 / total as f64
    }

    /// Share of *IPs* serving more than one TLD (paper: <2 %).
    pub fn multi_tld_ip_share(&self) -> f64 {
        if self.per_ip.is_empty() {
            return 0.0;
        }
        let multi = self.per_ip.iter().filter(|r| r.n_tlds > 1).count();
        multi as f64 / self.per_ip.len() as f64
    }

    /// IPs serving at least `threshold` TLDs (Fig. 5 uses 10).
    pub fn heavy_sharers(&self, threshold: usize) -> Vec<&IpSharing> {
        self.per_ip.iter().filter(|r| r.n_tlds >= threshold).collect()
    }

    /// Geolocates the heavy sharers and histograms them by country
    /// (Fig. 5's bar chart).
    pub fn heavy_sharer_countries(
        &self,
        threshold: usize,
        estimates: &EstimateMap,
    ) -> HashMap<CountryCode, usize> {
        let mut m = HashMap::new();
        for r in self.heavy_sharers(threshold) {
            if let Some(est) = estimates.get(&r.ip) {
                *m.entry(est.country).or_insert(0) += 1;
            }
        }
        m
    }

    /// `(n_tlds, cumulative request share)` points of the CDF in Fig. 4.
    pub fn request_weighted_cdf(&self) -> Vec<(usize, f64)> {
        let total: u64 = self.per_ip.iter().map(|r| r.requests).sum();
        if total == 0 {
            return Vec::new();
        }
        let mut by_n: HashMap<usize, u64> = HashMap::new();
        for r in &self.per_ip {
            *by_n.entry(r.n_tlds).or_insert(0) += r.requests;
        }
        let mut keys: Vec<usize> = by_n.keys().copied().collect();
        keys.sort();
        let mut acc = 0u64;
        keys.into_iter()
            .map(|k| {
                acc += by_n[&k];
                (k, acc as f64 / total as f64)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sharing(n_tlds: usize, requests: u64, last_octet: u8) -> IpSharing {
        IpSharing {
            ip: IpAddr::V4(std::net::Ipv4Addr::new(1, 2, 3, last_octet)),
            n_tlds,
            requests,
        }
    }

    #[test]
    fn shares_compute_correctly() {
        let a = DedicatedAnalysis {
            per_ip: vec![
                sharing(1, 850, 1),
                sharing(2, 100, 2),
                sharing(12, 50, 3),
            ],
        };
        assert!((a.single_tld_request_share() - 0.85).abs() < 1e-9);
        assert!((a.multi_tld_ip_share() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(a.heavy_sharers(10).len(), 1);
        assert_eq!(a.heavy_sharers(2).len(), 2);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let a = DedicatedAnalysis {
            per_ip: vec![sharing(1, 10, 1), sharing(3, 5, 2), sharing(1, 5, 3)],
        };
        let cdf = a.request_weighted_cdf();
        assert_eq!(cdf.first().unwrap().0, 1);
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
        for w in cdf.windows(2) {
            assert!(w[0].1 <= w[1].1);
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn empty_analysis_is_safe() {
        let a = DedicatedAnalysis::default();
        assert_eq!(a.single_tld_request_share(), 0.0);
        assert_eq!(a.multi_tld_ip_share(), 0.0);
        assert!(a.request_weighted_cdf().is_empty());
    }
}
