//! Rendering every table and figure as terminal text (and JSON via the
//! analysis structs' `Serialize` impls).
//!
//! The `repro` binary in `xborder-bench` calls these to regenerate the
//! paper's evaluation artifacts; EXPERIMENTS.md records the output next to
//! the paper's numbers.

use crate::confine::{CountryMatrix, DestBreakdown, RegionMatrix};
use crate::dedicated::DedicatedAnalysis;
use crate::ips::CompletionStats;
use crate::ispstudy::{rest_world_share, snapshot_days, IspStudyResults};
use crate::pipeline::{EstimateMap, StudyOutputs};
use crate::sensitive::SensitiveFlowStats;
use crate::whatif::WhatIfResults;
use serde::Serialize;
use std::collections::HashMap;
use std::fmt::Write as _;
use xborder_browser::DatasetStats;
use xborder_classify::Classification;
use xborder_geo::{Region, WORLD};
use xborder_geoloc::{Agreement, WrongLocationStats};
use xborder_netflow::IspProfile;
use xborder_webgraph::{Domain, SiteCategory};

/// Percent with one decimal.
fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Serializes any report struct to pretty JSON.
///
/// Fallible by design (IO/serde boundaries in this workspace never panic —
/// DESIGN.md §5g): a report struct that cannot serialize is surfaced as a
/// typed error for the caller to report, not a crash inside rendering.
pub fn to_json<T: Serialize>(value: &T) -> Result<String, serde_json::Error> {
    serde_json::to_string_pretty(value)
}

// ---------------------------------------------------------------------------
// Table 1 / Table 2 / Fig 2 / Fig 3
// ---------------------------------------------------------------------------

/// Table 1: dataset statistics.
pub fn fmt_table1(stats: &DatasetStats) -> String {
    format!(
        "Table 1 — real-users dataset statistics\n\
         {:<28}{:>12}\n{:<28}{:>12}\n{:<28}{:>12}\n{:<28}{:>12}\n{:<28}{:>12}\n",
        "# Users", stats.n_users,
        "# 1st-party domains", stats.n_first_party_domains,
        "# 1st-party requests", stats.n_first_party_requests,
        "# 3rd-party domains", stats.n_third_party_domains,
        "# 3rd-party requests", stats.n_third_party_requests,
    )
}

/// Table 2: ABP lists vs semi-automatic classification.
pub fn fmt_table2(out: &StudyOutputs) -> String {
    let a = &out.classification.abp;
    let s = &out.classification.semi;
    let mut t = String::from(
        "Table 2 — third-party request classification\n\
         method            #FQDN    #TLD   #UniqueReq   #TotalReq\n",
    );
    let _ = writeln!(
        t,
        "AdBlockPlus     {:>7} {:>7} {:>12} {:>11}",
        a.n_fqdn, a.n_tld, a.n_unique_urls, a.n_total_requests
    );
    let _ = writeln!(
        t,
        "Semi-automatic  {:>7} {:>7} {:>12} {:>11}",
        s.n_fqdn, s.n_tld, s.n_unique_urls, s.n_total_requests
    );
    let _ = writeln!(
        t,
        "Total           {:>7} {:>7} {:>12} {:>11}",
        a.n_fqdn + s.n_fqdn,
        a.n_tld + s.n_tld,
        a.n_unique_urls + s.n_unique_urls,
        a.n_total_requests + s.n_total_requests
    );
    t
}

/// Per-website request-count distributions behind Fig. 2.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Fig2Data {
    /// Per-publisher (clean, tracking, all) request counts.
    pub per_site: Vec<(u64, u64, u64)>,
}

impl Fig2Data {
    /// Computes the per-site splits from a study.
    pub fn compute(out: &StudyOutputs) -> Fig2Data {
        let mut per_pub: HashMap<u32, (u64, u64, u64)> = HashMap::new();
        for (i, r) in out.dataset.requests.iter().enumerate() {
            let e = per_pub.entry(r.publisher.0).or_default();
            e.2 += 1;
            if out.classification.is_tracking(i) {
                e.1 += 1;
            } else {
                e.0 += 1;
            }
        }
        let mut per_site: Vec<(u64, u64, u64)> = per_pub.into_values().collect();
        per_site.sort();
        Fig2Data { per_site }
    }

    fn percentile(mut values: Vec<u64>, p: f64) -> u64 {
        if values.is_empty() {
            return 0;
        }
        values.sort_unstable();
        let idx = ((values.len() - 1) as f64 * p).round() as usize;
        values[idx]
    }

    /// Median per-site counts `(clean, tracking, all)`.
    pub fn medians(&self) -> (u64, u64, u64) {
        (
            Self::percentile(self.per_site.iter().map(|x| x.0).collect(), 0.5),
            Self::percentile(self.per_site.iter().map(|x| x.1).collect(), 0.5),
            Self::percentile(self.per_site.iter().map(|x| x.2).collect(), 0.5),
        )
    }
}

/// Fig. 2: CDF summary of third-party requests per website.
pub fn fmt_fig2(data: &Fig2Data) -> String {
    let mut t = String::from(
        "Fig 2 — 3rd-party requests per website (per-site distribution)\n\
         percentile     clean   ad+tracking       all\n",
    );
    for p in [0.25, 0.5, 0.75, 0.9, 0.99] {
        let clean = Fig2Data::percentile(data.per_site.iter().map(|x| x.0).collect(), p);
        let track = Fig2Data::percentile(data.per_site.iter().map(|x| x.1).collect(), p);
        let all = Fig2Data::percentile(data.per_site.iter().map(|x| x.2).collect(), p);
        let _ = writeln!(t, "p{:<12}{:>6} {:>13} {:>9}", (p * 100.0) as u32, clean, track, all);
    }
    let (mc, mt, ma) = data.medians();
    let _ = writeln!(
        t,
        "takeaway: median site issues {mt} tracking vs {mc} clean requests (all: {ma})"
    );
    t
}

/// Top tracking TLDs with the ABP/SEMI detection split (Fig. 3).
#[derive(Debug, Clone, Default, Serialize)]
pub struct Fig3Data {
    /// `(tld, abp_requests, semi_requests)`, descending by total.
    pub top: Vec<(String, u64, u64)>,
}

impl Fig3Data {
    /// Computes the top-`n` tracking TLDs.
    pub fn compute(out: &StudyOutputs, n: usize) -> Fig3Data {
        let mut per_tld: HashMap<Domain, (u64, u64)> = HashMap::new();
        let domains = &out.dataset.domains;
        for (i, r) in out.dataset.requests.iter().enumerate() {
            match out.classification.label(i) {
                Classification::AbpTracking => {
                    per_tld.entry(domains.domain(r.host).tld()).or_default().0 += 1
                }
                Classification::SemiTracking => {
                    per_tld.entry(domains.domain(r.host).tld()).or_default().1 += 1
                }
                Classification::Clean => {}
            }
        }
        let mut v: Vec<(String, u64, u64)> = per_tld
            .into_iter()
            .map(|(d, (a, s))| (d.as_str().to_owned(), a, s))
            .collect();
        v.sort_by(|x, y| (y.1 + y.2).cmp(&(x.1 + x.2)).then(x.0.cmp(&y.0)));
        v.truncate(n);
        Fig3Data { top: v }
    }
}

/// Fig. 3: top tracking TLDs by request count, ABP vs SEMI.
pub fn fmt_fig3(data: &Fig3Data) -> String {
    let mut t = String::from("Fig 3 — top tracking TLDs (requests: ABP / SEMI)\n");
    for (tld, abp, semi) in &data.top {
        let _ = writeln!(t, "{tld:<24} {abp:>9} {semi:>9}");
    }
    t
}

/// Sect. 3.3: IP-set completion numbers.
pub fn fmt_completion(stats: &CompletionStats) -> String {
    format!(
        "Sect 3.3 — tracker IP completion via passive DNS\n\
         observed IPs: {}\n\
         pDNS-added IPs: {} (+{})\n\
         IPv4 share: {} (additions: {})\n",
        stats.n_observed,
        stats.n_added,
        pct(stats.added_fraction()),
        pct(stats.v4_share),
        pct(stats.added_v4_share),
    )
}

/// Fig. 4: domains-behind-an-IP distribution.
pub fn fmt_fig4(analysis: &DedicatedAnalysis) -> String {
    let mut t = String::from("Fig 4 — TLDs served per tracking IP\n");
    let _ = writeln!(
        t,
        "requests to single-TLD IPs: {}",
        pct(analysis.single_tld_request_share())
    );
    let _ = writeln!(
        t,
        "IPs serving >1 TLD: {}",
        pct(analysis.multi_tld_ip_share())
    );
    let _ = writeln!(t, "request-weighted CDF (n_tlds -> cumulative share):");
    for (n, share) in analysis.request_weighted_cdf().iter().take(8) {
        let _ = writeln!(t, "  <= {n:>3} TLDs: {}", pct(*share));
    }
    t
}

/// Fig. 5: heavy-sharer IPs and their locations.
pub fn fmt_fig5(analysis: &DedicatedAnalysis, estimates: &EstimateMap) -> String {
    let heavy = analysis.heavy_sharers(10);
    let mut t = format!("Fig 5 — IPs serving >= 10 tracking TLDs: {}\n", heavy.len());
    let mut countries: Vec<(String, usize)> = analysis
        .heavy_sharer_countries(10, estimates)
        .into_iter()
        .map(|(c, n)| (c.to_string(), n))
        .collect();
    countries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    for (c, n) in countries {
        let _ = writeln!(t, "  {c}: {n}");
    }
    t
}

// ---------------------------------------------------------------------------
// Tables 3-4, Figs 6-8
// ---------------------------------------------------------------------------

/// Table 3: pairwise geolocation agreement.
pub fn fmt_table3(
    ipapi_maxmind: &Agreement,
    ipapi_ipmap: &Agreement,
    maxmind_ipmap: &Agreement,
) -> String {
    let mut t = String::from(
        "Table 3 — pairwise geolocation agreement (country / continent)\n",
    );
    let _ = writeln!(
        t,
        "ip-api vs MaxMind   : {} / {}  ({} IPs)",
        pct(ipapi_maxmind.country),
        pct(ipapi_maxmind.continent),
        ipapi_maxmind.compared
    );
    let _ = writeln!(
        t,
        "ip-api vs RIPE IPmap: {} / {}  ({} IPs)",
        pct(ipapi_ipmap.country),
        pct(ipapi_ipmap.continent),
        ipapi_ipmap.compared
    );
    let _ = writeln!(
        t,
        "MaxMind vs RIPE IPmap: {} / {}  ({} IPs)",
        pct(maxmind_ipmap.country),
        pct(maxmind_ipmap.continent),
        maxmind_ipmap.compared
    );
    t
}

/// Table 4: registry mis-geolocation of the major providers.
pub fn fmt_table4(rows: &[(String, WrongLocationStats)]) -> String {
    let mut t = String::from(
        "Table 4 — MaxMind-style errors on major ad+tracking providers\n\
         provider        #IPs  wrongCty  wrongCont   #Req    wrongCty  wrongCont\n",
    );
    for (name, s) in rows {
        let _ = writeln!(
            t,
            "{name:<14} {:>6}  {:>8}  {:>9} {:>8}  {:>8}  {:>9}",
            s.n_ips,
            pct(s.wrong_country_ip_share()),
            pct(s.wrong_continent_ip_share()),
            s.n_requests,
            pct(s.wrong_country_request_share()),
            pct(s.wrong_continent_request_share()),
        );
    }
    t
}

/// Fig. 6: region Sankey (termination shares + confinements).
pub fn fmt_fig6(m: &RegionMatrix) -> String {
    let mut t = String::from("Fig 6 — tracking flows between regions\n");
    let _ = writeln!(t, "termination shares:");
    for r in Region::ALL {
        let _ = writeln!(t, "  {:<16}{}", r.name(), pct(m.termination_share(r)));
    }
    let _ = writeln!(t, "confinement (origin stays in origin region):");
    for r in Region::ALL {
        if m.outgoing(r) > 0 {
            let _ = writeln!(t, "  {:<16}{}", r.name(), pct(m.confinement(r)));
        }
    }
    t
}

/// Fig. 7: EU28 destination mix under two geolocation providers.
pub fn fmt_fig7(maxmind: &DestBreakdown, ipmap: &DestBreakdown) -> String {
    let mut t = String::from(
        "Fig 7 — destinations of EU28 users' tracking flows\n\
         region            MaxMind     RIPE IPmap\n",
    );
    for r in Region::ALL {
        let _ = writeln!(
            t,
            "{:<16} {:>9} {:>13}",
            r.name(),
            pct(maxmind.share(r)),
            pct(ipmap.share(r))
        );
    }
    t
}

/// Fig. 8: per-country origin/destination for EU28 users.
pub fn fmt_fig8(m: &CountryMatrix) -> String {
    let mut t = String::from("Fig 8 — EU28 national confinement (per origin country)\n");
    for (c, flows) in m.origins() {
        let name = WORLD.country_or_panic(c).name;
        let _ = writeln!(
            t,
            "  {name:<16} confinement {:>7}  ({} flows)",
            pct(m.confinement(c)),
            flows
        );
    }
    let _ = writeln!(t, "top destinations:");
    for (c, share) in m.termination_shares().into_iter().take(12) {
        let name = WORLD.country_or_panic(c).name;
        let _ = writeln!(t, "  {name:<16} {}", pct(share));
    }
    t
}

// ---------------------------------------------------------------------------
// Tables 5-6, Figs 9-11
// ---------------------------------------------------------------------------

/// Table 5: localization scenarios.
pub fn fmt_table5(r: &WhatIfResults) -> String {
    let mut t = format!(
        "Table 5 — localization scenarios over {} EU28 tracking flows\n\
         scenario                       country   continent   (improvement)\n",
        r.n_flows
    );
    let base = r.default;
    let mut row = |name: &str, s: &crate::whatif::ScenarioRow| {
        let d = s.improvement_over(&base);
        let _ = writeln!(
            t,
            "{name:<30} {:>8} {:>10}   (+{} / +{})",
            pct(s.country),
            pct(s.continent),
            pct(d.country),
            pct(d.continent)
        );
    };
    row("Default", &r.default);
    row("Redirection (FQDN)", &r.redirect_fqdn);
    row("Redirection (TLD)", &r.redirect_tld);
    row("PoP Mirroring (Cloud)", &r.pop_mirroring);
    row("Redirection + Mirroring", &r.tld_plus_mirroring);
    row("Migration to Cloud", &r.cloud_migration);
    t
}

/// Table 6: per-country improvements over TLD redirection.
pub fn fmt_table6(r: &WhatIfResults) -> String {
    let mut t = String::from(
        "Table 6 — per-country national confinement gains over Redirection (TLD)\n\
         country            flows   mirroring-gain   migration-gain\n",
    );
    let mut rows: Vec<_> = r.per_country.iter().collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.1.flows));
    for (c, cs) in rows {
        let name = WORLD.country_or_panic(*c).name;
        let _ = writeln!(
            t,
            "{name:<18} {:>6}   {:>14}   {:>14}",
            cs.flows,
            pct((cs.tld_plus_mirroring - cs.tld).max(0.0)),
            pct((cs.migration - cs.tld).max(0.0)),
        );
    }
    t
}

/// Fig. 9: sensitive-category flow shares.
pub fn fmt_fig9(s: &SensitiveFlowStats, inspected: usize, detected: usize) -> String {
    let mut t = format!(
        "Fig 9 — sensitive tracking flows: {} of {} tracking flows ({})\n\
         inspected {} domains, identified {} sensitive\n",
        s.total_sensitive_flows,
        s.total_tracking_flows,
        pct(s.sensitive_share()),
        inspected,
        detected
    );
    for cat in SiteCategory::SENSITIVE {
        let _ = writeln!(t, "  {:<20}{}", cat.slug(), pct(s.category_share(cat)));
    }
    t
}

/// Fig. 10: destination regions per sensitive category.
pub fn fmt_fig10(s: &SensitiveFlowStats) -> String {
    let mut t = format!(
        "Fig 10 — destinations of sensitive flows (EU28 users; overall EU28 share {})\n\
         category              EU28    leak-out\n",
        pct(s.eu28_dest_share())
    );
    let mut cats: Vec<SiteCategory> = SiteCategory::SENSITIVE.to_vec();
    cats.sort_by(|a, b| s.category_leakage(*b).total_cmp(&s.category_leakage(*a)));
    for cat in cats {
        let leak = s.category_leakage(cat);
        let _ = writeln!(t, "{:<20} {:>6} {:>10}", cat.slug(), pct(1.0 - leak), pct(leak));
    }
    t
}

/// Fig. 11: per-country sensitive-flow leakage.
pub fn fmt_fig11(s: &SensitiveFlowStats) -> String {
    let mut t = String::from(
        "Fig 11 — sensitive flows leaving the user's country (EU28)\n\
         country            total    leaving    share\n",
    );
    let mut rows: Vec<_> = s.per_country.iter().collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.1 .0));
    for (c, (total, leaving)) in rows {
        let name = WORLD.country_or_panic(*c).name;
        let share = *leaving as f64 / (*total).max(1) as f64;
        let _ = writeln!(t, "{name:<18} {total:>6} {leaving:>10} {:>8}", pct(share));
    }
    t
}

// ---------------------------------------------------------------------------
// Tables 7-9, Fig 12
// ---------------------------------------------------------------------------

/// Table 7: ISP profiles.
pub fn fmt_table7() -> String {
    let mut t = String::from("Table 7 — profile of the four European ISPs\n");
    for p in IspProfile::all() {
        let kind = match p.access {
            xborder_netflow::AccessKind::Broadband => "broadband households".to_owned(),
            xborder_netflow::AccessKind::Mobile => "mobile users".to_owned(),
            xborder_netflow::AccessKind::Mixed { mobile_share } => {
                format!("mixed ({:.0}% mobile)", mobile_share * 100.0)
            }
        };
        let _ = writeln!(
            t,
            "{:<14} {}  {:>5.0}M+ {kind}",
            p.name,
            WORLD.country_or_panic(p.country).name,
            p.subscribers_m
        );
    }
    t
}

/// Table 8: sampled tracking flows per ISP and day, by destination region.
pub fn fmt_table8(r: &IspStudyResults) -> String {
    let mut t = String::from("Table 8 — sampled tracking flows across ISPs and days\n");
    for profile in IspProfile::all() {
        let _ = writeln!(t, "{}", profile.name);
        for (day, _) in snapshot_days() {
            let Some(cell) = r.cell(profile.name, day) else {
                continue;
            };
            let _ = writeln!(
                t,
                "  {day:<9} flows {:>9}  EU28 {:>6}  NAm {:>6}  RoEu {:>6}  Asia {:>6}  Rest {:>6}",
                cell.tracking_flows,
                pct(cell.region_share(Region::Eu28)),
                pct(cell.region_share(Region::NorthAmerica)),
                pct(cell.region_share(Region::RestOfEurope)),
                pct(cell.region_share(Region::Asia)),
                pct(rest_world_share(cell)),
            );
        }
    }
    t
}

/// Fig. 12: top-5 destination countries per ISP (April 4 snapshot).
pub fn fmt_fig12(r: &IspStudyResults) -> String {
    let mut t = String::from("Fig 12 — top destination countries per ISP (April 4)\n");
    for profile in IspProfile::all() {
        let Some(cell) = r.cell(profile.name, "April 4") else {
            continue;
        };
        let _ = writeln!(
            t,
            "{} (national confinement {}):",
            profile.name,
            pct(cell.national_share(profile.country))
        );
        for (c, share) in cell.top_countries(5) {
            let name = WORLD.country_or_panic(c).name;
            let _ = writeln!(t, "  {name:<16} {}", pct(share));
        }
    }
    t
}

/// Table 9: the related-work matrix.
pub fn fmt_table9() -> String {
    let mut t = String::from(
        "Table 9 — related work comparison\n\
         work                                  users  geo    https  active passive\n",
    );
    for row in crate::related::table9() {
        let _ = writeln!(
            t,
            "{:<37} {:<6} {:<6} {:<6} {:<6} {}",
            format!("{} {}", row.cite, row.name),
            row.real_users.symbol(),
            row.geolocation.symbol(),
            row.https.symbol(),
            if row.active { "•" } else { "" },
            if row.passive { "•" } else { "" },
        );
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::run_extension_pipeline;
    use crate::worldgen::{World, WorldConfig};

    #[test]
    fn static_tables_render() {
        let t7 = fmt_table7();
        assert!(t7.contains("DE-Broadband"));
        assert!(t7.contains("Hungary"));
        let t9 = fmt_table9();
        assert!(t9.contains("This Work"));
    }

    #[test]
    fn dynamic_reports_render() {
        let mut world = World::build(WorldConfig::small(41));
        let out = run_extension_pipeline(&mut world);

        let t1 = fmt_table1(&out.dataset.stats());
        assert!(t1.contains("# Users"));
        let t2 = fmt_table2(&out);
        assert!(t2.contains("Semi-automatic"));

        let fig2 = Fig2Data::compute(&out);
        assert!(!fig2.per_site.is_empty());
        assert!(fmt_fig2(&fig2).contains("p50"));

        let fig3 = Fig3Data::compute(&out, 20);
        assert!(fig3.top.len() <= 20);
        assert!(!fig3.top.is_empty());
        assert!(fmt_fig3(&fig3).contains("Fig 3"));

        assert!(fmt_completion(&out.completion).contains("pDNS"));
    }

    #[test]
    fn fig3_is_sorted_descending() {
        let mut world = World::build(WorldConfig::small(42));
        let out = run_extension_pipeline(&mut world);
        let fig3 = Fig3Data::compute(&out, 20);
        for w in fig3.top.windows(2) {
            assert!(w[0].1 + w[0].2 >= w[1].1 + w[1].2);
        }
    }

    #[test]
    fn json_export_works() {
        let mut world = World::build(WorldConfig::small(43));
        let out = run_extension_pipeline(&mut world);
        let fig2 = Fig2Data::compute(&out);
        let json = to_json(&fig2).expect("fig2 serializes");
        assert!(json.starts_with('{'));
        let json = to_json(&out.dataset.stats()).expect("stats serialize");
        assert!(json.contains("n_users"));
    }
}
