//! `xborder` — an end-to-end reproduction of *Tracing Cross Border Web
//! Tracking* (Iordanou, Smaragdakis, Poese & Laoutaris, IMC 2018).
//!
//! The paper's datasets (350 real users' browsing logs, four ISPs' NetFlow,
//! RIPE IPmap, Robtex passive DNS) are closed, so this library pairs the
//! paper's *measurement pipeline* with a deterministic synthetic world that
//! exercises the same code paths — see DESIGN.md for the substitution
//! table.
//!
//! # Quick start
//!
//! ```no_run
//! use xborder::{World, WorldConfig};
//!
//! // Build a seeded world: web graph, infrastructure, DNS.
//! let mut world = World::build(WorldConfig::small(42));
//! // Run the 4.5-month browser-extension study.
//! let study = xborder::pipeline::run_extension_pipeline(&mut world);
//! // Headline result: confinement of EU28 users' tracking flows.
//! let fig7 = xborder::confine::region_breakdown_eu28(&study, &study.ipmap_estimates);
//! println!("EU28 -> EU28: {:.1}%", fig7.share(xborder_geo::Region::Eu28) * 100.0);
//! ```
//!
//! # Module map
//!
//! * [`worldgen`] — materializes a synthetic world (orgs, PoPs, servers,
//!   DNS zones) from a [`WorldConfig`].
//! * [`pipeline`] — runs the extension study, classification, IP-set
//!   completion and geolocation, producing a [`pipeline::StudyOutputs`].
//! * [`stream`] — the checkpointed streaming twin of the pipeline:
//!   chunked ingestion, crash-safe resume (DESIGN.md §5g).
//! * [`ips`] — tracker IP set construction + passive-DNS completion
//!   (Sect. 3.3).
//! * [`dedicated`] — dedicated-IP analysis (Figs. 4–5).
//! * [`confine`] — border-crossing / confinement analyses (Figs. 6–8).
//! * [`whatif`] — DNS-redirection and PoP-mirroring scenarios (Tables 5–6).
//! * [`sensitive`] — sensitive-category detection and tracing (Figs. 9–11).
//! * [`ispstudy`] — the ISP NetFlow scale-up (Tables 7–8, Fig. 12).
//! * [`collab`] — inter-tracker collaboration graphs (the paper's stated
//!   future work: data exchange *between* trackers, and whether it
//!   crosses the EU28 boundary).
//! * [`regulations`] — multi-regulation compliance audits (GDPR, COPPA,
//!   US-state scope), the paper's proposed monitoring generalization.
//! * [`related`] — the related-work comparison matrix (Table 9).
//! * [`report`] — text/JSON rendering of every table and figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collab;
pub mod confine;
pub mod dedicated;
pub mod ips;
pub mod ispstudy;
pub mod par;
pub mod pipeline;
pub mod regulations;
pub mod related;
pub mod report;
pub mod sensitive;
pub mod snapshots;
pub mod stream;
pub mod whatif;
pub mod worldgen;
pub mod worldscale;

pub use par::Parallelism;
pub use pipeline::StudyOutputs;
pub use worldgen::{World, WorldConfig};
