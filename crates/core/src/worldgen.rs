//! Materializing a synthetic world: web graph → physical infrastructure →
//! DNS zones.
//!
//! `xborder-webgraph` decides *who exists* (organizations, services,
//! hosting archetypes as country sets); this module decides *where the
//! machines are*: it racks servers into `xborder-netsim` PoPs, assigns IPs,
//! and writes the authoritative DNS zones that map users onto servers.
//! Shared ad-exchange infrastructure (many domains behind one IP — the
//! paper's Fig. 4/5 tail) is built here too.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use xborder_browser::StudyConfig;
use xborder_dns::{DnsSim, MappingPolicy, ZoneEntry, ZoneServer};
use xborder_geo::{CountryCode, WORLD};
use xborder_geoloc::IpMapConfig;
use xborder_netsim::{
    CloudId, Infrastructure, OrgId, OrgKind, PopKind, ServerId, ServerRole, CLOUDS,
};
use xborder_netsim::time::anchors;
use xborder_webgraph::{
    generate as generate_graph, HostingPolicy, ServiceId, ServiceKind, WebGraph, WebGraphConfig,
};

/// Top-level configuration of a synthetic world.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Master seed; every run with the same config is bit-identical.
    pub seed: u64,
    /// Web-ecosystem shape.
    pub web: WebGraphConfig,
    /// Extension-study shape.
    pub study: StudyConfig,
    /// IPmap probe-mesh shape.
    pub ipmap: IpMapConfig,
    /// Fraction of (host, server) pairs global passive-DNS sensors catch.
    /// Tuned so forward-completion adds a small percentage of IPs, like the
    /// paper's +2.78 %.
    pub pdns_coverage: f64,
    /// Probability a multi-country org racks in a public-cloud PoP (vs
    /// national colo) where one exists.
    pub cloud_affinity: f64,
    /// Share of servers given IPv6 addresses (paper: <3 % of tracker IPs).
    pub ipv6_share: f64,
    /// Geo-DNS dispersion: probability an answer is load-balanced to a
    /// random PoP instead of the nearest one. Real mapping is coarse; this
    /// slack is what DNS redirection recovers in Table 5.
    pub dns_epsilon: f64,
    /// Probability a secondary FQDN's zone keeps each of its org's
    /// deployment countries. Real services expose different footprints per
    /// hostname (sync endpoints live in fewer sites than ad serving); the
    /// FQDN→TLD redirection gap of Table 5 comes from exactly this.
    pub fqdn_footprint_keep: f64,
    /// Probability a dedicated tracking server gets rotated to a fresh
    /// address mid-study. Over the paper's 4.5 months operators re-number;
    /// the pDNS validity windows of Sect. 3.3 exist to handle exactly this
    /// churn (it's also why the NetFlow matcher scopes IPs in time).
    pub churn_rate: f64,
    /// Thread budget for the shardable pipeline stages (never affects
    /// outputs — see the determinism contract in DESIGN.md). Defaults to
    /// `XBORDER_THREADS` / available cores; not part of the world's seed.
    #[serde(default)]
    pub parallelism: crate::par::Parallelism,
}

impl WorldConfig {
    /// Full paper-scale configuration.
    pub fn paper_scale(seed: u64) -> WorldConfig {
        WorldConfig {
            seed,
            web: WebGraphConfig::default(),
            study: StudyConfig::default(),
            ipmap: IpMapConfig::default(),
            pdns_coverage: 0.10,
            cloud_affinity: 0.08,
            ipv6_share: 0.03,
            dns_epsilon: 0.08,
            fqdn_footprint_keep: 0.90,
            churn_rate: 0.10,
            parallelism: crate::par::Parallelism::from_env(),
        }
    }

    /// Small configuration for tests and quick examples.
    pub fn small(seed: u64) -> WorldConfig {
        WorldConfig {
            seed,
            web: WebGraphConfig::small(),
            study: StudyConfig::small(),
            ipmap: IpMapConfig::small(),
            pdns_coverage: 0.10,
            cloud_affinity: 0.08,
            ipv6_share: 0.03,
            dns_epsilon: 0.08,
            fqdn_footprint_keep: 0.90,
            churn_rate: 0.10,
            parallelism: crate::par::Parallelism::from_env(),
        }
    }

    /// Out-of-core scale: the small world shape under a huge *segmented*
    /// population (DESIGN.md §5j). Worldgen stays a pure function of the
    /// seed, and user `i`'s simulation derives from `(pop_seed, i)` alone
    /// — never from `users` — so any segment of the population can be
    /// regenerated on demand without materializing the rest. Per-user
    /// visit volume is kept low: the point of this configuration is
    /// population *breadth* (10⁶ users), and the resident-memory budget
    /// covers the classifier's URL interner, which grows with unique URLs.
    pub fn large(seed: u64, users: usize) -> WorldConfig {
        let mut cfg = WorldConfig::small(seed);
        cfg.study.population.n_users = users;
        cfg.study.population.segmented = true;
        cfg.study.visits_per_user_mean = 3.0;
        cfg
    }

    /// The same configuration with an explicit thread budget.
    pub fn with_threads(mut self, threads: usize) -> WorldConfig {
        self.parallelism = crate::par::Parallelism::with_threads(threads);
        self
    }
}

/// A fully materialized world.
pub struct World {
    /// The configuration it was built from.
    pub config: WorldConfig,
    /// Static web content.
    pub graph: WebGraph,
    /// Physical infrastructure (ground truth for geolocation).
    pub infra: Infrastructure,
    /// Authoritative DNS + passive-DNS sensor.
    pub dns: DnsSim,
    /// netsim org id per webgraph org index.
    pub org_map: Vec<OrgId>,
    /// Dedicated RNG stream for the study phase (worldgen consumed its own).
    pub study_rng: StdRng,
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "World(seed={}, {} publishers, {} services, {} servers, {} zones)",
            self.config.seed,
            self.graph.publishers.len(),
            self.graph.services.len(),
            self.infra.servers().len(),
            self.dns.n_zones()
        )
    }
}

/// How many servers an org gets per (service, country): heads get more,
/// and every org's home country gets a multiple — real operators
/// concentrate address space at home, which is what keeps registry
/// databases' per-IP error rates (Table 4) below their per-request ones.
fn servers_per_site(weight: f64, at_home: bool) -> usize {
    let base = if weight >= 10.0 {
        3
    } else if weight >= 1.0 {
        2
    } else {
        1
    };
    if at_home {
        base * 4
    } else {
        base
    }
}

impl World {
    /// Builds the world deterministically from its config.
    pub fn build(config: WorldConfig) -> World {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let graph = generate_graph(&config.web, &mut rng);
        let mut infra = Infrastructure::new();
        let mut dns = DnsSim::new();

        // 1. Mirror webgraph orgs into the infrastructure registry.
        let mut org_map = Vec::with_capacity(graph.orgs.len());
        for o in &graph.orgs {
            let tracking_org = o
                .services
                .iter()
                .any(|s| graph.service(*s).is_tracking());
            let kind = if tracking_org {
                OrgKind::AdTech
            } else {
                OrgKind::OtherService
            };
            org_map.push(infra.add_org(o.name.clone(), kind, o.legal_seat));
        }

        // 2. Deploy each service's servers and collect them per service.
        let mut service_servers: HashMap<ServiceId, Vec<ServerId>> = HashMap::new();
        // Mid-study address rotations: server -> the window it answers in.
        let mut server_windows: HashMap<ServerId, xborder_netsim::TimeWindow> = HashMap::new();
        // Shared ad-exchange clusters: (country -> shared server) pools,
        // filled lazily as shared services land in a country.
        let mut shared_pool: HashMap<CountryCode, Vec<ServerId>> = HashMap::new();

        for svc in &graph.services {
            let org = graph.org(svc.org);
            let netsim_org = org_map[svc.org.0 as usize];
            let mut countries = match &org.hosting {
                HostingPolicy::HomeOnly => vec![org.legal_seat],
                other => other.countries(),
            };
            if countries.is_empty() {
                countries.push(org.legal_seat);
            }
            let weight = graph.org_weight[svc.org.0 as usize];

            let mut servers = Vec::new();
            for country in countries {
                if !WORLD.contains(country) {
                    continue;
                }
                let per_site = servers_per_site(weight, country == org.legal_seat);
                let own_dc = weight >= 5.0;
                if svc.shared_infra {
                    // Shared exchange infrastructure: join (or grow) the
                    // country's shared server pool instead of racking
                    // dedicated machines. Pools hold several IPs per
                    // country (the paper's 114 heavy-sharer IPs), which
                    // also keeps one border-case mis-geolocation from
                    // swinging a whole exchange's traffic.
                    let pool = shared_pool.entry(country).or_default();
                    let reuse = pool.len() >= 3 || (!pool.is_empty() && rng.gen::<f64>() < 0.6);
                    let pick = |pool: &Vec<ServerId>, rng: &mut StdRng| {
                        pool[rng.gen_range(0..pool.len())]
                    };
                    if reuse {
                        servers.push(pick(pool, &mut rng));
                        // Big exchanges answer from more than one shared IP.
                        if weight >= 5.0 {
                            servers.push(pick(pool, &mut rng));
                            servers.push(pick(pool, &mut rng));
                        }
                    } else {
                        let pop = pick_pop(&mut infra, &config, country, &mut rng);
                        let sid = infra
                            .add_server(netsim_org, pop, ServerRole::AdExchange, false)
                            .expect("valid org/pop");
                        pool.push(sid);
                        servers.push(sid);
                    }
                    servers.sort();
                    servers.dedup();
                } else {
                    for _ in 0..per_site {
                        let pop = if own_dc {
                            // The heads of the market (Google/Amazon/
                            // Facebook-like) run their own facilities, so
                            // public-cloud PoP mirroring cannot help them —
                            // a big part of why Table 5's mirroring row
                            // gains so little.
                            infra
                                .pop_of_kind_in(PopKind::OwnDatacenter, country, &mut rng)
                                .expect("country in world table")
                        } else {
                            pick_pop(&mut infra, &config, country, &mut rng)
                        };
                        let role = match svc.kind {
                            ServiceKind::AdCdn => ServerRole::CdnEdge,
                            k if k.is_tracking() => ServerRole::DedicatedTracking,
                            _ => ServerRole::OtherService,
                        };
                        let v6 = rng.gen::<f64>() < config.ipv6_share;
                        let sid = infra
                            .add_server(netsim_org, pop, role, v6)
                            .expect("valid org/pop");
                        servers.push(sid);
                        // Mid-study renumbering: retire this address at a
                        // random point and bring up a replacement in the
                        // same facility.
                        if rng.gen::<f64>() < config.churn_rate {
                            let rotate_at = xborder_netsim::SimTime(
                                anchors::STUDY_START.0
                                    + rng.gen_range(
                                        0..(anchors::STUDY_END.0 - anchors::STUDY_START.0),
                                    ),
                            );
                            server_windows.insert(
                                sid,
                                xborder_netsim::TimeWindow::new(
                                    xborder_netsim::SimTime(0),
                                    rotate_at,
                                ),
                            );
                            let replacement = infra
                                .add_server(netsim_org, pop, role, v6)
                                .expect("valid org/pop");
                            server_windows.insert(
                                replacement,
                                xborder_netsim::TimeWindow::new(
                                    rotate_at,
                                    xborder_netsim::SimTime(u64::MAX),
                                ),
                            );
                            servers.push(replacement);
                        }
                    }
                }
            }
            service_servers.insert(svc.id, servers);
        }

        // 3. Write DNS zones: every host of a service answers from the
        // service's full server set.
        for svc in &graph.services {
            let servers = &service_servers[&svc.id];
            if servers.is_empty() {
                continue;
            }
            let zone_servers: Vec<ZoneServer> = servers
                .iter()
                .map(|sid| {
                    let s = infra.server(*sid).expect("deployed server");
                    let pop = infra.pop(s.pop).expect("server pop");
                    ZoneServer {
                        server: s.id,
                        ip: s.ip,
                        country: pop.country,
                        location: pop.location,
                        valid: server_windows.get(sid).copied(),
                    }
                })
                .collect();
            let multi_country = {
                let mut cs: Vec<CountryCode> = zone_servers.iter().map(|z| z.country).collect();
                cs.sort();
                cs.dedup();
                cs.len() > 1
            };
            let weight = graph.org_weight[svc.org.0 as usize];
            let policy = if multi_country {
                MappingPolicy::NearestToResolver {
                    epsilon: config.dns_epsilon,
                }
            } else if zone_servers.len() > 1 {
                MappingPolicy::RoundRobin
            } else {
                MappingPolicy::Pinned
            };
            // Majors run short TTLs (Google: 300 s); the tail doesn't
            // bother (Facebook-like 7,200 s).
            let ttl = if weight >= 5.0 { 300 } else { 7200 };
            for (host_idx, host) in svc.hosts.iter().enumerate() {
                // The primary host exposes the full footprint; secondary
                // FQDNs run from a country subset.
                let servers_for_host = if host_idx == 0 || !multi_country {
                    zone_servers.clone()
                } else {
                    let mut kept_countries: Vec<CountryCode> = zone_servers
                        .iter()
                        .map(|z| z.country)
                        .collect();
                    kept_countries.sort();
                    kept_countries.dedup();
                    kept_countries.retain(|_| rng.gen::<f64>() < config.fqdn_footprint_keep);
                    let subset: Vec<ZoneServer> = zone_servers
                        .iter()
                        .filter(|z| kept_countries.contains(&z.country))
                        .copied()
                        .collect();
                    if subset.is_empty() {
                        // Keep at least the first deployment site.
                        let first_country = zone_servers[0].country;
                        zone_servers
                            .iter()
                            .filter(|z| z.country == first_country)
                            .copied()
                            .collect()
                    } else {
                        subset
                    }
                };
                dns.add_zone(ZoneEntry {
                    host: host.clone(),
                    servers: servers_for_host,
                    policy,
                    ttl_secs: ttl,
                })
                .expect("non-empty zone");
            }
        }

        // 4. Global passive-DNS backfill over the study window.
        dns.seed_global_pdns(
            anchors::STUDY_START,
            anchors::STUDY_END,
            config.pdns_coverage,
            &mut rng,
        );

        let study_rng = StdRng::seed_from_u64(rng.gen());
        World {
            config,
            graph,
            infra,
            dns,
            org_map,
            study_rng,
        }
    }

    /// All distinct countries a service answers from (its zone footprint).
    pub fn service_countries(&self, svc: ServiceId) -> Vec<CountryCode> {
        let service = self.graph.service(svc);
        let Some(zone) = self.dns.zone(&service.hosts[0]) else {
            return Vec::new();
        };
        zone.countries()
    }

    /// The cloud providers hosting a specific service's servers (via its
    /// primary host's zone, which carries the full footprint).
    pub fn service_clouds(&self, svc: ServiceId) -> Vec<CloudId> {
        let service = self.graph.service(svc);
        let Some(zone) = self.dns.zone(&service.hosts[0]) else {
            return Vec::new();
        };
        let mut clouds: Vec<CloudId> = zone
            .servers
            .iter()
            .filter_map(|zs| {
                let s = self.infra.server_by_ip(zs.ip)?;
                match self.infra.pop(s.pop).ok()?.kind {
                    PopKind::Cloud(c) => Some(c),
                    _ => None,
                }
            })
            .collect();
        clouds.sort();
        clouds.dedup();
        clouds
    }

    /// The cloud providers hosting any of an org's servers.
    pub fn org_clouds(&self, org: OrgId) -> Vec<CloudId> {
        let mut clouds: Vec<CloudId> = self
            .infra
            .servers_of_org(org)
            .iter()
            .filter_map(|sid| {
                let s = self.infra.server(*sid).ok()?;
                match self.infra.pop(s.pop).ok()?.kind {
                    PopKind::Cloud(c) => Some(c),
                    _ => None,
                }
            })
            .collect();
        clouds.sort();
        clouds.dedup();
        clouds
    }
}

fn pick_pop(
    infra: &mut Infrastructure,
    config: &WorldConfig,
    country: CountryCode,
    rng: &mut StdRng,
) -> xborder_netsim::PopId {
    // Prefer a public-cloud PoP when one exists in the country and the org
    // rolls cloud affinity; otherwise national colo. Cloudflare is a CDN
    // proxy, not a place trackers rack backends, so it is not a hosting
    // target (it still counts as cloud footprint in the what-if analysis).
    let clouds_here: Vec<CloudId> = CLOUDS
        .iter()
        .filter(|c| c.id != CloudId::Cloudflare && c.has_pop_in(country))
        .map(|c| c.id)
        .collect();
    let kind = if !clouds_here.is_empty() && rng.gen::<f64>() < config.cloud_affinity {
        PopKind::Cloud(clouds_here[rng.gen_range(0..clouds_here.len())])
    } else {
        PopKind::NationalColo
    };
    infra
        .pop_of_kind_in(kind, country, rng)
        .expect("country in world table")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn small_world() -> World {
        World::build(WorldConfig::small(7))
    }

    #[test]
    fn world_builds_and_is_consistent() {
        let w = small_world();
        assert!(w.graph.validate().is_ok());
        assert!(!w.infra.servers().is_empty());
        assert!(w.dns.n_zones() >= w.graph.n_third_party_fqdns());
    }

    #[test]
    fn every_service_host_has_a_zone() {
        let w = small_world();
        for svc in &w.graph.services {
            for host in &svc.hosts {
                assert!(w.dns.zone(host).is_some(), "host {host} unzoned");
            }
        }
    }

    #[test]
    fn zone_servers_match_infrastructure() {
        let w = small_world();
        for zone in w.dns.zones() {
            for zs in &zone.servers {
                let server = w.infra.server_by_ip(zs.ip).expect("zone IP in registry");
                assert_eq!(server.id, zs.server);
                let pop = w.infra.pop(server.pop).unwrap();
                assert_eq!(pop.country, zs.country, "zone {} country mismatch", zone.host);
            }
        }
    }

    #[test]
    fn home_only_orgs_deploy_at_home() {
        let w = small_world();
        for (i, o) in w.graph.orgs.iter().enumerate() {
            if o.hosting != HostingPolicy::HomeOnly {
                continue;
            }
            for sid in w.infra.servers_of_org(w.org_map[i]) {
                let s = w.infra.server(*sid).unwrap();
                let pop = w.infra.pop(s.pop).unwrap();
                assert_eq!(pop.country, o.legal_seat, "org {} strayed", o.name);
            }
        }
    }

    #[test]
    fn anycast_orgs_span_countries() {
        let w = small_world();
        let gtrack_idx = w.graph.orgs.iter().position(|o| o.name == "gtrack").unwrap();
        let countries: HashSet<CountryCode> = w
            .infra
            .servers_of_org(w.org_map[gtrack_idx])
            .iter()
            .map(|sid| {
                let s = w.infra.server(*sid).unwrap();
                w.infra.pop(s.pop).unwrap().country
            })
            .collect();
        assert!(countries.len() >= 10, "gtrack spans {} countries", countries.len());
    }

    #[test]
    fn shared_infra_ips_serve_many_services() {
        let w = small_world();
        // Map server -> set of service TLDs answering from it.
        let mut services_per_server: HashMap<ServerId, HashSet<&str>> = HashMap::new();
        for svc in &w.graph.services {
            if let Some(zone) = w.dns.zone(&svc.hosts[0]) {
                for zs in &zone.servers {
                    services_per_server
                        .entry(zs.server)
                        .or_default()
                        .insert(svc.tld.as_str());
                }
            }
        }
        let max_shared = services_per_server.values().map(|s| s.len()).max().unwrap_or(0);
        assert!(max_shared >= 3, "max TLDs per server {max_shared}");
        // But the typical server is dedicated.
        let dedicated = services_per_server.values().filter(|s| s.len() == 1).count();
        assert!(
            dedicated * 10 >= services_per_server.len() * 8,
            "only {dedicated}/{} dedicated",
            services_per_server.len()
        );
    }

    #[test]
    fn build_is_deterministic() {
        let a = World::build(WorldConfig::small(3));
        let b = World::build(WorldConfig::small(3));
        assert_eq!(a.infra.servers().len(), b.infra.servers().len());
        for (x, y) in a.infra.servers().iter().zip(b.infra.servers()) {
            assert_eq!(x.ip, y.ip);
        }
        assert_eq!(a.dns.n_zones(), b.dns.n_zones());
    }

    #[test]
    fn seeds_differ() {
        let a = World::build(WorldConfig::small(3));
        let b = World::build(WorldConfig::small(4));
        let ips_a: HashSet<_> = a.infra.servers().iter().map(|s| s.ip).collect();
        let ips_b: HashSet<_> = b.infra.servers().iter().map(|s| s.ip).collect();
        // Address plans are sequential so overlap is expected, but server
        // counts and graph content should differ.
        assert!(
            a.graph.publishers.iter().zip(&b.graph.publishers).any(|(x, y)| x.domain != y.domain)
                || ips_a.len() != ips_b.len()
        );
    }

    #[test]
    fn churn_rotates_addresses_mid_study() {
        use xborder_netsim::time::anchors;
        let mut cfg = WorldConfig::small(8);
        cfg.churn_rate = 0.5; // make rotations plentiful
        let w = World::build(cfg);
        // Some zone entries must carry validity windows...
        let mut windowed = 0usize;
        let mut rotations_verified = 0usize;
        for zone in w.dns.zones() {
            let retired: Vec<_> = zone
                .servers
                .iter()
                .filter(|s| s.valid.is_some_and(|v| v.end.0 < u64::MAX))
                .collect();
            windowed += retired.len();
            for old in retired {
                // ...and every retired address has a successor picking up
                // exactly where it stopped.
                let handover = old.valid.unwrap().end;
                assert!(
                    zone.servers.iter().any(|s| {
                        s.valid.is_some_and(|v| v.start == handover) && s.ip != old.ip
                    }),
                    "no successor for {} in {}",
                    old.ip,
                    zone.host
                );
                rotations_verified += 1;
            }
        }
        assert!(windowed > 10, "only {windowed} windowed servers");
        assert!(rotations_verified > 10);
        // Resolution across the study window never fails for primary hosts.
        let _ = anchors::STUDY_END;
    }

    #[test]
    fn pdns_backfill_happened() {
        let w = small_world();
        assert!(!w.dns.pdns().is_empty());
    }

    #[test]
    fn some_v6_servers_exist() {
        let w = small_world();
        let v6 = w.infra.servers().iter().filter(|s| s.ip.is_ipv6()).count();
        let share = v6 as f64 / w.infra.servers().len() as f64;
        assert!(share > 0.0 && share < 0.10, "v6 share {share}");
    }
}
