//! Pipeline parallelism configuration.
//!
//! The pipeline's determinism contract (DESIGN.md §"Parallel execution")
//! allows sharding only stages whose per-entity results are independent of
//! processing order — stage-1 blocklist matching and the provider freezes,
//! whose fault coins are hash-derived from `(seed, class, entity)` rather
//! than drawn from a shared RNG stream. `threads == 1` takes the exact
//! legacy sequential code path, byte for byte.

use serde::{Deserialize, Serialize};

/// Environment variable overriding the thread budget (`1` = sequential).
pub const THREADS_ENV: &str = "XBORDER_THREADS";

/// Thread budget for the shardable pipeline stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Parallelism {
    /// Worker threads for sharded stages. `1` runs the exact legacy
    /// sequential path; values are clamped to at least 1.
    pub threads: usize,
}

impl Parallelism {
    /// The legacy sequential path.
    pub fn sequential() -> Parallelism {
        Parallelism { threads: 1 }
    }

    /// An explicit thread budget (clamped to ≥ 1).
    pub fn with_threads(threads: usize) -> Parallelism {
        Parallelism {
            threads: threads.max(1),
        }
    }

    /// Reads `XBORDER_THREADS`, defaulting to the machine's available
    /// cores. Unparseable or zero values fall back to the default.
    pub fn from_env() -> Parallelism {
        let threads = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&t| t > 0)
            .unwrap_or_else(available_cores);
        Parallelism { threads }
    }

    /// True when this budget takes the sequential code path.
    pub fn is_sequential(&self) -> bool {
        self.threads <= 1
    }
}

impl Default for Parallelism {
    fn default() -> Parallelism {
        Parallelism::from_env()
    }
}

/// Available cores, with a sequential fallback when the OS won't say.
fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_is_one_thread() {
        assert!(Parallelism::sequential().is_sequential());
        assert_eq!(Parallelism::sequential().threads, 1);
    }

    #[test]
    fn with_threads_clamps_zero() {
        assert_eq!(Parallelism::with_threads(0).threads, 1);
        assert_eq!(Parallelism::with_threads(8).threads, 8);
    }

    #[test]
    fn from_env_yields_at_least_one() {
        // Whatever the environment says, the budget is usable.
        assert!(Parallelism::from_env().threads >= 1);
    }
}
