//! Sensitive-category detection and tracing (Sect. 6, Figs. 9–11).
//!
//! GDPR Article 9 protects racial/ethnic origin, political opinions,
//! religion, health, sex life and sexual orientation. The paper finds the
//! sites in those categories with a multi-stage filter — AdWords topic
//! tagging, then manual review because generic taggers *mask* sensitivity
//! (pregnancy → "Health", porn → "Men's Interests") — and then traces
//! where their tracking flows terminate.
//!
//! The simulation reproduces the filter: stage 1 matches tagger topics
//! against giveaway terms, stage 2 runs simulated examiners over the
//! site's content keywords with a 2-of-3 agreement rule. Detection is
//! imperfect by construction, like the paper's.

use crate::pipeline::{EstimateMap, StudyOutputs};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use xborder_geo::{CountryCode, Region, WORLD};
use xborder_webgraph::{PublisherId, SiteCategory, WebGraph};

/// Detection tunables.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Probability one examiner recognizes a truly sensitive site from its
    /// content keywords.
    pub examiner_sensitivity: f64,
    /// Probability one examiner wrongly flags a non-sensitive site.
    pub examiner_false_positive: f64,
    /// Number of simulated examiners (agreement needs 2).
    pub n_examiners: usize,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            examiner_sensitivity: 0.93,
            examiner_false_positive: 0.01,
            n_examiners: 3,
        }
    }
}

/// Output of the multi-stage sensitive-site filter.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SensitiveSites {
    /// Detected sites and the category assigned to each.
    pub detected: HashMap<PublisherId, SiteCategory>,
    /// Sites that went through inspection (had a sensitive-looking signal).
    pub inspected: usize,
}

/// Topics whose presence alone marks a site for inspection: the generic
/// tagger's closest approximations of the GDPR categories.
const GIVEAWAY_TOPICS: &[&str] = &[
    "health", "casino games", "lottery", "dating", "law & government", "men's interests",
    "people & society", "nightlife", "support groups", "family", "parenting",
];

/// Runs the detector over every publisher.
pub fn detect_sensitive_sites<R: Rng + ?Sized>(
    graph: &WebGraph,
    cfg: &DetectorConfig,
    rng: &mut R,
) -> SensitiveSites {
    let mut out = SensitiveSites::default();
    for p in &graph.publishers {
        // Stage 1: automated AdWords-topic screen.
        let topics = p.category.tagger_topics();
        let flagged_by_topics = topics
            .iter()
            .any(|t| GIVEAWAY_TOPICS.contains(&t.0));
        if !flagged_by_topics {
            continue;
        }
        out.inspected += 1;
        // Stage 2: examiners look at content keywords. A truly sensitive
        // site exposes its category's keywords; a masked-but-harmless site
        // (e.g. ordinary health-adjacent content) mostly doesn't.
        let truly_sensitive = p.category.is_sensitive();
        let mut agree = 0usize;
        for _ in 0..cfg.n_examiners {
            let p_detect = if truly_sensitive {
                cfg.examiner_sensitivity
            } else {
                cfg.examiner_false_positive
            };
            if rng.gen::<f64>() < p_detect {
                agree += 1;
            }
        }
        if agree >= 2 {
            // Examiners label with the true category when it is sensitive;
            // a false positive gets the nearest sensitive category.
            let label = if truly_sensitive {
                p.category
            } else {
                nearest_sensitive_label(p.category)
            };
            out.detected.insert(p.id, label);
        }
    }
    out
}

/// Which sensitive label a false positive would plausibly get.
fn nearest_sensitive_label(cat: SiteCategory) -> SiteCategory {
    match cat {
        SiteCategory::Games => SiteCategory::Gambling,
        SiteCategory::Food => SiteCategory::Alcohol,
        SiteCategory::News => SiteCategory::Politics,
        SiteCategory::Social => SiteCategory::SexualOrientation,
        _ => SiteCategory::Health,
    }
}

/// Per-category flow statistics (Figs. 9–10).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SensitiveFlowStats {
    /// Tracking flows per detected category.
    pub flows_per_category: HashMap<SiteCategory, u64>,
    /// Destination-region counts per category (EU28 users only).
    pub dest_by_category: HashMap<SiteCategory, HashMap<Region, u64>>,
    /// Per-EU28-country: (sensitive flows, flows leaving the country).
    pub per_country: HashMap<CountryCode, (u64, u64)>,
    /// Total tracking flows in the dataset (for the share headline).
    pub total_tracking_flows: u64,
    /// Total sensitive tracking flows.
    pub total_sensitive_flows: u64,
}

impl SensitiveFlowStats {
    /// Sensitive share of all tracking flows (paper: 2.89 %).
    pub fn sensitive_share(&self) -> f64 {
        if self.total_tracking_flows == 0 {
            0.0
        } else {
            self.total_sensitive_flows as f64 / self.total_tracking_flows as f64
        }
    }

    /// Flow share of a category among sensitive flows (Fig. 9).
    pub fn category_share(&self, cat: SiteCategory) -> f64 {
        if self.total_sensitive_flows == 0 {
            0.0
        } else {
            self.flows_per_category.get(&cat).copied().unwrap_or(0) as f64
                / self.total_sensitive_flows as f64
        }
    }

    /// Share of a category's EU28-origin flows leaving EU28 (Fig. 10's
    /// leakage view).
    pub fn category_leakage(&self, cat: SiteCategory) -> f64 {
        let Some(dests) = self.dest_by_category.get(&cat) else {
            return 0.0;
        };
        let total: u64 = dests.values().sum();
        if total == 0 {
            return 0.0;
        }
        let inside = dests.get(&Region::Eu28).copied().unwrap_or(0);
        (total - inside) as f64 / total as f64
    }

    /// Aggregate EU28 destination share over all sensitive flows.
    pub fn eu28_dest_share(&self) -> f64 {
        let mut total = 0u64;
        let mut inside = 0u64;
        for dests in self.dest_by_category.values() {
            for (region, n) in dests {
                total += n;
                if *region == Region::Eu28 {
                    inside += n;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            inside as f64 / total as f64
        }
    }
}

/// Traces every sensitive tracking flow of the study.
pub fn trace_sensitive_flows(
    out: &StudyOutputs,
    graph: &WebGraph,
    sites: &SensitiveSites,
    estimates: &EstimateMap,
) -> SensitiveFlowStats {
    let mut stats = SensitiveFlowStats::default();
    for (i, r) in out.dataset.requests.iter().enumerate() {
        if !out.classification.is_tracking(i) {
            continue;
        }
        stats.total_tracking_flows += 1;
        let Some(cat) = sites.detected.get(&r.publisher).copied() else {
            continue;
        };
        stats.total_sensitive_flows += 1;
        *stats.flows_per_category.entry(cat).or_insert(0) += 1;

        let user_country = out.dataset.user_country(r.user);
        let user_eu28 = WORLD.country_or_panic(user_country).eu28;
        if let Some(est) = estimates.get(&r.ip) {
            if user_eu28 {
                *stats
                    .dest_by_category
                    .entry(cat)
                    .or_default()
                    .entry(est.region())
                    .or_insert(0) += 1;
                let entry = stats.per_country.entry(user_country).or_insert((0, 0));
                entry.0 += 1;
                if est.country != user_country {
                    entry.1 += 1;
                }
            }
        }
    }
    let _ = graph; // graph reserved for future per-site weighting
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::run_extension_pipeline;
    use crate::worldgen::{World, WorldConfig};
    use rand::{rngs::StdRng, SeedableRng};
    use xborder_webgraph::{generate, WebGraphConfig};

    #[test]
    fn detector_finds_sensitive_sites_with_high_recall() {
        let mut rng = StdRng::seed_from_u64(31);
        let mut cfg = WebGraphConfig::small();
        cfg.n_publishers = 1500;
        cfg.sensitive_fraction = 0.2;
        let graph = generate(&cfg, &mut rng);
        let sites = detect_sensitive_sites(&graph, &DetectorConfig::default(), &mut rng);

        let truly: Vec<_> = graph
            .publishers
            .iter()
            .filter(|p| p.category.is_sensitive())
            .collect();
        let detected_true = truly.iter().filter(|p| sites.detected.contains_key(&p.id)).count();
        let recall = detected_true as f64 / truly.len().max(1) as f64;
        assert!(recall > 0.85, "recall {recall}");

        // Precision: few false positives.
        let fp = sites
            .detected
            .keys()
            .filter(|id| !graph.publisher(**id).category.is_sensitive())
            .count();
        let precision = 1.0 - fp as f64 / sites.detected.len().max(1) as f64;
        assert!(precision > 0.95, "precision {precision}");
    }

    #[test]
    fn detected_labels_match_true_categories() {
        let mut rng = StdRng::seed_from_u64(32);
        let graph = generate(&WebGraphConfig::small(), &mut rng);
        let sites = detect_sensitive_sites(&graph, &DetectorConfig::default(), &mut rng);
        for (id, label) in &sites.detected {
            let p = graph.publisher(*id);
            if p.category.is_sensitive() {
                assert_eq!(*label, p.category);
            }
            assert!(label.is_sensitive());
        }
    }

    #[test]
    fn sensitive_flows_are_a_small_share() {
        let mut world = World::build(WorldConfig::small(33));
        let out = run_extension_pipeline(&mut world);
        let mut rng = StdRng::seed_from_u64(34);
        let sites = detect_sensitive_sites(&world.graph, &DetectorConfig::default(), &mut rng);
        let stats = trace_sensitive_flows(&out, &world.graph, &sites, &out.ipmap_estimates);
        assert!(stats.total_sensitive_flows > 0, "no sensitive flows traced");
        let share = stats.sensitive_share();
        // Sensitive sites sit in the popularity tail; their flows must be a
        // small minority (paper: 2.89 %).
        assert!(share < 0.25, "sensitive share {share}");
    }

    #[test]
    fn category_shares_sum_to_one() {
        let mut world = World::build(WorldConfig::small(35));
        let out = run_extension_pipeline(&mut world);
        let mut rng = StdRng::seed_from_u64(36);
        let sites = detect_sensitive_sites(&world.graph, &DetectorConfig::default(), &mut rng);
        let stats = trace_sensitive_flows(&out, &world.graph, &sites, &out.ipmap_estimates);
        if stats.total_sensitive_flows > 0 {
            let sum: f64 = SiteCategory::SENSITIVE
                .iter()
                .map(|c| stats.category_share(*c))
                .sum();
            assert!((sum - 1.0).abs() < 1e-9, "shares sum to {sum}");
        }
    }

    #[test]
    fn leakage_is_a_probability() {
        let mut world = World::build(WorldConfig::small(37));
        let out = run_extension_pipeline(&mut world);
        let mut rng = StdRng::seed_from_u64(38);
        let sites = detect_sensitive_sites(&world.graph, &DetectorConfig::default(), &mut rng);
        let stats = trace_sensitive_flows(&out, &world.graph, &sites, &out.ipmap_estimates);
        for cat in SiteCategory::SENSITIVE {
            let l = stats.category_leakage(cat);
            assert!((0.0..=1.0).contains(&l), "{cat}: {l}");
        }
        assert!((0.0..=1.0).contains(&stats.eu28_dest_share()));
    }
}
