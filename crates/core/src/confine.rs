//! Border-crossing and confinement analyses (Sect. 4, Figs. 6–8).
//!
//! A tracking flow's *origin* is the user's country (known exactly); its
//! *destination* is wherever the chosen geolocation provider places the
//! server IP. Confinement is measured at three granularities: the user's
//! country (national jurisdiction), the EU28 region (GDPR jurisdiction),
//! and the physical continent.

use crate::pipeline::{EstimateMap, StudyOutputs};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use xborder_geo::{CountryCode, Region, WORLD};

/// Serde helper: tuple-keyed maps as entry lists (JSON keys must be
/// strings).
mod tuple_map {
    use serde::{Deserialize, Deserializer, Serialize, Serializer};
    use std::collections::HashMap;
    use std::hash::Hash;

    pub fn serialize<K, V, S>(map: &HashMap<K, V>, ser: S) -> Result<S::Ok, S::Error>
    where
        K: Serialize + Ord + Copy,
        V: Serialize + Copy,
        S: Serializer,
    {
        let mut entries: Vec<(K, V)> = map.iter().map(|(k, v)| (*k, *v)).collect();
        entries.sort_by_key(|e| e.0);
        entries.serialize(ser)
    }

    pub fn deserialize<'de, K, V, D>(de: D) -> Result<HashMap<K, V>, D::Error>
    where
        K: Deserialize<'de> + Eq + Hash,
        V: Deserialize<'de>,
        D: Deserializer<'de>,
    {
        let entries: Vec<(K, V)> = Vec::deserialize(de)?;
        Ok(entries.into_iter().collect())
    }
}

/// Origin-region × destination-region flow counts (the Sankey data of
/// Figs. 6–7).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RegionMatrix {
    /// Flow counts keyed by (origin, destination).
    #[serde(with = "tuple_map")]
    pub counts: HashMap<(Region, Region), u64>,
    /// Total counted flows.
    pub total: u64,
}

impl RegionMatrix {
    /// Records one flow.
    pub fn add(&mut self, from: Region, to: Region) {
        *self.counts.entry((from, to)).or_insert(0) += 1;
        self.total += 1;
    }

    /// Flows originating in `from`.
    pub fn outgoing(&self, from: Region) -> u64 {
        Region::ALL
            .iter()
            .map(|to| self.counts.get(&(from, *to)).copied().unwrap_or(0))
            .sum()
    }

    /// Flows terminating in `to` (Fig. 6's right-hand column).
    pub fn terminating(&self, to: Region) -> u64 {
        Region::ALL
            .iter()
            .map(|from| self.counts.get(&(*from, to)).copied().unwrap_or(0))
            .sum()
    }

    /// Share of all flows terminating in `to`.
    pub fn termination_share(&self, to: Region) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.terminating(to) as f64 / self.total as f64
        }
    }

    /// Confinement of `region`: share of its outgoing flows that stay.
    pub fn confinement(&self, region: Region) -> f64 {
        let out = self.outgoing(region);
        if out == 0 {
            return 0.0;
        }
        let stayed = self.counts.get(&(region, region)).copied().unwrap_or(0);
        stayed as f64 / out as f64
    }
}

/// Destination-region shares for one origin (Fig. 7's pie-like view).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DestBreakdown {
    /// Flow counts per destination region.
    pub counts: HashMap<Region, u64>,
    /// Total.
    pub total: u64,
}

impl DestBreakdown {
    /// Share of flows terminating in `region`.
    pub fn share(&self, region: Region) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts.get(&region).copied().unwrap_or(0) as f64 / self.total as f64
        }
    }

    /// Share of flows staying on the physical continent of Europe
    /// (EU28 + Rest of Europe) — Table 5's "Cont." column.
    pub fn europe_continent_share(&self) -> f64 {
        self.share(Region::Eu28) + self.share(Region::RestOfEurope)
    }

    /// Absorbs one tracking flow, counting it only when the origin is an
    /// EU28 user country and the destination IP has a regioned estimate —
    /// the exact per-flow filter of [`region_breakdown_eu28`], exposed so
    /// the out-of-core driver can fold flows segment by segment without a
    /// materialized dataset (the fold is commutative: counts and total).
    pub fn absorb_eu28_flow(
        &mut self,
        user_country: CountryCode,
        ip: std::net::IpAddr,
        estimates: &EstimateMap,
    ) {
        let Ok(country) = WORLD.country(user_country) else {
            return;
        };
        if !country.eu28 {
            return;
        }
        let Some(est) = estimates.get(&ip) else {
            return;
        };
        let Some(to) = est.try_region() else {
            return;
        };
        self.total += 1;
        *self.counts.entry(to).or_insert(0) += 1;
    }
}

/// Origin-country × destination-country counts for EU28 users (Fig. 8).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CountryMatrix {
    /// Flow counts keyed by (origin country, destination country).
    #[serde(with = "tuple_map")]
    pub counts: HashMap<(CountryCode, CountryCode), u64>,
    /// Total counted flows.
    pub total: u64,
}

impl CountryMatrix {
    /// Flows originating in `from`.
    pub fn outgoing(&self, from: CountryCode) -> u64 {
        self.counts
            .iter()
            .filter(|((f, _), _)| *f == from)
            .map(|(_, n)| n)
            .sum()
    }

    /// National confinement of `country`.
    pub fn confinement(&self, country: CountryCode) -> f64 {
        let out = self.outgoing(country);
        if out == 0 {
            return 0.0;
        }
        let stayed = self.counts.get(&(country, country)).copied().unwrap_or(0);
        stayed as f64 / out as f64
    }

    /// Share of all flows terminating in each destination country,
    /// descending (Fig. 8's right column).
    pub fn termination_shares(&self) -> Vec<(CountryCode, f64)> {
        let mut per_dest: HashMap<CountryCode, u64> = HashMap::new();
        for ((_, to), n) in &self.counts {
            *per_dest.entry(*to).or_insert(0) += n;
        }
        let mut v: Vec<(CountryCode, f64)> = per_dest
            .into_iter()
            .map(|(c, n)| (c, n as f64 / self.total.max(1) as f64))
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Origin countries present, by outgoing volume descending.
    pub fn origins(&self) -> Vec<(CountryCode, u64)> {
        let mut per_origin: HashMap<CountryCode, u64> = HashMap::new();
        for ((from, _), n) in &self.counts {
            *per_origin.entry(*from).or_insert(0) += n;
        }
        let mut v: Vec<(CountryCode, u64)> = per_origin.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Weighted-average national confinement over all origins — Table 5's
    /// "Default / Country" cell.
    pub fn mean_confinement(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let stayed: u64 = self
            .counts
            .iter()
            .filter(|((f, t), _)| f == t)
            .map(|(_, n)| n)
            .sum();
        stayed as f64 / self.total as f64
    }
}

/// Iterates `(request index, user country)` over all tracking flows.
fn tracking_flows<'a>(
    out: &'a StudyOutputs,
) -> impl Iterator<Item = (usize, &'a xborder_browser::LoggedRequest)> + 'a {
    out.dataset
        .requests
        .iter()
        .enumerate()
        .filter(|(i, _)| out.classification.is_tracking(*i))
}

/// Builds the full origin × destination region matrix over all users
/// (Fig. 6) under the given provider estimates.
pub fn region_matrix(out: &StudyOutputs, estimates: &EstimateMap) -> RegionMatrix {
    let mut m = RegionMatrix::default();
    for (_, r) in tracking_flows(out) {
        let Some(est) = estimates.get(&r.ip) else {
            continue;
        };
        // Records carrying a country missing from the world table are
        // skipped, not fatal — degraded inputs must not panic aggregation.
        let Ok(from) = WORLD.country(out.dataset.user_country(r.user)) else {
            continue;
        };
        let Some(to) = est.try_region() else {
            continue;
        };
        m.add(from.region(), to);
    }
    m
}

/// Destination breakdown of EU28-origin flows (Fig. 7a/7b depending on the
/// provider map passed).
pub fn region_breakdown_eu28(out: &StudyOutputs, estimates: &EstimateMap) -> DestBreakdown {
    let mut b = DestBreakdown::default();
    for (_, r) in tracking_flows(out) {
        b.absorb_eu28_flow(out.dataset.user_country(r.user), r.ip, estimates);
    }
    b
}

/// EU28 confinement per 30-day period of the study window — the temporal
/// view behind the paper's claim of monitoring "continuously for a time
/// period of more than four months capturing any possible temporal
/// variations" (and behind Table 8's across-dates stability). With server
/// churn in the world, this is a non-trivial invariant.
pub fn monthly_series(out: &StudyOutputs, estimates: &EstimateMap) -> Vec<(u32, DestBreakdown)> {
    const SECS_PER_MONTH: u64 = 30 * 86_400;
    let mut months: HashMap<u32, DestBreakdown> = HashMap::new();
    for (_, r) in tracking_flows(out) {
        let Ok(user_country) = WORLD.country(out.dataset.user_country(r.user)) else {
            continue;
        };
        if !user_country.eu28 {
            continue;
        }
        let Some(est) = estimates.get(&r.ip) else {
            continue;
        };
        let Some(to) = est.try_region() else {
            continue;
        };
        let month = (r.time.0 / SECS_PER_MONTH) as u32;
        let b = months.entry(month).or_default();
        b.total += 1;
        *b.counts.entry(to).or_insert(0) += 1;
    }
    let mut v: Vec<(u32, DestBreakdown)> = months.into_iter().collect();
    v.sort_by_key(|(m, _)| *m);
    v
}

/// Country-level matrix for EU28-origin flows (Fig. 8).
pub fn country_matrix_eu28(out: &StudyOutputs, estimates: &EstimateMap) -> CountryMatrix {
    let mut m = CountryMatrix::default();
    for (_, r) in tracking_flows(out) {
        let from = out.dataset.user_country(r.user);
        if !WORLD.country(from).map(|c| c.eu28).unwrap_or(false) {
            continue;
        }
        let Some(est) = estimates.get(&r.ip) else {
            continue;
        };
        *m.counts.entry((from, est.country)).or_insert(0) += 1;
        m.total += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use xborder_geo::cc;

    #[test]
    fn region_matrix_accounting() {
        let mut m = RegionMatrix::default();
        m.add(Region::Eu28, Region::Eu28);
        m.add(Region::Eu28, Region::Eu28);
        m.add(Region::Eu28, Region::NorthAmerica);
        m.add(Region::SouthAmerica, Region::NorthAmerica);
        assert_eq!(m.total, 4);
        assert_eq!(m.outgoing(Region::Eu28), 3);
        assert_eq!(m.terminating(Region::NorthAmerica), 2);
        assert!((m.confinement(Region::Eu28) - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(m.confinement(Region::SouthAmerica), 0.0);
        assert!((m.termination_share(Region::Eu28) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn dest_breakdown_shares() {
        let mut b = DestBreakdown::default();
        b.counts.insert(Region::Eu28, 85);
        b.counts.insert(Region::NorthAmerica, 11);
        b.counts.insert(Region::RestOfEurope, 4);
        b.total = 100;
        assert!((b.share(Region::Eu28) - 0.85).abs() < 1e-9);
        assert!((b.europe_continent_share() - 0.89).abs() < 1e-9);
    }

    #[test]
    fn country_matrix_confinement() {
        let mut m = CountryMatrix::default();
        m.counts.insert((cc!("GB"), cc!("GB")), 58);
        m.counts.insert((cc!("GB"), cc!("US")), 42);
        m.counts.insert((cc!("GR"), cc!("DE")), 93);
        m.counts.insert((cc!("GR"), cc!("GR")), 7);
        m.total = 200;
        assert!((m.confinement(cc!("GB")) - 0.58).abs() < 1e-9);
        assert!((m.confinement(cc!("GR")) - 0.07).abs() < 1e-9);
        assert!((m.mean_confinement() - 65.0 / 200.0).abs() < 1e-9);
        let origins = m.origins();
        assert_eq!(origins[0].0, cc!("GB"));
        let dests = m.termination_shares();
        assert_eq!(dests[0].0, cc!("DE"));
    }

    #[test]
    fn monthly_series_is_stable_over_the_study() {
        let mut world = crate::worldgen::World::build(crate::worldgen::WorldConfig::small(19));
        let out = crate::pipeline::run_extension_pipeline(&mut world);
        let series = monthly_series(&out, &out.ipmap_estimates);
        // The 4.5-month window spans months 0..=4.
        assert!(series.len() >= 4, "{} months", series.len());
        let shares: Vec<f64> = series.iter().map(|(_, b)| b.share(Region::Eu28)).collect();
        let min = shares.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = shares.iter().cloned().fold(0.0, f64::max);
        // Confinement holds steady month over month despite server churn.
        assert!(max - min < 0.12, "monthly swing {min}..{max}");
    }

    #[test]
    fn empty_matrices_are_safe() {
        let m = RegionMatrix::default();
        assert_eq!(m.confinement(Region::Eu28), 0.0);
        assert_eq!(m.termination_share(Region::Asia), 0.0);
        let c = CountryMatrix::default();
        assert_eq!(c.mean_confinement(), 0.0);
        assert!(c.termination_shares().is_empty());
    }
}
