//! The ISP NetFlow scale-up study (Sect. 7, Tables 7–8, Fig. 12).
//!
//! The tracker-IP list built from a few hundred extension users is joined
//! against sampled NetFlow from four ISPs with 60M+ subscribers. The join
//! happens per IP (hash matching, subscriber side anonymized to a country
//! code); geolocation of the matched tracker IPs then gives the
//! destination mix per ISP and per snapshot day.

use crate::ips::TrackerIpSet;
use crate::pipeline::EstimateMap;
use crate::worldgen::World;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use xborder_geo::{CountryCode, Region};
use xborder_netflow::{generate_snapshot, FlowCollector, IspProfile, SnapshotConfig};
use xborder_netsim::time::{anchors, SimTime};

/// The four snapshot days of Table 8.
pub fn snapshot_days() -> Vec<(&'static str, SimTime)> {
    vec![
        ("Nov 8", anchors::ISP_SNAPSHOT_NOV8),
        ("April 4", anchors::ISP_SNAPSHOT_APR4),
        ("May 16", anchors::ISP_SNAPSHOT_MAY16),
        ("June 20", anchors::ISP_SNAPSHOT_JUN20),
    ]
}

/// Study configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct IspStudyConfig {
    /// Sampled page views generated for one "unit" of ISP size; each ISP
    /// gets `base_page_views × subscribers_m × web_activity`. The paper's
    /// absolute sampled-flow counts (Table 8, billions) scale linearly
    /// with this knob.
    pub base_page_views: f64,
    /// Seed for the traffic generation streams.
    pub seed: u64,
    /// Whether to scope matching with pDNS validity windows.
    pub use_validity_windows: bool,
}

impl Default for IspStudyConfig {
    fn default() -> Self {
        IspStudyConfig {
            base_page_views: 400.0,
            seed: 0xC0FFEE,
            use_validity_windows: true,
        }
    }
}

impl IspStudyConfig {
    /// Small configuration for tests.
    pub fn small() -> Self {
        IspStudyConfig {
            base_page_views: 40.0,
            ..Default::default()
        }
    }
}

/// One ISP × day cell of Table 8.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SnapshotStats {
    /// Sampled tracking flows matched.
    pub tracking_flows: u64,
    /// All sampled flows ingested.
    pub total_flows: u64,
    /// Tracking flows on web ports.
    pub web_flows: u64,
    /// Tracking flows on port 443.
    pub encrypted_flows: u64,
    /// Destination-region mix of the tracking flows.
    pub region_counts: HashMap<Region, u64>,
    /// Destination-country mix of the tracking flows.
    pub country_counts: HashMap<CountryCode, u64>,
}

impl SnapshotStats {
    /// Share of tracking flows terminating in `region`.
    pub fn region_share(&self, region: Region) -> f64 {
        let total: u64 = self.region_counts.values().sum();
        if total == 0 {
            0.0
        } else {
            self.region_counts.get(&region).copied().unwrap_or(0) as f64 / total as f64
        }
    }

    /// Top-`n` destination countries by share (Fig. 12).
    pub fn top_countries(&self, n: usize) -> Vec<(CountryCode, f64)> {
        let total: u64 = self.country_counts.values().sum();
        let mut v: Vec<(CountryCode, f64)> = self
            .country_counts
            .iter()
            .map(|(c, k)| (*c, *k as f64 / total.max(1) as f64))
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }

    /// National confinement: share terminating in `home`.
    pub fn national_share(&self, home: CountryCode) -> f64 {
        let total: u64 = self.country_counts.values().sum();
        if total == 0 {
            0.0
        } else {
            self.country_counts.get(&home).copied().unwrap_or(0) as f64 / total as f64
        }
    }
}

/// Full study results: `results[isp_name][day_name]`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct IspStudyResults {
    /// Per-ISP, per-day statistics.
    pub cells: HashMap<String, HashMap<String, SnapshotStats>>,
}

impl IspStudyResults {
    /// The stats cell for an ISP/day pair.
    pub fn cell(&self, isp: &str, day: &str) -> Option<&SnapshotStats> {
        self.cells.get(isp)?.get(day)
    }
}

/// Runs the four-ISP, four-day study.
pub fn run_isp_study(
    world: &mut World,
    tracker_ips: &TrackerIpSet,
    estimates: &EstimateMap,
    cfg: &IspStudyConfig,
) -> IspStudyResults {
    let mut results = IspStudyResults::default();
    let days = snapshot_days();

    for profile in IspProfile::all() {
        let n_views =
            (cfg.base_page_views * profile.subscribers_m * profile.web_activity).round() as usize;
        let mut per_day = HashMap::new();
        for (day_idx, (day_name, day_start)) in days.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(
                cfg.seed ^ (profile.name.len() as u64) << 32
                    ^ (profile.subscribers_m as u64) << 16
                    ^ day_idx as u64,
            );
            let snap_cfg = SnapshotConfig {
                day_start: *day_start,
                n_page_views: n_views.max(1),
                ..Default::default()
            };
            let snapshot =
                generate_snapshot(&profile, &snap_cfg, &world.graph, &mut world.dns, &mut rng);

            // Collection + matching (hash set, anonymized subscribers).
            let mut collector = FlowCollector::new(tracker_ips.ips.keys().copied());
            if cfg.use_validity_windows {
                for (ip, info) in &tracker_ips.ips {
                    // The ISP snapshots run months past the extension study;
                    // windows scope *start*, matching stays open-ended
                    // (paper kept collecting through July 2018).
                    let mut w = info.window;
                    w.extend_to(SimTime(day_start.0 + 2 * 86_400));
                    collector.set_validity(*ip, w);
                }
            }
            for flow in &snapshot.flows {
                collector.ingest(flow, profile.country);
            }
            let match_stats = collector.into_stats();

            // Join matched IP counters with geolocation.
            let mut cell = SnapshotStats {
                tracking_flows: match_stats.tracking_flows,
                total_flows: match_stats.total_flows,
                web_flows: match_stats.tracking_web_flows,
                encrypted_flows: match_stats.tracking_encrypted_flows,
                ..Default::default()
            };
            for (ip, n) in &match_stats.per_ip {
                if let Some(est) = estimates.get(ip) {
                    *cell.region_counts.entry(est.region()).or_insert(0) += n;
                    *cell.country_counts.entry(est.country).or_insert(0) += n;
                }
            }
            per_day.insert((*day_name).to_owned(), cell);
        }
        results.cells.insert(profile.name.to_owned(), per_day);
    }
    results
}

/// The paper's "rest of world" share: everything outside EU28, North
/// America, Rest-of-Europe and Asia.
pub fn rest_world_share(stats: &SnapshotStats) -> f64 {
    let known = stats.region_share(Region::Eu28)
        + stats.region_share(Region::NorthAmerica)
        + stats.region_share(Region::RestOfEurope)
        + stats.region_share(Region::Asia);
    (1.0 - known).max(0.0)
}

/// Scales a sampled flow count to the estimated total, given the ISP's
/// packet-sampling interval (the paper quotes >1 trillion daily flows for
/// DE-Broadband from ~1 billion sampled).
pub fn estimated_total_flows(sampled: u64, sampling_interval: u16) -> u64 {
    sampled.saturating_mul(sampling_interval as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::run_extension_pipeline;
    use crate::worldgen::WorldConfig;
    use xborder_geo::cc;

    fn study() -> (IspStudyResults, CountryCode) {
        let mut world = World::build(WorldConfig::small(17));
        let out = run_extension_pipeline(&mut world);
        let results = run_isp_study(
            &mut world,
            &out.tracker_ips,
            &out.ipmap_estimates,
            &IspStudyConfig::small(),
        );
        (results, cc!("DE"))
    }

    #[test]
    fn all_cells_populated() {
        let (r, _) = study();
        for isp in ["DE-Broadband", "DE-Mobile", "PL", "HU"] {
            for (day, _) in snapshot_days() {
                let cell = r.cell(isp, day).unwrap_or_else(|| panic!("{isp}/{day} missing"));
                assert!(cell.total_flows > 0, "{isp}/{day} empty");
            }
        }
    }

    #[test]
    fn tracking_flows_are_matched_and_mostly_web() {
        let (r, _) = study();
        let cell = r.cell("DE-Broadband", "April 4").unwrap();
        assert!(cell.tracking_flows > 50, "only {} tracking flows", cell.tracking_flows);
        // >99.5 % of tracking flows are web in the paper; ours are 100 %
        // by construction of the generator, background never matches.
        assert!(cell.web_flows as f64 / cell.tracking_flows as f64 > 0.99);
        // Encrypted share ~83 %.
        let enc = cell.encrypted_flows as f64 / cell.tracking_flows as f64;
        assert!((0.6..0.95).contains(&enc), "encrypted share {enc}");
    }

    #[test]
    fn de_broadband_has_most_flows() {
        let (r, _) = study();
        let de_b = r.cell("DE-Broadband", "Nov 8").unwrap().tracking_flows;
        let de_m = r.cell("DE-Mobile", "Nov 8").unwrap().tracking_flows;
        let pl = r.cell("PL", "Nov 8").unwrap().tracking_flows;
        assert!(de_b > de_m, "DE-B {de_b} <= DE-M {de_m}");
        assert!(de_b > pl, "DE-B {de_b} <= PL {pl}");
    }

    #[test]
    fn eu28_dominates_destinations() {
        let (r, _) = study();
        for isp in ["DE-Broadband", "DE-Mobile", "HU"] {
            let cell = r.cell(isp, "April 4").unwrap();
            let eu = cell.region_share(Region::Eu28);
            assert!(eu > 0.5, "{isp} EU28 share {eu}");
        }
    }

    #[test]
    fn top_countries_are_sorted_and_bounded() {
        let (r, _) = study();
        let cell = r.cell("DE-Broadband", "April 4").unwrap();
        let top = cell.top_countries(5);
        assert!(top.len() <= 5);
        for w in top.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        let sum: f64 = top.iter().map(|(_, s)| s).sum();
        assert!(sum <= 1.0 + 1e-9);
    }

    #[test]
    fn estimated_totals_scale_by_sampling() {
        assert_eq!(estimated_total_flows(1_000, 1000), 1_000_000);
        assert_eq!(estimated_total_flows(u64::MAX, 2), u64::MAX);
    }

    #[test]
    fn rest_world_is_residual() {
        let (r, _) = study();
        let cell = r.cell("PL", "May 16").unwrap();
        let rest = rest_world_share(cell);
        assert!((0.0..=1.0).contains(&rest));
    }
}
