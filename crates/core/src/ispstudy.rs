//! The ISP NetFlow scale-up study (Sect. 7, Tables 7–8, Fig. 12).
//!
//! The tracker-IP list built from a few hundred extension users is joined
//! against sampled NetFlow from four ISPs with 60M+ subscribers. The join
//! happens per IP (subscriber side anonymized to a country code);
//! geolocation of the matched tracker IPs then gives the destination mix
//! per ISP and per snapshot day.
//!
//! Since the scale-up refactor (DESIGN.md §5i) the study runs as a
//! sharded columnar workload: the tracker list is compiled once per
//! snapshot day into a [`TrackerIntervalSet`], each of the 16 (ISP, day)
//! cells generates its flows as [`FlowBlock`](xborder_netflow::FlowBlock)s
//! from its own hash-derived RNG stream against a read-only DNS view, and
//! cells are partitioned across the world's [`Parallelism`] budget under
//! `std::thread::scope`. Per-cell results — statistics *and* the pDNS
//! observations the per-view stub caches buffered — merge in canonical
//! cell order, so every thread budget and every block size produces
//! bit-identical results.
//!
//! [`Parallelism`]: crate::par::Parallelism

use crate::ips::TrackerIpSet;
use crate::pipeline::EstimateMap;
use crate::worldgen::World;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::net::IpAddr;
use std::time::Instant;
use xborder_dns::PdnsIdObservation;
use xborder_faults::derive_stream_seed;
use xborder_geo::{CountryCode, Region};
use xborder_netflow::{
    generate_snapshot_blocks, IspProfile, SnapshotConfig, TrackerIntervalSet, DEFAULT_BLOCK_LEN,
};
use xborder_netsim::time::{anchors, SimTime};

/// The four snapshot days of Table 8.
pub fn snapshot_days() -> Vec<(&'static str, SimTime)> {
    vec![
        ("Nov 8", anchors::ISP_SNAPSHOT_NOV8),
        ("April 4", anchors::ISP_SNAPSHOT_APR4),
        ("May 16", anchors::ISP_SNAPSHOT_MAY16),
        ("June 20", anchors::ISP_SNAPSHOT_JUN20),
    ]
}

/// Study configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct IspStudyConfig {
    /// Sampled page views generated for one "unit" of ISP size; each ISP
    /// gets `base_page_views × subscribers_m × web_activity`. The paper's
    /// absolute sampled-flow counts (Table 8, billions) scale linearly
    /// with this knob.
    pub base_page_views: f64,
    /// Seed for the traffic generation streams.
    pub seed: u64,
    /// Whether to scope matching with pDNS validity windows.
    pub use_validity_windows: bool,
    /// Records per columnar flow block. A pure performance knob: results
    /// are bit-identical for every value (pinned in tests).
    pub block_len: usize,
}

impl Default for IspStudyConfig {
    fn default() -> Self {
        IspStudyConfig {
            base_page_views: 400.0,
            seed: 0xC0FFEE,
            use_validity_windows: true,
            block_len: DEFAULT_BLOCK_LEN,
        }
    }
}

impl IspStudyConfig {
    /// Small configuration for tests.
    pub fn small() -> Self {
        IspStudyConfig {
            base_page_views: 40.0,
            ..Default::default()
        }
    }
}

/// One ISP × day cell of Table 8.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SnapshotStats {
    /// Sampled tracking flows matched.
    pub tracking_flows: u64,
    /// All sampled flows ingested.
    pub total_flows: u64,
    /// Tracking flows on web ports.
    pub web_flows: u64,
    /// Tracking flows on port 443.
    pub encrypted_flows: u64,
    /// Destination-region mix of the tracking flows (canonical order, so
    /// serialized reports are byte-stable).
    pub region_counts: BTreeMap<Region, u64>,
    /// Destination-country mix of the tracking flows (canonical order).
    pub country_counts: BTreeMap<CountryCode, u64>,
}

impl SnapshotStats {
    /// Share of tracking flows terminating in `region`.
    pub fn region_share(&self, region: Region) -> f64 {
        let total: u64 = self.region_counts.values().sum();
        if total == 0 {
            0.0
        } else {
            self.region_counts.get(&region).copied().unwrap_or(0) as f64 / total as f64
        }
    }

    /// Top-`n` destination countries by share (Fig. 12).
    pub fn top_countries(&self, n: usize) -> Vec<(CountryCode, f64)> {
        let total: u64 = self.country_counts.values().sum();
        let mut v: Vec<(CountryCode, f64)> = self
            .country_counts
            .iter()
            .map(|(c, k)| (*c, *k as f64 / total.max(1) as f64))
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }

    /// National confinement: share terminating in `home`.
    pub fn national_share(&self, home: CountryCode) -> f64 {
        let total: u64 = self.country_counts.values().sum();
        if total == 0 {
            0.0
        } else {
            self.country_counts.get(&home).copied().unwrap_or(0) as f64 / total as f64
        }
    }
}

/// Wall-clock attribution of one study run. Observational only, never
/// part of the determinism contract: zero it
/// (`results.timings = IspStudyTimings::default()`) before comparing
/// serialized results.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct IspStudyTimings {
    /// Summed per-cell flow-generation time.
    pub generate_ms: f64,
    /// Summed per-cell interval-set matching time.
    pub match_ms: f64,
}

/// Full study results: `results[isp_name][day_name]`, in canonical
/// (lexicographic) order so serialization is byte-stable.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct IspStudyResults {
    /// Per-ISP, per-day statistics.
    pub cells: BTreeMap<String, BTreeMap<String, SnapshotStats>>,
    /// Per-stage timing attribution. Machine-dependent: zero before
    /// comparing serialized results (the stats cells are deterministic,
    /// the timings are not).
    pub timings: IspStudyTimings,
}

impl IspStudyResults {
    /// The stats cell for an ISP/day pair.
    pub fn cell(&self, isp: &str, day: &str) -> Option<&SnapshotStats> {
        self.cells.get(isp)?.get(day)
    }
}

/// What one (ISP, day) cell's worker hands back to the merge step.
struct CellOutput {
    stats: SnapshotStats,
    observations: Vec<PdnsIdObservation>,
    generate_ms: f64,
    match_ms: f64,
}

/// Runs the four-ISP, four-day study, sharding the 16 cells across the
/// world's `Parallelism` budget. The budget is a pure performance knob:
/// each cell is generated from its own hash-derived seed against
/// read-only shared state, and cell outputs (statistics and buffered pDNS
/// observations alike) merge in canonical cell order — bit-identical
/// results at every thread count and block size.
pub fn run_isp_study(
    world: &mut World,
    tracker_ips: &TrackerIpSet,
    estimates: &EstimateMap,
    cfg: &IspStudyConfig,
) -> IspStudyResults {
    let days = snapshot_days();
    let profiles = IspProfile::all();

    // Compile the tracker list once per snapshot day: same interval set
    // for every ISP of that day, replacing a per-cell HashSet + two
    // HashMaps. Windows scope *start*, matching stays open-ended past the
    // snapshot (the paper kept collecting through July 2018).
    let day_sets: Vec<TrackerIntervalSet> = days
        .iter()
        .map(|(_, day_start)| {
            TrackerIntervalSet::build(tracker_ips.ips.iter().filter_map(|(ip, info)| {
                let IpAddr::V4(v) = ip else { return None };
                let w = cfg.use_validity_windows.then(|| {
                    let mut w = info.window;
                    w.extend_to(SimTime(day_start.0 + 2 * 86_400));
                    w
                });
                Some((*v, w))
            }))
        })
        .collect();

    // Canonical cell order: ISP-major, day-minor — the merge order, and
    // the order the sequential path runs in.
    let cells: Vec<(usize, usize)> = (0..profiles.len())
        .flat_map(|p| (0..days.len()).map(move |d| (p, d)))
        .collect();
    let threads = world.config.parallelism.threads.clamp(1, cells.len());

    let outputs: Vec<CellOutput> = {
        let graph = &world.graph;
        let view = world.dns.indexed_view(graph.domains());
        let run_cell = |&(p_idx, d_idx): &(usize, usize)| -> CellOutput {
            let profile = &profiles[p_idx];
            let (_, day_start) = days[d_idx];
            let n_views = (cfg.base_page_views * profile.subscribers_m * profile.web_activity)
                .round() as usize;
            let snap_cfg = SnapshotConfig {
                day_start,
                n_page_views: n_views.max(1),
                ..Default::default()
            };
            // Per-cell stream (PR 3 pattern): any shard owning this cell
            // generates the same flows.
            let cell_seed =
                derive_stream_seed(cfg.seed, ((p_idx as u64) << 32) | d_idx as u64);
            let set = &day_sets[d_idx];
            let mut bstats = set.new_stats();
            let t_cell = Instant::now();
            let mut match_secs = 0.0f64;
            let gen = generate_snapshot_blocks(
                profile,
                &snap_cfg,
                graph,
                &view,
                cell_seed,
                cfg.block_len.max(1),
                |block| {
                    let t_match = Instant::now();
                    set.match_block(block, &mut bstats);
                    match_secs += t_match.elapsed().as_secs_f64();
                },
            );
            let total_secs = t_cell.elapsed().as_secs_f64();
            let matched = bstats.to_match_stats(set);

            // Join matched IP counters with geolocation.
            let mut stats = SnapshotStats {
                tracking_flows: matched.tracking_flows,
                total_flows: matched.total_flows,
                web_flows: matched.tracking_web_flows,
                encrypted_flows: matched.tracking_encrypted_flows,
                ..Default::default()
            };
            for (ip, n) in &matched.per_ip {
                if let Some(est) = estimates.get(ip) {
                    *stats.region_counts.entry(est.region()).or_insert(0) += n;
                    *stats.country_counts.entry(est.country).or_insert(0) += n;
                }
            }
            CellOutput {
                stats,
                observations: gen.id_observations,
                generate_ms: (total_secs - match_secs) * 1000.0,
                match_ms: match_secs * 1000.0,
            }
        };

        if threads == 1 {
            cells.iter().map(run_cell).collect()
        } else {
            // Contiguous cell runs per worker; outputs keep cell order.
            let per = cells.len().div_ceil(threads);
            let run_cell = &run_cell;
            std::thread::scope(|s| {
                let handles: Vec<_> = cells
                    .chunks(per)
                    .map(|chunk| s.spawn(move || chunk.iter().map(run_cell).collect::<Vec<_>>()))
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("ISP study worker panicked"))
                    .collect()
            })
        }
    };

    // Merge in canonical cell order: results into the table, buffered
    // pDNS observations into the central database (the replay the
    // read-only view deferred).
    let mut results = IspStudyResults::default();
    for (&(p_idx, d_idx), out) in cells.iter().zip(outputs) {
        world
            .dns
            .absorb_id_observations(&out.observations, world.graph.domains());
        results.timings.generate_ms += out.generate_ms;
        results.timings.match_ms += out.match_ms;
        results
            .cells
            .entry(profiles[p_idx].name.to_owned())
            .or_default()
            .insert(days[d_idx].0.to_owned(), out.stats);
    }
    results
}

/// The paper's "rest of world" share: everything outside EU28, North
/// America, Rest-of-Europe and Asia.
pub fn rest_world_share(stats: &SnapshotStats) -> f64 {
    let known = stats.region_share(Region::Eu28)
        + stats.region_share(Region::NorthAmerica)
        + stats.region_share(Region::RestOfEurope)
        + stats.region_share(Region::Asia);
    (1.0 - known).max(0.0)
}

/// Scales a sampled flow count to the estimated total, given the ISP's
/// packet-sampling interval (the paper quotes >1 trillion daily flows for
/// DE-Broadband from ~1 billion sampled).
pub fn estimated_total_flows(sampled: u64, sampling_interval: u16) -> u64 {
    sampled.saturating_mul(sampling_interval as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::run_extension_pipeline;
    use crate::worldgen::WorldConfig;
    use xborder_geo::cc;

    fn study() -> (IspStudyResults, CountryCode) {
        let mut world = World::build(WorldConfig::small(17));
        let out = run_extension_pipeline(&mut world);
        let results = run_isp_study(
            &mut world,
            &out.tracker_ips,
            &out.ipmap_estimates,
            &IspStudyConfig::small(),
        );
        (results, cc!("DE"))
    }

    #[test]
    fn all_cells_populated() {
        let (r, _) = study();
        for isp in ["DE-Broadband", "DE-Mobile", "PL", "HU"] {
            for (day, _) in snapshot_days() {
                let cell = r.cell(isp, day).unwrap_or_else(|| panic!("{isp}/{day} missing"));
                assert!(cell.total_flows > 0, "{isp}/{day} empty");
            }
        }
    }

    #[test]
    fn tracking_flows_are_matched_and_mostly_web() {
        let (r, _) = study();
        let cell = r.cell("DE-Broadband", "April 4").unwrap();
        assert!(cell.tracking_flows > 50, "only {} tracking flows", cell.tracking_flows);
        // >99.5 % of tracking flows are web in the paper; ours are 100 %
        // by construction of the generator, background never matches.
        assert!(cell.web_flows as f64 / cell.tracking_flows as f64 > 0.99);
        // Encrypted share ~83 %.
        let enc = cell.encrypted_flows as f64 / cell.tracking_flows as f64;
        assert!((0.6..0.95).contains(&enc), "encrypted share {enc}");
    }

    #[test]
    fn de_broadband_has_most_flows() {
        let (r, _) = study();
        let de_b = r.cell("DE-Broadband", "Nov 8").unwrap().tracking_flows;
        let de_m = r.cell("DE-Mobile", "Nov 8").unwrap().tracking_flows;
        let pl = r.cell("PL", "Nov 8").unwrap().tracking_flows;
        assert!(de_b > de_m, "DE-B {de_b} <= DE-M {de_m}");
        assert!(de_b > pl, "DE-B {de_b} <= PL {pl}");
    }

    #[test]
    fn eu28_dominates_destinations() {
        let (r, _) = study();
        for isp in ["DE-Broadband", "DE-Mobile", "HU"] {
            let cell = r.cell(isp, "April 4").unwrap();
            let eu = cell.region_share(Region::Eu28);
            assert!(eu > 0.5, "{isp} EU28 share {eu}");
        }
    }

    #[test]
    fn top_countries_are_sorted_and_bounded() {
        let (r, _) = study();
        let cell = r.cell("DE-Broadband", "April 4").unwrap();
        let top = cell.top_countries(5);
        assert!(top.len() <= 5);
        for w in top.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        let sum: f64 = top.iter().map(|(_, s)| s).sum();
        assert!(sum <= 1.0 + 1e-9);
    }

    #[test]
    fn estimated_totals_scale_by_sampling() {
        assert_eq!(estimated_total_flows(1_000, 1000), 1_000_000);
        assert_eq!(estimated_total_flows(u64::MAX, 2), u64::MAX);
    }

    #[test]
    fn rest_world_is_residual() {
        let (r, _) = study();
        let cell = r.cell("PL", "May 16").unwrap();
        let rest = rest_world_share(cell);
        assert!((0.0..=1.0).contains(&rest));
    }
}
