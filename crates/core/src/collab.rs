//! Inter-tracker collaboration analysis.
//!
//! The paper's stated future work: *"extend our methodology to go beyond
//! the terminating end-point of tracking to capture inter-tracker
//! collaboration and data exchange."* The extension dataset already holds
//! the evidence — RTB cascades leave referrer chains, and a request to
//! tracker B whose referrer is a URL of tracker A is a data handoff
//! (bid solicitation, cookie sync, ID match) from A to B.
//!
//! This module builds the directed collaboration graph over *organizations*
//! and asks the cross-border question one level deeper than the paper did:
//! not just "where does my data terminate?" but "when trackers exchange my
//! data among themselves, does the handoff cross a jurisdiction border?"

use crate::pipeline::{EstimateMap, StudyOutputs};
use crate::worldgen::World;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use xborder_browser::Referrer;
use xborder_geo::WORLD;

/// One directed collaboration edge between two organizations.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CollabEdge {
    /// Observed handoffs (child requests whose referrer belongs to the
    /// other org).
    pub handoffs: u64,
    /// Handoffs where the two serving endpoints sat in different countries.
    pub cross_country: u64,
    /// Handoffs where one endpoint was inside EU28 and the other outside —
    /// the user's data left GDPR jurisdiction *between trackers*.
    pub leaves_eu28: u64,
    /// Distinct users whose data flowed over this edge.
    pub users: u64,
}

/// The assembled collaboration graph.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CollabGraph {
    /// Directed edges keyed by (upstream org name, downstream org name).
    pub edges: HashMap<(String, String), CollabEdge>,
    /// Total handoffs observed.
    pub total_handoffs: u64,
}

impl CollabGraph {
    /// Builds the graph from classified study data.
    ///
    /// Only tracking→tracking handoffs across *different* organizations
    /// count: in-org chains (a tracker talking to its own sync endpoint)
    /// are internal plumbing, not collaboration.
    pub fn build(world: &World, out: &StudyOutputs, estimates: &EstimateMap) -> CollabGraph {
        let mut graph = CollabGraph::default();
        // (edge) -> set of users, folded into counts at the end.
        let mut edge_users: HashMap<(String, String), HashSet<u32>> = HashMap::new();

        for (i, r) in out.dataset.requests.iter().enumerate() {
            if !out.classification.is_tracking(i) {
                continue;
            }
            let Referrer::Request(parent_id) = r.referrer else {
                continue;
            };
            let parent = &out.dataset.requests[parent_id.0 as usize];
            if !out.classification.is_tracking(parent_id.0 as usize) {
                continue;
            }
            let (Some(child_svc), Some(parent_svc)) = (
                world.graph.service_by_host_id(r.host),
                world.graph.service_by_host_id(parent.host),
            ) else {
                continue;
            };
            let upstream = world.graph.org_of(parent_svc);
            let downstream = world.graph.org_of(child_svc);
            if upstream.id == downstream.id {
                continue;
            }

            let key = (upstream.name.clone(), downstream.name.clone());
            let edge = graph.edges.entry(key.clone()).or_default();
            edge.handoffs += 1;
            graph.total_handoffs += 1;
            edge_users.entry(key).or_default().insert(r.user.0);

            if let (Some(up_est), Some(down_est)) =
                (estimates.get(&parent.ip), estimates.get(&r.ip))
            {
                if up_est.country != down_est.country {
                    let edge = graph
                        .edges
                        .get_mut(&(upstream.name.clone(), downstream.name.clone()))
                        .expect("edge just inserted");
                    edge.cross_country += 1;
                    let up_eu = WORLD.country_or_panic(up_est.country).eu28;
                    let down_eu = WORLD.country_or_panic(down_est.country).eu28;
                    if up_eu != down_eu {
                        edge.leaves_eu28 += 1;
                    }
                }
            }
        }
        for (key, users) in edge_users {
            graph.edges.get_mut(&key).expect("edge exists").users = users.len() as u64;
        }
        graph
    }

    /// Number of distinct organizations appearing in the graph.
    pub fn n_orgs(&self) -> usize {
        let mut names: HashSet<&str> = HashSet::new();
        for (a, b) in self.edges.keys() {
            names.insert(a);
            names.insert(b);
        }
        names.len()
    }

    /// Edges ranked by handoff volume, descending.
    pub fn top_edges(&self, n: usize) -> Vec<(&(String, String), &CollabEdge)> {
        let mut v: Vec<_> = self.edges.iter().collect();
        v.sort_by(|a, b| b.1.handoffs.cmp(&a.1.handoffs).then(a.0.cmp(b.0)));
        v.truncate(n);
        v
    }

    /// Share of handoffs whose endpoints sit in different countries.
    pub fn cross_country_share(&self) -> f64 {
        if self.total_handoffs == 0 {
            return 0.0;
        }
        let cross: u64 = self.edges.values().map(|e| e.cross_country).sum();
        cross as f64 / self.total_handoffs as f64
    }

    /// Share of handoffs where data crossed the EU28 boundary *between
    /// trackers* — invisible to an endpoint-only analysis like the paper's.
    pub fn eu28_boundary_share(&self) -> f64 {
        if self.total_handoffs == 0 {
            return 0.0;
        }
        let out: u64 = self.edges.values().map(|e| e.leaves_eu28).sum();
        out as f64 / self.total_handoffs as f64
    }

    /// Out-degree (distinct downstream partners) per organization,
    /// descending — "who spreads data widest".
    pub fn out_degrees(&self) -> Vec<(String, usize)> {
        let mut deg: HashMap<&str, HashSet<&str>> = HashMap::new();
        for (a, b) in self.edges.keys() {
            deg.entry(a).or_default().insert(b);
        }
        let mut v: Vec<(String, usize)> = deg
            .into_iter()
            .map(|(k, s)| (k.to_owned(), s.len()))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Weakly connected components over the org set (union-find).
    pub fn n_components(&self) -> usize {
        let mut names: Vec<&str> = Vec::new();
        let mut index: HashMap<&str, usize> = HashMap::new();
        for (a, b) in self.edges.keys() {
            for n in [a.as_str(), b.as_str()] {
                if !index.contains_key(n) {
                    index.insert(n, names.len());
                    names.push(n);
                }
            }
        }
        let mut parent: Vec<usize> = (0..names.len()).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for (a, b) in self.edges.keys() {
            let (ia, ib) = (index[a.as_str()], index[b.as_str()]);
            let (ra, rb) = (find(&mut parent, ia), find(&mut parent, ib));
            if ra != rb {
                parent[ra] = rb;
            }
        }
        let mut roots = HashSet::new();
        for i in 0..names.len() {
            let r = find(&mut parent, i);
            roots.insert(r);
        }
        roots.len()
    }
}

/// Renders the collaboration summary (the "beyond the endpoint" report).
pub fn fmt_collab(graph: &CollabGraph) -> String {
    use std::fmt::Write as _;
    let mut t = format!(
        "Inter-tracker collaboration (paper future work)\n\
         organizations: {}, edges: {}, handoffs: {}\n\
         handoffs crossing a country border: {:.1}%\n\
         handoffs crossing the EU28 boundary: {:.1}%\n\
         components: {}\n\
         top data-exchange edges:\n",
        graph.n_orgs(),
        graph.edges.len(),
        graph.total_handoffs,
        graph.cross_country_share() * 100.0,
        graph.eu28_boundary_share() * 100.0,
        graph.n_components(),
    );
    for ((a, b), e) in graph.top_edges(12) {
        let _ = writeln!(
            t,
            "  {a:<14} -> {b:<14} {:>8} handoffs, {:>5.1}% cross-border, {} users",
            e.handoffs,
            e.cross_country as f64 / e.handoffs.max(1) as f64 * 100.0,
            e.users
        );
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::run_extension_pipeline;
    use crate::worldgen::WorldConfig;

    fn graph() -> CollabGraph {
        let mut world = World::build(WorldConfig::small(61));
        let out = run_extension_pipeline(&mut world);
        CollabGraph::build(&world, &out, &out.ipmap_estimates)
    }

    #[test]
    fn cascades_produce_collaboration_edges() {
        let g = graph();
        assert!(g.total_handoffs > 100, "handoffs {}", g.total_handoffs);
        assert!(g.n_orgs() > 5);
        assert!(!g.edges.is_empty());
    }

    #[test]
    fn ad_networks_are_upstream_hubs() {
        // Ad networks solicit bids: the Google-like network must appear as
        // an upstream node with high out-degree.
        let g = graph();
        let degrees = g.out_degrees();
        assert!(degrees.iter().any(|(name, d)| name == "gtrack" && *d >= 2),
            "gtrack missing from upstream hubs: {degrees:?}");
    }

    #[test]
    fn no_self_edges() {
        let g = graph();
        for (a, b) in g.edges.keys() {
            assert_ne!(a, b, "self-edge {a}");
        }
    }

    #[test]
    fn shares_are_probabilities_and_ordered() {
        let g = graph();
        let cross = g.cross_country_share();
        let eu = g.eu28_boundary_share();
        assert!((0.0..=1.0).contains(&cross));
        assert!((0.0..=1.0).contains(&eu));
        // Leaving EU28 implies changing country.
        assert!(eu <= cross + 1e-9);
    }

    #[test]
    fn edge_invariants() {
        let g = graph();
        let sum: u64 = g.edges.values().map(|e| e.handoffs).sum();
        assert_eq!(sum, g.total_handoffs);
        for e in g.edges.values() {
            assert!(e.cross_country <= e.handoffs);
            assert!(e.leaves_eu28 <= e.cross_country);
            assert!(e.users >= 1);
            assert!(e.users <= e.handoffs);
        }
    }

    #[test]
    fn components_connect_through_shared_exchanges() {
        // The RTB core (shared exchanges, big DSPs) should pull most
        // collaborating orgs into one giant component.
        let g = graph();
        assert!(g.n_components() * 4 <= g.n_orgs(), "{} components over {} orgs", g.n_components(), g.n_orgs());
    }

    #[test]
    fn report_renders() {
        let g = graph();
        let text = fmt_collab(&g);
        assert!(text.contains("handoffs"));
        assert!(text.contains("->"));
    }
}
