//! Crash-safe streaming ingestion: the checkpointed incremental twin of
//! [`crate::pipeline::run_extension_pipeline_degraded`] (DESIGN.md §5g).
//!
//! The paper's study ran for 4.5 months; operated as a standing service
//! (the WhoTracks.Me model), ingestion must survive kills, torn writes and
//! restarts. This module cuts the extension study into append-only chunks
//! of users, classifies each chunk as it lands, and — when a checkpoint
//! directory is configured — makes every chunk durable through
//! `xborder-checkpoint` before moving on. A killed run re-opened on the
//! same directory replays the durable chunks from disk and continues from
//! the first missing one.
//!
//! ## The determinism contract, extended
//!
//! Chunk size, kill schedule and thread budget are all pure
//! performance/availability knobs: any chunking × any crash schedule ×
//! any budget produces the dataset, classification, tracker IP set,
//! estimates and degradation counters of the uninterrupted batch run, bit
//! for bit (`tests/streaming_resume.rs` pins this against the batch
//! fingerprint). The mechanisms:
//!
//! * **Per-user everything.** A user's simulation depends only on
//!   `(study_seed, user_id)` (DESIGN.md §5d), so any contiguous grouping
//!   of users reproduces the batch log after concatenation; cascade
//!   referrers never cross users, hence never chunks.
//! * **Offset-keyed log faults.** Post-hoc loss coins key on the *global
//!   pre-fault request index*; each chunk carries its offset into that
//!   sequence, so chunk-local fault application drops exactly the batch
//!   entries.
//! * **Delta-fixpoint classification.** An
//!   [`xborder_classify::IncrementalClassifier`] persists the URL/host
//!   interner, gate/keyword memos and distinct-count seen-bits across
//!   chunks, so each chunk's stage-1/2/3 labels fall out of a worklist
//!   seeded only by the chunk's frontier — and the Table-2 counts absorb
//!   per chunk, with **no** full-log rebuild at finalization. Sequential
//!   chunk order reproduces the batch first-occurrence interning order,
//!   so labels and counts are bit-identical (pinned in
//!   `crates/classify/src/incremental.rs` tests). Propagation-round
//!   telemetry reassembles as the max across chunks (disjoint BFS
//!   components). Each chunk blob carries the classifier's state *delta*
//!   for that chunk (new unique URLs/hosts plus sparse memo/seen-bit
//!   updates — O(unique values) total across the stream, not O(chunks ×
//!   state)); resume re-applies the deltas in order instead of
//!   re-deriving.
//! * **Ordered per-chunk side effects.** pDNS observations are buffered
//!   with the chunk (and checkpointed with it), then absorbed into the
//!   world's sensor as each chunk commits — chunk (= user) order, the
//!   batch replay order. The pDNS first/last-seen windows therefore
//!   advance with the sim clock as the stream runs, which is what lets
//!   rolling snapshots read a live view mid-stream.
//! * **Rolling window snapshots.** With [`StreamConfig::with_snapshots`],
//!   the study window splits into `K` equal sim-time windows and a
//!   cumulative [`crate::snapshots::RollingSnapshot`] is emitted as soon
//!   as every user a window covers is durable. Snapshot coverage is a
//!   pure function of the window boundary (see `crate::snapshots`), so
//!   each emitted snapshot equals the batch pipeline on the log truncated
//!   at that boundary, regardless of chunking, threads or kills
//!   (`tests/rolling_snapshots.rs`).
//! * **Resume replays, never re-randomizes.** A resuming run rebuilds the
//!   world, regenerates the population and re-draws `study_seed` from the
//!   same world RNG stream — leaving the RNG exactly where geolocation
//!   expects it — then loads chunk outputs from disk instead of
//!   simulating them.
//!
//! With no checkpoint directory the chunk loop runs the same arithmetic
//! minus the IO; with `chunk_users >= n_users` it is structurally the
//! batch pipeline.

use crate::ips::{CompletionStats, IpInfo, TrackerIpSet};
use crate::pipeline::{geolocate_providers, StudyOutputs};
use crate::snapshots::SnapshotAccumulator;
use crate::worldgen::{World, WorldConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::net::IpAddr;
use std::path::PathBuf;
use std::time::Instant;
use xborder_browser::{
    ExtensionDataset, LoggedRequest, Referrer, RequestId, SegmentBlock, StudyStream,
    UserPopulation, Visit, LABEL_ABP, LABEL_CLEAN, LABEL_SEMI,
};
use xborder_checkpoint::{
    ByteReader, ByteWriter, CheckpointError, CheckpointStore, DecodeError,
};
use xborder_classify::{
    generate_lists, Classification, ClassificationResult, ClassifierStages,
    IncrementalClassifier,
};
use xborder_faults::{
    stable_hash, DegradationReport, FaultInjector, FaultPlan, KillSwitch,
};
use xborder_geo::Region;
use xborder_netsim::time::{SimTime, TimeWindow};
use xborder_webgraph::{Domain, SegmentError, SegmentStore, SegmentStoreConfig};

/// How the streaming driver chunks and checkpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamConfig {
    /// Users per append-only chunk (clamped to ≥ 1). A pure availability
    /// knob: every value yields bit-identical outputs.
    pub chunk_users: usize,
    /// Where to write checkpoints; `None` disables durability (the chunk
    /// loop still runs, with zero IO).
    pub checkpoint_dir: Option<PathBuf>,
    /// Number of rolling report windows to emit during the stream; `0`
    /// disables them. A pure observability knob: snapshots never feed
    /// back into the pipeline outputs, and — like chunking — the value is
    /// excluded from the checkpoint fingerprint, so a resume may change
    /// it freely.
    pub snapshot_windows: usize,
    /// Maximum committed segments resident in memory at once; `0` keeps
    /// every segment resident (the pre-segmentation behavior). With a
    /// window and a [`StreamConfig::spill_dir`], older segments spill to
    /// disk and resident memory is `O(chunk_users × resident_segments)`
    /// instead of `O(n_users)`. A pure performance knob: every value
    /// yields bit-identical outputs (DESIGN.md §5j), and — like chunking —
    /// it is excluded from the checkpoint fingerprint.
    pub resident_segments: usize,
    /// Scratch directory for spilled segments (distinct from the
    /// checkpoint directory: spill files are disposable, deleted when the
    /// run ends, and carry no durability guarantees). Ignored when
    /// `resident_segments == 0`.
    pub spill_dir: Option<PathBuf>,
}

impl StreamConfig {
    /// In-memory streaming: chunked execution, no checkpoints.
    pub fn in_memory(chunk_users: usize) -> StreamConfig {
        StreamConfig {
            chunk_users,
            checkpoint_dir: None,
            snapshot_windows: 0,
            resident_segments: 0,
            spill_dir: None,
        }
    }

    /// Durable streaming: checkpoint every chunk and stage into `dir`.
    pub fn durable(chunk_users: usize, dir: impl Into<PathBuf>) -> StreamConfig {
        StreamConfig {
            chunk_users,
            checkpoint_dir: Some(dir.into()),
            snapshot_windows: 0,
            resident_segments: 0,
            spill_dir: None,
        }
    }

    /// Emits `windows` cumulative rolling snapshots over the study window
    /// as ingestion progresses (DESIGN.md §5g).
    pub fn with_snapshots(mut self, windows: usize) -> StreamConfig {
        self.snapshot_windows = windows;
        self
    }

    /// Bounds resident memory: keep at most `window` committed segments
    /// in RAM, spilling older ones to `dir` (DESIGN.md §5j).
    pub fn with_resident_window(
        mut self,
        window: usize,
        dir: impl Into<PathBuf>,
    ) -> StreamConfig {
        self.resident_segments = window;
        self.spill_dir = Some(dir.into());
        self
    }
}

/// Why a streaming run stopped without producing outputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// A seeded kill point fired — the simulated crash. Resume by calling
    /// the driver again on the same checkpoint directory.
    Killed {
        /// Kill-site counter value at which the switch fired.
        site: u64,
        /// Label of the site that fired.
        label: String,
    },
    /// The checkpoint layer refused or failed (corrupt blob, version or
    /// seed mismatch, IO error).
    Checkpoint(CheckpointError),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Killed { site, label } => {
                write!(f, "streaming run killed at site {site} ({label})")
            }
            StreamError::Checkpoint(e) => write!(f, "checkpoint failure: {e}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<CheckpointError> for StreamError {
    fn from(e: CheckpointError) -> StreamError {
        match e {
            CheckpointError::Killed { site, label } => StreamError::Killed { site, label },
            other => StreamError::Checkpoint(other),
        }
    }
}

/// Fires a driver-level kill site, turning a hit into the typed error.
pub(crate) fn killable(kill: &KillSwitch, label: &str) -> Result<(), StreamError> {
    if kill.fire(label) {
        let site = kill.fired().map(|(s, _)| s).unwrap_or_default();
        return Err(StreamError::Killed { site, label: label.to_string() });
    }
    Ok(())
}

/// Emits every rolling snapshot whose window is fully covered now that
/// `users_ingested` users are durable. Each emission is a kill site
/// (`snapshot-{i}:emitted`): a crash immediately after publishing a
/// snapshot is a scheduled scenario in the resume tests.
fn emit_due_snapshots(
    acc: &mut Option<SnapshotAccumulator>,
    users_ingested: usize,
    kill: &KillSwitch,
    snapshot_ms: &mut f64,
) -> Result<(), StreamError> {
    let Some(acc) = acc.as_mut() else { return Ok(()) };
    while acc.due(users_ingested) {
        let t = Instant::now();
        let i = acc.emit_next();
        *snapshot_ms += t.elapsed().as_secs_f64() * 1e3;
        killable(kill, &format!("snapshot-{i}:emitted"))?;
    }
    Ok(())
}

/// The configuration fingerprint stored in the manifest: a stable hash of
/// the world config and fault plan with the performance/availability knobs
/// canonicalised away (the thread budget never changes outputs, so a
/// checkpoint written at 8 threads legitimately resumes at 1 — while any
/// seed, scale or plan change is refused as [`CheckpointError::SeedMismatch`]).
///
/// Chunking is likewise excluded: it lives in [`StreamConfig`], not the
/// world config, so resuming with a different chunk size is legal too.
pub fn config_fingerprint(config: &WorldConfig, plan: &FaultPlan) -> Result<u64, StreamError> {
    let mut canonical = config.clone();
    canonical.parallelism = crate::par::Parallelism::sequential();
    let cfg_json = serde_json::to_string(&canonical).map_err(|e| {
        StreamError::Checkpoint(CheckpointError::ManifestInvalid {
            detail: format!("world config does not serialize: {e}"),
        })
    })?;
    let plan_json = serde_json::to_string(plan).map_err(|e| {
        StreamError::Checkpoint(CheckpointError::ManifestInvalid {
            detail: format!("fault plan does not serialize: {e}"),
        })
    })?;
    let mut h = stable_hash(cfg_json.as_bytes());
    h ^= stable_hash(plan_json.as_bytes()).rotate_left(17);
    Ok(h)
}

/// Maps chunk labels onto the [`SegmentBlock`] tag bytes (the tag values
/// are part of the checkpoint format; `xborder_browser::colog` documents
/// them as matching this codec).
pub(crate) fn labels_to_bytes(labels: &[Classification]) -> Vec<u8> {
    labels
        .iter()
        .map(|l| match l {
            Classification::AbpTracking => LABEL_ABP,
            Classification::SemiTracking => LABEL_SEMI,
            Classification::Clean => LABEL_CLEAN,
        })
        .collect()
}

/// Reverses [`labels_to_bytes`]; an unknown tag is typed corruption (the
/// bytes came from a spill file or checkpoint blob).
pub(crate) fn labels_from_bytes(
    file: &str,
    bytes: &[u8],
) -> Result<Vec<Classification>, StreamError> {
    bytes
        .iter()
        .map(|&b| match b {
            LABEL_ABP => Ok(Classification::AbpTracking),
            LABEL_SEMI => Ok(Classification::SemiTracking),
            LABEL_CLEAN => Ok(Classification::Clean),
            tag => Err(corrupt(
                file,
                DecodeError {
                    offset: 0,
                    detail: format!("unknown classification tag {tag}"),
                },
            )),
        })
        .collect()
}

/// Lifts segment-store failures into the stream's error space. Spill
/// files are checkpoint-adjacent scratch state, so the checkpoint error
/// vocabulary (IO, corruption, bookkeeping) maps exactly.
pub(crate) fn seg_err(e: SegmentError) -> StreamError {
    StreamError::Checkpoint(match e {
        SegmentError::Io { path, op, source } => CheckpointError::Io {
            path,
            detail: format!("{op}: {source}"),
        },
        SegmentError::Corrupt { path, detail } => CheckpointError::Corrupt { path, detail },
        SegmentError::Missing { index } => CheckpointError::ManifestInvalid {
            detail: format!("segment {index} missing or already consumed"),
        },
    })
}

/// Runs the extension pipeline as checkpointed streaming ingestion.
///
/// Identical outputs to [`crate::pipeline::run_extension_pipeline_degraded`]
/// for every `(stream, kill schedule)` — see the module docs. On
/// [`StreamError::Killed`] the process is assumed dead; call again with
/// the same world seed and checkpoint directory to resume from the last
/// durable chunk. `kill` is the fault harness's crash trigger; pass
/// [`KillSwitch::none`] in production.
pub fn run_extension_pipeline_streaming(
    world: &mut World,
    plan: &FaultPlan,
    stream_cfg: &StreamConfig,
    kill: &KillSwitch,
) -> Result<(StudyOutputs, DegradationReport), StreamError> {
    let inj = FaultInjector::new(plan.clone());
    let mut report = DegradationReport::default();
    let threads = world.config.parallelism.threads.max(1);
    let t_total = Instant::now();

    // Open (and validate) the checkpoint directory before burning any
    // simulation time: a seed/version mismatch must refuse up front.
    let fingerprint = config_fingerprint(&world.config, plan)?;
    let mut store = match &stream_cfg.checkpoint_dir {
        Some(dir) => Some(CheckpointStore::open(dir, fingerprint)?),
        None => None,
    };

    // World-RNG draws mirror the batch pipeline exactly: one study-stream
    // draw, then population generation, then the study seed. Resume runs
    // repeat these draws (they are cheap and deterministic), which leaves
    // `rng` positioned where the geolocation stage expects it.
    let mut rng = StdRng::seed_from_u64(world.study_rng.gen());
    let population = UserPopulation::generate(&world.config.study.population, &mut rng);
    let study_seed: u64 = rng.gen();
    let n_users = population.users.len();
    let chunk_users = stream_cfg.chunk_users.max(1);

    // Filter lists are a pure function of the web graph (no RNG); build
    // them once for the delta-fixpoint classifier. Constructing the
    // classifier compiles the rule engine (automaton, anchor buckets,
    // prefilter), so the compile cost books under classify time — the
    // batch path pays the same compile inside `classify_with_stages`.
    let (easylist, easyprivacy) = generate_lists(&world.graph);
    let stages = ClassifierStages::default();
    let t_compile = Instant::now();
    let mut classifier = IncrementalClassifier::new(&easylist, &easyprivacy, stages);
    let mut classify_ms = t_compile.elapsed().as_secs_f64() * 1e3;
    let mut snap_acc = (stream_cfg.snapshot_windows > 0).then(|| {
        SnapshotAccumulator::new(
            world.config.study.window,
            &population,
            stream_cfg.snapshot_windows,
        )
    });
    let mut snapshot_ms = 0.0f64;

    // Committed segments live in a bounded-residency store: columnar
    // blocks, FIFO-evicted to disposable spill files once the resident
    // window fills (DESIGN.md §5j). Unbounded (the default) keeps the
    // pre-segmentation behavior: everything resident, zero spill IO.
    let seg_cfg = match (&stream_cfg.spill_dir, stream_cfg.resident_segments) {
        (Some(dir), window) if window > 0 => SegmentStoreConfig::bounded(window, dir.clone()),
        _ => SegmentStoreConfig::unbounded(),
    };
    let mut segments: SegmentStore<SegmentBlock> = SegmentStore::new(seg_cfg);
    let mut segment_io_ms = 0.0f64;
    let mut pre_fault_offset: u64 = 0;
    let mut next_user = 0usize;

    // Replay: every chunk the manifest says is durable is loaded and
    // validated instead of simulated. The loader never writes — a corrupt
    // chunk surfaces as a typed error with the directory untouched. Side
    // effects (pDNS absorption, snapshot accumulation) re-apply in chunk
    // order, and so do the classifier state deltas: applying them in
    // order reconstructs the exact live classifier, so the resumed run
    // continues without re-deriving it.
    if let Some(store) = &store {
        for entry in store.chunks().to_vec() {
            if entry.user_start != next_user as u64
                || entry.user_end < entry.user_start
                || entry.user_end > n_users as u64
            {
                return Err(CheckpointError::ManifestInvalid {
                    detail: format!(
                        "chunk {} covers users {}..{} but {} of {} users are accounted for",
                        entry.index, entry.user_start, entry.user_end, next_user, n_users
                    ),
                }
                .into());
            }
            let payload = store.load_chunk(&entry)?;
            let (block, cls_bytes) = decode_chunk_payload(&entry.file, &payload)?;
            let mut rd = ByteReader::new(cls_bytes);
            classifier
                .apply_delta(&mut rd, world.graph.domains())
                .map_err(|e| corrupt(&entry.file, e))?;
            rd.finish().map_err(|e| corrupt(&entry.file, e))?;
            let observations = block.observations_vec();
            world
                .dns
                .absorb_id_observations(&observations, world.graph.domains());
            if let Some(acc) = &mut snap_acc {
                // Snapshots absorb AoS rows; materialize this segment once.
                let (chunk, label_bytes, _, _) = block.to_chunk();
                let labels = labels_from_bytes(&entry.file, &label_bytes)?;
                let t = Instant::now();
                acc.absorb_chunk(&chunk.visits, &chunk.requests, &labels, &world.infra);
                snapshot_ms += t.elapsed().as_secs_f64() * 1e3;
            }
            pre_fault_offset += block.counters().requests_generated;
            next_user = entry.user_end as usize;
            let t_seg = Instant::now();
            segments.push(block).map_err(seg_err)?;
            segment_io_ms += t_seg.elapsed().as_secs_f64() * 1e3;
            emit_due_snapshots(&mut snap_acc, next_user, kill, &mut snapshot_ms)?;
        }
    }

    // Ingest the remaining users chunk by chunk. The view over the
    // world's DNS zones is read-only; the pDNS sensor is borrowed
    // mutably alongside it (disjoint fields) so each committed chunk's
    // buffered observations absorb immediately, in chunk order.
    let t_ingest = Instant::now();
    let snap_ms_before_ingest = snapshot_ms;
    let cls_ms_before_ingest = classify_ms;
    let seg_ms_before_ingest = segment_io_ms;
    let users = {
        let (view, pdns) = world.dns.indexed_view_and_pdns(world.graph.domains());
        let stream = StudyStream::with_view(
            &world.config.study,
            &world.graph,
            view,
            population,
            study_seed,
        );
        let mut index = segments.len() as u64;
        while next_user < n_users {
            let end = (next_user + chunk_users).min(n_users);
            killable(kill, &format!("chunk-{index}:begin"))?;
            let chunk = stream.simulate_chunk(next_user..end, &inj, threads, pre_fault_offset);
            // Delta-fixpoint classification: only this chunk's frontier is
            // walked; interner/memo/count state persists across chunks.
            // Sequential absorption is label- and count-identical to the
            // batch pass (and trivially thread-invariant).
            let t_cls = Instant::now();
            let cls = classifier.append_chunk(&chunk.requests, world.graph.domains());
            classify_ms += t_cls.elapsed().as_secs_f64() * 1e3;
            // The AoS chunk condenses into its columnar twin; the AoS form
            // dies with this iteration, so resident memory during ingest
            // is one live chunk plus the store's resident window.
            let block = SegmentBlock::from_chunk(
                &chunk,
                &labels_to_bytes(&cls.labels),
                cls.stage2_rounds as u32,
                cls.stage3_rounds as u32,
                (next_user as u32, end as u32),
            );
            if let Some(store) = &mut store {
                let payload = encode_chunk_payload(&block, &mut classifier);
                store.append_chunk(index, next_user as u64, end as u64, &payload, kill)?;
            }
            killable(kill, &format!("chunk-{index}:committed"))?;
            for o in &chunk.observations {
                pdns.observe(world.graph.domains().domain(o.host), o.ip, o.time);
            }
            if let Some(acc) = &mut snap_acc {
                let t = Instant::now();
                acc.absorb_chunk(&chunk.visits, &chunk.requests, &cls.labels, &world.infra);
                snapshot_ms += t.elapsed().as_secs_f64() * 1e3;
            }
            pre_fault_offset += chunk.report.requests_generated;
            let t_seg = Instant::now();
            segments.push(block).map_err(seg_err)?;
            segment_io_ms += t_seg.elapsed().as_secs_f64() * 1e3;
            next_user = end;
            emit_due_snapshots(&mut snap_acc, next_user, kill, &mut snapshot_ms)?;
            index += 1;
        }
        stream.into_users()
    };
    // Degenerate streams (zero users) never enter the loop; drain any
    // windows whose coverage is trivially complete.
    emit_due_snapshots(&mut snap_acc, next_user, kill, &mut snapshot_ms)?;
    killable(kill, "stage:study:done")?;

    // Finalize the study: reassemble the global log in chunk (= user)
    // order, exactly the batch merge. pDNS observations were already
    // absorbed as each chunk committed (or replayed), so finalization is
    // pure concatenation.
    let mut visits: Vec<Visit> = Vec::new();
    let mut requests: Vec<LoggedRequest> = Vec::new();
    let mut labels: Vec<Classification> = Vec::new();
    let mut stage2_depth = 0usize;
    let mut stage3_rounds = 0usize;
    for i in 0..segments.len() {
        // Consume segments in append (= user) order; spilled ones reload
        // from disk here, one at a time, and their spill files are gone
        // once taken.
        let t_seg = Instant::now();
        let block = segments.take(i).map_err(seg_err)?;
        segment_io_ms += t_seg.elapsed().as_secs_f64() * 1e3;
        let (chunk, label_bytes, seg_stage2, seg_stage3) = block.to_chunk();
        labels.extend(labels_from_bytes(&format!("segment-{i:05}"), &label_bytes)?);
        report.absorb_counters(&chunk.report);
        let offset = requests.len() as u32;
        visits.extend(chunk.visits);
        requests.extend(chunk.requests.into_iter().map(|mut r| {
            if let Referrer::Request(RequestId(p)) = r.referrer {
                r.referrer = Referrer::Request(RequestId(p + offset));
            }
            r
        }));
        // Chunk propagation rounds are BFS depths over chunk-disjoint
        // component sets, so the batch depth is the max across chunks.
        stage2_depth = stage2_depth.max((seg_stage2 as usize).saturating_sub(1));
        stage3_rounds = stage3_rounds.max(seg_stage3 as usize);
    }
    // Segment-store telemetry: deterministic under the contract, but a
    // function of the segment-size/window knobs — reported as timings,
    // outside report equality (DESIGN.md §5j).
    let seg_stats = segments.stats();
    report.timings.peak_resident_bytes = seg_stats.peak_resident_bytes;
    report.timings.segments_spilled = seg_stats.segments_spilled;
    report.timings.segments_reloaded = seg_stats.segments_reloaded;
    report.timings.segment_io_ms = segment_io_ms;
    // Same stable timestamp sort as the batch driver (the pre-sort order —
    // user-major, generation order within a user — is identical).
    visits.sort_by_key(|v| v.time);
    let dataset = ExtensionDataset {
        users,
        visits,
        requests,
        domains: world.graph.domains().clone(),
    };
    report.timings.study_ms = t_ingest.elapsed().as_secs_f64() * 1e3
        - (classify_ms - cls_ms_before_ingest)
        - (snapshot_ms - snap_ms_before_ingest)
        - (segment_io_ms - seg_ms_before_ingest);

    // Table-2 distinct counts absorbed chunk by chunk through the
    // classifier's persistent seen-bits — no full-log recount. The
    // running totals equal `method_counts` over the concatenated log
    // (pinned in the classify crate's incremental tests).
    let (abp, semi) = classifier.counts();
    let stage2_rounds = 1 + stage2_depth;
    let classification = ClassificationResult {
        labels,
        abp,
        semi,
        propagation_rounds: stage2_rounds + stage3_rounds,
        stage2_rounds,
        stage3_rounds,
    };
    report.timings.classify_ms = classify_ms;
    report.timings.snapshot_ms = snapshot_ms;
    killable(kill, "stage:classify:done")?;

    // Tracker IP set + pDNS completion — the stage-boundary checkpoint. A
    // resume that already has the completion blob loads it (with its
    // counter delta) instead of recomputing; both paths are bit-identical
    // because completion is a deterministic function of (labels, pDNS).
    let t_stage = Instant::now();
    let durable_completion = match &store {
        Some(s) => s.load_stage("completion")?,
        None => None,
    };
    let (tracker_ips, completion) = match durable_completion {
        Some(payload) => {
            let (ips, stats, delta) = decode_completion_state(&payload)?;
            report.absorb_counters(&delta);
            (ips, stats)
        }
        None => {
            let mut tracker_ips = TrackerIpSet::from_dataset(&dataset, &classification);
            let mut delta = DegradationReport::default();
            let stats =
                tracker_ips.complete_with_pdns_degraded(world.dns.pdns(), &inj, &mut delta);
            report.absorb_counters(&delta);
            if let Some(store) = &mut store {
                let payload = encode_completion_state(&tracker_ips, &stats, &delta);
                store.put_stage("completion", &payload, kill)?;
            }
            (tracker_ips, stats)
        }
    };
    report.timings.completion_ms = t_stage.elapsed().as_secs_f64() * 1e3;
    killable(kill, "stage:completion:done")?;

    // Geolocation — shared verbatim with the batch pipeline. Nothing
    // after this point is checkpointed: a crash here re-runs geolocation
    // deterministically from the durable completion state.
    let t_stage = Instant::now();
    let (ipmap_estimates, maxmind_estimates, ipapi_estimates) =
        geolocate_providers(world, &mut rng, &tracker_ips, &inj, &mut report, threads);
    report.timings.geolocate_ms = t_stage.elapsed().as_secs_f64() * 1e3;
    killable(kill, "stage:geolocate:done")?;

    // The classifier borrows the filter lists; it is fully consumed
    // (labels emitted, counts read) before the lists move into the output.
    drop(classifier);
    let out = StudyOutputs {
        dataset,
        classification,
        easylist,
        easyprivacy,
        tracker_ips,
        completion,
        ipmap_estimates,
        maxmind_estimates,
        ipapi_estimates,
        snapshots: snap_acc.map(SnapshotAccumulator::into_snapshots).unwrap_or_default(),
    };
    report.eu28_confinement =
        crate::confine::region_breakdown_eu28(&out, &out.ipmap_estimates).share(Region::Eu28);
    report.timings.total_ms = t_total.elapsed().as_secs_f64() * 1e3;
    Ok((out, report))
}

// ---------------------------------------------------------------------------
// Blob codecs. The checkpoint crate stores opaque bytes; the typed
// encodings live here, next to the domain types they serialize. Floats are
// stored as IEEE-754 bit patterns, so round trips are bit-exact.
// ---------------------------------------------------------------------------

pub(crate) fn corrupt(file: &str, e: DecodeError) -> StreamError {
    StreamError::Checkpoint(CheckpointError::Corrupt {
        path: PathBuf::from(file),
        detail: e.to_string(),
    })
}

fn put_ip(w: &mut ByteWriter, ip: IpAddr) {
    match ip {
        IpAddr::V4(v4) => {
            w.put_u8(4);
            w.put_bytes(&v4.octets());
        }
        IpAddr::V6(v6) => {
            w.put_u8(6);
            w.put_bytes(&v6.octets());
        }
    }
}

fn read_ip(r: &mut ByteReader<'_>) -> Result<IpAddr, DecodeError> {
    match r.u8()? {
        4 => {
            let b = r.bytes(4)?;
            Ok(IpAddr::from([b[0], b[1], b[2], b[3]]))
        }
        6 => {
            let b = r.bytes(16)?;
            let mut o = [0u8; 16];
            o.copy_from_slice(b);
            Ok(IpAddr::from(o))
        }
        tag => Err(DecodeError {
            offset: 0,
            detail: format!("unknown IP tag {tag}"),
        }),
    }
}

/// The fixed counter order of the report codec
/// ([`DegradationReport::counter_values`]). Only counters travel in
/// blobs: chunk reports carry deltas, and `eu28_confinement`/timings are
/// finalization-time observations that are never absorbed.
fn put_counters(w: &mut ByteWriter, r: &DegradationReport) {
    for v in r.counter_values() {
        w.put_u64(v);
    }
}

fn read_counters(rd: &mut ByteReader<'_>) -> Result<DegradationReport, DecodeError> {
    let mut values = [0u64; DegradationReport::N_COUNTERS];
    for slot in &mut values {
        *slot = rd.u64()?;
    }
    Ok(DegradationReport::from_counter_values(&values))
}

/// The durable chunk payload: two length-prefixed sections — the columnar
/// segment block, then the incremental-classifier *delta* for this chunk.
/// Encoding advances the classifier's delta baseline (the only caller
/// encodes each chunk exactly once, in order); replay applies every
/// durable chunk's delta in the same order to reconstruct the state.
pub(crate) fn encode_chunk_payload(
    block: &SegmentBlock,
    classifier: &mut IncrementalClassifier,
) -> Vec<u8> {
    let mut cw = ByteWriter::new();
    classifier.encode_delta(&mut cw);
    let cls = cw.into_bytes();
    let seg = block.encode_bytes();
    let mut w = ByteWriter::with_capacity(16 + seg.len() + cls.len());
    w.put_blob(&seg);
    w.put_blob(&cls);
    w.into_bytes()
}

/// Splits a chunk payload into its decoded segment block and the raw bytes
/// of the classifier delta section (applied by the replay loop).
pub(crate) fn decode_chunk_payload<'p>(
    file: &str,
    payload: &'p [u8],
) -> Result<(SegmentBlock, &'p [u8]), StreamError> {
    let mut rd = ByteReader::new(payload);
    let seg = rd.blob().map_err(|e| corrupt(file, e))?;
    let cls = rd.blob().map_err(|e| corrupt(file, e))?;
    rd.finish().map_err(|e| corrupt(file, e))?;
    let block = SegmentBlock::decode_bytes(seg).map_err(|e| corrupt(file, e))?;
    // Durable chunks are always classified: one label byte per request.
    if block.labels().len() != block.n_requests() {
        return Err(corrupt(
            file,
            DecodeError {
                offset: 0,
                detail: format!(
                    "label count {} does not match request count {}",
                    block.labels().len(),
                    block.n_requests()
                ),
            },
        ));
    }
    Ok((block, cls))
}

pub(crate) fn encode_completion_state(
    ips: &TrackerIpSet,
    stats: &CompletionStats,
    delta: &DegradationReport,
) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(64 + ips.len() * 48);
    // Canonical order: sorted by IP, hosts sorted within each record. The
    // in-memory maps hash-order freely; the blob does not.
    let mut sorted: Vec<(&IpAddr, &IpInfo)> = ips.ips.iter().collect();
    sorted.sort_by_key(|(ip, _)| **ip);
    w.put_usize(sorted.len());
    for (ip, info) in sorted {
        put_ip(&mut w, *ip);
        w.put_u64(info.requests);
        let mut hosts: Vec<&str> = info.hosts.iter().map(|h| h.as_str()).collect();
        hosts.sort_unstable();
        w.put_usize(hosts.len());
        for h in hosts {
            w.put_str(h);
        }
        w.put_u64(info.window.start.0);
        w.put_u64(info.window.end.0);
        w.put_u8(info.from_pdns_only as u8);
    }
    w.put_usize(stats.n_observed);
    w.put_usize(stats.n_added);
    w.put_f64(stats.v4_share);
    w.put_f64(stats.added_v4_share);
    put_counters(&mut w, delta);
    w.into_bytes()
}

pub(crate) fn decode_completion_state(
    payload: &[u8],
) -> Result<(TrackerIpSet, CompletionStats, DegradationReport), StreamError> {
    const FILE: &str = "stage-completion.xbc";
    let mut rd = ByteReader::new(payload);
    let inner = |rd: &mut ByteReader<'_>| -> Result<
        (TrackerIpSet, CompletionStats, DegradationReport),
        DecodeError,
    > {
        let n = rd.len_prefix()?;
        let mut ips: HashMap<IpAddr, IpInfo> = HashMap::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let ip = read_ip(rd)?;
            let requests = rd.u64()?;
            let n_hosts = rd.len_prefix()?;
            let mut hosts = HashSet::with_capacity(n_hosts.min(1 << 16));
            for _ in 0..n_hosts {
                hosts.insert(Domain::new(rd.str()?));
            }
            let window = TimeWindow::new(SimTime(rd.u64()?), SimTime(rd.u64()?));
            let from_pdns_only = rd.u8()? != 0;
            ips.insert(
                ip,
                IpInfo {
                    requests,
                    hosts,
                    window,
                    from_pdns_only,
                },
            );
        }
        let stats = CompletionStats {
            n_observed: rd.len_prefix()?,
            n_added: rd.len_prefix()?,
            v4_share: rd.f64()?,
            added_v4_share: rd.f64()?,
        };
        let delta = read_counters(rd)?;
        Ok((TrackerIpSet { ips }, stats, delta))
    };
    let out = inner(&mut rd).map_err(|e| corrupt(FILE, e))?;
    rd.finish().map_err(|e| corrupt(FILE, e))?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xborder_browser::{StudyChunk, UserId};
    use xborder_dns::PdnsIdObservation;
    use xborder_webgraph::{DomainId, PublisherId};

    fn sample_block() -> SegmentBlock {
        let report = DegradationReport {
            requests_generated: 3,
            requests_delivered: 2,
            dns_cache_hits: 7,
            ..Default::default()
        };
        let chunk = StudyChunk {
            visits: vec![Visit {
                user: UserId(1),
                publisher: PublisherId(9),
                time: SimTime(100),
            }],
            requests: vec![
                LoggedRequest {
                    user: UserId(1),
                    time: SimTime(101),
                    first_party: DomainId(2),
                    publisher: PublisherId(9),
                    url: "https://t.example/px?id=1".into(),
                    host: DomainId(3),
                    referrer: Referrer::FirstParty,
                    ip: "10.1.2.3".parse().unwrap(),
                },
                LoggedRequest {
                    user: UserId(1),
                    time: SimTime(102),
                    first_party: DomainId(2),
                    publisher: PublisherId(9),
                    url: "https://u.example/js".into(),
                    host: DomainId(4),
                    referrer: Referrer::Request(RequestId(0)),
                    ip: "2001:db8::7".parse().unwrap(),
                },
            ],
            observations: vec![PdnsIdObservation {
                host: DomainId(3),
                ip: "10.1.2.3".parse().unwrap(),
                time: SimTime(101),
            }],
            report,
        };
        SegmentBlock::from_chunk(&chunk, &[LABEL_ABP, LABEL_SEMI], 1, 0, (0, 2))
    }

    #[test]
    fn labels_round_trip_and_reject_unknown_tags() {
        let labels = vec![
            Classification::AbpTracking,
            Classification::SemiTracking,
            Classification::Clean,
        ];
        let bytes = labels_to_bytes(&labels);
        assert_eq!(bytes, vec![LABEL_ABP, LABEL_SEMI, LABEL_CLEAN]);
        assert_eq!(labels_from_bytes("seg", &bytes).unwrap(), labels);
        let err = labels_from_bytes("seg", &[LABEL_ABP, 9]).unwrap_err();
        assert!(matches!(
            err,
            StreamError::Checkpoint(CheckpointError::Corrupt { .. })
        ));
    }

    #[test]
    fn chunk_payload_framing_splits_sections() {
        // The classifier section is opaque at the framing layer; framing
        // must hand it back byte-exact and reject trailing garbage.
        let block = sample_block();
        let mut w = ByteWriter::new();
        w.put_blob(&block.encode_bytes());
        w.put_blob(&[0xAB, 0xCD, 0xEF]);
        let payload = w.into_bytes();
        let (back, cls) = decode_chunk_payload("chunk-00000.xbc", &payload).unwrap();
        assert_eq!(back, block);
        assert_eq!(cls, &[0xAB, 0xCD, 0xEF]);

        let mut with_trailer = payload.clone();
        with_trailer.push(0);
        let err = decode_chunk_payload("chunk-00000.xbc", &with_trailer).unwrap_err();
        assert!(matches!(
            err,
            StreamError::Checkpoint(CheckpointError::Corrupt { .. })
        ));
    }

    #[test]
    fn truncated_chunk_payload_is_typed_corruption() {
        // A torn segment blob inside valid framing must surface as typed
        // corruption, not a panic.
        let seg = sample_block().encode_bytes();
        let mut w = ByteWriter::new();
        w.put_blob(&seg[..seg.len() - 3]);
        w.put_blob(&[]);
        let err = decode_chunk_payload("chunk-00000.xbc", &w.into_bytes()).unwrap_err();
        assert!(matches!(
            err,
            StreamError::Checkpoint(CheckpointError::Corrupt { .. })
        ));
    }

    #[test]
    fn unclassified_chunk_payload_is_rejected() {
        // The streaming format stores one label byte per request; a block
        // whose labels column is missing (or short) is corrupt.
        let (chunk, _, _, _) = sample_block().to_chunk();
        let unlabeled = SegmentBlock::from_chunk(&chunk, &[], 0, 0, (0, 2));
        let mut w = ByteWriter::new();
        w.put_blob(&unlabeled.encode_bytes());
        w.put_blob(&[]);
        let err = decode_chunk_payload("chunk-00000.xbc", &w.into_bytes()).unwrap_err();
        assert!(matches!(
            err,
            StreamError::Checkpoint(CheckpointError::Corrupt { .. })
        ));
    }

    #[test]
    fn completion_state_round_trips() {
        let mut ips = HashMap::new();
        let mut hosts = HashSet::new();
        hosts.insert(Domain::new("t.x.com"));
        hosts.insert(Domain::new("u.y.net"));
        ips.insert(
            "9.8.7.6".parse().unwrap(),
            IpInfo {
                requests: 12,
                hosts,
                window: TimeWindow::new(SimTime(5), SimTime(900)),
                from_pdns_only: false,
            },
        );
        let set = TrackerIpSet { ips };
        let stats = CompletionStats {
            n_observed: 1,
            n_added: 0,
            v4_share: 1.0,
            added_v4_share: 0.0,
        };
        let delta = DegradationReport {
            pdns_records_seen: 4,
            ..Default::default()
        };
        let bytes = encode_completion_state(&set, &stats, &delta);
        let (set2, stats2, delta2) = decode_completion_state(&bytes).unwrap();
        assert_eq!(set2.ips.len(), 1);
        let info = &set2.ips[&"9.8.7.6".parse::<IpAddr>().unwrap()];
        assert_eq!(info.requests, 12);
        assert_eq!(info.hosts.len(), 2);
        assert_eq!(info.window, TimeWindow::new(SimTime(5), SimTime(900)));
        assert_eq!(stats2, stats);
        assert_eq!(delta2, delta);
    }

    #[test]
    fn fingerprint_ignores_performance_knobs_only() {
        let base = WorldConfig::small(11);
        let plan = FaultPlan::none();
        let a = config_fingerprint(&base, &plan).unwrap();
        // Thread budget is canonicalised away.
        let b = config_fingerprint(&base.clone().with_threads(8), &plan).unwrap();
        assert_eq!(a, b);
        // A different world seed is a different run.
        let c = config_fingerprint(&WorldConfig::small(12), &plan).unwrap();
        assert_ne!(a, c);
        // A different fault plan is a different run.
        let d = config_fingerprint(&base, &FaultPlan::aggressive(11)).unwrap();
        assert_ne!(a, d);
    }
}
