//! The end-to-end measurement pipeline: study → classification → IP set →
//! geolocation.
//!
//! [`run_extension_pipeline`] is the workhorse behind every figure that
//! uses extension data: it runs the simulated 4.5-month study, classifies
//! the request log, completes the tracker IP set through passive DNS, and
//! geolocates every tracker IP with all three providers.

use crate::ips::{CompletionStats, TrackerIpSet};
use crate::worldgen::World;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::net::IpAddr;
use std::time::Instant;
use xborder_browser::{run_study_sharded, ExtensionDataset};
use xborder_classify::{
    classify_with_stages_threads, generate_lists, ClassificationResult, ClassifierStages,
    FilterList,
};
use xborder_faults::{DegradationReport, FaultInjector, FaultPlan};
use xborder_geo::Region;
use xborder_geoloc::{GeoEstimate, Geolocator, IpMap, RegistryDb, RegistryStyle};

/// Per-provider frozen estimates over the tracker IP set.
pub type EstimateMap = HashMap<IpAddr, GeoEstimate>;

/// Everything the downstream analyses consume.
pub struct StudyOutputs {
    /// The simulated extension dataset.
    pub dataset: ExtensionDataset,
    /// Per-request tracking labels and Table-2 counts.
    pub classification: ClassificationResult,
    /// The generated easylist analogue (kept for ablations).
    pub easylist: FilterList,
    /// The generated easyprivacy analogue.
    pub easyprivacy: FilterList,
    /// Tracker IPs (observed + pDNS-completed) with validity windows.
    pub tracker_ips: TrackerIpSet,
    /// pDNS completion summary (Sect. 3.3 numbers).
    pub completion: CompletionStats,
    /// IPmap estimates per tracker IP.
    pub ipmap_estimates: EstimateMap,
    /// MaxMind-style estimates per tracker IP.
    pub maxmind_estimates: EstimateMap,
    /// ip-api-style estimates per tracker IP.
    pub ipapi_estimates: EstimateMap,
    /// Rolling-window snapshots emitted during streaming ingestion
    /// (DESIGN.md §5g); empty for the batch pipeline, which publishes one
    /// report at the end instead.
    pub snapshots: Vec<crate::snapshots::RollingSnapshot>,
}

impl StudyOutputs {
    /// Destination estimate for a request's IP under a chosen provider map.
    pub fn estimate_for(&self, map: &EstimateMap, ip: IpAddr) -> Option<GeoEstimate> {
        map.get(&ip).copied()
    }
}

/// Freezes a provider's answers over an IP list into a map.
pub fn freeze_estimates<G: Geolocator + ?Sized>(provider: &G, ips: &[IpAddr]) -> EstimateMap {
    let inj = FaultInjector::inactive();
    let mut report = DegradationReport::default();
    freeze_estimates_degraded(provider, ips, &inj, &mut report)
}

/// [`freeze_estimates`] under fault injection: provider misses (and, for
/// IPmap, probe outages and quorum abstentions) leave gaps in the map and
/// are tallied in `report`.
pub fn freeze_estimates_degraded<G: Geolocator + ?Sized>(
    provider: &G,
    ips: &[IpAddr],
    inj: &FaultInjector,
    report: &mut DegradationReport,
) -> EstimateMap {
    ips.iter()
        .filter_map(|ip| {
            provider
                .locate_degraded(*ip, inj, report)
                .map(|e| (*ip, e))
        })
        .collect()
}

/// [`freeze_estimates_degraded`] sharded over contiguous chunks of the IP
/// list with `std::thread::scope`.
///
/// Bit-identical to the sequential freeze for any `threads`: each lookup
/// depends only on `(provider, ip, inj)` — fault coins are hash-derived
/// per entity, per-IP measurement RNG is seeded from the address — and the
/// per-shard reports are merged by original chunk order (counter addition
/// commutes, see [`DegradationReport::absorb_counters`]). Returns the map
/// plus the merged counters for the caller to absorb into its report.
pub fn freeze_estimates_degraded_sharded<G: Geolocator + Sync + ?Sized>(
    provider: &G,
    ips: &[IpAddr],
    inj: &FaultInjector,
    threads: usize,
) -> (EstimateMap, DegradationReport) {
    let mut merged = DegradationReport::default();
    if threads <= 1 || ips.len() < 2 * threads {
        let map = freeze_estimates_degraded(provider, ips, inj, &mut merged);
        return (map, merged);
    }
    let chunk = ips.len().div_ceil(threads);
    let shards: Vec<(EstimateMap, DegradationReport)> = std::thread::scope(|scope| {
        let handles: Vec<_> = ips
            .chunks(chunk)
            .map(|c| {
                scope.spawn(move || {
                    let mut r = DegradationReport::default();
                    let m = freeze_estimates_degraded(provider, c, inj, &mut r);
                    (m, r)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("freeze shard panicked"))
            .collect()
    });
    let mut map = EstimateMap::with_capacity(ips.len());
    for (m, r) in shards {
        map.extend(m);
        merged.absorb_counters(&r);
    }
    (map, merged)
}

/// The geolocation stage, shared verbatim by the batch and streaming
/// drivers: freezes all three providers over the sorted tracker IP list.
///
/// All world-RNG draws stay on the calling thread, in the legacy order:
/// the IPmap build consumes `rng`, then the registry seeds are drawn. The
/// freezes never touch `rng` (per-IP measurement RNG is seeded from the
/// address), which is what frees them to run concurrently.
pub(crate) fn geolocate_providers(
    world: &World,
    rng: &mut StdRng,
    tracker_ips: &TrackerIpSet,
    inj: &FaultInjector,
    report: &mut DegradationReport,
    threads: usize,
) -> (EstimateMap, EstimateMap, EstimateMap) {
    let ip_list: Vec<IpAddr> = {
        let mut v: Vec<IpAddr> = tracker_ips.ips.keys().copied().collect();
        v.sort();
        v
    };
    let ipmap = IpMap::new(world.config.ipmap, &world.infra, rng);
    // MaxMind and ip-api share their seat-vs-truth coin (correlated errors,
    // Table 3) but perturb independently.
    let seat_seed: u64 = rng.gen();
    let mm_noise_seed: u64 = rng.gen();
    let ia_noise_seed: u64 = rng.gen();
    let build_mm = || {
        let mut seat = StdRng::seed_from_u64(seat_seed);
        let mut noise = StdRng::seed_from_u64(mm_noise_seed);
        RegistryDb::build(RegistryStyle::MaxMindLike, &world.infra, &mut seat, &mut noise)
    };
    let build_ia = || {
        let mut seat = StdRng::seed_from_u64(seat_seed);
        let mut noise = StdRng::seed_from_u64(ia_noise_seed);
        RegistryDb::build(RegistryStyle::IpApiLike, &world.infra, &mut seat, &mut noise)
    };
    let (ipmap_estimates, maxmind_estimates, ipapi_estimates) = if threads <= 1 {
        // Exact legacy sequential path.
        let a = freeze_estimates_degraded(&ipmap, &ip_list, inj, report);
        let b = freeze_estimates_degraded(&build_mm(), &ip_list, inj, report);
        let c = freeze_estimates_degraded(&build_ia(), &ip_list, inj, report);
        (a, b, c)
    } else {
        // The three provider freezes run concurrently, each sharded over
        // the IP list; per-provider reports merge in the fixed sequential
        // order (ipmap → mm → ia), which equals the legacy totals because
        // counter addition commutes.
        let per_provider = threads.div_ceil(3).max(1);
        let ((a, ra), (b, rb), (c, rc)) = std::thread::scope(|scope| {
            let ha = scope.spawn(|| {
                freeze_estimates_degraded_sharded(&ipmap, &ip_list, inj, per_provider)
            });
            let hb = scope.spawn(|| {
                freeze_estimates_degraded_sharded(&build_mm(), &ip_list, inj, per_provider)
            });
            let hc = scope.spawn(|| {
                freeze_estimates_degraded_sharded(&build_ia(), &ip_list, inj, per_provider)
            });
            (
                ha.join().expect("ipmap freeze panicked"),
                hb.join().expect("maxmind freeze panicked"),
                hc.join().expect("ipapi freeze panicked"),
            )
        });
        report.absorb_counters(&ra);
        report.absorb_counters(&rb);
        report.absorb_counters(&rc);
        (a, b, c)
    };
    // Assignment-cache counters accumulate inside the IpMap (shared
    // read-only across the shard threads); snapshot them into the report
    // after the freeze. Budget-invariant by construction (DESIGN.md §5e).
    let cache_stats = ipmap.assign_cache_stats();
    report.geoloc_assign_cache_hits = cache_stats.hits;
    report.geoloc_assign_cache_misses = cache_stats.misses;
    report.geoloc_index_probe_visits = cache_stats.index_probe_visits;
    (ipmap_estimates, maxmind_estimates, ipapi_estimates)
}

/// Runs the full extension pipeline against a built world.
///
/// Consumes the world's dedicated study RNG stream, so repeated calls on
/// the same `World` value continue the stream (build a fresh `World` for a
/// bit-identical rerun).
pub fn run_extension_pipeline(world: &mut World) -> StudyOutputs {
    run_extension_pipeline_degraded(world, &FaultPlan::none()).0
}

/// Runs the full extension pipeline under a fault plan.
///
/// This is the single implementation: [`run_extension_pipeline`] is this
/// function at [`FaultPlan::none`], which keeps every fault coin cold and
/// the RNG streams bit-identical to the fault-free pipeline. Returns the
/// outputs together with a [`DegradationReport`] quantifying what the
/// faults cost: delivery coverage, DNS retry pressure, pDNS gaps, probe
/// outages, quorum abstentions, geolocation coverage, and the headline
/// EU28 confinement computed from whatever survived.
pub fn run_extension_pipeline_degraded(
    world: &mut World,
    plan: &FaultPlan,
) -> (StudyOutputs, DegradationReport) {
    let inj = FaultInjector::new(plan.clone());
    let mut report = DegradationReport::default();
    let threads = world.config.parallelism.threads.max(1);
    let t_total = Instant::now();

    // 1. The 4.5-month study (in-path resolver faults, post-hoc log faults).
    // Users shard across threads: each has a private hash-derived RNG
    // stream and stub-resolver cache, so the budget never shows in the
    // output (DESIGN.md §5d).
    let t_stage = Instant::now();
    // With a counting-allocator probe installed (bench builds), the study
    // stage's allocation traffic lands in the report next to its wall
    // clock. No probe → zeros.
    let alloc_before = xborder_faults::alloc_snapshot();
    let mut rng = StdRng::seed_from_u64(world.study_rng.gen());
    let dataset = run_study_sharded(
        &world.config.study,
        &world.graph,
        &mut world.dns,
        &mut rng,
        &inj,
        &mut report,
        threads,
    );
    report.timings.study_ms = t_stage.elapsed().as_secs_f64() * 1e3;
    if let (Some((a0, b0)), Some((a1, b1))) = (alloc_before, xborder_faults::alloc_snapshot()) {
        report.timings.study_allocs = a1.saturating_sub(a0);
        report.timings.study_alloc_bytes = b1.saturating_sub(b0);
    }

    // 2. Classification (Table 2). Stage-1 blocklist matching shards over
    // the request log; labels never depend on the split.
    let t_stage = Instant::now();
    let (easylist, easyprivacy) = generate_lists(&world.graph);
    let classification = classify_with_stages_threads(
        &dataset.requests,
        &dataset.domains,
        &easylist,
        &easyprivacy,
        ClassifierStages::default(),
        threads,
    );
    report.timings.classify_ms = t_stage.elapsed().as_secs_f64() * 1e3;

    // 3. Tracker IP set + pDNS completion (Sect. 3.3).
    let t_stage = Instant::now();
    let mut tracker_ips = TrackerIpSet::from_dataset(&dataset, &classification);
    let completion = tracker_ips.complete_with_pdns_degraded(world.dns.pdns(), &inj, &mut report);
    report.timings.completion_ms = t_stage.elapsed().as_secs_f64() * 1e3;

    // 4. Geolocation with all three providers (Sect. 3.4).
    let t_stage = Instant::now();
    let (ipmap_estimates, maxmind_estimates, ipapi_estimates) =
        geolocate_providers(world, &mut rng, &tracker_ips, &inj, &mut report, threads);
    report.timings.geolocate_ms = t_stage.elapsed().as_secs_f64() * 1e3;

    let out = StudyOutputs {
        dataset,
        classification,
        easylist,
        easyprivacy,
        tracker_ips,
        completion,
        ipmap_estimates,
        maxmind_estimates,
        ipapi_estimates,
        snapshots: Vec::new(),
    };

    // Headline metric over whatever survived the faults, so drift can be
    // compared against a fault-free run of the same seed.
    report.eu28_confinement =
        crate::confine::region_breakdown_eu28(&out, &out.ipmap_estimates).share(Region::Eu28);
    report.timings.total_ms = t_total.elapsed().as_secs_f64() * 1e3;
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worldgen::WorldConfig;
    use xborder_geo::WORLD;

    fn outputs() -> (World, StudyOutputs) {
        let mut world = World::build(WorldConfig::small(11));
        let out = run_extension_pipeline(&mut world);
        (world, out)
    }

    #[test]
    fn pipeline_produces_tracking_flows() {
        let (_, out) = outputs();
        assert!(out.dataset.requests.len() > 1_000);
        assert!(out.classification.abp.n_total_requests > 0);
        assert!(out.classification.semi.n_total_requests > 0);
        assert!(!out.tracker_ips.is_empty());
    }

    #[test]
    fn completion_adds_a_small_fraction() {
        let (_, out) = outputs();
        let frac = out.completion.added_fraction();
        assert!(frac > 0.0, "pDNS completion added nothing");
        assert!(frac < 0.5, "pDNS completion added {frac}, too much");
    }

    #[test]
    fn every_tracker_ip_is_geolocated_by_ipmap() {
        let (_, out) = outputs();
        for ip in out.tracker_ips.ips.keys() {
            assert!(out.ipmap_estimates.contains_key(ip), "{ip} missing from IPmap");
            assert!(out.maxmind_estimates.contains_key(ip), "{ip} missing from MaxMind");
        }
    }

    #[test]
    fn ipmap_beats_registries_on_accuracy() {
        let (world, out) = outputs();
        let acc = |map: &EstimateMap| {
            let mut right = 0usize;
            let mut total = 0usize;
            for (ip, est) in map {
                if let Some(truth) = world.infra.true_country_of(*ip) {
                    total += 1;
                    if est.country == truth {
                        right += 1;
                    }
                }
            }
            right as f64 / total.max(1) as f64
        };
        let ipmap_acc = acc(&out.ipmap_estimates);
        let mm_acc = acc(&out.maxmind_estimates);
        assert!(
            ipmap_acc > mm_acc + 0.1,
            "ipmap {ipmap_acc} vs maxmind {mm_acc}"
        );
        assert!(ipmap_acc > 0.8, "ipmap accuracy {ipmap_acc}");
    }

    #[test]
    fn registries_agree_with_each_other() {
        let (_, out) = outputs();
        let mut agree = 0usize;
        let mut total = 0usize;
        for (ip, mm) in &out.maxmind_estimates {
            if let Some(ia) = out.ipapi_estimates.get(ip) {
                total += 1;
                if mm.country == ia.country {
                    agree += 1;
                }
            }
        }
        let share = agree as f64 / total.max(1) as f64;
        assert!(share > 0.9, "registry agreement {share}");
    }

    #[test]
    fn v4_dominates_tracker_ips() {
        let (_, out) = outputs();
        let v4 = out.tracker_ips.ips.keys().filter(|ip| ip.is_ipv4()).count();
        let share = v4 as f64 / out.tracker_ips.len() as f64;
        assert!(share > 0.9, "v4 share {share}");
    }

    #[test]
    fn eu28_users_exist_in_dataset() {
        let (_, out) = outputs();
        let eu = out
            .dataset
            .users
            .users
            .iter()
            .filter(|u| WORLD.country_or_panic(u.country).eu28)
            .count();
        assert!(eu > 5);
    }
}
