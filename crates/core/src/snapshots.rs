//! Rolling confinement/report snapshots emitted *during* streaming
//! ingestion (DESIGN.md §5g).
//!
//! The paper's measurement is longitudinal — months of logs — and a
//! standing service must publish intermediate tracking numbers as data
//! arrives, not one report at finalize. The streaming driver divides the
//! study window into `K` equal sim-time windows and emits one cumulative
//! [`RollingSnapshot`] per window boundary as soon as every user it covers
//! has been ingested.
//!
//! ## What a snapshot covers
//!
//! Users are recruited linearly over the study window in the model:
//! snapshot `i` (window end `W_i`, `i` from 0) covers exactly the requests
//! and visits with `user < u_cap_i` **and** `time < W_i`, where
//! `u_cap_i = floor((W_i - start) · n_users / window_len)`. That coverage
//! set is a pure function of `(W_i, n_users, study window)` — chunking,
//! thread budget and kill schedule cannot move an event across a snapshot
//! boundary, so every emitted snapshot equals the batch pipeline run on
//! the same log truncated at the window's end
//! (`tests/rolling_snapshots.rs` pins this against the independent
//! [`batch_snapshots`] recomputation).
//!
//! ## What a snapshot reports
//!
//! Cumulative visit/request/tracking-request totals, distinct tracker IPs,
//! and a *truth-based* EU28 confinement split: origin = the user's
//! (EU28?) country, destination = [`Infrastructure::true_country_of`] the
//! request's IP. Unlike the finalize-time Fig. 7 numbers, no geolocation
//! provider runs mid-stream — provider freezes draw RNG and are a
//! finalize-stage concern; the rolling view is the ground-truth confinement
//! the sim world knows exactly, with zero RNG draws (and therefore zero
//! effect on the determinism contract).

use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::net::IpAddr;
use xborder_browser::{ExtensionDataset, LoggedRequest, UserPopulation, Visit};
use xborder_classify::Classification;
use xborder_geo::WORLD;
use xborder_netsim::time::{SimTime, TimeWindow};
use xborder_netsim::Infrastructure;

/// One cumulative rolling-window snapshot, emitted mid-stream after every
/// user covered by its window has been ingested.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RollingSnapshot {
    /// Zero-based window index (`0..K`).
    pub index: usize,
    /// Exclusive sim-time upper bound of the window.
    pub window_end: SimTime,
    /// Users covered (`user id < users_covered`): the prefix of the
    /// population recruited by `window_end` under linear recruitment.
    pub users_covered: usize,
    /// Visits covered.
    pub visits: u64,
    /// Requests covered.
    pub requests: u64,
    /// Blocklist-labeled (stage 1) tracking requests covered.
    pub abp_requests: u64,
    /// Semi-automatic (stage 2/3) tracking requests covered.
    pub semi_requests: u64,
    /// Distinct IPs among covered tracking requests.
    pub distinct_tracker_ips: usize,
    /// Tracking requests originating from EU28 users.
    pub eu28_tracking: u64,
    /// Of those, requests whose destination IP's true country is EU28.
    pub eu28_confined: u64,
    /// Of those, requests whose destination IP has no known true country.
    pub eu28_unresolved: u64,
}

impl RollingSnapshot {
    /// Total tracking requests covered (both methods).
    pub fn tracking_requests(&self) -> u64 {
        self.abp_requests + self.semi_requests
    }

    /// Share of resolved EU28-origin tracking requests confined to EU28
    /// destinations (0.0 when nothing resolved yet).
    pub fn confinement(&self) -> f64 {
        let resolved = self.eu28_tracking - self.eu28_unresolved;
        if resolved == 0 {
            0.0
        } else {
            self.eu28_confined as f64 / resolved as f64
        }
    }
}

/// The `K` window boundaries and their user-coverage caps, all in exact
/// integer math (`u128` intermediates) so every chunking computes the
/// same boundaries.
#[derive(Debug)]
struct SnapshotWindows {
    ends: Vec<SimTime>,
    user_caps: Vec<usize>,
}

impl SnapshotWindows {
    fn new(study: TimeWindow, n_users: usize, windows: usize) -> SnapshotWindows {
        let start = study.start.0;
        let len = study.len_secs();
        let k = windows as u128;
        let ends: Vec<SimTime> = (1..=windows as u128)
            .map(|i| SimTime(start + (i * len as u128 / k) as u64))
            .collect();
        let user_caps: Vec<usize> = ends
            .iter()
            .map(|e| {
                if len == 0 {
                    n_users
                } else {
                    ((e.0 - start) as u128 * n_users as u128 / len as u128) as usize
                }
            })
            .collect();
        debug_assert_eq!(ends.last().map(|e| e.0), Some(start + len));
        debug_assert_eq!(user_caps.last().copied(), Some(n_users));
        SnapshotWindows { ends, user_caps }
    }

    /// First snapshot index whose coverage includes `(user, t)` — events
    /// land in the *delta bucket* of that snapshot.
    fn entry(&self, user: u32, t: SimTime) -> usize {
        let by_time = self.ends.partition_point(|w| w.0 <= t.0);
        let by_user = self.user_caps.partition_point(|c| *c <= user as usize);
        let e = by_time.max(by_user);
        debug_assert!(
            e < self.ends.len(),
            "event (user {user}, t {}) outside the study window",
            t.0
        );
        e.min(self.ends.len() - 1)
    }
}

/// Per-bucket deltas, absorbed into cumulative totals at emission.
#[derive(Debug, Default)]
struct Delta {
    visits: u64,
    requests: u64,
    abp: u64,
    semi: u64,
    eu28_tracking: u64,
    eu28_confined: u64,
    eu28_unresolved: u64,
    tracker_ips: Vec<IpAddr>,
}

/// Streaming accumulator: chunks feed per-bucket deltas as they commit;
/// a snapshot emits once every user its window covers has been ingested.
#[derive(Debug)]
pub(crate) struct SnapshotAccumulator {
    wins: SnapshotWindows,
    /// Per-user "is the user's country EU28" truth, precomputed from the
    /// population (user ids are recruitment order, densely 0..n).
    user_eu28: Vec<bool>,
    buckets: Vec<Delta>,
    /// Buckets absorbed so far == snapshots emitted so far.
    emitted: usize,
    cum: Delta,
    cum_ips: HashSet<IpAddr>,
    snapshots: Vec<RollingSnapshot>,
}

impl SnapshotAccumulator {
    pub(crate) fn new(
        study: TimeWindow,
        population: &UserPopulation,
        windows: usize,
    ) -> SnapshotAccumulator {
        let user_eu28 = population
            .users
            .iter()
            .map(|u| WORLD.country(u.country).map(|c| c.eu28).unwrap_or(false))
            .collect();
        SnapshotAccumulator {
            wins: SnapshotWindows::new(study, population.users.len(), windows),
            user_eu28,
            buckets: (0..windows).map(|_| Delta::default()).collect(),
            emitted: 0,
            cum: Delta::default(),
            cum_ips: HashSet::new(),
            snapshots: Vec::new(),
        }
    }

    /// Buckets one committed chunk's events. `labels` is parallel to
    /// `requests`; both are chunk-local (user ids are global).
    pub(crate) fn absorb_chunk(
        &mut self,
        visits: &[Visit],
        requests: &[LoggedRequest],
        labels: &[Classification],
        infra: &Infrastructure,
    ) {
        debug_assert_eq!(requests.len(), labels.len());
        for v in visits {
            self.buckets[self.wins.entry(v.user.0, v.time)].visits += 1;
        }
        for (r, l) in requests.iter().zip(labels) {
            let d = &mut self.buckets[self.wins.entry(r.user.0, r.time)];
            d.requests += 1;
            match l {
                Classification::AbpTracking => d.abp += 1,
                Classification::SemiTracking => d.semi += 1,
                Classification::Clean => continue,
            }
            d.tracker_ips.push(r.ip);
            if self.user_eu28.get(r.user.0 as usize).copied().unwrap_or(false) {
                d.eu28_tracking += 1;
                match infra.true_country_of(r.ip) {
                    Some(code) => {
                        if WORLD.country(code).map(|c| c.eu28).unwrap_or(false) {
                            d.eu28_confined += 1;
                        }
                    }
                    None => d.eu28_unresolved += 1,
                }
            }
        }
    }

    /// Is the next snapshot fully covered once `users_ingested` users are
    /// durable?
    pub(crate) fn due(&self, users_ingested: usize) -> bool {
        self.emitted < self.buckets.len() && self.wins.user_caps[self.emitted] <= users_ingested
    }

    /// Absorbs the next bucket into the cumulative totals and emits its
    /// snapshot, returning the snapshot index (for the kill-site label).
    pub(crate) fn emit_next(&mut self) -> usize {
        let i = self.emitted;
        let d = std::mem::take(&mut self.buckets[i]);
        self.cum.visits += d.visits;
        self.cum.requests += d.requests;
        self.cum.abp += d.abp;
        self.cum.semi += d.semi;
        self.cum.eu28_tracking += d.eu28_tracking;
        self.cum.eu28_confined += d.eu28_confined;
        self.cum.eu28_unresolved += d.eu28_unresolved;
        self.cum_ips.extend(d.tracker_ips);
        self.snapshots.push(RollingSnapshot {
            index: i,
            window_end: self.wins.ends[i],
            users_covered: self.wins.user_caps[i],
            visits: self.cum.visits,
            requests: self.cum.requests,
            abp_requests: self.cum.abp,
            semi_requests: self.cum.semi,
            distinct_tracker_ips: self.cum_ips.len(),
            eu28_tracking: self.cum.eu28_tracking,
            eu28_confined: self.cum.eu28_confined,
            eu28_unresolved: self.cum.eu28_unresolved,
        });
        self.emitted = i + 1;
        i
    }

    /// The emitted snapshots, consumed at finalize.
    pub(crate) fn into_snapshots(self) -> Vec<RollingSnapshot> {
        self.snapshots
    }
}

/// Recomputes what the rolling snapshots must be, from a *completed*
/// dataset — a deliberately naive, independent implementation (per-window
/// filter + count over the whole log) used by the prefix-consistency pin
/// in `tests/rolling_snapshots.rs` and by batch-side consumers that want
/// the same windows without streaming.
///
/// `labels` is parallel to `dataset.requests`.
pub fn batch_snapshots(
    dataset: &ExtensionDataset,
    labels: &[Classification],
    infra: &Infrastructure,
    study: TimeWindow,
    windows: usize,
) -> Vec<RollingSnapshot> {
    assert_eq!(dataset.requests.len(), labels.len());
    let wins = SnapshotWindows::new(study, dataset.users.users.len(), windows);
    let user_eu28: Vec<bool> = dataset
        .users
        .users
        .iter()
        .map(|u| WORLD.country(u.country).map(|c| c.eu28).unwrap_or(false))
        .collect();
    (0..windows)
        .map(|i| {
            let end = wins.ends[i];
            let cap = wins.user_caps[i] as u32;
            let covered =
                |user: u32, t: SimTime| -> bool { user < cap && t.0 < end.0 };
            let visits = dataset
                .visits
                .iter()
                .filter(|v| covered(v.user.0, v.time))
                .count() as u64;
            let mut snap = RollingSnapshot {
                index: i,
                window_end: end,
                users_covered: cap as usize,
                visits,
                requests: 0,
                abp_requests: 0,
                semi_requests: 0,
                distinct_tracker_ips: 0,
                eu28_tracking: 0,
                eu28_confined: 0,
                eu28_unresolved: 0,
            };
            let mut ips: HashSet<IpAddr> = HashSet::new();
            for (r, l) in dataset.requests.iter().zip(labels) {
                if !covered(r.user.0, r.time) {
                    continue;
                }
                snap.requests += 1;
                match l {
                    Classification::AbpTracking => snap.abp_requests += 1,
                    Classification::SemiTracking => snap.semi_requests += 1,
                    Classification::Clean => continue,
                }
                ips.insert(r.ip);
                if user_eu28.get(r.user.0 as usize).copied().unwrap_or(false) {
                    snap.eu28_tracking += 1;
                    match infra.true_country_of(r.ip) {
                        Some(code) => {
                            if WORLD.country(code).map(|c| c.eu28).unwrap_or(false) {
                                snap.eu28_confined += 1;
                            }
                        }
                        None => snap.eu28_unresolved += 1,
                    }
                }
            }
            snap.distinct_tracker_ips = ips.len();
            snap
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_boundaries_are_exact_and_monotone() {
        let study = TimeWindow::new(SimTime(1000), SimTime(1000 + 997));
        let wins = SnapshotWindows::new(study, 13, 5);
        assert_eq!(wins.ends.len(), 5);
        assert_eq!(wins.ends.last().unwrap().0, 1997, "last window end = study end");
        assert_eq!(*wins.user_caps.last().unwrap(), 13, "last cap = all users");
        for w in wins.ends.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        for c in wins.user_caps.windows(2) {
            assert!(c[0] <= c[1]);
        }
    }

    #[test]
    fn entry_bucket_is_max_of_both_dimensions() {
        let study = TimeWindow::new(SimTime(0), SimTime(100));
        let wins = SnapshotWindows::new(study, 10, 4);
        // ends = 25, 50, 75, 100; caps = 2, 5, 7, 10 (floor(e*10/100)).
        assert_eq!(wins.entry(0, SimTime(0)), 0);
        // User 0 but late time → time dimension wins.
        assert_eq!(wins.entry(0, SimTime(60)), 2);
        // Early time but late user → user dimension wins.
        assert_eq!(wins.entry(8, SimTime(0)), 3);
        // Boundary: t == window end is *not* covered by that window.
        assert_eq!(wins.entry(0, SimTime(25)), 1);
        // Boundary: user == cap is *not* covered by that window.
        assert_eq!(wins.entry(2, SimTime(0)), 1);
    }

    #[test]
    fn single_window_covers_everything() {
        let study = TimeWindow::new(SimTime(0), SimTime(50));
        let wins = SnapshotWindows::new(study, 3, 1);
        assert_eq!(wins.entry(2, SimTime(49)), 0);
        assert_eq!(wins.user_caps, vec![3]);
    }
}
