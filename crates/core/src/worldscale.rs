//! Million-user worlds: the out-of-core extension pipeline (DESIGN.md §5j).
//!
//! [`crate::stream`] bounds the resident *study log* but still
//! materializes the full population up front and reassembles the full
//! [`xborder_browser::ExtensionDataset`] at finalization — both `O(world)`
//! allocations that cap it near 10⁵ users. This module is the driver for
//! [`crate::worldgen::WorldConfig::large`] worlds: the population is never
//! materialized (segments of users regenerate on demand from
//! `(pop_seed, user_range)`), committed segments live as columnar
//! [`SegmentBlock`]s in a bounded-residency [`SegmentStore`], and every
//! downstream analysis folds segment by segment into constant-size
//! aggregates instead of touching a concatenated log. Resident memory is
//! `O(segment_users × resident_segments)` plus the classifier's interned
//! state — never `O(n_users)`.
//!
//! ## The determinism contract, unchanged
//!
//! Segment size, resident window, thread budget, kill schedule and
//! checkpointing remain pure performance/availability knobs. The
//! mechanisms are the streaming driver's (per-user RNG streams,
//! offset-keyed log faults, delta-fixpoint classification), plus two
//! aggregate-level rules that make segmentation invisible in the folded
//! outputs:
//!
//! * **Commutative folds stay commutative.** The visit digest XORs
//!   per-visit hashes, so the batch driver's final timestamp sort cannot
//!   show; dataset stats fold through bitsets (users never span segments,
//!   so distinct counts are unions of segment-local sets); the tracker IP
//!   set folds through [`TrackerIpSet::absorb_tracking_request`].
//! * **Order-sensitive folds key on global coordinates.** The request
//!   digest chains in global log order and rebases cascade referrers to
//!   the *global* row index before hashing — a segment-local index would
//!   make the segment size observable.
//!
//! `tests/worldscale.rs` pins [`ScaleOutputs::fingerprint`] across segment
//! sizes × resident windows × thread budgets × kill schedules, and pins
//! every aggregate against the materialized batch pipeline on a shared
//! segmented config.

use crate::confine::DestBreakdown;
use crate::ips::{CompletionStats, IpInfo, TrackerIpSet};
use crate::pipeline::{geolocate_providers, EstimateMap};
use crate::stream::{
    config_fingerprint, corrupt, decode_chunk_payload, decode_completion_state,
    encode_chunk_payload, encode_completion_state, killable, labels_to_bytes, seg_err,
    StreamError,
};
use crate::worldgen::World;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::net::IpAddr;
use std::path::PathBuf;
use std::time::Instant;
use xborder_browser::{
    Referrer, RequestId, SegmentBlock, StudyChunk, StudyCtx, UserPopulation, LABEL_CLEAN,
};
use xborder_checkpoint::{ByteWriter, CheckpointError, CheckpointStore};
use xborder_classify::{
    generate_lists, ClassifierStages, IncrementalClassifier, MethodCounts,
};
use xborder_faults::{stable_hash, DegradationReport, FaultInjector, FaultPlan, KillSwitch};
use xborder_geo::Region;
use xborder_webgraph::{DomainTable, SegmentStore, SegmentStoreConfig};

/// How the out-of-core driver segments, spills and checkpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScaleConfig {
    /// Users per segment (clamped to ≥ 1). A pure performance knob.
    pub segment_users: usize,
    /// Committed segments kept resident; `0` keeps everything in RAM.
    /// A pure performance knob.
    pub resident_segments: usize,
    /// Scratch directory for spilled segments (disposable; deleted when
    /// the run ends). Required when `resident_segments > 0`.
    pub spill_dir: Option<PathBuf>,
    /// Checkpoint directory; `None` disables durability. The format is
    /// the streaming driver's (same chunk payloads, same manifest), so
    /// kill-anywhere resume works identically.
    pub checkpoint_dir: Option<PathBuf>,
}

impl ScaleConfig {
    /// In-memory out-of-core run: segmented execution, no spill, no
    /// checkpoints (aggregates are still constant-size; only the segment
    /// store is unbounded).
    pub fn in_memory(segment_users: usize) -> ScaleConfig {
        ScaleConfig {
            segment_users,
            resident_segments: 0,
            spill_dir: None,
            checkpoint_dir: None,
        }
    }

    /// Durable run: checkpoint every segment and stage into `dir`.
    pub fn durable(segment_users: usize, dir: impl Into<PathBuf>) -> ScaleConfig {
        ScaleConfig {
            checkpoint_dir: Some(dir.into()),
            ..ScaleConfig::in_memory(segment_users)
        }
    }

    /// Bounds resident segments: keep at most `window` in RAM, spilling
    /// older ones to `dir`.
    pub fn with_resident_window(
        mut self,
        window: usize,
        dir: impl Into<PathBuf>,
    ) -> ScaleConfig {
        self.resident_segments = window;
        self.spill_dir = Some(dir.into());
        self
    }
}

/// Everything the out-of-core pipeline distills from a world: the folded
/// analyses of [`crate::pipeline::StudyOutputs`] without the `O(world)`
/// dataset behind them.
#[derive(Debug)]
pub struct ScaleOutputs {
    /// Segments ingested (a function of the segment-size knob; excluded
    /// from [`ScaleOutputs::fingerprint`]).
    pub n_segments: usize,
    /// Table-1 statistics, folded through per-segment bitsets.
    pub stats: xborder_browser::DatasetStats,
    /// Order-insensitive digest of every visit row.
    pub visit_hash: u64,
    /// Order-sensitive digest of every request row (global log order,
    /// referrers rebased to global row indices).
    pub request_hash: u64,
    /// Table-2 counts for the easylist method.
    pub abp: MethodCounts,
    /// Table-2 counts for the semi-automatic method.
    pub semi: MethodCounts,
    /// Stage-2 fixpoint rounds (max across segments + 1, the batch figure).
    pub stage2_rounds: usize,
    /// Stage-3 fixpoint rounds.
    pub stage3_rounds: usize,
    /// Tracker IPs (observed + pDNS-completed) with validity windows.
    pub tracker_ips: TrackerIpSet,
    /// pDNS completion summary.
    pub completion: CompletionStats,
    /// IPmap estimates per tracker IP.
    pub ipmap_estimates: EstimateMap,
    /// MaxMind-style estimates per tracker IP.
    pub maxmind_estimates: EstimateMap,
    /// ip-api-style estimates per tracker IP.
    pub ipapi_estimates: EstimateMap,
    /// Destination breakdown of EU28-origin tracking flows under IPmap.
    pub eu28: DestBreakdown,
}

impl ScaleOutputs {
    /// Canonical digest of every knob-invariant output. Bit-identical
    /// across segment sizes, resident windows, thread budgets and kill
    /// schedules; `n_segments` (a knob echo) is deliberately excluded.
    pub fn fingerprint(&self) -> u64 {
        let mut w = ByteWriter::new();
        w.put_usize(self.stats.n_users);
        w.put_usize(self.stats.n_first_party_domains);
        w.put_usize(self.stats.n_first_party_requests);
        w.put_usize(self.stats.n_third_party_domains);
        w.put_usize(self.stats.n_third_party_requests);
        w.put_u64(self.visit_hash);
        w.put_u64(self.request_hash);
        for m in [&self.abp, &self.semi] {
            w.put_usize(m.n_fqdn);
            w.put_usize(m.n_tld);
            w.put_usize(m.n_unique_urls);
            w.put_usize(m.n_total_requests);
        }
        w.put_usize(self.stage2_rounds);
        w.put_usize(self.stage3_rounds);
        // Canonical tracker-set order: sorted by IP, hosts sorted within.
        let mut sorted: Vec<(&IpAddr, &IpInfo)> = self.tracker_ips.ips.iter().collect();
        sorted.sort_by_key(|(ip, _)| **ip);
        w.put_usize(sorted.len());
        for (ip, info) in sorted {
            put_ip(&mut w, *ip);
            w.put_u64(info.requests);
            let mut hosts: Vec<&str> = info.hosts.iter().map(|h| h.as_str()).collect();
            hosts.sort_unstable();
            w.put_usize(hosts.len());
            for h in hosts {
                w.put_str(h);
            }
            w.put_u64(info.window.start.0);
            w.put_u64(info.window.end.0);
            w.put_u8(info.from_pdns_only as u8);
        }
        w.put_usize(self.completion.n_observed);
        w.put_usize(self.completion.n_added);
        w.put_f64(self.completion.v4_share);
        w.put_f64(self.completion.added_v4_share);
        for map in [
            &self.ipmap_estimates,
            &self.maxmind_estimates,
            &self.ipapi_estimates,
        ] {
            let mut entries: Vec<_> = map.iter().collect();
            entries.sort_by_key(|(ip, _)| **ip);
            w.put_usize(entries.len());
            for (ip, est) in entries {
                put_ip(&mut w, *ip);
                w.put_bytes(&est.country.bytes());
            }
        }
        w.put_u64(self.eu28.total);
        for r in Region::ALL {
            w.put_u64(self.eu28.counts.get(&r).copied().unwrap_or(0));
        }
        stable_hash(&w.into_bytes())
    }
}

/// Digest of one visit row (XOR-folded by the caller, so the fold is
/// order-insensitive).
fn visit_row_hash(user: u32, publisher: u32, time: u64) -> u64 {
    let mut b = [0u8; 16];
    b[..4].copy_from_slice(&user.to_le_bytes());
    b[4..8].copy_from_slice(&publisher.to_le_bytes());
    b[8..16].copy_from_slice(&time.to_le_bytes());
    stable_hash(&b)
}

/// Digest of one request row at `global_row`. `parent` must already be a
/// *global* row index — hashing a segment-local index would make the
/// segment size observable in the chained fold.
fn request_row_hash(
    buf: &mut Vec<u8>,
    global_row: u64,
    r: &xborder_browser::LoggedRequest,
    parent: Option<u64>,
    first_party_ref: bool,
    label: u8,
) -> u64 {
    buf.clear();
    buf.extend_from_slice(&global_row.to_le_bytes());
    buf.extend_from_slice(&r.user.0.to_le_bytes());
    buf.extend_from_slice(&r.time.0.to_le_bytes());
    buf.extend_from_slice(&r.first_party.0.to_le_bytes());
    buf.extend_from_slice(&r.publisher.0.to_le_bytes());
    buf.extend_from_slice(&r.host.0.to_le_bytes());
    match (parent, first_party_ref) {
        (Some(p), _) => {
            buf.push(2);
            buf.extend_from_slice(&p.to_le_bytes());
        }
        (None, true) => buf.push(1),
        (None, false) => buf.push(0),
    }
    match r.ip {
        IpAddr::V4(v4) => {
            buf.push(4);
            buf.extend_from_slice(&v4.octets());
        }
        IpAddr::V6(v6) => {
            buf.push(6);
            buf.extend_from_slice(&v6.octets());
        }
    }
    buf.push(label);
    buf.extend_from_slice(r.url.as_bytes());
    stable_hash(buf)
}

/// Folds a *materialized* log into the `(visit_hash, request_hash)`
/// digests of [`ScaleOutputs`] — the bridge the equality tests use to pin
/// the out-of-core fold against the batch pipeline. `requests` must be in
/// global log order with global referrers (a batch
/// [`crate::pipeline::StudyOutputs`] dataset qualifies as-is); the visit
/// fold is order-insensitive.
pub fn dataset_digests(
    visits: &[xborder_browser::Visit],
    requests: &[xborder_browser::LoggedRequest],
    labels: &[u8],
) -> (u64, u64) {
    assert_eq!(labels.len(), requests.len(), "one label byte per request");
    let mut visit_hash = 0u64;
    for v in visits {
        visit_hash ^= visit_row_hash(v.user.0, v.publisher.0, v.time.0);
    }
    let mut request_hash = 0u64;
    let mut buf = Vec::with_capacity(256);
    for (i, r) in requests.iter().enumerate() {
        let (parent, fp) = match r.referrer {
            Referrer::None => (None, false),
            Referrer::FirstParty => (None, true),
            Referrer::Request(RequestId(p)) => (Some(p as u64), false),
        };
        request_hash = request_hash.rotate_left(3)
            ^ request_row_hash(&mut buf, i as u64, r, parent, fp, labels[i]);
    }
    (visit_hash, request_hash)
}

fn put_ip(w: &mut ByteWriter, ip: IpAddr) {
    match ip {
        IpAddr::V4(v4) => {
            w.put_u8(4);
            w.put_bytes(&v4.octets());
        }
        IpAddr::V6(v6) => {
            w.put_u8(6);
            w.put_bytes(&v6.octets());
        }
    }
}

/// Dense-id membership set: the out-of-core stand-in for the batch
/// driver's `HashSet<PublisherId>` / `HashSet<DomainId>` — same distinct
/// counts, `n/8` bytes, no per-insert allocation.
struct Bitset {
    words: Vec<u64>,
    count: usize,
}

impl Bitset {
    fn new(n: usize) -> Bitset {
        Bitset {
            words: vec![0; n.div_ceil(64)],
            count: 0,
        }
    }

    fn insert(&mut self, i: usize) {
        let (word, bit) = (i / 64, 1u64 << (i % 64));
        if self.words[word] & bit == 0 {
            self.words[word] |= bit;
            self.count += 1;
        }
    }
}

/// The constant-size fold state every segment absorbs into. All fields
/// are either commutative (bitsets, XOR digest, tracker set) or chained
/// in global log order with global coordinates (request digest), so the
/// final values are invariant to how the stream was segmented.
struct Aggregates {
    visited_publishers: Bitset,
    request_hosts: Bitset,
    n_visits: u64,
    n_requests: u64,
    visit_hash: u64,
    request_hash: u64,
    tracker_ips: TrackerIpSet,
    row_buf: Vec<u8>,
}

impl Aggregates {
    fn new(n_publishers: usize, n_domains: usize) -> Aggregates {
        Aggregates {
            visited_publishers: Bitset::new(n_publishers),
            request_hosts: Bitset::new(n_domains),
            n_visits: 0,
            n_requests: 0,
            visit_hash: 0,
            request_hash: 0,
            tracker_ips: TrackerIpSet::default(),
            row_buf: Vec::with_capacity(256),
        }
    }

    /// Folds one classified chunk. `labels` are the per-request tag bytes;
    /// chunks must arrive in user (= global log) order for the request
    /// digest to chain correctly.
    fn absorb_chunk(&mut self, chunk: &StudyChunk, labels: &[u8], domains: &DomainTable) {
        debug_assert_eq!(labels.len(), chunk.requests.len());
        for v in &chunk.visits {
            self.visited_publishers.insert(v.publisher.0 as usize);
            // XOR fold: the batch dataset sorts visits by timestamp at
            // finalization; an order-insensitive digest sees through that.
            self.visit_hash ^= visit_row_hash(v.user.0, v.publisher.0, v.time.0);
        }
        self.n_visits += chunk.visits.len() as u64;
        let base = self.n_requests;
        for (i, r) in chunk.requests.iter().enumerate() {
            self.request_hosts.insert(r.host.0 as usize);
            // Chunk-local parent row → global row: referrers never cross
            // users (hence never chunks), so parent and child share the
            // same base offset.
            let (parent, fp) = match r.referrer {
                Referrer::None => (None, false),
                Referrer::FirstParty => (None, true),
                Referrer::Request(RequestId(p)) => (Some(base + p as u64), false),
            };
            self.request_hash = self.request_hash.rotate_left(3)
                ^ request_row_hash(&mut self.row_buf, base + i as u64, r, parent, fp, labels[i]);
            if labels[i] != LABEL_CLEAN {
                self.tracker_ips
                    .absorb_tracking_request(r.ip, domains.domain(r.host), r.time);
            }
        }
        self.n_requests += chunk.requests.len() as u64;
    }

    fn stats(&self, n_users: usize) -> xborder_browser::DatasetStats {
        xborder_browser::DatasetStats {
            n_users,
            n_first_party_domains: self.visited_publishers.count,
            n_first_party_requests: self.n_visits as usize,
            n_third_party_domains: self.request_hosts.count,
            n_third_party_requests: self.n_requests as usize,
        }
    }
}

/// Runs the extension pipeline out of core against a segmented world.
///
/// Requires a [`crate::worldgen::WorldConfig::large`]-style config
/// (`study.population.segmented` set); panics otherwise, because a
/// non-segmented population cannot be regenerated range by range.
/// Checkpointing, kill-anywhere resume and the error surface match
/// [`crate::stream::run_extension_pipeline_streaming`].
pub fn run_worldscale_pipeline(
    world: &mut World,
    plan: &FaultPlan,
    scale_cfg: &ScaleConfig,
    kill: &KillSwitch,
) -> Result<(ScaleOutputs, DegradationReport), StreamError> {
    assert!(
        world.config.study.population.segmented,
        "worldscale requires a segmented population config (WorldConfig::large)"
    );
    let inj = FaultInjector::new(plan.clone());
    let mut report = DegradationReport::default();
    let threads = world.config.parallelism.threads.max(1);
    let t_total = Instant::now();

    let fingerprint = config_fingerprint(&world.config, plan)?;
    let mut store = match &scale_cfg.checkpoint_dir {
        Some(dir) => Some(CheckpointStore::open(dir, fingerprint)?),
        None => None,
    };

    // World-RNG draws mirror the batch/streaming drivers on a segmented
    // config bit for bit: one study-stream draw, then the single
    // `pop_seed` draw segmented population generation consumes, then the
    // study seed — without materializing a single user.
    let mut rng = StdRng::seed_from_u64(world.study_rng.gen());
    let pop_seed: u64 = rng.gen();
    let study_seed: u64 = rng.gen();
    let pop_cfg = world.config.study.population.clone();
    let n_users = pop_cfg.n_users;
    let segment_users = scale_cfg.segment_users.max(1);
    // Population-wide mean activity, streamed without a user vector (the
    // per-user visit budget normalizes by it, so it must never be
    // computed per segment).
    let mean_activity = UserPopulation::mean_activity_segmented(&pop_cfg, pop_seed);

    let (easylist, easyprivacy) = generate_lists(&world.graph);
    let stages = ClassifierStages::default();
    let t_compile = Instant::now();
    let mut classifier = IncrementalClassifier::new(&easylist, &easyprivacy, stages);
    let mut classify_ms = t_compile.elapsed().as_secs_f64() * 1e3;

    let seg_cfg = match (&scale_cfg.spill_dir, scale_cfg.resident_segments) {
        (Some(dir), window) if window > 0 => SegmentStoreConfig::bounded(window, dir.clone()),
        _ => SegmentStoreConfig::unbounded(),
    };
    let mut segments: SegmentStore<SegmentBlock> = SegmentStore::new(seg_cfg);
    let mut segment_io_ms = 0.0f64;
    let mut agg = Aggregates::new(world.graph.publishers.len(), world.graph.domains().len());
    let mut stage2_depth = 0usize;
    let mut stage3_rounds = 0usize;
    let mut pre_fault_offset: u64 = 0;
    let mut next_user = 0usize;

    // Replay durable segments instead of simulating them; aggregates fold
    // from the decoded blocks, so a resumed run accumulates exactly what
    // the killed run had.
    if let Some(store) = &store {
        for entry in store.chunks().to_vec() {
            if entry.user_start != next_user as u64
                || entry.user_end < entry.user_start
                || entry.user_end > n_users as u64
            {
                return Err(CheckpointError::ManifestInvalid {
                    detail: format!(
                        "chunk {} covers users {}..{} but {} of {} users are accounted for",
                        entry.index, entry.user_start, entry.user_end, next_user, n_users
                    ),
                }
                .into());
            }
            let payload = store.load_chunk(&entry)?;
            let (block, cls_bytes) = decode_chunk_payload(&entry.file, &payload)?;
            let mut rd = xborder_checkpoint::ByteReader::new(cls_bytes);
            classifier
                .apply_delta(&mut rd, world.graph.domains())
                .map_err(|e| corrupt(&entry.file, e))?;
            rd.finish().map_err(|e| corrupt(&entry.file, e))?;
            let observations = block.observations_vec();
            world
                .dns
                .absorb_id_observations(&observations, world.graph.domains());
            let (chunk, label_bytes, seg_stage2, seg_stage3) = block.to_chunk();
            agg.absorb_chunk(&chunk, &label_bytes, world.graph.domains());
            report.absorb_counters(&chunk.report);
            stage2_depth = stage2_depth.max((seg_stage2 as usize).saturating_sub(1));
            stage3_rounds = stage3_rounds.max(seg_stage3 as usize);
            pre_fault_offset += block.counters().requests_generated;
            next_user = entry.user_end as usize;
            let t_seg = Instant::now();
            segments.push(block).map_err(seg_err)?;
            segment_io_ms += t_seg.elapsed().as_secs_f64() * 1e3;
        }
    }

    // Ingest the remaining users segment by segment. Each iteration holds
    // one regenerated user slice and one AoS chunk; both die before the
    // next segment starts, so live memory is one segment of simulation
    // plus the store's resident window plus the fold state.
    let t_ingest = Instant::now();
    let cls_ms_before_ingest = classify_ms;
    let seg_ms_before_ingest = segment_io_ms;
    {
        let (view, pdns) = world.dns.indexed_view_and_pdns(world.graph.domains());
        let ctx = StudyCtx::new(
            &world.config.study,
            &world.graph,
            view,
            study_seed,
            mean_activity,
        );
        let mut index = segments.len() as u64;
        while next_user < n_users {
            let end = (next_user + segment_users).min(n_users);
            killable(kill, &format!("chunk-{index}:begin"))?;
            let users =
                UserPopulation::generate_range(&pop_cfg, pop_seed, next_user as u32..end as u32);
            let chunk = ctx.simulate_users(&users, &inj, threads, pre_fault_offset);
            drop(users);
            let t_cls = Instant::now();
            let cls = classifier.append_chunk(&chunk.requests, world.graph.domains());
            classify_ms += t_cls.elapsed().as_secs_f64() * 1e3;
            let labels_u8 = labels_to_bytes(&cls.labels);
            let block = SegmentBlock::from_chunk(
                &chunk,
                &labels_u8,
                cls.stage2_rounds as u32,
                cls.stage3_rounds as u32,
                (next_user as u32, end as u32),
            );
            if let Some(store) = &mut store {
                let payload = encode_chunk_payload(&block, &mut classifier);
                store.append_chunk(index, next_user as u64, end as u64, &payload, kill)?;
            }
            killable(kill, &format!("chunk-{index}:committed"))?;
            for o in &chunk.observations {
                pdns.observe(world.graph.domains().domain(o.host), o.ip, o.time);
            }
            agg.absorb_chunk(&chunk, &labels_u8, world.graph.domains());
            report.absorb_counters(&chunk.report);
            stage2_depth = stage2_depth.max(cls.stage2_rounds.saturating_sub(1));
            stage3_rounds = stage3_rounds.max(cls.stage3_rounds);
            pre_fault_offset += chunk.report.requests_generated;
            let t_seg = Instant::now();
            segments.push(block).map_err(seg_err)?;
            segment_io_ms += t_seg.elapsed().as_secs_f64() * 1e3;
            next_user = end;
            index += 1;
        }
    }
    killable(kill, "stage:study:done")?;
    report.timings.study_ms = t_ingest.elapsed().as_secs_f64() * 1e3
        - (classify_ms - cls_ms_before_ingest)
        - (segment_io_ms - seg_ms_before_ingest);

    let (abp, semi) = classifier.counts();
    let stage2_rounds = 1 + stage2_depth;
    report.timings.classify_ms = classify_ms;
    killable(kill, "stage:classify:done")?;

    // Tracker completion — the stage-boundary checkpoint, shared format
    // with the streaming driver. The observed set was folded during
    // ingest; only the pDNS walk happens here.
    let t_stage = Instant::now();
    let durable_completion = match &store {
        Some(s) => s.load_stage("completion")?,
        None => None,
    };
    let (tracker_ips, completion) = match durable_completion {
        Some(payload) => {
            let (ips, stats, delta) = decode_completion_state(&payload)?;
            report.absorb_counters(&delta);
            (ips, stats)
        }
        None => {
            let mut tracker_ips = std::mem::take(&mut agg.tracker_ips);
            let mut delta = DegradationReport::default();
            let stats =
                tracker_ips.complete_with_pdns_degraded(world.dns.pdns(), &inj, &mut delta);
            report.absorb_counters(&delta);
            if let Some(store) = &mut store {
                let payload = encode_completion_state(&tracker_ips, &stats, &delta);
                store.put_stage("completion", &payload, kill)?;
            }
            (tracker_ips, stats)
        }
    };
    report.timings.completion_ms = t_stage.elapsed().as_secs_f64() * 1e3;
    killable(kill, "stage:completion:done")?;

    let t_stage = Instant::now();
    let (ipmap_estimates, maxmind_estimates, ipapi_estimates) =
        geolocate_providers(world, &mut rng, &tracker_ips, &inj, &mut report, threads);
    report.timings.geolocate_ms = t_stage.elapsed().as_secs_f64() * 1e3;
    killable(kill, "stage:geolocate:done")?;

    // EU28 confinement needs user countries, which the fold state never
    // kept: a second sequential pass over the stored segments regenerates
    // each segment's users (pure in `(pop_seed, range)`) and folds the
    // flows. Under a bounded window this reloads spilled segments one at
    // a time — still `O(window)` resident.
    let mut eu28 = DestBreakdown::default();
    for i in 0..segments.len() {
        let t_seg = Instant::now();
        let block = segments.get(i).map_err(seg_err)?;
        segment_io_ms += t_seg.elapsed().as_secs_f64() * 1e3;
        let users = UserPopulation::generate_range(
            &pop_cfg,
            pop_seed,
            block.user_start..block.user_end,
        );
        for row in 0..block.n_requests() {
            if !block.is_tracking(row) {
                continue;
            }
            let local = (block.request_user(row) - block.user_start) as usize;
            eu28.absorb_eu28_flow(
                users[local].country,
                block.request_ip(row),
                &ipmap_estimates,
            );
        }
    }
    report.eu28_confinement = eu28.share(Region::Eu28);

    let seg_stats = segments.stats();
    report.timings.peak_resident_bytes = seg_stats.peak_resident_bytes;
    report.timings.segments_spilled = seg_stats.segments_spilled;
    report.timings.segments_reloaded = seg_stats.segments_reloaded;
    report.timings.segment_io_ms = segment_io_ms;
    report.timings.total_ms = t_total.elapsed().as_secs_f64() * 1e3;

    let n_segments = segments.len();
    let stats = agg.stats(n_users);
    Ok((
        ScaleOutputs {
            n_segments,
            stats,
            visit_hash: agg.visit_hash,
            request_hash: agg.request_hash,
            abp,
            semi,
            stage2_rounds,
            stage3_rounds,
            tracker_ips,
            completion,
            ipmap_estimates,
            maxmind_estimates,
            ipapi_estimates,
            eu28,
        },
        report,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitset_counts_distinct_inserts() {
        let mut b = Bitset::new(130);
        for i in [0, 1, 64, 64, 129, 0] {
            b.insert(i);
        }
        assert_eq!(b.count, 4);
    }

    #[test]
    fn aggregates_request_digest_is_order_sensitive() {
        // Two chunks absorbed in opposite orders must disagree: the
        // request digest is chained, not commutative (the global log has
        // one order).
        use xborder_browser::{LoggedRequest, UserId, LABEL_ABP};
        use xborder_netsim::time::SimTime;
        use xborder_webgraph::{DomainId, PublisherId};
        let domains = {
            let mut t = DomainTable::default();
            t.intern(&xborder_webgraph::Domain::new("a.example"));
            t.intern(&xborder_webgraph::Domain::new("b.example"));
            t
        };
        let req = |host: u32, url: &str| LoggedRequest {
            user: UserId(0),
            time: SimTime(1),
            first_party: DomainId(0),
            publisher: PublisherId(0),
            url: url.into(),
            host: DomainId(host),
            referrer: Referrer::FirstParty,
            ip: "10.0.0.1".parse().unwrap(),
        };
        let chunk = |host: u32, url: &str| StudyChunk {
            visits: vec![],
            requests: vec![req(host, url)],
            observations: vec![],
            report: DegradationReport::default(),
        };
        let (c1, c2) = (chunk(0, "https://a.example/x"), chunk(1, "https://b.example/y"));
        let mut fwd = Aggregates::new(4, 4);
        fwd.absorb_chunk(&c1, &[LABEL_ABP], &domains);
        fwd.absorb_chunk(&c2, &[LABEL_ABP], &domains);
        let mut rev = Aggregates::new(4, 4);
        rev.absorb_chunk(&c2, &[LABEL_ABP], &domains);
        rev.absorb_chunk(&c1, &[LABEL_ABP], &domains);
        assert_ne!(fwd.request_hash, rev.request_hash);
        // The visit digest and distinct counts stay commutative.
        assert_eq!(fwd.visit_hash, rev.visit_hash);
        assert_eq!(fwd.request_hosts.count, rev.request_hosts.count);
    }
}
