//! Multi-regulation compliance monitoring.
//!
//! The paper's conclusion: *"We can continuously monitor the compliance to
//! GDPR over time and also include the monitoring of other regulations in
//! the future at different regional (e.g., USA) or content scope
//! (Children's Online Privacy Protection Act — COPPA)."* This module is
//! that generalization: a regulation is a *scope* (which flows it covers)
//! plus a *concern predicate* (what makes a covered flow worth a
//! regulator's attention), evaluated over the same classified dataset.

use crate::pipeline::{EstimateMap, StudyOutputs};
use crate::sensitive::SensitiveSites;
use crate::worldgen::World;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use xborder_geo::{CountryCode, WORLD};
use xborder_webgraph::SiteCategory;

/// A modelled data-protection regulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Regulation {
    /// EU General Data Protection Regulation: covers EU28 users' flows;
    /// the investigability concern is termination outside EU28 (Sect. 2.1),
    /// aggravated on Article-9 sensitive sites.
    Gdpr,
    /// Children's Online Privacy Protection Act (US): covers *any* tracking
    /// on child-directed sites — collection itself is the concern, borders
    /// are irrelevant.
    Coppa,
    /// A US state privacy regime (CCPA-like): covers US users' flows;
    /// concern is termination outside the US (no access for state AGs).
    UsState,
}

impl Regulation {
    /// All modelled regulations.
    pub const ALL: [Regulation; 3] = [Regulation::Gdpr, Regulation::Coppa, Regulation::UsState];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Regulation::Gdpr => "GDPR (EU28)",
            Regulation::Coppa => "COPPA (child-directed)",
            Regulation::UsState => "US state privacy",
        }
    }
}

/// Per-operator findings under one regulation.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OperatorFinding {
    /// Covered flows terminating at this operator.
    pub flows: u64,
    /// Covered flows raising the regulation's concern.
    pub concerning: u64,
    /// Destination countries seen for concerning flows.
    pub destinations: Vec<CountryCode>,
}

/// The compliance report for one regulation over one study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComplianceReport {
    /// Which regulation.
    pub regulation: Regulation,
    /// Tracking flows in the regulation's scope.
    pub in_scope: u64,
    /// Scope flows raising the concern.
    pub concerning: u64,
    /// Per-operator breakdown.
    pub per_operator: HashMap<String, OperatorFinding>,
}

impl ComplianceReport {
    /// Share of in-scope flows raising the concern.
    pub fn concern_share(&self) -> f64 {
        if self.in_scope == 0 {
            0.0
        } else {
            self.concerning as f64 / self.in_scope as f64
        }
    }

    /// Operators ranked by concerning flows.
    pub fn top_operators(&self, n: usize) -> Vec<(&String, &OperatorFinding)> {
        let mut v: Vec<_> = self.per_operator.iter().collect();
        v.sort_by(|a, b| b.1.concerning.cmp(&a.1.concerning).then(a.0.cmp(b.0)));
        v.truncate(n);
        v
    }
}

/// Runs one regulation's audit over a classified study.
///
/// `sensitive_sites` feeds GDPR's aggravation logic; pass the detector
/// output from [`crate::sensitive::detect_sensitive_sites`].
pub fn audit(
    regulation: Regulation,
    world: &World,
    out: &StudyOutputs,
    estimates: &EstimateMap,
    sensitive_sites: &SensitiveSites,
) -> ComplianceReport {
    let mut report = ComplianceReport {
        regulation,
        in_scope: 0,
        concerning: 0,
        per_operator: HashMap::new(),
    };
    let us = CountryCode::parse("US").expect("static code");

    for (i, r) in out.dataset.requests.iter().enumerate() {
        if !out.classification.is_tracking(i) {
            continue;
        }
        let user_country = out.dataset.user_country(r.user);
        let publisher = world.graph.publisher(r.publisher);
        let est = estimates.get(&r.ip);

        // Scope check.
        let in_scope = match regulation {
            Regulation::Gdpr => WORLD.country_or_panic(user_country).eu28,
            Regulation::Coppa => publisher.category == SiteCategory::Kids,
            Regulation::UsState => user_country == us,
        };
        if !in_scope {
            continue;
        }
        report.in_scope += 1;

        // Concern check.
        let concerning = match regulation {
            Regulation::Gdpr => {
                // Cross-EU28 termination hampers investigation; sensitive
                // sites are in scope regardless of estimate availability.
                let left_eu = est.map(|e| !WORLD.country_or_panic(e.country).eu28).unwrap_or(false);
                let sensitive = sensitive_sites.detected.contains_key(&r.publisher);
                left_eu || (sensitive && est.is_none())
            }
            // COPPA: any tracking on a child-directed site is the finding.
            Regulation::Coppa => true,
            Regulation::UsState => est.map(|e| e.country != us).unwrap_or(false),
        };
        if !concerning {
            continue;
        }
        report.concerning += 1;

        let operator = world
            .graph
            .service_by_host_id(r.host)
            .map(|sid| world.graph.org_of(sid).name.clone())
            .unwrap_or_else(|| "unknown".to_owned());
        let finding = report.per_operator.entry(operator).or_default();
        finding.flows += 1;
        finding.concerning += 1;
        if let Some(e) = est {
            if !finding.destinations.contains(&e.country) {
                finding.destinations.push(e.country);
            }
        }
    }
    report
}

/// Renders a compliance report.
pub fn fmt_compliance(report: &ComplianceReport) -> String {
    use std::fmt::Write as _;
    let mut t = format!(
        "{} — {} flows in scope, {} concerning ({:.1}%)\n",
        report.regulation.name(),
        report.in_scope,
        report.concerning,
        report.concern_share() * 100.0
    );
    for (op, f) in report.top_operators(10) {
        let dests: Vec<String> = f.destinations.iter().take(5).map(|c| c.to_string()).collect();
        let _ = writeln!(t, "  {op:<16} {:>8} flows -> [{}]", f.concerning, dests.join(", "));
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::run_extension_pipeline;
    use crate::sensitive::{detect_sensitive_sites, DetectorConfig};
    use crate::worldgen::WorldConfig;
    use rand::{rngs::StdRng, SeedableRng};

    fn setup() -> (World, StudyOutputs, SensitiveSites) {
        let mut world = World::build(WorldConfig::small(71));
        let out = run_extension_pipeline(&mut world);
        let mut rng = StdRng::seed_from_u64(72);
        let sites = detect_sensitive_sites(&world.graph, &DetectorConfig::default(), &mut rng);
        (world, out, sites)
    }

    #[test]
    fn gdpr_audit_matches_confinement_analysis() {
        let (world, out, sites) = setup();
        let report = audit(Regulation::Gdpr, &world, &out, &out.ipmap_estimates, &sites);
        assert!(report.in_scope > 100);
        // GDPR concern share == EU28 leakage share from the confinement
        // analysis (same flows, same estimates).
        let b = crate::confine::region_breakdown_eu28(&out, &out.ipmap_estimates);
        let leakage = 1.0 - b.share(xborder_geo::Region::Eu28);
        // The audit counts flows without estimates as non-concerning while
        // the breakdown skips them, so allow a small gap.
        assert!(
            (report.concern_share() - leakage).abs() < 0.05,
            "audit {} vs breakdown {leakage}",
            report.concern_share()
        );
    }

    #[test]
    fn coppa_flags_all_kids_site_tracking() {
        let (world, out, sites) = setup();
        let report = audit(Regulation::Coppa, &world, &out, &out.ipmap_estimates, &sites);
        // Kids sites exist in the general category mix, so some flows must
        // be in scope — and every one of them is a finding.
        assert!(report.in_scope > 0, "no kids-site flows in the world");
        assert_eq!(report.in_scope, report.concerning);
        assert_eq!(report.concern_share(), 1.0);
    }

    #[test]
    fn us_state_audit_scopes_us_users() {
        let (world, out, sites) = setup();
        let report = audit(Regulation::UsState, &world, &out, &out.ipmap_estimates, &sites);
        // US users exist in the default population.
        assert!(report.in_scope > 0);
        // US confinement is high, so the concern share must be well below 1.
        assert!(report.concern_share() < 0.7, "share {}", report.concern_share());
    }

    #[test]
    fn per_operator_counts_sum_to_total() {
        let (world, out, sites) = setup();
        for reg in Regulation::ALL {
            let report = audit(reg, &world, &out, &out.ipmap_estimates, &sites);
            let sum: u64 = report.per_operator.values().map(|f| f.concerning).sum();
            assert_eq!(sum, report.concerning, "{reg:?}");
        }
    }

    #[test]
    fn report_renders() {
        let (world, out, sites) = setup();
        let report = audit(Regulation::Gdpr, &world, &out, &out.ipmap_estimates, &sites);
        let text = fmt_compliance(&report);
        assert!(text.contains("GDPR"));
    }
}
