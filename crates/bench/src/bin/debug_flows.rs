//! Diagnostic: where do one country's tracking flows actually go, and
//! through which organizations? Used for calibration, not part of the
//! reproduction surface.

use std::collections::HashMap;
use xborder_bench::{Repro, Scale};
use xborder_geo::CountryCode;

fn main() {
    let country = std::env::args().nth(1).unwrap_or_else(|| "ES".into());
    let country = CountryCode::parse(&country).expect("alpha-2 code");
    let scale = match std::env::args().nth(2).as_deref() {
        Some("paper") => Scale::Paper,
        _ => Scale::Small,
    };
    let repro = Repro::run(scale, 2018);
    let (world, out) = (&repro.world, &repro.out);

    let mut per_org: HashMap<String, (u64, u64, u64)> = HashMap::new(); // flows, confined, has_local_alternative
    let mut direct = 0u64;
    let mut cascade = 0u64;
    // Precompute per-host observed destination countries.
    let mut host_countries: HashMap<xborder_webgraph::DomainId, std::collections::HashSet<CountryCode>> =
        HashMap::new();
    for (i, r) in out.dataset.requests.iter().enumerate() {
        if !out.classification.is_tracking(i) {
            continue;
        }
        if let Some(est) = out.ipmap_estimates.get(&r.ip) {
            host_countries.entry(r.host).or_default().insert(est.country);
        }
    }
    for (i, r) in out.dataset.requests.iter().enumerate() {
        if !out.classification.is_tracking(i) {
            continue;
        }
        if out.dataset.user_country(r.user) != country {
            continue;
        }
        let Some(est) = out.ipmap_estimates.get(&r.ip) else {
            continue;
        };
        match r.referrer {
            xborder_browser::Referrer::Request(_) => cascade += 1,
            _ => direct += 1,
        }
        let org = world
            .graph
            .service_by_host_id(r.host)
            .map(|s| world.graph.service(s).tld.as_str().to_owned())
            .unwrap_or_default();
        let e = per_org.entry(org).or_default();
        e.0 += 1;
        if est.country == country {
            e.1 += 1;
        }
        if host_countries
            .get(&r.host)
            .is_some_and(|set| set.contains(&country))
        {
            e.2 += 1;
        }
    }
    let total: u64 = per_org.values().map(|v| v.0).sum();
    println!("{country} tracking flows: {total} (direct {direct}, cascade {cascade})");
    let mut rows: Vec<_> = per_org.into_iter().collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.1 .0));
    println!("{:<18} {:>8} {:>7} {:>9} {:>12}", "org", "flows", "share", "confined", "fqdn-alt");
    for (org, (flows, confined, alt)) in rows.iter().take(20) {
        println!(
            "{org:<18} {flows:>8} {:>6.1}% {:>8.1}% {:>11.1}%",
            *flows as f64 / total as f64 * 100.0,
            *confined as f64 / *flows as f64 * 100.0,
            *alt as f64 / *flows as f64 * 100.0
        );
    }
}
