//! NetFlow scale bench: line-rate synthetic flow generation joined against
//! the tracker-IP interval set, written to `BENCH_netflow.json` (run from
//! the repo root; see ci.sh).
//!
//! The workload is the Sect. 7 join stripped to its hot loop: columnar
//! [`FlowBlock`]s from the seeded synthetic generator, matched by the
//! compiled [`TrackerIntervalSet`]. Scales sweep 10⁶/10⁷/10⁸ records
//! (capped by `XBORDER_NETFLOW_MAX_RECORDS` for CI smoke runs) at thread
//! budgets {1, available}. A separate oracle section re-matches the same
//! stream through the per-record `HashSet` collector, asserts the results
//! identical, and records the interval-set speedup — the bench can never
//! report a fast number from a divergent matcher.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::net::{IpAddr, Ipv4Addr};
use std::time::Instant;
use xborder::Parallelism;
use xborder_geo::CountryCode;
use xborder_netflow::{
    generate_and_match_sharded, generate_only_sharded, FlowBlock, FlowCollector, SyntheticConfig,
    SyntheticFlowGen,
};
use xborder_netsim::{SimTime, TimeWindow};

/// Tracker list shaped like the real one: ~4096 addresses in CIDR-ish runs
/// of 1–8 (co-hosted tracker endpoints), validity windows on half of them
/// so the window side-table is exercised at every scale.
fn tracker_list(seed: u64) -> Vec<(Ipv4Addr, Option<TimeWindow>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<(Ipv4Addr, Option<TimeWindow>)> = Vec::new();
    while out.len() < 4096 {
        let base: u32 = rng.gen_range(0x0B00_0000..0xDF00_0000);
        let run = rng.gen_range(1..=8u32);
        let windowed = rng.gen_bool(0.5);
        for k in 0..run {
            // Windows cover most of the synthetic day, with staggered
            // edges so some records fall outside and the window check has
            // real work to do.
            let window = windowed.then(|| TimeWindow {
                start: SimTime(1_000 + (k as u64) * 500),
                end: SimTime(80_000 - (k as u64) * 500),
            });
            out.push((Ipv4Addr::from(base.wrapping_add(k)), window));
        }
    }
    out
}

/// A fresh oracle collector over the same list + windows.
fn oracle_collector(list: &[(Ipv4Addr, Option<TimeWindow>)]) -> FlowCollector {
    let mut c = FlowCollector::new(list.iter().map(|(ip, _)| IpAddr::V4(*ip)));
    for (ip, w) in list {
        if let Some(w) = w {
            c.set_validity(IpAddr::V4(*ip), *w);
        }
    }
    c
}

fn main() {
    let n_threads = Parallelism::from_env().threads;
    let cap: u64 = std::env::var("XBORDER_NETFLOW_MAX_RECORDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(u64::MAX);
    let scales: Vec<u64> = [1_000_000u64, 10_000_000, 100_000_000]
        .into_iter()
        .filter(|&s| s <= cap)
        .collect();
    assert!(
        !scales.is_empty(),
        "XBORDER_NETFLOW_MAX_RECORDS below the smallest scale (1e6)"
    );
    // Like bench_pipeline: an oversubscribed budget on a small box still
    // exercises the sharded join, and `threads_available` records what
    // actually backed it.
    let mut budgets = vec![1usize, 2, n_threads];
    budgets.sort_unstable();
    budgets.dedup();

    let list = tracker_list(0x7E_AC);
    let set = oracle_collector(&list).interval_set();
    let mut runs: Vec<serde_json::Value> = Vec::new();
    let mut headline_records_per_sec = 0.0f64;
    for &n_records in &scales {
        let cfg = SyntheticConfig {
            n_records,
            ..Default::default()
        };
        let gen = SyntheticFlowGen::new(cfg, list.iter().map(|(ip, _)| *ip));
        for &threads in &budgets {
            // Generation-only pass attributes the RNG-bound producer cost;
            // the full pass adds the interval-set join on top. Short runs
            // take the min of 3 (sub-second timings swing on a loaded
            // box); the 1e8 run is long enough to be stable single-shot.
            let rounds = if n_records <= 10_000_000 { 3 } else { 1 };
            let mut generate_ms = f64::INFINITY;
            let mut total_ms = f64::INFINITY;
            let mut stats = set.new_stats();
            for _ in 0..rounds {
                let t = Instant::now();
                let produced = generate_only_sharded(&gen, threads);
                generate_ms = generate_ms.min(t.elapsed().as_secs_f64() * 1e3);
                assert_eq!(produced, n_records, "generator lost records");
                let t = Instant::now();
                stats = generate_and_match_sharded(&gen, &set, threads);
                total_ms = total_ms.min(t.elapsed().as_secs_f64() * 1e3);
                assert_eq!(stats.total_flows, n_records, "join lost records");
            }
            let match_ms = (total_ms - generate_ms).max(0.0);
            let total_secs = (total_ms / 1e3).max(f64::MIN_POSITIVE);
            let records_per_sec = n_records as f64 / total_secs;
            let blocks_per_sec = gen.n_blocks() as f64 / total_secs;
            let match_rate = stats.tracking_flows as f64 / n_records.max(1) as f64;
            println!(
                "{n_records} records, {threads} threads: {total_ms:.0} ms \
                 (generate {generate_ms:.0}, match {match_ms:.0}; \
                 {records_per_sec:.2e} records/s, match rate {match_rate:.4})"
            );
            if n_records == scales[0] && threads == 1 {
                headline_records_per_sec = records_per_sec;
            }
            runs.push(serde_json::json!({
                "records": n_records,
                "threads": threads,
                "block_len": cfg.block_len,
                "generate_ms": generate_ms,
                "match_ms": match_ms,
                "total_ms": total_ms,
                "records_per_sec": records_per_sec,
                "blocks_per_sec": blocks_per_sec,
                "match_rate": match_rate,
            }));
        }
    }

    // --- Oracle section: same stream, per-record HashSet matcher. Blocks
    // are materialized once so both sides time matching alone.
    let oracle_records = scales.iter().copied().filter(|&s| s <= 10_000_000).max().unwrap();
    let gen = SyntheticFlowGen::new(
        SyntheticConfig {
            n_records: oracle_records,
            ..Default::default()
        },
        list.iter().map(|(ip, _)| *ip),
    );
    let blocks: Vec<FlowBlock> = (0..gen.n_blocks())
        .map(|idx| {
            let mut b = FlowBlock::with_capacity(gen.config().block_len);
            gen.fill_block(idx, &mut b);
            b
        })
        .collect();
    let country = CountryCode::new(*b"DE");
    let run_interval = || {
        let t = Instant::now();
        let mut stats = set.new_stats();
        for b in &blocks {
            set.match_block(b, &mut stats);
        }
        (t.elapsed().as_secs_f64() * 1e3, stats)
    };
    let run_oracle = || {
        let mut oracle = oracle_collector(&list);
        let t = Instant::now();
        for b in &blocks {
            for i in 0..b.len() {
                oracle.ingest(&b.to_record(i), country);
            }
        }
        (t.elapsed().as_secs_f64() * 1e3, oracle.into_stats())
    };
    // The speedup is a ratio of two wall times on a noisy box: alternate
    // the sides round by round (a monotonic drift cannot bias one) and
    // take each side's minimum — the noise-robust estimator of the work
    // actually done (the bench_pipeline idiom).
    let mut interval_match_ms = f64::INFINITY;
    let mut oracle_match_ms = f64::INFINITY;
    let mut stats = set.new_stats();
    let mut oracle_stats = xborder_netflow::MatchStats::default();
    for round in 0..3 {
        if round % 2 == 0 {
            let (ms, s) = run_interval();
            interval_match_ms = interval_match_ms.min(ms);
            stats = s;
            let (ms, s) = run_oracle();
            oracle_match_ms = oracle_match_ms.min(ms);
            oracle_stats = s;
        } else {
            let (ms, s) = run_oracle();
            oracle_match_ms = oracle_match_ms.min(ms);
            oracle_stats = s;
            let (ms, s) = run_interval();
            interval_match_ms = interval_match_ms.min(ms);
            stats = s;
        }
    }
    assert_eq!(
        stats.to_match_stats(&set),
        oracle_stats,
        "interval-set matcher drifted from the per-record oracle"
    );
    let speedup_vs_oracle = oracle_match_ms / interval_match_ms.max(f64::MIN_POSITIVE);
    println!(
        "oracle ({oracle_records} records, threads 1): interval set {interval_match_ms:.0} ms \
         vs per-record {oracle_match_ms:.0} ms ({speedup_vs_oracle:.1}x, results identical)"
    );
    assert!(
        speedup_vs_oracle >= 5.0,
        "interval-set join under the 5x acceptance floor: {speedup_vs_oracle:.1}x"
    );

    let oracle_doc = serde_json::json!({
        "records": oracle_records,
        "threads": 1,
        "interval_match_ms": interval_match_ms,
        "oracle_match_ms": oracle_match_ms,
        "speedup_vs_oracle": speedup_vs_oracle,
    });
    let doc = serde_json::json!({
        "bench": "netflow",
        "threads_available": n_threads,
        "tracker_ips": set.n_slots(),
        "tracker_intervals": set.n_intervals(),
        "netflow_records_per_sec": headline_records_per_sec,
        "runs": runs,
        "oracle": oracle_doc,
    });
    let out = "BENCH_netflow.json";
    let doc = match serde_json::to_string_pretty(&doc) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("bench_netflow: FAIL — bench doc does not serialize: {e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = std::fs::write(out, doc) {
        eprintln!("bench_netflow: FAIL — cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!(
        "wrote {out} ({:.2e} records/s headline at {} records / 1 thread; \
         {n_threads} threads available)",
        headline_records_per_sec, scales[0]
    );
}
