//! CI resume smoke (ci.sh): crash the streaming pipeline *mid-write* of
//! chunk 2's blob — leaving a torn file at the blob's final name — then
//! resume on the same checkpoint directory and require bit-identical
//! outputs against the uninterrupted batch pipeline. A second scenario
//! crashes immediately after the first rolling snapshot is published and
//! requires the same equality. Exits nonzero on any drift, so a broken
//! recovery path fails the gate rather than warning.

use std::net::IpAddr;
use std::process::ExitCode;
use xborder::pipeline::{run_extension_pipeline_degraded, StudyOutputs};
use xborder::stream::{run_extension_pipeline_streaming, StreamConfig, StreamError};
use xborder::{World, WorldConfig};
use xborder_faults::{FaultPlan, KillSwitch};

/// Compact FNV fold over every output surface (mirrors the integration
/// tests' fingerprint): request-log shape, Table-2 counts, the sorted
/// tracker-IP set and all three provider estimate maps.
fn fingerprint(out: &StudyOutputs) -> (usize, usize, u64, u64, usize, usize, u64) {
    let fold = |h: u64, s: &str| {
        s.bytes()
            .fold(h, |h, b| h.wrapping_mul(1_099_511_628_211).wrapping_add(b as u64))
    };
    let mut ips: Vec<IpAddr> = out.tracker_ips.ips.keys().copied().collect();
    ips.sort();
    let mut h = 0u64;
    for ip in &ips {
        h = fold(h, &ip.to_string());
        for map in [
            &out.ipmap_estimates,
            &out.maxmind_estimates,
            &out.ipapi_estimates,
        ] {
            h = match map.get(ip) {
                Some(e) => fold(h, e.country.as_str()),
                None => fold(h, "-"),
            };
        }
    }
    (
        out.dataset.requests.len(),
        out.dataset.visits.len(),
        out.classification.abp.n_total_requests as u64,
        out.classification.semi.n_total_requests as u64,
        out.tracker_ips.len(),
        out.completion.n_added,
        h,
    )
}

fn main() -> ExitCode {
    let seed = 11u64;
    let plan = FaultPlan::aggressive(seed);
    let cfg = || WorldConfig::small(seed).with_threads(2);
    let dir = std::env::temp_dir().join(format!("xborder-resume-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let stream = StreamConfig::durable(5, &dir);

    let mut world = World::build(cfg());
    let (batch_out, _) = run_extension_pipeline_degraded(&mut world, &plan);
    let want = fingerprint(&batch_out);

    // Crash while chunk 2's blob is half-written: chunks 0 and 1 are
    // durable, chunk 2 exists only as a torn, unreferenced file at its
    // final name.
    let kill = KillSwitch::at_label("chunk-2:blob:mid");
    let mut world = World::build(cfg());
    match run_extension_pipeline_streaming(&mut world, &plan, &stream, &kill) {
        Err(StreamError::Killed { site, label }) => {
            println!("resume_smoke: killed at site {site} ({label})");
        }
        Err(e) => {
            eprintln!("resume_smoke: FAIL — expected a kill at chunk-2:blob:mid, got error: {e}");
            return ExitCode::FAILURE;
        }
        Ok(_) => {
            eprintln!("resume_smoke: FAIL — run completed without firing the kill point");
            return ExitCode::FAILURE;
        }
    }

    let mut world = World::build(cfg());
    let got = match run_extension_pipeline_streaming(&mut world, &plan, &stream, &KillSwitch::none())
    {
        Ok((out, _report)) => fingerprint(&out),
        Err(e) => {
            eprintln!("resume_smoke: FAIL — resume after kill failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let _ = std::fs::remove_dir_all(&dir);

    if got != want {
        eprintln!("resume_smoke: FAIL — resumed outputs drifted from batch:");
        eprintln!("  batch:   {want:?}");
        eprintln!("  resumed: {got:?}");
        return ExitCode::FAILURE;
    }
    println!(
        "resume_smoke: OK — kill at chunk 2 + resume is bit-identical to batch \
         ({} requests, {} trackers)",
        want.0, want.4
    );

    // Second scenario: rolling snapshots on, crash right after the first
    // window is published, resume, and require batch equality again (the
    // resumed run also re-emits the full snapshot series).
    let dir2 = std::env::temp_dir().join(format!("xborder-resume-snap-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir2);
    let snap_stream = StreamConfig::durable(5, &dir2).with_snapshots(4);
    let kill = KillSwitch::at_label("snapshot-0:emitted");
    let mut world = World::build(cfg());
    match run_extension_pipeline_streaming(&mut world, &plan, &snap_stream, &kill) {
        Err(StreamError::Killed { site, label }) => {
            println!("resume_smoke: killed at site {site} ({label})");
        }
        Err(e) => {
            eprintln!("resume_smoke: FAIL — expected a kill at snapshot-0:emitted, got error: {e}");
            return ExitCode::FAILURE;
        }
        Ok(_) => {
            eprintln!("resume_smoke: FAIL — run completed without firing the snapshot kill point");
            return ExitCode::FAILURE;
        }
    }
    let mut world = World::build(cfg());
    let (out, _report) =
        match run_extension_pipeline_streaming(&mut world, &plan, &snap_stream, &KillSwitch::none())
        {
            Ok(r) => r,
            Err(e) => {
                eprintln!("resume_smoke: FAIL — resume after snapshot kill failed: {e}");
                return ExitCode::FAILURE;
            }
        };
    let _ = std::fs::remove_dir_all(&dir2);
    if fingerprint(&out) != want {
        eprintln!("resume_smoke: FAIL — snapshot-kill resume drifted from batch");
        return ExitCode::FAILURE;
    }
    if out.snapshots.len() != 4 {
        eprintln!(
            "resume_smoke: FAIL — expected 4 rolling snapshots, got {}",
            out.snapshots.len()
        );
        return ExitCode::FAILURE;
    }
    println!(
        "resume_smoke: OK — kill after snapshot 0 + resume is bit-identical to batch \
         ({} rolling snapshots re-emitted)",
        out.snapshots.len()
    );
    ExitCode::SUCCESS
}
