//! Worldscale bench: the out-of-core segmented driver at population scales
//! the batch pipeline cannot hold resident, written to
//! `BENCH_worldscale.json` (run from the repo root; see ci.sh).
//!
//! Sweeps users 10⁴/10⁵/10⁶ (capped by `XBORDER_WORLDSCALE_MAX_USERS` for
//! CI smoke runs) × segment sizes, always with a bounded resident window,
//! and records wall time, users/sec, the segment store's peak resident
//! bytes and spill counts, plus the process high-water mark (`VmHWM`).
//! Two guards make a fast-but-wrong run impossible to report:
//!
//! 1. at every scale the two segment sizes must land on the same
//!    [`ScaleOutputs::fingerprint`] (the knob-invariance contract of
//!    DESIGN.md §5j at bench scale), and
//! 2. the store's peak resident bytes must stay under the configured
//!    budget — resident memory is O(segment × window), not O(world).

use std::time::Instant;
use xborder::worldscale::{run_worldscale_pipeline, ScaleConfig};
use xborder::{Parallelism, World, WorldConfig};
use xborder_faults::{FaultPlan, KillSwitch};

/// `VmHWM` (peak resident set size) from `/proc/self/status`, in bytes.
/// Monotone over the process lifetime, so scales are run smallest-first
/// and each run reports the mark reached *by the end of* that run.
fn vm_hwm_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

fn main() {
    let n_threads = Parallelism::from_env().threads;
    let cap: usize = std::env::var("XBORDER_WORLDSCALE_MAX_USERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(usize::MAX);
    let scales: Vec<usize> = [10_000usize, 100_000, 1_000_000]
        .into_iter()
        .filter(|&s| s <= cap)
        .collect();
    assert!(
        !scales.is_empty(),
        "XBORDER_WORLDSCALE_MAX_USERS below the smallest scale (1e4)"
    );
    let seed = 0x5CA1Eu64;
    let plan = FaultPlan::none();
    // Resident budget for the bounded window: ~16 KiB of columnar log per
    // user (measured), so a 20k-user segment is ~320 MiB and the window
    // holds at most 2 committed + 1 in-flight segment. The assert is on
    // the store's logical resident bytes — the quantity the window
    // actually bounds — not on allocator slack.
    let window = 2usize;
    let budget_bytes: u64 = 1024 * 1024 * 1024;

    let spill_root = std::env::temp_dir().join(format!("xborder-bench-scale-{}", std::process::id()));
    let mut runs: Vec<serde_json::Value> = Vec::new();
    let mut headline_users_per_sec = 0.0f64;
    for &users in &scales {
        let mut fingerprints: Vec<u64> = Vec::new();
        for &segment_users in &[5_000usize, 20_000] {
            let spill = spill_root.join(format!("{users}-{segment_users}"));
            let t = Instant::now();
            let mut world = World::build(WorldConfig::large(seed, users));
            let build_ms = t.elapsed().as_secs_f64() * 1e3;
            let t = Instant::now();
            let (out, report) = run_worldscale_pipeline(
                &mut world,
                &plan,
                &ScaleConfig::in_memory(segment_users).with_resident_window(window, &spill),
                &KillSwitch::none(),
            )
            .expect("worldscale bench run succeeds");
            let run_ms = t.elapsed().as_secs_f64() * 1e3;
            let _ = std::fs::remove_dir_all(&spill);
            assert_eq!(out.stats.n_users, users, "driver lost users");
            let peak = report.timings.peak_resident_bytes;
            assert!(
                peak <= budget_bytes,
                "segment store peak {peak} B blew the {budget_bytes} B budget \
                 at {users} users, segment {segment_users}"
            );
            fingerprints.push(out.fingerprint());
            let users_per_sec = users as f64 / (run_ms / 1e3).max(f64::MIN_POSITIVE);
            println!(
                "{users} users, segment {segment_users}, window {window}: \
                 {run_ms:.0} ms (+{build_ms:.0} ms world build; \
                 {users_per_sec:.2e} users/s, {} requests, peak resident {:.1} MiB, \
                 {} spilled / {} reloaded, VmHWM {:.0} MiB)",
                out.stats.n_third_party_requests,
                peak as f64 / (1024.0 * 1024.0),
                report.timings.segments_spilled,
                report.timings.segments_reloaded,
                vm_hwm_bytes().unwrap_or(0) as f64 / (1024.0 * 1024.0),
            );
            if users == *scales.last().unwrap() && segment_users == 20_000 {
                headline_users_per_sec = users_per_sec;
            }
            runs.push(serde_json::json!({
                "users": users,
                "segment_users": segment_users,
                "resident_segments": window,
                "build_ms": build_ms,
                "run_ms": run_ms,
                "users_per_sec": users_per_sec,
                "requests": out.stats.n_third_party_requests,
                "segments": out.n_segments,
                "peak_resident_bytes": peak,
                "segments_spilled": report.timings.segments_spilled,
                "segments_reloaded": report.timings.segments_reloaded,
                "spill_ms": report.timings.segment_io_ms,
                "vm_hwm_bytes": vm_hwm_bytes(),
            }));
        }
        assert!(
            fingerprints.windows(2).all(|w| w[0] == w[1]),
            "segment size changed the fingerprint at {users} users: {fingerprints:?}"
        );
    }
    let _ = std::fs::remove_dir_all(&spill_root);

    let doc = serde_json::json!({
        "bench": "worldscale",
        "threads_available": n_threads,
        "resident_segments": window,
        "resident_budget_bytes": budget_bytes,
        "worldscale_users_per_sec": headline_users_per_sec,
        "runs": runs,
    });
    let out = "BENCH_worldscale.json";
    let doc = match serde_json::to_string_pretty(&doc) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("bench_worldscale: FAIL — bench doc does not serialize: {e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = std::fs::write(out, doc) {
        eprintln!("bench_worldscale: FAIL — cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!(
        "wrote {out} ({headline_users_per_sec:.2e} users/s headline at {} users / \
         segment 20000; {n_threads} threads available)",
        scales.last().unwrap()
    );
}
