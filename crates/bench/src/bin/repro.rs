//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [--scale small|paper] [--seed N] [--exp <id>[,<id>...]] [--json DIR]
//! ```
//!
//! Experiment ids: `table1 table2 table3 table4 table5 table6 table7 table8
//! table9 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12
//! ipcompletion all` (default: `all`), plus the extensions `collab`
//! (inter-tracker collaboration graph), `compliance` (GDPR/COPPA/US-state
//! audits), `rollout` (DNS-redirection TTL latency) and `stability`
//! (multi-seed variance; not part of `all`, slow).

use std::collections::HashMap;
use std::net::IpAddr;
use xborder::pipeline::EstimateMap;
use xborder::report;
use xborder_bench::{Repro, Scale};
use xborder_geoloc::{agreement, wrong_location_stats, GeoEstimate, Geolocator};

/// Adapter: a frozen estimate map as a `Geolocator`.
struct Frozen<'a>(&'a EstimateMap, &'static str);

impl Geolocator for Frozen<'_> {
    fn locate(&self, ip: IpAddr) -> Option<GeoEstimate> {
        self.0.get(&ip).copied()
    }
    fn name(&self) -> &str {
        self.1
    }
}

struct Args {
    scale: Scale,
    seed: u64,
    exps: Vec<String>,
    json_dir: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: Scale::Small,
        seed: 2018,
        exps: vec!["all".into()],
        json_dir: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--scale" => {
                let v = it.next().expect("--scale needs a value");
                args.scale = Scale::parse(&v).unwrap_or_else(|| panic!("bad scale {v:?}"));
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("seed must be an integer");
            }
            "--exp" => {
                args.exps = it
                    .next()
                    .expect("--exp needs a value")
                    .split(',')
                    .map(str::to_owned)
                    .collect();
            }
            "--json" => args.json_dir = it.next(),
            "--help" | "-h" => {
                eprintln!(
                    "usage: repro [--scale small|paper] [--seed N] [--exp id,...] [--json DIR]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other:?}"),
        }
    }
    args
}

fn wants(exps: &[String], id: &str) -> bool {
    exps.iter().any(|e| e == id || e == "all")
}

fn main() {
    let args = parse_args();
    let t0 = std::time::Instant::now();
    eprintln!("# building world + running extension pipeline ({:?}, seed {})...", args.scale, args.seed);
    let mut repro = Repro::run(args.scale, args.seed);
    eprintln!("# pipeline done in {:.1}s: {:?}", t0.elapsed().as_secs_f64(), repro.world);

    let mut json: HashMap<String, serde_json::Value> = HashMap::new();
    let emit = |id: &str, text: String, value: serde_json::Value, json: &mut HashMap<String, serde_json::Value>| {
        println!("{text}");
        json.insert(id.to_owned(), value);
    };

    let exps = args.exps.clone();

    if wants(&exps, "table1") {
        let stats = repro.out.dataset.stats();
        emit("table1", report::fmt_table1(&stats), serde_json::to_value(stats).unwrap(), &mut json);
    }
    if wants(&exps, "fig2") {
        let data = report::Fig2Data::compute(&repro.out);
        let text = report::fmt_fig2(&data);
        let medians = data.medians();
        emit("fig2", text, serde_json::json!({ "medians": medians }), &mut json);
    }
    if wants(&exps, "table2") {
        emit(
            "table2",
            report::fmt_table2(&repro.out),
            serde_json::json!({
                "abp": repro.out.classification.abp,
                "semi": repro.out.classification.semi,
            }),
            &mut json,
        );
    }
    if wants(&exps, "fig3") {
        let data = report::Fig3Data::compute(&repro.out, 20);
        emit("fig3", report::fmt_fig3(&data), serde_json::to_value(&data).unwrap(), &mut json);
    }
    if wants(&exps, "ipcompletion") {
        emit(
            "ipcompletion",
            report::fmt_completion(&repro.out.completion),
            serde_json::to_value(repro.out.completion).unwrap(),
            &mut json,
        );
    }
    if wants(&exps, "fig4") || wants(&exps, "fig5") {
        let analysis = repro.dedicated();
        if wants(&exps, "fig4") {
            emit(
                "fig4",
                report::fmt_fig4(&analysis),
                serde_json::json!({
                    "single_tld_request_share": analysis.single_tld_request_share(),
                    "multi_tld_ip_share": analysis.multi_tld_ip_share(),
                    "cdf": analysis.request_weighted_cdf(),
                }),
                &mut json,
            );
        }
        if wants(&exps, "fig5") {
            emit(
                "fig5",
                report::fmt_fig5(&analysis, &repro.out.ipmap_estimates),
                serde_json::json!({
                    "n_heavy": analysis.heavy_sharers(10).len(),
                    "countries": analysis
                        .heavy_sharer_countries(10, &repro.out.ipmap_estimates)
                        .into_iter()
                        .map(|(c, n)| (c.to_string(), n))
                        .collect::<HashMap<String, usize>>(),
                }),
                &mut json,
            );
        }
    }
    if wants(&exps, "table3") {
        let ips: Vec<IpAddr> = {
            let mut v: Vec<IpAddr> = repro.out.tracker_ips.ips.keys().copied().collect();
            v.sort();
            v
        };
        let mm = Frozen(&repro.out.maxmind_estimates, "MaxMind");
        let ia = Frozen(&repro.out.ipapi_estimates, "ip-api");
        let im = Frozen(&repro.out.ipmap_estimates, "RIPE IPmap");
        let a1 = agreement(&ia, &mm, &ips);
        let a2 = agreement(&ia, &im, &ips);
        let a3 = agreement(&mm, &im, &ips);
        emit(
            "table3",
            report::fmt_table3(&a1, &a2, &a3),
            serde_json::json!({ "ipapi_maxmind": a1, "ipapi_ipmap": a2, "maxmind_ipmap": a3 }),
            &mut json,
        );
    }
    if wants(&exps, "table4") {
        let mut rows = Vec::new();
        for major in ["gtrack", "amzads", "fbook"] {
            let weighted: Vec<(IpAddr, u64)> = repro
                .out
                .tracker_ips
                .ips
                .iter()
                .filter(|(ip, _)| {
                    repro
                        .world
                        .infra
                        .server_by_ip(**ip)
                        .and_then(|s| repro.world.infra.org(s.org).ok())
                        .is_some_and(|o| o.name == major)
                })
                .map(|(ip, info)| (*ip, info.requests))
                .collect();
            let mm = Frozen(&repro.out.maxmind_estimates, "MaxMind");
            let stats = wrong_location_stats(&mm, &repro.world.infra, &weighted);
            rows.push((format!("{major} ads+tracking"), stats));
        }
        emit(
            "table4",
            report::fmt_table4(&rows),
            serde_json::to_value(rows.iter().map(|(n, s)| (n.clone(), *s)).collect::<Vec<_>>()).unwrap(),
            &mut json,
        );
    }
    if wants(&exps, "fig6") {
        let m = repro.fig6();
        emit("fig6", report::fmt_fig6(&m), serde_json::to_value(&m).unwrap(), &mut json);
    }
    if wants(&exps, "fig7") {
        let (mm, im) = repro.fig7();
        emit(
            "fig7",
            report::fmt_fig7(&mm, &im),
            serde_json::json!({ "maxmind": mm, "ipmap": im }),
            &mut json,
        );
    }
    if wants(&exps, "fig8") {
        let m = repro.fig8();
        emit("fig8", report::fmt_fig8(&m), serde_json::to_value(&m).unwrap(), &mut json);
    }
    if wants(&exps, "table5") || wants(&exps, "table6") {
        let w = repro.whatif();
        if wants(&exps, "table5") {
            emit("table5", report::fmt_table5(&w), serde_json::to_value(&w).unwrap(), &mut json);
        }
        if wants(&exps, "table6") {
            emit("table6", report::fmt_table6(&w), serde_json::to_value(&w.per_country).unwrap(), &mut json);
        }
    }
    if wants(&exps, "fig9") || wants(&exps, "fig10") || wants(&exps, "fig11") {
        let (sites, stats) = repro.sensitive(args.seed ^ 0x5E51);
        if wants(&exps, "fig9") {
            emit(
                "fig9",
                report::fmt_fig9(&stats, sites.inspected, sites.detected.len()),
                serde_json::to_value(&stats).unwrap(),
                &mut json,
            );
        }
        if wants(&exps, "fig10") {
            emit("fig10", report::fmt_fig10(&stats), serde_json::to_value(&stats.dest_by_category).unwrap(), &mut json);
        }
        if wants(&exps, "fig11") {
            emit("fig11", report::fmt_fig11(&stats), serde_json::to_value(&stats.per_country).unwrap(), &mut json);
        }
    }
    if wants(&exps, "table7") {
        emit("table7", report::fmt_table7(), serde_json::json!("static"), &mut json);
    }
    if wants(&exps, "table8") || wants(&exps, "fig12") {
        eprintln!("# running ISP study...");
        let results = repro.isp_study(args.scale);
        if wants(&exps, "table8") {
            emit("table8", report::fmt_table8(&results), serde_json::to_value(&results).unwrap(), &mut json);
        }
        if wants(&exps, "fig12") {
            emit("fig12", report::fmt_fig12(&results), serde_json::json!("see table8"), &mut json);
        }
    }
    if wants(&exps, "collab") {
        let graph = repro.collab();
        emit(
            "collab",
            xborder::collab::fmt_collab(&graph),
            serde_json::json!({
                "orgs": graph.n_orgs(),
                "edges": graph.edges.len(),
                "handoffs": graph.total_handoffs,
                "cross_country_share": graph.cross_country_share(),
                "eu28_boundary_share": graph.eu28_boundary_share(),
                "components": graph.n_components(),
            }),
            &mut json,
        );
    }
    if wants(&exps, "compliance") {
        let (sites, _) = repro.sensitive(args.seed ^ 0xC0DE);
        for reg in xborder::regulations::Regulation::ALL {
            let report = xborder::regulations::audit(
                reg,
                &repro.world,
                &repro.out,
                &repro.out.ipmap_estimates,
                &sites,
            );
            emit(
                &format!("compliance_{reg:?}").to_lowercase(),
                xborder::regulations::fmt_compliance(&report),
                serde_json::to_value(&report).unwrap(),
                &mut json,
            );
        }
    }
    if wants(&exps, "rollout") {
        let stats = xborder::whatif::redirection_rollout(&repro.world, &repro.out);
        emit(
            "rollout",
            format!(
                "DNS redirection rollout (Sect 5.1)\n\
                 flows redirectable within 300 s: {:.1}%\n\
                 flows redirectable within 2 h:   {:.1}%\n\
                 flow-weighted mean TTL: {:.0} s\n",
                stats.share_within(300) * 100.0,
                stats.share_within(7200) * 100.0,
                stats.mean_ttl()
            ),
            serde_json::to_value(stats.flows_per_ttl.iter().map(|(k, v)| (k.to_string(), *v)).collect::<HashMap<String, u64>>()).unwrap(),
            &mut json,
        );
    }
    if exps.iter().any(|e| e == "stability") {
        eprintln!("# running multi-seed stability study (8 seeds)...");
        let report = xborder_bench::stability_study(8, args.seed);
        emit(
            "stability",
            format!(
                "Multi-seed stability (8 small worlds)\n\
                 EU28 confinement: {:.1}% +/- {:.1}\n\
                 NA share:         {:.1}% +/- {:.1}\n\
                 semi/ABP ratio:   {:.2} +/- {:.2}\n",
                report.eu28_confinement.mean * 100.0,
                report.eu28_confinement.std * 100.0,
                report.na_share.mean * 100.0,
                report.na_share.std * 100.0,
                report.semi_over_abp.mean,
                report.semi_over_abp.std
            ),
            serde_json::to_value(&report).unwrap(),
            &mut json,
        );
    }
    if wants(&exps, "table9") {
        emit("table9", report::fmt_table9(), serde_json::to_value(xborder::related::table9()).unwrap(), &mut json);
    }

    if let Some(dir) = &args.json_dir {
        std::fs::create_dir_all(dir).expect("create json dir");
        for (id, value) in &json {
            let path = format!("{dir}/{id}.json");
            std::fs::write(&path, serde_json::to_string_pretty(value).unwrap())
                .unwrap_or_else(|e| panic!("write {path}: {e}"));
        }
        eprintln!("# wrote {} JSON files to {dir}", json.len());
    }
    eprintln!("# total {:.1}s", t0.elapsed().as_secs_f64());
}
