//! Pipeline bench smoke: end-to-end and per-stage wall-clock across a
//! sweep of thread budgets, written to `BENCH_pipeline.json` (run from the
//! repo root; see ci.sh). The per-stage numbers come from the pipeline's
//! own `DegradationReport::timings`, so the bench measures exactly what
//! production runs record.
//!
//! The sweep always includes {1, 2, 4} plus the machine's available budget
//! (deduplicated): oversubscribed budgets on a small box still exercise
//! the sharded code paths, and the recorded curve is the honest one for
//! the hardware the bench ran on — `threads_available` says how many cores
//! actually backed it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use xborder::ispstudy::{run_isp_study, IspStudyConfig};
use xborder::pipeline::{run_extension_pipeline_degraded, StudyOutputs};
use xborder::stream::{run_extension_pipeline_streaming, StreamConfig};
use xborder::{Parallelism, World, WorldConfig};
use xborder_classify::{FilterList, FilterRule, RuleEngine};
use xborder_faults::{FaultPlan, KillSwitch};
use xborder_webgraph::Domain;

/// Deterministic URL-dependent workload for the rule-engine microbench: a
/// rule set that is mostly substring/path rules (the shapes real easylists
/// are full of but the generated lists never produce — those are all
/// domain anchors, which engine and oracle both resolve per-host), plus
/// probe URLs whose hosts and embedded tokens overlap the rule pools
/// enough that hits, near-misses and clean URLs all occur.
fn engine_workload(n_rules: usize, n_urls: usize, seed: u64) -> (FilterList, Vec<(Domain, String)>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_domains = (n_rules / 2).max(8);
    let domains: Vec<Domain> = (0..n_domains)
        .map(|i| Domain::new(format!("cdn{i}.ads{}.example{}.com", i % 13, i % 5)))
        .collect();
    let mut list = FilterList::new("bench-engine");
    for i in 0..n_rules {
        list.push(match i % 5 {
            0 => FilterRule::DomainAnchor(domains[rng.gen_range(0..n_domains)].clone()),
            1 | 2 => FilterRule::DomainWithPath {
                domain: domains[rng.gen_range(0..n_domains)].clone(),
                path_prefix: format!("/seg{}/", i % 97),
            },
            _ => FilterRule::UrlSubstring(format!("tok{:04}x", rng.gen_range(0..n_rules * 2))),
        });
    }
    let probes = (0..n_urls)
        .map(|_| {
            let host = if rng.gen_range(0..4) == 0 {
                domains[rng.gen_range(0..n_domains)].clone()
            } else {
                Domain::new(format!("www.site{}.net", rng.gen_range(0..n_domains)))
            };
            let url = format!(
                "https://{host}/seg{}/page?uid=u{}&tok{:04}x=1",
                rng.gen_range(0..97),
                rng.gen_range(0..100_000),
                rng.gen_range(0..n_rules * 4),
            );
            (host, url)
        })
        .collect();
    (list, probes)
}

/// Allocation calls and requested bytes since process start. The library
/// crates are `forbid(unsafe_code)`, so the counting allocator lives here
/// in the bench binary and feeds the pipeline's report through the safe
/// `xborder_faults::install_alloc_probe` hook.
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

/// System-allocator wrapper that counts every allocation and reallocation.
struct CountingAlloc;

// SAFETY: delegates every operation unchanged to `System`; the counters are
// relaxed atomics with no effect on allocation behavior.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_probe() -> (u64, u64) {
    (
        ALLOCS.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

fn main() {
    let seed = 11u64;
    xborder_faults::install_alloc_probe(alloc_probe);
    let n_threads = Parallelism::from_env().threads;
    let mut budgets: Vec<usize> = vec![1, 2, 4, n_threads];
    budgets.sort_unstable();
    budgets.dedup();

    let mut measured: Vec<(usize, f64, xborder_faults::StageTimings, usize)> = Vec::new();
    for &threads in &budgets {
        // One discarded warmup (page cache, allocator, frequency ramp),
        // then median-of-3 by wall-clock. The median is robust against the
        // one-sided scheduler spikes that made a shared-workload budget
        // report an impossible <1x speedup on the 1-core CI box, without
        // the minimum's bias toward lucky runs.
        let run_once = || {
            let mut world = World::build(WorldConfig::small(seed).with_threads(threads));
            let t = Instant::now();
            let (out, mut report) = run_extension_pipeline_degraded(&mut world, &FaultPlan::none());
            let wall_ms = t.elapsed().as_secs_f64() * 1e3;
            // The Sect. 7 NetFlow join rides the same thread budget; its
            // stage split lands in the report next to the pipeline stages.
            let isp = run_isp_study(
                &mut world,
                &out.tracker_ips,
                &out.ipmap_estimates,
                &IspStudyConfig::small(),
            );
            report.timings.netflow_generate_ms = isp.timings.generate_ms;
            report.timings.netflow_match_ms = isp.timings.match_ms;
            (wall_ms, report.timings, out.dataset.visits.len())
        };
        let _warmup = run_once();
        let mut runs: Vec<(f64, xborder_faults::StageTimings, usize)> =
            (0..3).map(|_| run_once()).collect();
        runs.sort_by(|a, b| a.0.total_cmp(&b.0));
        let (wall_ms, timings, n_visits) = runs.swap_remove(1);
        println!(
            "threads {threads}: pipeline {wall_ms:.1} ms (study {:.1}, classify {:.1}, \
             completion {:.1}, geolocate {:.1}; study allocs {} / {} visits; \
             netflow gen {:.1} + match {:.1})",
            timings.study_ms,
            timings.classify_ms,
            timings.completion_ms,
            timings.geolocate_ms,
            timings.study_allocs,
            n_visits,
            timings.netflow_generate_ms,
            timings.netflow_match_ms
        );
        measured.push((threads, wall_ms, timings, n_visits));
    }

    let seq = &measured[0];
    assert_eq!(seq.0, 1, "sweep starts at the sequential budget");

    // --- Streaming mode: chunked ingestion at threads=1, with and without
    // durable checkpoints, against the batch sequential baseline. The
    // summary equality assert keeps the bench honest: a streaming path
    // that drifted from batch would report a meaningless overhead number.
    let summary = |out: &StudyOutputs| {
        (
            out.dataset.requests.len(),
            out.dataset.visits.len(),
            out.classification.abp.n_total_requests,
            out.tracker_ips.len(),
        )
    };
    let chunk_users = 5usize;
    let mut world = World::build(WorldConfig::small(seed).with_threads(1));
    let (batch_out, _) = run_extension_pipeline_degraded(&mut world, &FaultPlan::none());
    let batch_summary = summary(&batch_out);
    drop(batch_out);

    let snapshot_windows = 6usize;
    let run_streaming = |stream_cfg: &StreamConfig| {
        if let Some(dir) = &stream_cfg.checkpoint_dir {
            // Every timed run starts cold: no chunks to replay.
            let _ = std::fs::remove_dir_all(dir);
        }
        let mut world = World::build(WorldConfig::small(seed).with_threads(1));
        let t = Instant::now();
        let (out, report) =
            run_extension_pipeline_streaming(&mut world, &FaultPlan::none(), stream_cfg, &KillSwitch::none())
                .expect("un-killed streaming bench run succeeds");
        let wall_ms = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            summary(&out),
            batch_summary,
            "streaming bench output drifted from batch"
        );
        assert_eq!(out.snapshots.len(), snapshot_windows, "rolling snapshots missing");
        (wall_ms, out.dataset.visits.len(), report.timings)
    };
    // Both variants emit rolling snapshots so the checkpoint-overhead
    // comparison stays apples-to-apples. checkpoint_overhead_pct is a
    // ratio of two same-scale wall times on a box whose clock swings ~2x
    // under load, so the two sides run back to back in alternating order
    // (a monotonic drift cannot bias one side) and the minimum of each —
    // the only noise-robust estimator of the work actually done — feeds
    // the ratio, instead of two medians measured minutes apart.
    let in_memory = StreamConfig::in_memory(chunk_users).with_snapshots(snapshot_windows);
    let ckpt_dir = std::env::temp_dir().join(format!("xborder-bench-ckpt-{}", std::process::id()));
    let durable = StreamConfig::durable(chunk_users, &ckpt_dir).with_snapshots(snapshot_windows);
    let _warmup = run_streaming(&in_memory);
    let _warmup = run_streaming(&durable);
    let mut mem_runs: Vec<(f64, usize, xborder_faults::StageTimings)> = Vec::new();
    let mut ckpt_runs: Vec<f64> = Vec::new();
    for round in 0..7 {
        if round % 2 == 0 {
            mem_runs.push(run_streaming(&in_memory));
            ckpt_runs.push(run_streaming(&durable).0);
        } else {
            ckpt_runs.push(run_streaming(&durable).0);
            mem_runs.push(run_streaming(&in_memory));
        }
    }
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    mem_runs.sort_by(|a, b| a.0.total_cmp(&b.0));
    let (streaming_ms, n_visits, stream_timings) = mem_runs.swap_remove(0);
    let streaming_ckpt_ms = ckpt_runs.iter().copied().fold(f64::INFINITY, f64::min);
    let visits_per_sec = n_visits as f64 / (streaming_ckpt_ms / 1e3).max(f64::MIN_POSITIVE);
    let checkpoint_overhead_ms = streaming_ckpt_ms - streaming_ms;
    let checkpoint_overhead_pct = (streaming_ckpt_ms / streaming_ms.max(f64::MIN_POSITIVE) - 1.0) * 100.0;
    let overhead_vs_batch_pct = (streaming_ms / seq.1.max(f64::MIN_POSITIVE) - 1.0) * 100.0;
    // Incremental-vs-batch classify is a ratio of two small stage times, so
    // clock drift between the thread sweep and the streaming block (minutes
    // apart on a noisy box) would dominate it. Interleave batch and
    // streaming runs back to back and compare their medians instead.
    let run_batch_classify = || {
        let mut world = World::build(WorldConfig::small(seed).with_threads(1));
        let (out, report) = run_extension_pipeline_degraded(&mut world, &FaultPlan::none());
        assert_eq!(
            summary(&out),
            batch_summary,
            "batch classify-baseline run drifted"
        );
        report.timings.classify_ms
    };
    let mut batch_cls: Vec<f64> = Vec::new();
    let mut inc_cls: Vec<f64> = Vec::new();
    for round in 0..7 {
        // Alternate which variant goes first so a monotonically drifting
        // clock (thermal throttling) cannot bias one side.
        if round % 2 == 0 {
            batch_cls.push(run_batch_classify());
            inc_cls.push(run_streaming(&in_memory).2.classify_ms);
        } else {
            inc_cls.push(run_streaming(&in_memory).2.classify_ms);
            batch_cls.push(run_batch_classify());
        }
    }
    // Min, not median: both stages are sub-15 ms on a box whose clock swings
    // ~2x under load, so the minimum is the only noise-robust estimator of
    // the work actually done.
    let min = |xs: &[f64]| xs.iter().copied().fold(f64::INFINITY, f64::min);
    let batch_classify_ms = min(&batch_cls);
    let incremental_classify_ms = min(&inc_cls);
    let classify_overhead_vs_batch_pct =
        (incremental_classify_ms / batch_classify_ms.max(f64::MIN_POSITIVE) - 1.0) * 100.0;
    let snapshot_ms = stream_timings.snapshot_ms;
    let snapshot_ms_per_window = snapshot_ms / snapshot_windows as f64;
    println!(
        "streaming (chunk {chunk_users} users, threads 1): {streaming_ms:.1} ms in-memory, \
         {streaming_ckpt_ms:.1} ms checkpointed ({checkpoint_overhead_ms:+.1} ms / \
         {checkpoint_overhead_pct:+.1}% checkpoint cost, \
         {overhead_vs_batch_pct:+.1}% vs batch, {visits_per_sec:.0} visits/s durable; \
         incremental classify {incremental_classify_ms:.2} ms \
         [{classify_overhead_vs_batch_pct:+.1}% vs batch], \
         {snapshot_windows} snapshots {snapshot_ms:.2} ms total)"
    );
    // --- Rule-engine microbench: compiled Aho-Corasick engine vs the
    // naive per-rule oracle over a synthetic URL-dependent rule set (the
    // generated lists are all domain anchors, which both paths resolve
    // per-host; substring/path rules are where the automaton earns its
    // keep). Results are asserted equal while timing, so the speedup
    // number can never come from a divergent matcher.
    let (list, probes) = engine_workload(512, 4096, 97);
    let t_build = Instant::now();
    let mut engine = RuleEngine::compile(&[&list]);
    let build_ms = t_build.elapsed().as_secs_f64() * 1e3;
    let time_min5 = |f: &mut dyn FnMut() -> u64| {
        let mut best = f64::INFINITY;
        let mut hits = 0u64;
        for _ in 0..5 {
            let t = Instant::now();
            hits = f();
            best = best.min(t.elapsed().as_secs_f64() * 1e3);
        }
        (best, hits)
    };
    let (engine_match_ms, engine_hits) = time_min5(&mut || {
        probes
            .iter()
            .filter(|(host, url)| engine.matches(host, url))
            .count() as u64
    });
    let (oracle_match_ms, oracle_hits) = time_min5(&mut || {
        probes
            .iter()
            .filter(|(host, url)| list.matches(host, url))
            .count() as u64
    });
    assert_eq!(engine_hits, oracle_hits, "engine drifted from the rule oracle");
    let speedup_vs_oracle = oracle_match_ms / engine_match_ms.max(f64::MIN_POSITIVE);
    println!(
        "rule engine ({} rules, {} urls): build {build_ms:.2} ms, match {engine_match_ms:.2} ms \
         vs oracle {oracle_match_ms:.2} ms ({speedup_vs_oracle:.1}x, {engine_hits} hits)",
        list.len(),
        probes.len()
    );
    let rule_engine_doc = serde_json::json!({
        "rules": list.len(),
        "urls": probes.len(),
        "build_ms": build_ms,
        "engine_match_ms": engine_match_ms,
        "oracle_match_ms": oracle_match_ms,
        "speedup_vs_oracle": speedup_vs_oracle,
    });
    let runs: Vec<serde_json::Value> = measured
        .iter()
        .map(|(threads, wall_ms, t, n_visits)| {
            serde_json::json!({
                "threads": threads,
                "pipeline_ms": wall_ms,
                "study_ms": t.study_ms,
                "classify_ms": t.classify_ms,
                "completion_ms": t.completion_ms,
                "geolocate_ms": t.geolocate_ms,
                "total_ms": t.total_ms,
                "study_allocs": t.study_allocs,
                "study_alloc_bytes": t.study_alloc_bytes,
                "netflow_generate_ms": t.netflow_generate_ms,
                "netflow_match_ms": t.netflow_match_ms,
                "study_allocs_per_visit": t.study_allocs as f64 / (*n_visits).max(1) as f64,
                "study_speedup_vs_sequential": if t.study_ms > 0.0 { seq.2.study_ms / t.study_ms } else { 1.0 },
                "e2e_speedup_vs_sequential": if *wall_ms > 0.0 { seq.1 / wall_ms } else { 1.0 },
            })
        })
        .collect();
    let best_e2e = measured
        .iter()
        .map(|(_, wall_ms, _, _)| seq.1 / wall_ms.max(f64::MIN_POSITIVE))
        .fold(1.0f64, f64::max);
    let streaming_doc = serde_json::json!({
        "chunk_users": chunk_users,
        "threads": 1,
        "streaming_ms": streaming_ms,
        "streaming_ckpt_ms": streaming_ckpt_ms,
        "visits_per_sec": visits_per_sec,
        "checkpoint_overhead_ms": checkpoint_overhead_ms,
        "checkpoint_overhead_pct": checkpoint_overhead_pct,
        "overhead_vs_batch_pct": overhead_vs_batch_pct,
        "incremental_classify_ms": incremental_classify_ms,
        "classify_overhead_vs_batch_pct": classify_overhead_vs_batch_pct,
        "snapshot_windows": snapshot_windows,
        "snapshot_ms": snapshot_ms,
        "snapshot_ms_per_window": snapshot_ms_per_window,
    });
    let doc = serde_json::json!({
        "bench": "pipeline",
        "config": format!("WorldConfig::small({seed})"),
        "threads_available": n_threads,
        "runs": runs,
        "e2e_speedup_vs_sequential": best_e2e,
        "streaming": streaming_doc,
        "rule_engine": rule_engine_doc,
    });
    let out = "BENCH_pipeline.json";
    let doc = match serde_json::to_string_pretty(&doc) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("bench_pipeline: FAIL — bench doc does not serialize: {e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = std::fs::write(out, doc) {
        eprintln!("bench_pipeline: FAIL — cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out} (best e2e speedup vs sequential: {best_e2e:.2}x; {n_threads} threads available)");
}
