//! Pipeline bench smoke: end-to-end and per-stage wall-clock across a
//! sweep of thread budgets, written to `BENCH_pipeline.json` (run from the
//! repo root; see ci.sh). The per-stage numbers come from the pipeline's
//! own `DegradationReport::timings`, so the bench measures exactly what
//! production runs record.
//!
//! The sweep always includes {1, 2, 4} plus the machine's available budget
//! (deduplicated): oversubscribed budgets on a small box still exercise
//! the sharded code paths, and the recorded curve is the honest one for
//! the hardware the bench ran on — `threads_available` says how many cores
//! actually backed it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use xborder::pipeline::{run_extension_pipeline_degraded, StudyOutputs};
use xborder::stream::{run_extension_pipeline_streaming, StreamConfig};
use xborder::{Parallelism, World, WorldConfig};
use xborder_faults::{FaultPlan, KillSwitch};

/// Allocation calls and requested bytes since process start. The library
/// crates are `forbid(unsafe_code)`, so the counting allocator lives here
/// in the bench binary and feeds the pipeline's report through the safe
/// `xborder_faults::install_alloc_probe` hook.
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

/// System-allocator wrapper that counts every allocation and reallocation.
struct CountingAlloc;

// SAFETY: delegates every operation unchanged to `System`; the counters are
// relaxed atomics with no effect on allocation behavior.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_probe() -> (u64, u64) {
    (
        ALLOCS.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

fn main() {
    let seed = 11u64;
    xborder_faults::install_alloc_probe(alloc_probe);
    let n_threads = Parallelism::from_env().threads;
    let mut budgets: Vec<usize> = vec![1, 2, 4, n_threads];
    budgets.sort_unstable();
    budgets.dedup();

    let mut measured: Vec<(usize, f64, xborder_faults::StageTimings, usize)> = Vec::new();
    for &threads in &budgets {
        // One discarded warmup (page cache, allocator, frequency ramp),
        // then median-of-3 by wall-clock. The median is robust against the
        // one-sided scheduler spikes that made a shared-workload budget
        // report an impossible <1x speedup on the 1-core CI box, without
        // the minimum's bias toward lucky runs.
        let run_once = || {
            let mut world = World::build(WorldConfig::small(seed).with_threads(threads));
            let t = Instant::now();
            let (out, report) = run_extension_pipeline_degraded(&mut world, &FaultPlan::none());
            (
                t.elapsed().as_secs_f64() * 1e3,
                report.timings,
                out.dataset.visits.len(),
            )
        };
        let _warmup = run_once();
        let mut runs: Vec<(f64, xborder_faults::StageTimings, usize)> =
            (0..3).map(|_| run_once()).collect();
        runs.sort_by(|a, b| a.0.total_cmp(&b.0));
        let (wall_ms, timings, n_visits) = runs.swap_remove(1);
        println!(
            "threads {threads}: pipeline {wall_ms:.1} ms (study {:.1}, classify {:.1}, \
             completion {:.1}, geolocate {:.1}; study allocs {} / {} visits)",
            timings.study_ms,
            timings.classify_ms,
            timings.completion_ms,
            timings.geolocate_ms,
            timings.study_allocs,
            n_visits
        );
        measured.push((threads, wall_ms, timings, n_visits));
    }

    let seq = &measured[0];
    assert_eq!(seq.0, 1, "sweep starts at the sequential budget");

    // --- Streaming mode: chunked ingestion at threads=1, with and without
    // durable checkpoints, against the batch sequential baseline. The
    // summary equality assert keeps the bench honest: a streaming path
    // that drifted from batch would report a meaningless overhead number.
    let summary = |out: &StudyOutputs| {
        (
            out.dataset.requests.len(),
            out.dataset.visits.len(),
            out.classification.abp.n_total_requests,
            out.tracker_ips.len(),
        )
    };
    let chunk_users = 5usize;
    let mut world = World::build(WorldConfig::small(seed).with_threads(1));
    let (batch_out, _) = run_extension_pipeline_degraded(&mut world, &FaultPlan::none());
    let batch_summary = summary(&batch_out);
    drop(batch_out);

    let snapshot_windows = 6usize;
    let run_streaming = |stream_cfg: &StreamConfig| {
        if let Some(dir) = &stream_cfg.checkpoint_dir {
            // Every timed run starts cold: no chunks to replay.
            let _ = std::fs::remove_dir_all(dir);
        }
        let mut world = World::build(WorldConfig::small(seed).with_threads(1));
        let t = Instant::now();
        let (out, report) =
            run_extension_pipeline_streaming(&mut world, &FaultPlan::none(), stream_cfg, &KillSwitch::none())
                .expect("un-killed streaming bench run succeeds");
        let wall_ms = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            summary(&out),
            batch_summary,
            "streaming bench output drifted from batch"
        );
        assert_eq!(out.snapshots.len(), snapshot_windows, "rolling snapshots missing");
        (wall_ms, out.dataset.visits.len(), report.timings)
    };
    let median_of_3 = |stream_cfg: &StreamConfig| {
        let _warmup = run_streaming(stream_cfg);
        let mut runs: Vec<(f64, usize, xborder_faults::StageTimings)> =
            (0..3).map(|_| run_streaming(stream_cfg)).collect();
        runs.sort_by(|a, b| a.0.total_cmp(&b.0));
        runs.swap_remove(1)
    };
    // Both variants emit rolling snapshots so the checkpoint-overhead
    // comparison stays apples-to-apples.
    let in_memory = StreamConfig::in_memory(chunk_users).with_snapshots(snapshot_windows);
    let (streaming_ms, n_visits, stream_timings) = median_of_3(&in_memory);
    let ckpt_dir = std::env::temp_dir().join(format!("xborder-bench-ckpt-{}", std::process::id()));
    let durable = StreamConfig::durable(chunk_users, &ckpt_dir).with_snapshots(snapshot_windows);
    let (streaming_ckpt_ms, _, _) = median_of_3(&durable);
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    let visits_per_sec = n_visits as f64 / (streaming_ckpt_ms / 1e3).max(f64::MIN_POSITIVE);
    let checkpoint_overhead_pct = (streaming_ckpt_ms / streaming_ms.max(f64::MIN_POSITIVE) - 1.0) * 100.0;
    let overhead_vs_batch_pct = (streaming_ms / seq.1.max(f64::MIN_POSITIVE) - 1.0) * 100.0;
    // Incremental-vs-batch classify is a ratio of two small stage times, so
    // clock drift between the thread sweep and the streaming block (minutes
    // apart on a noisy box) would dominate it. Interleave batch and
    // streaming runs back to back and compare their medians instead.
    let run_batch_classify = || {
        let mut world = World::build(WorldConfig::small(seed).with_threads(1));
        let (out, report) = run_extension_pipeline_degraded(&mut world, &FaultPlan::none());
        assert_eq!(
            summary(&out),
            batch_summary,
            "batch classify-baseline run drifted"
        );
        report.timings.classify_ms
    };
    let mut batch_cls: Vec<f64> = Vec::new();
    let mut inc_cls: Vec<f64> = Vec::new();
    for round in 0..7 {
        // Alternate which variant goes first so a monotonically drifting
        // clock (thermal throttling) cannot bias one side.
        if round % 2 == 0 {
            batch_cls.push(run_batch_classify());
            inc_cls.push(run_streaming(&in_memory).2.classify_ms);
        } else {
            inc_cls.push(run_streaming(&in_memory).2.classify_ms);
            batch_cls.push(run_batch_classify());
        }
    }
    // Min, not median: both stages are sub-15 ms on a box whose clock swings
    // ~2x under load, so the minimum is the only noise-robust estimator of
    // the work actually done.
    let min = |xs: &[f64]| xs.iter().copied().fold(f64::INFINITY, f64::min);
    let batch_classify_ms = min(&batch_cls);
    let incremental_classify_ms = min(&inc_cls);
    let classify_overhead_vs_batch_pct =
        (incremental_classify_ms / batch_classify_ms.max(f64::MIN_POSITIVE) - 1.0) * 100.0;
    let snapshot_ms = stream_timings.snapshot_ms;
    let snapshot_ms_per_window = snapshot_ms / snapshot_windows as f64;
    println!(
        "streaming (chunk {chunk_users} users, threads 1): {streaming_ms:.1} ms in-memory, \
         {streaming_ckpt_ms:.1} ms checkpointed ({checkpoint_overhead_pct:+.1}% checkpoint cost, \
         {overhead_vs_batch_pct:+.1}% vs batch, {visits_per_sec:.0} visits/s durable; \
         incremental classify {incremental_classify_ms:.2} ms \
         [{classify_overhead_vs_batch_pct:+.1}% vs batch], \
         {snapshot_windows} snapshots {snapshot_ms:.2} ms total)"
    );
    let runs: Vec<serde_json::Value> = measured
        .iter()
        .map(|(threads, wall_ms, t, n_visits)| {
            serde_json::json!({
                "threads": threads,
                "pipeline_ms": wall_ms,
                "study_ms": t.study_ms,
                "classify_ms": t.classify_ms,
                "completion_ms": t.completion_ms,
                "geolocate_ms": t.geolocate_ms,
                "total_ms": t.total_ms,
                "study_allocs": t.study_allocs,
                "study_alloc_bytes": t.study_alloc_bytes,
                "study_allocs_per_visit": t.study_allocs as f64 / (*n_visits).max(1) as f64,
                "study_speedup_vs_sequential": if t.study_ms > 0.0 { seq.2.study_ms / t.study_ms } else { 1.0 },
                "e2e_speedup_vs_sequential": if *wall_ms > 0.0 { seq.1 / wall_ms } else { 1.0 },
            })
        })
        .collect();
    let best_e2e = measured
        .iter()
        .map(|(_, wall_ms, _, _)| seq.1 / wall_ms.max(f64::MIN_POSITIVE))
        .fold(1.0f64, f64::max);
    let streaming_doc = serde_json::json!({
        "chunk_users": chunk_users,
        "threads": 1,
        "streaming_ms": streaming_ms,
        "streaming_ckpt_ms": streaming_ckpt_ms,
        "visits_per_sec": visits_per_sec,
        "checkpoint_overhead_pct": checkpoint_overhead_pct,
        "overhead_vs_batch_pct": overhead_vs_batch_pct,
        "incremental_classify_ms": incremental_classify_ms,
        "classify_overhead_vs_batch_pct": classify_overhead_vs_batch_pct,
        "snapshot_windows": snapshot_windows,
        "snapshot_ms": snapshot_ms,
        "snapshot_ms_per_window": snapshot_ms_per_window,
    });
    let doc = serde_json::json!({
        "bench": "pipeline",
        "config": format!("WorldConfig::small({seed})"),
        "threads_available": n_threads,
        "runs": runs,
        "e2e_speedup_vs_sequential": best_e2e,
        "streaming": streaming_doc,
    });
    let out = "BENCH_pipeline.json";
    let doc = match serde_json::to_string_pretty(&doc) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("bench_pipeline: FAIL — bench doc does not serialize: {e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = std::fs::write(out, doc) {
        eprintln!("bench_pipeline: FAIL — cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out} (best e2e speedup vs sequential: {best_e2e:.2}x; {n_threads} threads available)");
}
