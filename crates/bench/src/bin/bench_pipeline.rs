//! Pipeline bench smoke: end-to-end and per-stage wall-clock at 1 and N
//! threads, written to `BENCH_pipeline.json` (run from the repo root; see
//! ci.sh). The per-stage numbers come from the pipeline's own
//! `DegradationReport::timings`, so the bench measures exactly what
//! production runs record.

use std::time::Instant;
use xborder::pipeline::run_extension_pipeline_degraded;
use xborder::{Parallelism, World, WorldConfig};
use xborder_faults::FaultPlan;

fn main() {
    let seed = 11u64;
    let n_threads = Parallelism::from_env().threads;
    let budgets: Vec<usize> = if n_threads > 1 { vec![1, n_threads] } else { vec![1] };

    let mut measured: Vec<(usize, f64, xborder_faults::StageTimings)> = Vec::new();
    for &threads in &budgets {
        // Best of five: the first run warms the page cache and allocator,
        // and the minimum filters scheduler noise on a shared box.
        let mut best: Option<(f64, xborder_faults::StageTimings)> = None;
        for _ in 0..5 {
            let mut world = World::build(WorldConfig::small(seed).with_threads(threads));
            let t = Instant::now();
            let (_, report) = run_extension_pipeline_degraded(&mut world, &FaultPlan::none());
            let wall_ms = t.elapsed().as_secs_f64() * 1e3;
            if best.as_ref().is_none_or(|(b, _)| wall_ms < *b) {
                best = Some((wall_ms, report.timings));
            }
        }
        let (wall_ms, timings) = best.expect("at least one run");
        println!(
            "threads {threads}: pipeline {wall_ms:.1} ms (study {:.1}, classify {:.1}, \
             completion {:.1}, geolocate {:.1})",
            timings.study_ms, timings.classify_ms, timings.completion_ms, timings.geolocate_ms
        );
        measured.push((threads, wall_ms, timings));
    }

    let speedup = match measured.as_slice() {
        [(_, seq_ms, _), (_, par_ms, _)] if *par_ms > 0.0 => seq_ms / par_ms,
        _ => 1.0,
    };
    let runs: Vec<serde_json::Value> = measured
        .iter()
        .map(|(threads, wall_ms, t)| {
            serde_json::json!({
                "threads": threads,
                "pipeline_ms": wall_ms,
                "study_ms": t.study_ms,
                "classify_ms": t.classify_ms,
                "completion_ms": t.completion_ms,
                "geolocate_ms": t.geolocate_ms,
                "total_ms": t.total_ms,
            })
        })
        .collect();
    let doc = serde_json::json!({
        "bench": "pipeline",
        "config": format!("WorldConfig::small({seed})"),
        "threads_available": n_threads,
        "runs": runs,
        "e2e_speedup_vs_sequential": speedup,
    });
    let out = "BENCH_pipeline.json";
    std::fs::write(out, serde_json::to_string_pretty(&doc).expect("bench doc serializes"))
        .expect("write BENCH_pipeline.json");
    println!("wrote {out} (e2e speedup vs sequential: {speedup:.2}x at {n_threads} threads)");
}
