//! Shared harness for the reproduction binary and the criterion benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use xborder::confine::{country_matrix_eu28, region_breakdown_eu28, region_matrix};
use xborder::dedicated::DedicatedAnalysis;
use xborder::ispstudy::{run_isp_study, IspStudyConfig, IspStudyResults};
use xborder::pipeline::run_extension_pipeline;
use xborder::sensitive::{detect_sensitive_sites, trace_sensitive_flows, DetectorConfig};
use xborder::whatif;
use xborder::{StudyOutputs, World, WorldConfig};

/// Which configuration scale to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Test-sized world (seconds).
    Small,
    /// Paper-sized world (minutes).
    Paper,
}

impl Scale {
    /// Parses "small" / "paper".
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "small" => Some(Scale::Small),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// The world configuration at this scale.
    pub fn config(&self, seed: u64) -> WorldConfig {
        match self {
            Scale::Small => WorldConfig::small(seed),
            Scale::Paper => WorldConfig::paper_scale(seed),
        }
    }
}

/// Everything the repro targets need, computed once.
pub struct Repro {
    /// The built world.
    pub world: World,
    /// Extension-pipeline outputs.
    pub out: StudyOutputs,
}

impl Repro {
    /// Builds the world and runs the extension pipeline.
    pub fn run(scale: Scale, seed: u64) -> Repro {
        let mut world = World::build(scale.config(seed));
        let out = run_extension_pipeline(&mut world);
        Repro { world, out }
    }

    /// Region matrix over all users (Fig. 6).
    pub fn fig6(&self) -> xborder::confine::RegionMatrix {
        region_matrix(&self.out, &self.out.ipmap_estimates)
    }

    /// EU28 destination mixes under MaxMind and IPmap (Fig. 7).
    pub fn fig7(&self) -> (xborder::confine::DestBreakdown, xborder::confine::DestBreakdown) {
        (
            region_breakdown_eu28(&self.out, &self.out.maxmind_estimates),
            region_breakdown_eu28(&self.out, &self.out.ipmap_estimates),
        )
    }

    /// EU28 country matrix (Fig. 8).
    pub fn fig8(&self) -> xborder::confine::CountryMatrix {
        country_matrix_eu28(&self.out, &self.out.ipmap_estimates)
    }

    /// Dedicated-IP analysis (Figs. 4–5).
    pub fn dedicated(&self) -> DedicatedAnalysis {
        DedicatedAnalysis::run(&self.out, self.world.dns.pdns())
    }

    /// What-if scenarios (Tables 5–6).
    pub fn whatif(&self) -> whatif::WhatIfResults {
        whatif::run(&self.world, &self.out, &self.out.ipmap_estimates)
    }

    /// Sensitive-flow tracing (Figs. 9–11). Returns (sites, stats).
    pub fn sensitive(
        &self,
        seed: u64,
    ) -> (xborder::sensitive::SensitiveSites, xborder::sensitive::SensitiveFlowStats) {
        let mut rng = StdRng::seed_from_u64(seed);
        let sites = detect_sensitive_sites(&self.world.graph, &DetectorConfig::default(), &mut rng);
        let stats = trace_sensitive_flows(&self.out, &self.world.graph, &sites, &self.out.ipmap_estimates);
        (sites, stats)
    }

    /// ISP study (Tables 7–8, Fig. 12).
    pub fn isp_study(&mut self, scale: Scale) -> IspStudyResults {
        let cfg = match scale {
            Scale::Small => IspStudyConfig::small(),
            Scale::Paper => IspStudyConfig::default(),
        };
        run_isp_study(
            &mut self.world,
            &self.out.tracker_ips,
            &self.out.ipmap_estimates,
            &cfg,
        )
    }

    /// Inter-tracker collaboration graph (paper future work).
    pub fn collab(&self) -> xborder::collab::CollabGraph {
        xborder::collab::CollabGraph::build(&self.world, &self.out, &self.out.ipmap_estimates)
    }
}

/// Headline metrics of one seeded run, for the stability study.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct SeedMetrics {
    /// The seed.
    pub seed: u64,
    /// EU28 confinement of EU28 users' flows (IPmap estimates).
    pub eu28_confinement: f64,
    /// North-America share of EU28 users' flows.
    pub na_share: f64,
    /// Semi-automatic / blocklist request ratio (Table 2 expansion).
    pub semi_over_abp: f64,
    /// pDNS completion fraction.
    pub completion_fraction: f64,
}

/// Mean and (population) standard deviation of a metric across seeds.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct MeanStd {
    /// Mean.
    pub mean: f64,
    /// Standard deviation.
    pub std: f64,
}

fn mean_std(values: impl Iterator<Item = f64> + Clone) -> MeanStd {
    let n = values.clone().count().max(1) as f64;
    let mean = values.clone().sum::<f64>() / n;
    let var = values.map(|v| (v - mean).powi(2)).sum::<f64>() / n;
    MeanStd { mean, std: var.sqrt() }
}

/// The multi-seed stability study: is the headline result a fluke of one
/// world, or a property of the model? Runs `n_seeds` independent small
/// worlds and reports per-metric mean ± std.
#[derive(Debug, Clone, Serialize)]
pub struct StabilityReport {
    /// Per-seed raw metrics.
    pub runs: Vec<SeedMetrics>,
    /// EU28 confinement across seeds.
    pub eu28_confinement: MeanStd,
    /// NA share across seeds.
    pub na_share: MeanStd,
    /// Semi/ABP expansion across seeds.
    pub semi_over_abp: MeanStd,
}

/// Runs the stability study.
pub fn stability_study(n_seeds: u64, base_seed: u64) -> StabilityReport {
    let mut runs = Vec::with_capacity(n_seeds as usize);
    for i in 0..n_seeds {
        let seed = base_seed + i;
        let repro = Repro::run(Scale::Small, seed);
        let b = region_breakdown_eu28(&repro.out, &repro.out.ipmap_estimates);
        runs.push(SeedMetrics {
            seed,
            eu28_confinement: b.share(xborder_geo::Region::Eu28),
            na_share: b.share(xborder_geo::Region::NorthAmerica),
            semi_over_abp: repro.out.classification.semi.n_total_requests as f64
                / repro.out.classification.abp.n_total_requests.max(1) as f64,
            completion_fraction: repro.out.completion.added_fraction(),
        });
    }
    StabilityReport {
        eu28_confinement: mean_std(runs.iter().map(|r| r.eu28_confinement)),
        na_share: mean_std(runs.iter().map(|r| r.na_share)),
        semi_over_abp: mean_std(runs.iter().map(|r| r.semi_over_abp)),
        runs,
    }
}
