//! Benchmarks for sensitive-category detection and tracing (Figs. 9–11).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use xborder::sensitive::{detect_sensitive_sites, trace_sensitive_flows, DetectorConfig};
use xborder_bench::{Repro, Scale};

fn bench_sensitive(c: &mut Criterion) {
    let repro = Repro::run(Scale::Small, 51);

    c.bench_function("fig9/detect_sensitive_sites", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(52);
            detect_sensitive_sites(&repro.world.graph, &DetectorConfig::default(), &mut rng)
        })
    });

    let mut rng = StdRng::seed_from_u64(53);
    let sites = detect_sensitive_sites(&repro.world.graph, &DetectorConfig::default(), &mut rng);
    let mut g = c.benchmark_group("fig10");
    g.throughput(Throughput::Elements(repro.out.dataset.requests.len() as u64));
    g.bench_function("trace_sensitive_flows", |b| {
        b.iter(|| {
            trace_sensitive_flows(&repro.out, &repro.world.graph, &sites, &repro.out.ipmap_estimates)
        })
    });
    g.finish();

    let stats = trace_sensitive_flows(&repro.out, &repro.world.graph, &sites, &repro.out.ipmap_estimates);
    c.bench_function("fig11/per_category_metrics", |b| {
        b.iter(|| {
            xborder_webgraph::SiteCategory::SENSITIVE
                .iter()
                .map(|cat| (stats.category_share(*cat), stats.category_leakage(*cat)))
                .collect::<Vec<_>>()
        })
    });
}

criterion_group!(benches, bench_sensitive);
criterion_main!(benches);
