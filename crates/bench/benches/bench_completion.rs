//! Benchmarks for tracker-IP completion (Sect. 3.3) and the dedicated-IP
//! analysis (Figs. 4–5), plus the pDNS-coverage ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xborder::dedicated::DedicatedAnalysis;
use xborder::ips::TrackerIpSet;
use xborder::pipeline::run_extension_pipeline;
use xborder::{World, WorldConfig};
use xborder_bench::{Repro, Scale};

fn bench_ip_set_build(c: &mut Criterion) {
    let repro = Repro::run(Scale::Small, 71);
    c.bench_function("ipcompletion/from_dataset", |b| {
        b.iter(|| TrackerIpSet::from_dataset(&repro.out.dataset, &repro.out.classification))
    });
    c.bench_function("ipcompletion/pdns_forward_completion", |b| {
        b.iter(|| {
            let mut set = TrackerIpSet::from_dataset(&repro.out.dataset, &repro.out.classification);
            set.complete_with_pdns(repro.world.dns.pdns())
        })
    });
}

fn bench_dedicated_analysis(c: &mut Criterion) {
    let repro = Repro::run(Scale::Small, 72);
    c.bench_function("fig4/dedicated_ip_analysis", |b| {
        b.iter(|| DedicatedAnalysis::run(&repro.out, repro.world.dns.pdns()))
    });
    let analysis = DedicatedAnalysis::run(&repro.out, repro.world.dns.pdns());
    c.bench_function("fig5/heavy_sharers", |b| b.iter(|| analysis.heavy_sharers(10).len()));
}

fn bench_ablation_pdns_coverage(c: &mut Criterion) {
    // Ablation: how many extra IPs (and how much work) different sensor
    // coverages produce. Re-builds the world with each coverage level.
    let mut g = c.benchmark_group("ablation_pdns_coverage");
    g.sample_size(10);
    for coverage in [0.0f64, 0.1, 0.35, 1.0] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{coverage:.2}")),
            &coverage,
            |b, cov| {
                b.iter(|| {
                    let mut cfg = WorldConfig::small(73);
                    cfg.pdns_coverage = *cov;
                    // Shrink the world further: this ablation rebuilds it.
                    cfg.web.n_publishers = 100;
                    cfg.web.n_adtech_orgs = 30;
                    cfg.web.n_clean_orgs = 15;
                    cfg.study.population.n_users = 20;
                    cfg.study.visits_per_user_mean = 15.0;
                    let mut world = World::build(cfg);
                    let out = run_extension_pipeline(&mut world);
                    out.completion.n_added
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_ip_set_build,
    bench_dedicated_analysis,
    bench_ablation_pdns_coverage
);
criterion_main!(benches);
