//! Fault-layer overhead.
//!
//! The fault injector sits on every request, pDNS record, probe, and
//! geolocation lookup of the pipeline, so its cost at `FaultPlan::none()`
//! is pure overhead over the pre-fault pipeline — these benches pin it.
//! The aggressive arm shows what a heavily-faulted run costs end to end
//! (retry loops, backoff accounting, degraded-path bookkeeping).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use xborder::pipeline::run_extension_pipeline_degraded;
use xborder::{World, WorldConfig};
use xborder_faults::{stable_hash, FaultInjector, FaultPlan};

/// Small-but-not-trivial world so a full pipeline run fits a bench iter.
fn tiny_config(seed: u64) -> WorldConfig {
    let mut cfg = WorldConfig::small(seed);
    cfg.web.n_publishers = 60;
    cfg.web.n_adtech_orgs = 20;
    cfg.web.n_clean_orgs = 10;
    cfg.study.population.n_users = 10;
    cfg.study.visits_per_user_mean = 6.0;
    cfg.ipmap.total_probes = 300;
    cfg.ipmap.probes_per_target = 12;
    cfg.ipmap.samples_per_probe = 2;
    cfg.ipmap.landmarks = 12;
    cfg
}

fn bench_pipeline_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("fault_layer_pipeline");
    // A fresh world per iteration keeps every run bit-comparable; the
    // build cost is identical across arms, so the *difference* between
    // arms is the fault layer.
    g.bench_function("plan_none", |b| {
        b.iter(|| {
            let mut world = World::build(tiny_config(11));
            run_extension_pipeline_degraded(&mut world, &FaultPlan::none())
        })
    });
    g.bench_function("plan_aggressive", |b| {
        b.iter(|| {
            let mut world = World::build(tiny_config(11));
            run_extension_pipeline_degraded(&mut world, &FaultPlan::aggressive(7))
        })
    });
    g.finish();
}

fn bench_coin_micro(c: &mut Criterion) {
    // Per-coin cost: the inactive injector must be near-free (a bool
    // check), the active one a couple of integer mixes.
    let inactive = FaultInjector::inactive();
    let active = FaultInjector::new(FaultPlan::aggressive(3));
    let keys: Vec<u64> = (0..1_000u64).map(|i| stable_hash(&i.to_le_bytes())).collect();
    let mut g = c.benchmark_group("fault_layer_coins");
    g.throughput(Throughput::Elements(keys.len() as u64));
    g.bench_function("inactive", |b| {
        b.iter(|| {
            keys.iter()
                .filter(|&&k| inactive.pdns_gapped(k) || inactive.geo_missed(k))
                .count()
        })
    });
    g.bench_function("active", |b| {
        b.iter(|| {
            keys.iter()
                .filter(|&&k| active.pdns_gapped(k) || active.geo_missed(k))
                .count()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_pipeline_overhead, bench_coin_micro);
criterion_main!(benches);
