//! Benchmarks for the extension-study path (Table 1, Fig. 2).
//!
//! Covers world generation, the full 4.5-month study simulation, and the
//! hot inner pieces: visit sampling and single-page rendering.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use xborder::{World, WorldConfig};
use xborder_browser::{run_study, RenderConfig, RenderEngine, StudyConfig, VisitSampler};

fn bench_world_build(c: &mut Criterion) {
    c.bench_function("worldgen/small_world_build", |b| {
        b.iter(|| World::build(WorldConfig::small(1)))
    });
}

fn bench_full_study(c: &mut Criterion) {
    // Table 1's dataset comes out of exactly this call.
    c.bench_function("table1/run_study_small", |b| {
        b.iter_batched(
            || World::build(WorldConfig::small(2)),
            |mut world| {
                let mut rng = StdRng::seed_from_u64(3);
                run_study(&StudyConfig::small(), &world.graph, &mut world.dns, &mut rng)
            },
            BatchSize::PerIteration,
        )
    });
}

fn bench_render_visit(c: &mut Criterion) {
    let mut world = World::build(WorldConfig::small(4));
    let engine = RenderEngine::new(&world.graph, RenderConfig::default());
    let mut rng = StdRng::seed_from_u64(5);
    let pop = xborder_browser::UserPopulation::generate(
        &xborder_browser::UserPopulationConfig::small(),
        &mut rng,
    );
    let user = pop.users[0].clone();
    let mut out = Vec::with_capacity(4096);
    let n_pub = world.graph.publishers.len();
    let mut i = 0usize;
    c.bench_function("fig2/render_single_visit", |b| {
        b.iter(|| {
            i = (i + 1) % n_pub;
            out.clear();
            let publisher = world.graph.publisher(xborder_webgraph::PublisherId(i as u32));
            engine.render_visit(
                &user,
                publisher,
                xborder_netsim::SimTime(100),
                &mut world.dns,
                &mut out,
                &mut rng,
            )
        })
    });
}

fn bench_visit_sampler(c: &mut Criterion) {
    let world = World::build(WorldConfig::small(6));
    let mut sampler = VisitSampler::new();
    let mut rng = StdRng::seed_from_u64(7);
    let es = xborder_geo::CountryCode::parse("ES").unwrap();
    c.bench_function("fig2/visit_sample", |b| {
        b.iter(|| sampler.sample(es, &world.graph, 0.42, 0.02, &mut rng))
    });
}

criterion_group!(
    benches,
    bench_world_build,
    bench_full_study,
    bench_render_visit,
    bench_visit_sampler
);
criterion_main!(benches);
