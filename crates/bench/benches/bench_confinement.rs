//! Benchmarks for the border-crossing analyses (Figs. 6–8).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use xborder::confine::{country_matrix_eu28, region_breakdown_eu28, region_matrix};
use xborder_bench::{Repro, Scale};

fn bench_confinement(c: &mut Criterion) {
    let repro = Repro::run(Scale::Small, 31);
    let n = repro.out.dataset.requests.len() as u64;

    let mut g = c.benchmark_group("confinement");
    g.throughput(Throughput::Elements(n));
    g.bench_function("fig6/region_matrix", |b| {
        b.iter(|| region_matrix(&repro.out, &repro.out.ipmap_estimates))
    });
    g.bench_function("fig7/eu28_breakdown_ipmap", |b| {
        b.iter(|| region_breakdown_eu28(&repro.out, &repro.out.ipmap_estimates))
    });
    g.bench_function("fig7/eu28_breakdown_maxmind", |b| {
        b.iter(|| region_breakdown_eu28(&repro.out, &repro.out.maxmind_estimates))
    });
    g.bench_function("fig8/country_matrix", |b| {
        b.iter(|| country_matrix_eu28(&repro.out, &repro.out.ipmap_estimates))
    });
    g.finish();

    // Derived-metric cost on the computed matrices.
    let m = country_matrix_eu28(&repro.out, &repro.out.ipmap_estimates);
    c.bench_function("fig8/termination_shares", |b| b.iter(|| m.termination_shares()));
}

criterion_group!(benches, bench_confinement);
criterion_main!(benches);
