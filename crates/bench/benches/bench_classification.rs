//! Benchmarks for the classification path (Table 2, Fig. 3) and the
//! classifier-stage ablation.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use xborder::{World, WorldConfig};
use xborder_browser::{run_study, ExtensionDataset, StudyConfig};
use xborder_classify::classifier::{classify_with_stages, ClassifierStages};
use xborder_classify::{classify, generate_lists, FilterList};

fn dataset() -> (World, ExtensionDataset, FilterList, FilterList) {
    let mut world = World::build(WorldConfig::small(11));
    let mut rng = StdRng::seed_from_u64(12);
    let ds = run_study(&StudyConfig::small(), &world.graph, &mut world.dns, &mut rng);
    let (el, ep) = generate_lists(&world.graph);
    (world, ds, el, ep)
}

fn bench_table2_classify(c: &mut Criterion) {
    let (_world, ds, el, ep) = dataset();
    let mut g = c.benchmark_group("table2");
    g.throughput(Throughput::Elements(ds.requests.len() as u64));
    g.bench_function("classify_full", |b| {
        b.iter(|| classify(&ds.requests, &ds.domains, &el, &ep))
    });
    g.finish();
}

fn bench_ablation_stages(c: &mut Criterion) {
    // Ablation: which stage contributes what cost (and, in EXPERIMENTS.md,
    // what recall).
    let (_world, ds, el, ep) = dataset();
    let mut g = c.benchmark_group("ablation_classifier_stages");
    let configs = [
        ("lists_only", ClassifierStages { referrer_propagation: false, require_args: true, keywords: false }),
        ("lists_plus_referrer", ClassifierStages { referrer_propagation: true, require_args: true, keywords: false }),
        ("lists_plus_keywords", ClassifierStages { referrer_propagation: false, require_args: true, keywords: true }),
        ("full", ClassifierStages::default()),
        ("no_args_requirement", ClassifierStages { referrer_propagation: true, require_args: false, keywords: true }),
    ];
    for (name, stages) in configs {
        g.bench_function(name, |b| {
            b.iter(|| classify_with_stages(&ds.requests, &ds.domains, &el, &ep, stages))
        });
    }
    g.finish();
}

fn bench_fig3_top_tlds(c: &mut Criterion) {
    let (_world, ds, el, ep) = dataset();
    let res = classify(&ds.requests, &ds.domains, &el, &ep);
    let out = xborder::pipeline::StudyOutputs {
        dataset: ds,
        classification: res,
        easylist: el,
        easyprivacy: ep,
        tracker_ips: Default::default(),
        completion: xborder::ips::CompletionStats {
            n_observed: 0,
            n_added: 0,
            v4_share: 0.0,
            added_v4_share: 0.0,
        },
        ipmap_estimates: Default::default(),
        maxmind_estimates: Default::default(),
        ipapi_estimates: Default::default(),
        snapshots: Vec::new(),
    };
    c.bench_function("fig3/top_tlds", |b| {
        b.iter(|| xborder::report::Fig3Data::compute(&out, 20))
    });
}

fn bench_filter_list_matching(c: &mut Criterion) {
    let (_world, ds, el, _ep) = dataset();
    let mut g = c.benchmark_group("filterlist");
    g.throughput(Throughput::Elements(1));
    let r = &ds.requests[ds.requests.len() / 2];
    let host = ds.domains.domain(r.host);
    g.bench_function("match_one_request", |b| {
        b.iter(|| el.matches(host, &r.url))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_table2_classify,
    bench_ablation_stages,
    bench_fig3_top_tlds,
    bench_filter_list_matching
);
criterion_main!(benches);
