//! Benchmarks for the classification path (Table 2, Fig. 3) and the
//! classifier-stage ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xborder::{World, WorldConfig};
use xborder_browser::{run_study, ExtensionDataset, StudyConfig};
use xborder_classify::classifier::{classify_with_stages, ClassifierStages};
use xborder_classify::{classify, generate_lists, FilterList, FilterRule, RuleEngine};
use xborder_webgraph::Domain;

fn dataset() -> (World, ExtensionDataset, FilterList, FilterList) {
    let mut world = World::build(WorldConfig::small(11));
    let mut rng = StdRng::seed_from_u64(12);
    let ds = run_study(&StudyConfig::small(), &world.graph, &mut world.dns, &mut rng);
    let (el, ep) = generate_lists(&world.graph);
    (world, ds, el, ep)
}

fn bench_table2_classify(c: &mut Criterion) {
    let (_world, ds, el, ep) = dataset();
    let mut g = c.benchmark_group("table2");
    g.throughput(Throughput::Elements(ds.requests.len() as u64));
    g.bench_function("classify_full", |b| {
        b.iter(|| classify(&ds.requests, &ds.domains, &el, &ep))
    });
    g.finish();
}

fn bench_ablation_stages(c: &mut Criterion) {
    // Ablation: which stage contributes what cost (and, in EXPERIMENTS.md,
    // what recall).
    let (_world, ds, el, ep) = dataset();
    let mut g = c.benchmark_group("ablation_classifier_stages");
    let configs = [
        ("lists_only", ClassifierStages { referrer_propagation: false, require_args: true, keywords: false }),
        ("lists_plus_referrer", ClassifierStages { referrer_propagation: true, require_args: true, keywords: false }),
        ("lists_plus_keywords", ClassifierStages { referrer_propagation: false, require_args: true, keywords: true }),
        ("full", ClassifierStages::default()),
        ("no_args_requirement", ClassifierStages { referrer_propagation: true, require_args: false, keywords: true }),
    ];
    for (name, stages) in configs {
        g.bench_function(name, |b| {
            b.iter(|| classify_with_stages(&ds.requests, &ds.domains, &el, &ep, stages))
        });
    }
    g.finish();
}

fn bench_fig3_top_tlds(c: &mut Criterion) {
    let (_world, ds, el, ep) = dataset();
    let res = classify(&ds.requests, &ds.domains, &el, &ep);
    let out = xborder::pipeline::StudyOutputs {
        dataset: ds,
        classification: res,
        easylist: el,
        easyprivacy: ep,
        tracker_ips: Default::default(),
        completion: xborder::ips::CompletionStats {
            n_observed: 0,
            n_added: 0,
            v4_share: 0.0,
            added_v4_share: 0.0,
        },
        ipmap_estimates: Default::default(),
        maxmind_estimates: Default::default(),
        ipapi_estimates: Default::default(),
        snapshots: Vec::new(),
    };
    c.bench_function("fig3/top_tlds", |b| {
        b.iter(|| xborder::report::Fig3Data::compute(&out, 20))
    });
}

fn bench_filter_list_matching(c: &mut Criterion) {
    let (_world, ds, el, _ep) = dataset();
    let mut g = c.benchmark_group("filterlist");
    g.throughput(Throughput::Elements(1));
    let r = &ds.requests[ds.requests.len() / 2];
    let host = ds.domains.domain(r.host);
    g.bench_function("match_one_request", |b| {
        b.iter(|| el.matches(host, &r.url))
    });
    g.finish();
}

/// Synthetic URL-dependent rule set + probe URLs for the engine scaling
/// curve (the generated lists are all domain anchors; substring/path
/// rules are where the automaton's one-pass scan beats the per-rule
/// oracle, and where the curve's slope shows).
fn engine_workload(n_rules: usize, n_urls: usize, seed: u64) -> (FilterList, Vec<(Domain, String)>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_domains = (n_rules / 2).max(8);
    let domains: Vec<Domain> = (0..n_domains)
        .map(|i| Domain::new(format!("cdn{i}.ads{}.example{}.com", i % 13, i % 5)))
        .collect();
    let mut list = FilterList::new("bench-engine");
    for i in 0..n_rules {
        list.push(match i % 5 {
            0 => FilterRule::DomainAnchor(domains[rng.gen_range(0..n_domains)].clone()),
            1 | 2 => FilterRule::DomainWithPath {
                domain: domains[rng.gen_range(0..n_domains)].clone(),
                path_prefix: format!("/seg{}/", i % 97),
            },
            _ => FilterRule::UrlSubstring(format!("tok{:04}x", rng.gen_range(0..n_rules * 2))),
        });
    }
    let probes = (0..n_urls)
        .map(|_| {
            let host = if rng.gen_range(0..4) == 0 {
                domains[rng.gen_range(0..n_domains)].clone()
            } else {
                Domain::new(format!("www.site{}.net", rng.gen_range(0..n_domains)))
            };
            let url = format!(
                "https://{host}/seg{}/page?uid=u{}&tok{:04}x=1",
                rng.gen_range(0..97),
                rng.gen_range(0..100_000),
                rng.gen_range(0..n_rules * 4),
            );
            (host, url)
        })
        .collect();
    (list, probes)
}

fn bench_rule_engine(c: &mut Criterion) {
    // Scaling curve: match cost over a fixed URL sample as the rule count
    // grows {64, 512, 4096}. The engine's one-pass automaton should stay
    // near-flat in rules; the per-rule oracle grows linearly — the gap is
    // the tentpole's whole argument. Build cost rides along so compile
    // amortization stays visible.
    const N_URLS: usize = 2048;
    let mut g = c.benchmark_group("rule_engine");
    g.throughput(Throughput::Elements(N_URLS as u64));
    for n_rules in [64usize, 512, 4096] {
        let (list, probes) = engine_workload(n_rules, N_URLS, 97);
        g.bench_with_input(BenchmarkId::new("build", n_rules), &n_rules, |b, _| {
            b.iter(|| RuleEngine::compile(&[&list]))
        });
        let mut engine = RuleEngine::compile(&[&list]);
        // Warm the per-host row cache so the measured loop is the
        // steady-state URL path, like the classifier's memoized hot loop.
        let warm: u64 = probes.iter().filter(|(h, u)| engine.matches(h, u)).count() as u64;
        let oracle: u64 = probes.iter().filter(|(h, u)| list.matches(h, u)).count() as u64;
        assert_eq!(warm, oracle, "engine drifted from the rule oracle");
        g.bench_with_input(BenchmarkId::new("engine_match", n_rules), &n_rules, |b, _| {
            b.iter(|| {
                probes
                    .iter()
                    .filter(|(host, url)| engine.matches(host, url))
                    .count()
            })
        });
        g.bench_with_input(BenchmarkId::new("oracle_match", n_rules), &n_rules, |b, _| {
            b.iter(|| {
                probes
                    .iter()
                    .filter(|(host, url)| list.matches(host, url))
                    .count()
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_table2_classify,
    bench_ablation_stages,
    bench_fig3_top_tlds,
    bench_filter_list_matching,
    bench_rule_engine
);
criterion_main!(benches);
