//! Benchmarks for the localization what-if engine (Tables 5–6).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use xborder_bench::{Repro, Scale};

fn bench_whatif(c: &mut Criterion) {
    let repro = Repro::run(Scale::Small, 41);
    let n = repro.out.dataset.requests.len() as u64;
    let mut g = c.benchmark_group("table5");
    g.throughput(Throughput::Elements(n));
    g.bench_function("all_scenarios", |b| {
        b.iter(|| xborder::whatif::run(&repro.world, &repro.out, &repro.out.ipmap_estimates))
    });
    g.finish();
}

fn bench_service_clouds(c: &mut Criterion) {
    // Table 6's per-service mirroring sets hinge on this lookup.
    let repro = Repro::run(Scale::Small, 42);
    let ids: Vec<_> = repro.world.graph.services.iter().map(|s| s.id).collect();
    let mut i = 0usize;
    c.bench_function("table6/service_clouds", |b| {
        b.iter(|| {
            i = (i + 1) % ids.len();
            repro.world.service_clouds(ids[i])
        })
    });
}

criterion_group!(benches, bench_whatif, bench_service_clouds);
criterion_main!(benches);
