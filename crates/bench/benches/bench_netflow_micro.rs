//! Benchmarks for the ISP NetFlow path (Tables 7–8, Fig. 12): snapshot
//! generation, the v5 wire codec, the collector/matcher, and the
//! sampling-rate ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use xborder_bench::{Repro, Scale};
use xborder_netflow::record::encode_flows;
use xborder_netflow::{generate_snapshot, FlowCollector, IspProfile, SnapshotConfig, V5Packet};

fn bench_snapshot_generation(c: &mut Criterion) {
    let mut repro = Repro::run(Scale::Small, 61);
    let profile = IspProfile::by_name("DE-Broadband").unwrap();
    let cfg = SnapshotConfig {
        n_page_views: 100,
        ..Default::default()
    };
    c.bench_function("table8/generate_snapshot_100views", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(62);
            generate_snapshot(&profile, &cfg, &repro.world.graph, &mut repro.world.dns, &mut rng)
        })
    });
}

fn bench_v5_codec(c: &mut Criterion) {
    let mut repro = Repro::run(Scale::Small, 63);
    let profile = IspProfile::by_name("PL").unwrap();
    let cfg = SnapshotConfig {
        n_page_views: 50,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(64);
    let snap = generate_snapshot(&profile, &cfg, &repro.world.graph, &mut repro.world.dns, &mut rng);

    let mut g = c.benchmark_group("netflow_v5");
    g.throughput(Throughput::Elements(snap.flows.len() as u64));
    g.bench_function("encode", |b| b.iter(|| encode_flows(&snap.flows, 1, 1000)));
    let packets = encode_flows(&snap.flows, 1, 1000);
    g.bench_function("decode", |b| {
        b.iter(|| {
            packets
                .iter()
                .map(|p| V5Packet::decode(p.clone()).expect("valid packet").records.len())
                .sum::<usize>()
        })
    });
    g.finish();
}

fn bench_collector_matching(c: &mut Criterion) {
    let mut repro = Repro::run(Scale::Small, 65);
    let profile = IspProfile::by_name("HU").unwrap();
    let cfg = SnapshotConfig {
        n_page_views: 200,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(66);
    let snap = generate_snapshot(&profile, &cfg, &repro.world.graph, &mut repro.world.dns, &mut rng);

    let mut g = c.benchmark_group("table8_matcher");
    g.throughput(Throughput::Elements(snap.flows.len() as u64));
    g.bench_function("hash_match_flows", |b| {
        b.iter(|| {
            let mut collector = FlowCollector::new(repro.out.tracker_ips.ips.keys().copied());
            for f in &snap.flows {
                collector.ingest(f, profile.country);
            }
            collector.into_stats().tracking_flows
        })
    });
    g.finish();
}

fn bench_ablation_sampling_rate(c: &mut Criterion) {
    // Ablation: confinement-estimate stability vs sampled volume. Cost
    // scales linearly; EXPERIMENTS.md tracks the estimate variance.
    let mut repro = Repro::run(Scale::Small, 67);
    let profile = IspProfile::by_name("DE-Mobile").unwrap();
    let mut g = c.benchmark_group("ablation_sampling_rate");
    for views in [25usize, 50, 100, 200] {
        let cfg = SnapshotConfig {
            n_page_views: views,
            ..Default::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(views), &views, |b, _| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(68);
                let snap = generate_snapshot(
                    &profile,
                    &cfg,
                    &repro.world.graph,
                    &mut repro.world.dns,
                    &mut rng,
                );
                snap.flows.len()
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_snapshot_generation,
    bench_v5_codec,
    bench_collector_matching,
    bench_ablation_sampling_rate
);
criterion_main!(benches);
