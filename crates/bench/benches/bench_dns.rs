//! Benchmarks for the DNS substrate, including the mapping-policy ablation
//! (DESIGN.md: geo vs round-robin vs pinned confinement mechanics).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use xborder_dns::{ClientCtx, DnsSim, MappingPolicy, ZoneEntry, ZoneServer};
use xborder_geo::{CountryCode, WORLD};
use xborder_netsim::time::SimTime;
use xborder_netsim::ServerId;
use xborder_webgraph::Domain;

fn wide_zone(policy: MappingPolicy) -> ZoneEntry {
    let countries = ["US", "DE", "GB", "FR", "NL", "IE", "ES", "IT", "SE", "JP", "SG", "AU"];
    ZoneEntry {
        host: Domain::new("bench.example.com"),
        servers: countries
            .iter()
            .enumerate()
            .map(|(i, code)| {
                let c = WORLD.country_or_panic(CountryCode::parse(code).unwrap());
                ZoneServer {
                    server: ServerId(i as u32),
                    ip: std::net::IpAddr::V4(std::net::Ipv4Addr::from(0x0900_0000u32 + i as u32)),
                    country: c.code,
                    location: c.centroid(),
                        valid: None,
                }
            })
            .collect(),
        policy,
        ttl_secs: 300,
    }
}

fn bench_ablation_dns_policy(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_dns_policy");
    let de = WORLD.country_or_panic(CountryCode::parse("DE").unwrap());
    let client = ClientCtx::with_isp_resolver(de.code, de.centroid());
    let policies = [
        ("nearest_capacity_aware", MappingPolicy::NearestToResolver { epsilon: 0.08 }),
        ("nearest_high_dispersion", MappingPolicy::NearestToResolver { epsilon: 0.5 }),
        ("round_robin", MappingPolicy::RoundRobin),
        ("pinned", MappingPolicy::Pinned),
    ];
    for (name, policy) in policies {
        let zone = wide_zone(policy);
        let mut rng = StdRng::seed_from_u64(81);
        g.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, _| {
            b.iter(|| zone.select(client.resolver.location, SimTime(100), &mut rng))
        });
    }
    g.finish();
}

fn bench_resolution_with_pdns_capture(c: &mut Criterion) {
    let mut dns = DnsSim::new();
    dns.add_zone(wide_zone(MappingPolicy::NearestToResolver { epsilon: 0.08 }))
        .unwrap();
    let de = WORLD.country_or_panic(CountryCode::parse("DE").unwrap());
    let client = ClientCtx::with_isp_resolver(de.code, de.centroid());
    let host = Domain::new("bench.example.com");
    let mut rng = StdRng::seed_from_u64(82);
    let mut t = 0u64;
    c.bench_function("dns/resolve_with_pdns", |b| {
        b.iter(|| {
            t += 1;
            dns.resolve(&host, &client, SimTime(t), &mut rng).unwrap()
        })
    });
}

criterion_group!(benches, bench_ablation_dns_policy, bench_resolution_with_pdns_capture);
criterion_main!(benches);
