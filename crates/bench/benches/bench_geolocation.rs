//! Benchmarks for geolocation (Tables 3–4) and the probe-count ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::IpAddr;
use xborder::{World, WorldConfig};
use xborder_geoloc::{agreement, IpMap, IpMapConfig, RegistryDb, RegistryStyle};

fn world_and_ips() -> (World, Vec<IpAddr>) {
    let world = World::build(WorldConfig::small(21));
    let mut ips: Vec<IpAddr> = world.infra.servers().iter().map(|s| s.ip).collect();
    ips.sort();
    ips.truncate(64);
    (world, ips)
}

fn bench_ipmap_locate(c: &mut Criterion) {
    let (world, ips) = world_and_ips();
    let mut rng = StdRng::seed_from_u64(22);
    let ipmap = IpMap::new(IpMapConfig::small(), &world.infra, &mut rng);
    let mut i = 0usize;
    c.bench_function("table3/ipmap_locate_one_ip", |b| {
        b.iter(|| {
            i = (i + 1) % ips.len();
            xborder_geoloc::Geolocator::locate(&ipmap, ips[i])
        })
    });
}

fn bench_registry_build_and_locate(c: &mut Criterion) {
    let (world, ips) = world_and_ips();
    c.bench_function("table4/registry_build", |b| {
        b.iter(|| {
            let mut seat = StdRng::seed_from_u64(1);
            let mut noise = StdRng::seed_from_u64(2);
            RegistryDb::build(RegistryStyle::MaxMindLike, &world.infra, &mut seat, &mut noise)
        })
    });
    let mut seat = StdRng::seed_from_u64(1);
    let mut noise = StdRng::seed_from_u64(2);
    let db = RegistryDb::build(RegistryStyle::MaxMindLike, &world.infra, &mut seat, &mut noise);
    let mut i = 0usize;
    c.bench_function("table4/registry_locate_one_ip", |b| {
        b.iter(|| {
            i = (i + 1) % ips.len();
            xborder_geoloc::Geolocator::locate(&db, ips[i])
        })
    });
}

fn bench_pairwise_agreement(c: &mut Criterion) {
    let (world, ips) = world_and_ips();
    let mut seat = StdRng::seed_from_u64(1);
    let mut noise = StdRng::seed_from_u64(2);
    let mm = RegistryDb::build(RegistryStyle::MaxMindLike, &world.infra, &mut seat, &mut noise);
    let mut seat = StdRng::seed_from_u64(1);
    let mut noise = StdRng::seed_from_u64(3);
    let ia = RegistryDb::build(RegistryStyle::IpApiLike, &world.infra, &mut seat, &mut noise);
    c.bench_function("table3/pairwise_agreement_64ips", |b| {
        b.iter(|| agreement(&mm, &ia, &ips))
    });
}

fn bench_ablation_probe_count(c: &mut Criterion) {
    // Ablation: IPmap accuracy/cost vs probes per target. The latency cost
    // scales linearly; EXPERIMENTS.md tracks the accuracy side.
    let (world, ips) = world_and_ips();
    let mut g = c.benchmark_group("ablation_probe_count");
    for probes in [5usize, 25, 50, 100] {
        let cfg = IpMapConfig {
            total_probes: 1_200,
            probes_per_target: probes,
            samples_per_probe: 3,
            landmarks: 32,
            disable_assign_cache: false,
        };
        let mut rng = StdRng::seed_from_u64(23);
        let ipmap = IpMap::new(cfg, &world.infra, &mut rng);
        let mut i = 0usize;
        g.bench_with_input(BenchmarkId::from_parameter(probes), &probes, |b, _| {
            b.iter(|| {
                i = (i + 1) % ips.len();
                xborder_geoloc::Geolocator::locate(&ipmap, ips[i])
            })
        });
    }
    g.finish();
}

fn bench_ablation_estimator(c: &mut Criterion) {
    // Ablation: majority-vote (IPmap-style) vs constraint-based (CBG)
    // estimation over identical measurements.
    let (world, ips) = world_and_ips();
    let mut rng = StdRng::seed_from_u64(24);
    let ipmap = IpMap::new(IpMapConfig::small(), &world.infra, &mut rng);
    let cbg = xborder_geoloc::Cbg::new(&ipmap);
    let mut g = c.benchmark_group("ablation_estimator");
    let mut i = 0usize;
    g.bench_function("majority_vote", |b| {
        b.iter(|| {
            i = (i + 1) % ips.len();
            xborder_geoloc::Geolocator::locate(&ipmap, ips[i])
        })
    });
    let mut j = 0usize;
    g.bench_function("cbg", |b| {
        b.iter(|| {
            j = (j + 1) % ips.len();
            xborder_geoloc::Geolocator::locate(&cbg, ips[j])
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_ipmap_locate,
    bench_registry_build_and_locate,
    bench_pairwise_agreement,
    bench_ablation_probe_count,
    bench_ablation_estimator
);
criterion_main!(benches);
