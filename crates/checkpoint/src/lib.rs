//! Crash-safe checkpointing for the streaming ingestion pipeline.
//!
//! The paper's extension study ran for 4.5 months; a standing pipeline at
//! that horizon must survive kills and torn writes without corrupting
//! results. This crate supplies the durable half of that contract: a
//! directory of versioned, checksummed state blobs committed by an
//! atomically-renamed manifest, plus fallible byte codecs for the
//! payloads. It stores *bytes*, deliberately knowing nothing about
//! domains, users or tracker IPs — the typed blob encodings live next to
//! their domain types in the core `stream` module, keeping the dependency
//! graph acyclic.
//!
//! Module map:
//! - [`error`] — the [`CheckpointError`] taxonomy; loading never panics.
//! - [`codec`] — [`ByteWriter`] / [`ByteReader`] little-endian payload
//!   codecs with typed decode failures.
//! - [`store`] — the [`CheckpointStore`]: frame format, manifest,
//!   tmp+rename protocol, and the labelled kill sites the fault harness
//!   uses to simulate crashes mid-write.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod error;
pub mod store;

pub use codec::{ByteReader, ByteWriter, DecodeError};
pub use error::CheckpointError;
pub use store::{
    decode_frame, encode_frame, CheckpointStore, ChunkEntry, Manifest, StageEntry,
    CHECKPOINT_VERSION, KIND_CHUNK, KIND_STAGE, MAGIC,
};
