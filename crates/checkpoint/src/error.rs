//! The typed failure taxonomy for checkpoint IO.
//!
//! Checkpoint loading must never panic on bad bytes (ISSUE 6): every way a
//! checkpoint directory can disappoint — missing files, torn writes,
//! bit rot, format drift, a checkpoint from a *different* configured world —
//! maps to a distinct variant so callers (and tests) can match on exactly
//! what went wrong. The corruption-matrix test pins the mapping.

use std::fmt;
use std::path::PathBuf;

/// Everything that can go wrong opening, reading or writing a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// An underlying filesystem operation failed (open, read, write,
    /// rename, sync). `detail` carries the OS error text.
    Io {
        /// The file or directory the operation touched.
        path: PathBuf,
        /// Human-readable description of the OS failure.
        detail: String,
    },
    /// A file is shorter than its recorded length — the classic torn
    /// write. Checked *before* the checksum so truncation is reported as
    /// truncation, not as a checksum mismatch.
    Truncated {
        /// The truncated file.
        path: PathBuf,
        /// Bytes the manifest (or frame header) says should exist.
        needed: u64,
        /// Bytes actually on disk.
        have: u64,
    },
    /// Content bytes do not hash to the recorded checksum (bit rot, a
    /// partial overwrite of the right length, or tampering).
    ChecksumMismatch {
        /// The corrupt file.
        path: PathBuf,
        /// The checksum the manifest or frame trailer recorded.
        expected: u64,
        /// The checksum of the bytes actually read.
        actual: u64,
    },
    /// Structurally invalid bytes: bad magic, an impossible length field,
    /// an unknown blob kind.
    Corrupt {
        /// The unparseable file.
        path: PathBuf,
        /// What failed to parse.
        detail: String,
    },
    /// The checkpoint was written by a different format version; we refuse
    /// to guess at migrations.
    VersionMismatch {
        /// Version recorded in the checkpoint.
        found: u32,
        /// Version this binary writes.
        expected: u32,
    },
    /// The checkpoint belongs to a different world: its configuration
    /// fingerprint (seed, world shape, fault plan — everything that feeds
    /// the deterministic outputs) does not match the run trying to resume.
    SeedMismatch {
        /// Fingerprint recorded in the manifest.
        found: u64,
        /// Fingerprint of the resuming configuration.
        expected: u64,
    },
    /// The manifest parsed as JSON but violates the schema's invariants
    /// (or failed to parse / serialize at all).
    ManifestInvalid {
        /// What is wrong with it.
        detail: String,
    },
    /// Not a real failure: a seeded kill point fired (crash simulation).
    /// Carries where, so harnesses can report which site was exercised.
    Killed {
        /// Global kill-site counter value at which the switch fired.
        site: u64,
        /// The label of the site that fired.
        label: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { path, detail } => {
                write!(f, "checkpoint io error at {}: {detail}", path.display())
            }
            CheckpointError::Truncated { path, needed, have } => write!(
                f,
                "checkpoint file {} truncated: need {needed} bytes, have {have}",
                path.display()
            ),
            CheckpointError::ChecksumMismatch { path, expected, actual } => write!(
                f,
                "checkpoint file {} checksum mismatch: expected {expected:#018x}, got {actual:#018x}",
                path.display()
            ),
            CheckpointError::Corrupt { path, detail } => {
                write!(f, "checkpoint file {} corrupt: {detail}", path.display())
            }
            CheckpointError::VersionMismatch { found, expected } => write!(
                f,
                "checkpoint version {found} does not match supported version {expected}"
            ),
            CheckpointError::SeedMismatch { found, expected } => write!(
                f,
                "checkpoint belongs to a different configuration: \
                 fingerprint {found:#018x}, this run is {expected:#018x}"
            ),
            CheckpointError::ManifestInvalid { detail } => {
                write!(f, "checkpoint manifest invalid: {detail}")
            }
            CheckpointError::Killed { site, label } => {
                write!(f, "kill point fired at site {site} ({label})")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Maps an `std::io::Error` on `path` into [`CheckpointError::Io`].
pub(crate) fn io_err(path: &std::path::Path, e: std::io::Error) -> CheckpointError {
    CheckpointError::Io { path: path.to_path_buf(), detail: e.to_string() }
}
