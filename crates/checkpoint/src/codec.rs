//! Fallible little-endian byte codecs for checkpoint payloads.
//!
//! The store treats payloads as opaque bytes; the typed blob encodings
//! live with their domain types (core `stream` module) and are built on
//! these two primitives. The reader returns [`DecodeError`] instead of
//! panicking — a hard requirement, since decode runs on bytes that just
//! survived a simulated crash.

use std::fmt;

/// A structured decode failure: where in the buffer, and what went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte offset at which decoding failed.
    pub offset: usize,
    /// What the decoder expected vs. found.
    pub detail: String,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error at byte {}: {}", self.offset, self.detail)
    }
}

impl std::error::Error for DecodeError {}

/// Append-only little-endian encoder. Infallible: writing to a `Vec`
/// cannot fail, so only the read side carries `Result`s.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty writer with `n` bytes preallocated.
    pub fn with_capacity(n: usize) -> Self {
        Self { buf: Vec::with_capacity(n) }
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64`, little-endian.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (bit-exact round trip;
    /// checkpoints must not launder floats through text).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a `usize` as `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends raw bytes with no length prefix.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Appends a length-prefixed (`u64`) byte string.
    pub fn put_blob(&mut self, b: &[u8]) {
        self.put_u64(b.len() as u64);
        self.buf.extend_from_slice(b);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_blob(s.as_bytes());
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor-style little-endian decoder over a borrowed buffer. Every read
/// is bounds-checked and returns a typed error on short or malformed
/// input.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or_else(|| DecodeError {
            offset: self.pos,
            detail: format!("length overflow reading {what}"),
        })?;
        if end > self.buf.len() {
            return Err(DecodeError {
                offset: self.pos,
                detail: format!(
                    "short read for {what}: need {n} bytes, {} remain",
                    self.buf.len() - self.pos
                ),
            });
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, DecodeError> {
        Ok(self.u64()? as i64)
    }

    /// Reads an IEEE-754 `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `u64` and narrows it to `usize`, rejecting values that do
    /// not fit (corrupt lengths must not wrap).
    pub fn len_prefix(&mut self) -> Result<usize, DecodeError> {
        let offset = self.pos;
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| DecodeError {
            offset,
            detail: format!("length {v} exceeds usize"),
        })
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        self.take(n, "bytes")
    }

    /// Reads a length-prefixed byte string.
    pub fn blob(&mut self) -> Result<&'a [u8], DecodeError> {
        let n = self.len_prefix()?;
        self.take(n, "blob")
    }

    /// Reads a length-prefixed UTF-8 string, validating the encoding.
    pub fn str(&mut self) -> Result<&'a str, DecodeError> {
        let offset = self.pos;
        let b = self.blob()?;
        std::str::from_utf8(b).map_err(|e| DecodeError {
            offset,
            detail: format!("invalid utf-8 in string: {e}"),
        })
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Asserts the buffer was fully consumed — trailing garbage is
    /// corruption, not padding.
    pub fn finish(self) -> Result<(), DecodeError> {
        if self.pos != self.buf.len() {
            return Err(DecodeError {
                offset: self.pos,
                detail: format!("{} trailing bytes after payload", self.remaining()),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_types() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX - 3);
        w.put_i64(-42);
        w.put_f64(3.5e-9);
        w.put_str("héllo");
        w.put_blob(&[1, 2, 3]);
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.f64().unwrap().to_bits(), 3.5e-9f64.to_bits());
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.blob().unwrap(), &[1, 2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn short_reads_are_typed_errors() {
        let mut r = ByteReader::new(&[1, 2]);
        let err = r.u64().unwrap_err();
        assert_eq!(err.offset, 0);
        assert!(err.detail.contains("short read"));
    }

    #[test]
    fn corrupt_string_length_is_rejected() {
        // A length prefix claiming far more bytes than exist.
        let mut w = ByteWriter::new();
        w.put_u64(1 << 40);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(r.blob().is_err());
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let mut w = ByteWriter::new();
        w.put_blob(&[0xff, 0xfe]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let err = r.str().unwrap_err();
        assert!(err.detail.contains("utf-8"));
    }

    #[test]
    fn trailing_bytes_fail_finish() {
        let r = ByteReader::new(&[0u8; 4]);
        assert!(r.finish().is_err());
    }
}
