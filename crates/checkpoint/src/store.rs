//! The durable checkpoint store: versioned, checksummed blobs committed by
//! an atomically-renamed manifest.
//!
//! ## Layout
//!
//! ```text
//! <dir>/manifest.json        commit point: JSON index of everything durable
//! <dir>/chunk-00000.xbc      framed chunk blobs, one per ingested chunk
//! <dir>/stage-<name>.xbc     framed stage blobs (e.g. the completion stage)
//! <dir>/*.tmp                in-flight writes; ignored and overwritten
//! ```
//!
//! ## Write protocol
//!
//! The rename of `manifest.json` is the single commit point: a crash
//! anywhere leaves either the old manifest (any newer blob is unreferenced
//! garbage, safely overwritten on re-execution) or the new manifest (the
//! blob it references is durable and validated). Two write paths hang off
//! that invariant:
//!
//! - **Fresh blobs** (chunk appends) are written *directly at their final
//!   name* — create, write, one fsync. No tmp/rename is needed because a
//!   chunk file is never referenced by any manifest until the commit that
//!   follows it in the same call, so a torn or partial file at the final
//!   name is unreferenced garbage. This halves the fsyncs per chunk
//!   commit relative to the former tmp→sync→rename-everything protocol.
//! - **Replacing writes** (the manifest itself; stage blobs, which may
//!   replace an already-committed file of the same name) keep the full
//!   *write tmp → sync → rename* dance, since an in-place overwrite could
//!   tear a file the current manifest references.
//!
//! After the manifest rename, the parent directory is fsynced: POSIX only
//! makes the rename durable once the directory entry itself is on disk,
//! and the same dir fsync also covers the freshly created chunk file's
//! directory entry (both live in the checkpoint dir).
//!
//! ## Validation order
//!
//! On load, a blob's length is checked against the manifest *before* its
//! checksum, so a torn file reports [`CheckpointError::Truncated`] and a
//! same-length corruption reports [`CheckpointError::ChecksumMismatch`].
//! The loader never writes: a refused checkpoint directory is left
//! byte-identical for post-mortem.
//!
//! ## Kill points
//!
//! Each write threads a [`KillSwitch`] through labelled sites: direct blob
//! writes get `:pre`, `:mid` (torn file), `:durable`; replacing writes get
//! those plus `:post` (after the rename); and every manifest commit gets a
//! fifth site, `:dirsync`, after the directory fsync that makes the rename
//! durable. The kill-site sweep in `tests/streaming_resume.rs` pins that
//! resume recovers from every one.

use crate::error::{io_err, CheckpointError};
use serde::{Deserialize, Serialize};
use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};
use xborder_faults::{stable_hash, KillSwitch};

/// Format version written into every frame and the manifest. Bump on any
/// incompatible layout change; old checkpoints are refused, not migrated.
/// (v3: chunk blobs carry columnar segment blocks, DESIGN.md §5j.)
pub const CHECKPOINT_VERSION: u32 = 3;

/// Magic prefix of every framed blob file.
pub const MAGIC: [u8; 4] = *b"XBCP";

/// Blob kind tag: a per-chunk ingestion state blob.
pub const KIND_CHUNK: u8 = 1;
/// Blob kind tag: a named stage-boundary state blob.
pub const KIND_STAGE: u8 = 2;

/// Frame header length: magic + version + kind + payload length.
const FRAME_HEADER: usize = 4 + 4 + 1 + 8;
/// Minimum frame length: header plus trailing checksum.
const FRAME_MIN: usize = FRAME_HEADER + 8;

/// Manifest row describing one durable chunk blob.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkEntry {
    /// Zero-based chunk index; entries are contiguous from 0.
    pub index: u64,
    /// First user id (inclusive) covered by the chunk.
    pub user_start: u64,
    /// One past the last user id covered by the chunk.
    pub user_end: u64,
    /// File name relative to the checkpoint directory.
    pub file: String,
    /// Exact on-disk length of the framed blob.
    pub bytes: u64,
    /// `stable_hash` of the full framed file.
    pub checksum: u64,
}

/// Manifest row describing one durable stage blob.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageEntry {
    /// Stage name (e.g. `"completion"`); unique within the manifest.
    pub name: String,
    /// File name relative to the checkpoint directory.
    pub file: String,
    /// Exact on-disk length of the framed blob.
    pub bytes: u64,
    /// `stable_hash` of the full framed file.
    pub checksum: u64,
}

/// The JSON commit record: what is durable, for which configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Manifest {
    /// Format version ([`CHECKPOINT_VERSION`] when written by this crate).
    pub version: u32,
    /// Fingerprint of the run configuration (world config + fault plan
    /// with performance knobs canonicalised). Resume refuses a mismatch.
    pub fingerprint: u64,
    /// Durable chunks, in index order.
    pub chunks: Vec<ChunkEntry>,
    /// Durable stage blobs.
    pub stages: Vec<StageEntry>,
}

/// Frames `payload` as a versioned, checksummed blob file image.
pub fn encode_frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut v = Vec::with_capacity(FRAME_MIN + payload.len());
    v.extend_from_slice(&MAGIC);
    v.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
    v.push(kind);
    v.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    v.extend_from_slice(payload);
    let sum = stable_hash(&v);
    v.extend_from_slice(&sum.to_le_bytes());
    v
}

/// Validates a framed blob image and returns its payload slice.
///
/// Check order is part of the error contract: overall length first
/// (truncation), then magic, version, kind and payload length
/// (structure), then the trailing checksum (bit rot).
pub fn decode_frame<'a>(
    path: &Path,
    bytes: &'a [u8],
    expect_kind: u8,
) -> Result<&'a [u8], CheckpointError> {
    if bytes.len() < FRAME_MIN {
        return Err(CheckpointError::Truncated {
            path: path.to_path_buf(),
            needed: FRAME_MIN as u64,
            have: bytes.len() as u64,
        });
    }
    if bytes[..4] != MAGIC {
        return Err(CheckpointError::Corrupt {
            path: path.to_path_buf(),
            detail: "bad magic (not an XBCP blob)".into(),
        });
    }
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if version != CHECKPOINT_VERSION {
        return Err(CheckpointError::VersionMismatch {
            found: version,
            expected: CHECKPOINT_VERSION,
        });
    }
    let kind = bytes[8];
    if kind != expect_kind {
        return Err(CheckpointError::Corrupt {
            path: path.to_path_buf(),
            detail: format!("blob kind {kind}, expected {expect_kind}"),
        });
    }
    let mut len8 = [0u8; 8];
    len8.copy_from_slice(&bytes[9..17]);
    let payload_len = u64::from_le_bytes(len8);
    let expected_total = (FRAME_MIN as u64).saturating_add(payload_len);
    if expected_total != bytes.len() as u64 {
        if expected_total > bytes.len() as u64 {
            return Err(CheckpointError::Truncated {
                path: path.to_path_buf(),
                needed: expected_total,
                have: bytes.len() as u64,
            });
        }
        return Err(CheckpointError::Corrupt {
            path: path.to_path_buf(),
            detail: format!(
                "payload length {payload_len} shorter than file ({} bytes)",
                bytes.len()
            ),
        });
    }
    let body_end = bytes.len() - 8;
    let mut sum8 = [0u8; 8];
    sum8.copy_from_slice(&bytes[body_end..]);
    let expected = u64::from_le_bytes(sum8);
    let actual = stable_hash(&bytes[..body_end]);
    if expected != actual {
        return Err(CheckpointError::ChecksumMismatch {
            path: path.to_path_buf(),
            expected,
            actual,
        });
    }
    Ok(&bytes[FRAME_HEADER..body_end])
}

/// A checkpoint directory opened for reading and appending.
///
/// The store moves bytes, not domain types: callers encode their state
/// with [`crate::ByteWriter`] and hand the payload here; the store frames,
/// checksums, writes atomically, and commits via the manifest.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    manifest: Manifest,
}

impl CheckpointStore {
    /// Opens (or creates) the checkpoint directory for the run identified
    /// by `fingerprint`.
    ///
    /// An existing manifest is validated — JSON schema, format version,
    /// fingerprint, chunk contiguity — *before* anything is written, so a
    /// refused directory is left untouched. A directory with no manifest
    /// is treated as empty (any `.tmp` or unreferenced blob debris from a
    /// crash is simply overwritten as ingestion re-executes).
    pub fn open(dir: impl Into<PathBuf>, fingerprint: u64) -> Result<Self, CheckpointError> {
        let dir = dir.into();
        let manifest_path = dir.join("manifest.json");
        let manifest = match fs::read_to_string(&manifest_path) {
            Ok(text) => {
                let m: Manifest = serde_json::from_str(&text).map_err(|e| {
                    CheckpointError::ManifestInvalid { detail: e.to_string() }
                })?;
                if m.version != CHECKPOINT_VERSION {
                    return Err(CheckpointError::VersionMismatch {
                        found: m.version,
                        expected: CHECKPOINT_VERSION,
                    });
                }
                if m.fingerprint != fingerprint {
                    return Err(CheckpointError::SeedMismatch {
                        found: m.fingerprint,
                        expected: fingerprint,
                    });
                }
                for (i, c) in m.chunks.iter().enumerate() {
                    if c.index != i as u64 {
                        return Err(CheckpointError::ManifestInvalid {
                            detail: format!(
                                "chunk entries not contiguous: position {i} holds index {}",
                                c.index
                            ),
                        });
                    }
                }
                m
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Manifest {
                version: CHECKPOINT_VERSION,
                fingerprint,
                chunks: Vec::new(),
                stages: Vec::new(),
            },
            Err(e) => return Err(io_err(&manifest_path, e)),
        };
        fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        Ok(Self { dir, manifest })
    }

    /// The directory this store reads and writes.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Durable chunks, in index order.
    pub fn chunks(&self) -> &[ChunkEntry] {
        &self.manifest.chunks
    }

    /// The manifest entry of a durable stage blob, if present.
    pub fn stage(&self, name: &str) -> Option<&StageEntry> {
        self.manifest.stages.iter().find(|s| s.name == name)
    }

    /// Loads and validates one durable chunk blob, returning its payload.
    pub fn load_chunk(&self, entry: &ChunkEntry) -> Result<Vec<u8>, CheckpointError> {
        self.load_blob(&entry.file, entry.bytes, entry.checksum, KIND_CHUNK)
    }

    /// Loads and validates a durable stage blob by name, `None` if the
    /// manifest does not reference one.
    pub fn load_stage(&self, name: &str) -> Result<Option<Vec<u8>>, CheckpointError> {
        match self.stage(name) {
            None => Ok(None),
            Some(e) => {
                Ok(Some(self.load_blob(&e.file, e.bytes, e.checksum, KIND_STAGE)?))
            }
        }
    }

    fn load_blob(
        &self,
        file: &str,
        bytes: u64,
        checksum: u64,
        kind: u8,
    ) -> Result<Vec<u8>, CheckpointError> {
        let path = self.dir.join(file);
        let raw = fs::read(&path).map_err(|e| io_err(&path, e))?;
        // Length before checksum: a torn write is truncation, not bit rot.
        if (raw.len() as u64) != bytes {
            if (raw.len() as u64) < bytes {
                return Err(CheckpointError::Truncated {
                    path,
                    needed: bytes,
                    have: raw.len() as u64,
                });
            }
            return Err(CheckpointError::Corrupt {
                path,
                detail: format!(
                    "file longer than manifest records: {} vs {bytes} bytes",
                    raw.len()
                ),
            });
        }
        let actual = stable_hash(&raw);
        if actual != checksum {
            return Err(CheckpointError::ChecksumMismatch {
                path,
                expected: checksum,
                actual,
            });
        }
        let payload = decode_frame(&path, &raw, kind)?;
        Ok(payload.to_vec())
    }

    /// Appends a chunk blob and commits it to the manifest. `index` must
    /// be the next chunk index (`chunks().len()`).
    pub fn append_chunk(
        &mut self,
        index: u64,
        user_start: u64,
        user_end: u64,
        payload: &[u8],
        kill: &KillSwitch,
    ) -> Result<(), CheckpointError> {
        if index != self.manifest.chunks.len() as u64 {
            return Err(CheckpointError::ManifestInvalid {
                detail: format!(
                    "append_chunk index {index} out of order (next is {})",
                    self.manifest.chunks.len()
                ),
            });
        }
        let file = format!("chunk-{index:05}.xbc");
        let frame = encode_frame(KIND_CHUNK, payload);
        let checksum = stable_hash(&frame);
        // Chunk files are append-only and unreferenced until the manifest
        // commit below, so the direct-write path is safe (module docs).
        self.write_direct(&file, &frame, &format!("chunk-{index}:blob"), kill)?;
        self.manifest.chunks.push(ChunkEntry {
            index,
            user_start,
            user_end,
            file,
            bytes: frame.len() as u64,
            checksum,
        });
        self.write_manifest(&format!("chunk-{index}:manifest"), kill)
    }

    /// Writes (or replaces) a named stage blob and commits it.
    pub fn put_stage(
        &mut self,
        name: &str,
        payload: &[u8],
        kill: &KillSwitch,
    ) -> Result<(), CheckpointError> {
        let file = format!("stage-{name}.xbc");
        let frame = encode_frame(KIND_STAGE, payload);
        let checksum = stable_hash(&frame);
        self.write_atomic(&file, &frame, &format!("stage-{name}:blob"), kill)?;
        let entry = StageEntry {
            name: name.to_string(),
            file,
            bytes: frame.len() as u64,
            checksum,
        };
        match self.manifest.stages.iter_mut().find(|s| s.name == name) {
            Some(slot) => *slot = entry,
            None => self.manifest.stages.push(entry),
        }
        self.write_manifest(&format!("stage-{name}:manifest"), kill)
    }

    fn write_manifest(&self, label: &str, kill: &KillSwitch) -> Result<(), CheckpointError> {
        let json = serde_json::to_string_pretty(&self.manifest)
            .map_err(|e| CheckpointError::ManifestInvalid { detail: e.to_string() })?;
        self.write_atomic("manifest.json", json.as_bytes(), label, kill)?;
        // The rename only becomes durable once the directory entry is on
        // disk; the same fsync covers the dir entries of any blob files
        // created earlier in this commit (they live in the same dir).
        let d = File::open(&self.dir).map_err(|e| io_err(&self.dir, e))?;
        d.sync_all().map_err(|e| io_err(&self.dir, e))?;
        self.killable(kill, &format!("{label}:dirsync"))
    }

    /// Writes `bytes` into `f`, split in half around a `:mid` kill site so
    /// the fault harness can leave a genuinely torn file behind, then
    /// syncs. A sync error is propagated on both exits — the killed return
    /// simulates a crash, not permission to lose a real I/O failure.
    fn write_torn_syncable(
        &self,
        f: &mut File,
        path: &Path,
        bytes: &[u8],
        label: &str,
        kill: &KillSwitch,
    ) -> Result<(), CheckpointError> {
        let half = bytes.len() / 2;
        f.write_all(&bytes[..half]).map_err(|e| io_err(path, e))?;
        if kill.fire(&format!("{label}:mid")) {
            f.sync_all().map_err(|e| io_err(path, e))?;
            return Err(self.killed(kill, &format!("{label}:mid")));
        }
        f.write_all(&bytes[half..]).map_err(|e| io_err(path, e))?;
        f.sync_all().map_err(|e| io_err(path, e))
    }

    /// Direct write of a fresh, never-yet-referenced blob at its final
    /// name: three kill sites, one fsync, no tmp/rename (module docs
    /// explain why this is crash-safe for manifest-gated files).
    fn write_direct(
        &self,
        rel: &str,
        bytes: &[u8],
        label: &str,
        kill: &KillSwitch,
    ) -> Result<(), CheckpointError> {
        let path = self.dir.join(rel);
        self.killable(kill, &format!("{label}:pre"))?;
        let mut f = File::create(&path).map_err(|e| io_err(&path, e))?;
        self.write_torn_syncable(&mut f, &path, bytes, label, kill)?;
        drop(f);
        self.killable(kill, &format!("{label}:durable"))
    }

    /// The tmp → sync → rename protocol, with the four kill sites. Used
    /// for writes that may replace a manifest-referenced file.
    fn write_atomic(
        &self,
        rel: &str,
        bytes: &[u8],
        label: &str,
        kill: &KillSwitch,
    ) -> Result<(), CheckpointError> {
        let final_path = self.dir.join(rel);
        let tmp_path = self.dir.join(format!("{rel}.tmp"));
        self.killable(kill, &format!("{label}:pre"))?;
        {
            let mut f = File::create(&tmp_path).map_err(|e| io_err(&tmp_path, e))?;
            self.write_torn_syncable(&mut f, &tmp_path, bytes, label, kill)?;
        }
        self.killable(kill, &format!("{label}:durable"))?;
        fs::rename(&tmp_path, &final_path).map_err(|e| io_err(&final_path, e))?;
        self.killable(kill, &format!("{label}:post"))?;
        Ok(())
    }

    fn killable(&self, kill: &KillSwitch, label: &str) -> Result<(), CheckpointError> {
        if kill.fire(label) {
            return Err(self.killed(kill, label));
        }
        Ok(())
    }

    fn killed(&self, kill: &KillSwitch, label: &str) -> CheckpointError {
        let site = kill.fired().map(|(s, _)| s).unwrap_or_default();
        CheckpointError::Killed { site, label: label.to_string() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "xbcp-store-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn frame_round_trip() {
        let payload = b"hello checkpoint";
        let frame = encode_frame(KIND_CHUNK, payload);
        let out = decode_frame(Path::new("x"), &frame, KIND_CHUNK).unwrap();
        assert_eq!(out, payload);
    }

    #[test]
    fn frame_corruptions_are_typed() {
        let frame = encode_frame(KIND_CHUNK, b"payload bytes here");
        let p = Path::new("x");

        // Truncation → Truncated.
        let torn = &frame[..frame.len() - 5];
        assert!(matches!(
            decode_frame(p, torn, KIND_CHUNK),
            Err(CheckpointError::Truncated { .. })
        ));

        // Bit flip in payload → ChecksumMismatch.
        let mut flipped = frame.clone();
        flipped[FRAME_HEADER + 2] ^= 0x40;
        assert!(matches!(
            decode_frame(p, &flipped, KIND_CHUNK),
            Err(CheckpointError::ChecksumMismatch { .. })
        ));

        // Wrong magic → Corrupt.
        let mut bad_magic = frame.clone();
        bad_magic[0] = b'Y';
        assert!(matches!(
            decode_frame(p, &bad_magic, KIND_CHUNK),
            Err(CheckpointError::Corrupt { .. })
        ));

        // Wrong version → VersionMismatch.
        let mut bad_version = frame.clone();
        bad_version[4] = 99;
        assert!(matches!(
            decode_frame(p, &bad_version, KIND_CHUNK),
            Err(CheckpointError::VersionMismatch { found: 99, .. })
        ));

        // Wrong kind → Corrupt.
        assert!(matches!(
            decode_frame(p, &frame, KIND_STAGE),
            Err(CheckpointError::Corrupt { .. })
        ));
    }

    #[test]
    fn store_append_reopen_load() {
        let dir = tmp_dir("roundtrip");
        let kill = KillSwitch::none();
        let mut store = CheckpointStore::open(&dir, 42).unwrap();
        store.append_chunk(0, 0, 5, b"first", &kill).unwrap();
        store.append_chunk(1, 5, 10, b"second", &kill).unwrap();
        store.put_stage("completion", b"stage-bytes", &kill).unwrap();

        let store2 = CheckpointStore::open(&dir, 42).unwrap();
        assert_eq!(store2.chunks().len(), 2);
        assert_eq!(store2.load_chunk(&store2.chunks()[0]).unwrap(), b"first");
        assert_eq!(store2.load_chunk(&store2.chunks()[1]).unwrap(), b"second");
        assert_eq!(
            store2.load_stage("completion").unwrap().as_deref(),
            Some(&b"stage-bytes"[..])
        );
        assert!(store2.load_stage("absent").unwrap().is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_mismatch_is_refused() {
        let dir = tmp_dir("seed");
        let kill = KillSwitch::none();
        let mut store = CheckpointStore::open(&dir, 7).unwrap();
        store.append_chunk(0, 0, 1, b"x", &kill).unwrap();
        assert!(matches!(
            CheckpointStore::open(&dir, 8),
            Err(CheckpointError::SeedMismatch { found: 7, expected: 8 })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn out_of_order_append_is_refused() {
        let dir = tmp_dir("order");
        let kill = KillSwitch::none();
        let mut store = CheckpointStore::open(&dir, 1).unwrap();
        assert!(matches!(
            store.append_chunk(3, 0, 1, b"x", &kill),
            Err(CheckpointError::ManifestInvalid { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn kill_at_every_write_site_leaves_resumable_state() {
        // Sweep every kill site of a two-chunk append sequence; after each
        // simulated crash, a fresh open must succeed and see only fully
        // committed chunks, and re-execution must converge to the same
        // final state.
        let probe = KillSwitch::none();
        {
            let dir = tmp_dir("sites-probe");
            let mut store = CheckpointStore::open(&dir, 9).unwrap();
            store.append_chunk(0, 0, 5, b"alpha", &probe).unwrap();
            store.append_chunk(1, 5, 9, b"beta", &probe).unwrap();
            let _ = fs::remove_dir_all(&dir);
        }
        let n_sites = probe.sites_visited();
        // Per append: 3 direct-blob sites + 4 manifest write_atomic sites
        // + 1 dirsync = 8; two appends = 16.
        assert!(n_sites >= 16, "expected 8 sites x 2 appends, saw {n_sites}");

        for site in 0..n_sites {
            let dir = tmp_dir(&format!("sites-{site}"));
            let kill = KillSwitch::at_site(site);
            let mut store = CheckpointStore::open(&dir, 9).unwrap();
            let r0 = store.append_chunk(0, 0, 5, b"alpha", &kill);
            let killed = r0.is_err()
                || store.append_chunk(1, 5, 9, b"beta", &kill).is_err();
            assert!(killed, "site {site} never fired");

            // Crash simulated: reopen and finish the job.
            let mut resumed = CheckpointStore::open(&dir, 9).unwrap();
            let none = KillSwitch::none();
            let have = resumed.chunks().len() as u64;
            for (i, payload) in [&b"alpha"[..], &b"beta"[..]].iter().enumerate() {
                if (i as u64) >= have {
                    resumed
                        .append_chunk(i as u64, 0, 0, payload, &none)
                        .unwrap();
                }
            }
            let check = CheckpointStore::open(&dir, 9).unwrap();
            assert_eq!(check.chunks().len(), 2, "site {site}");
            assert_eq!(check.load_chunk(&check.chunks()[0]).unwrap(), b"alpha");
            assert_eq!(check.load_chunk(&check.chunks()[1]).unwrap(), b"beta");
            let _ = fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn dirsync_kill_lands_after_the_commit_point() {
        // The :dirsync site sits after the manifest rename, so a kill
        // there must leave the chunk committed — resume sees it and does
        // not re-execute.
        let dir = tmp_dir("dirsync");
        let kill = KillSwitch::at_label("chunk-0:manifest:dirsync");
        let mut store = CheckpointStore::open(&dir, 5).unwrap();
        let err = store.append_chunk(0, 0, 5, b"alpha", &kill).unwrap_err();
        assert!(matches!(err, CheckpointError::Killed { .. }));
        let resumed = CheckpointStore::open(&dir, 5).unwrap();
        assert_eq!(resumed.chunks().len(), 1);
        assert_eq!(resumed.load_chunk(&resumed.chunks()[0]).unwrap(), b"alpha");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn blob_kill_before_commit_leaves_chunk_uncommitted() {
        // Direct-write path: a kill at the blob's :durable site leaves a
        // complete file at the final name but no manifest reference — the
        // chunk must not be visible, and re-execution overwrites the
        // orphan cleanly.
        let dir = tmp_dir("direct-orphan");
        let kill = KillSwitch::at_label("chunk-0:blob:durable");
        let mut store = CheckpointStore::open(&dir, 6).unwrap();
        assert!(store.append_chunk(0, 0, 5, b"alpha", &kill).is_err());
        assert!(dir.join("chunk-00000.xbc").exists(), "orphan blob at final name");

        let mut resumed = CheckpointStore::open(&dir, 6).unwrap();
        assert_eq!(resumed.chunks().len(), 0, "uncommitted blob must be invisible");
        resumed.append_chunk(0, 0, 5, b"alpha", &KillSwitch::none()).unwrap();
        let check = CheckpointStore::open(&dir, 6).unwrap();
        assert_eq!(check.load_chunk(&check.chunks()[0]).unwrap(), b"alpha");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stage_blob_is_replaced_not_duplicated() {
        let dir = tmp_dir("stage-replace");
        let kill = KillSwitch::none();
        let mut store = CheckpointStore::open(&dir, 3).unwrap();
        store.put_stage("completion", b"v1", &kill).unwrap();
        store.put_stage("completion", b"v2", &kill).unwrap();
        let store2 = CheckpointStore::open(&dir, 3).unwrap();
        assert_eq!(store2.load_stage("completion").unwrap().as_deref(), Some(&b"v2"[..]));
        let _ = fs::remove_dir_all(&dir);
    }
}
