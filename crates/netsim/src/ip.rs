//! IP prefixes and globally-unique allocation.
//!
//! The simulator hands every (organization, country) pair its own IPv4 /24s
//! (and occasionally IPv6 /48s — the paper found >97 % of tracker IPs were
//! IPv4, so v6 is a small minority here too). Allocation is strictly
//! sequential from a seam-free pool, which guarantees global uniqueness:
//! an IP identifies exactly one server for the lifetime of a world, and
//! reverse lookups are unambiguous.

use crate::NetsimError;
use serde::{Deserialize, Serialize};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// An IPv4 prefix (`addr/len`), e.g. `10.1.2.0/24`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ipv4Prefix {
    /// Network address with host bits zeroed.
    pub addr: Ipv4Addr,
    /// Prefix length in `0..=32`.
    pub len: u8,
}

impl Ipv4Prefix {
    /// Builds a prefix, zeroing host bits.
    pub fn new(addr: Ipv4Addr, len: u8) -> Self {
        assert!(len <= 32, "prefix length {len} > 32");
        let mask = Self::mask(len);
        Ipv4Prefix {
            addr: Ipv4Addr::from(u32::from(addr) & mask),
            len,
        }
    }

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// True if `ip` falls inside this prefix.
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        (u32::from(ip) & Self::mask(self.len)) == u32::from(self.addr)
    }

    /// Number of addresses covered.
    pub fn size(&self) -> u64 {
        1u64 << (32 - self.len)
    }

    /// The `i`-th address of the prefix, if in range.
    pub fn nth(&self, i: u64) -> Option<Ipv4Addr> {
        if i >= self.size() {
            return None;
        }
        Some(Ipv4Addr::from(u32::from(self.addr) + i as u32))
    }

    /// Iterates over every address in the prefix.
    pub fn iter(&self) -> impl Iterator<Item = Ipv4Addr> + '_ {
        (0..self.size()).map(|i| self.nth(i).expect("index in range"))
    }
}

impl std::fmt::Display for Ipv4Prefix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

/// An IPv6 prefix (`addr/len`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ipv6Prefix {
    /// Network address with host bits zeroed.
    pub addr: Ipv6Addr,
    /// Prefix length in `0..=128`.
    pub len: u8,
}

impl Ipv6Prefix {
    /// Builds a prefix, zeroing host bits.
    pub fn new(addr: Ipv6Addr, len: u8) -> Self {
        assert!(len <= 128, "prefix length {len} > 128");
        let mask = Self::mask(len);
        Ipv6Prefix {
            addr: Ipv6Addr::from(u128::from(addr) & mask),
            len,
        }
    }

    fn mask(len: u8) -> u128 {
        if len == 0 {
            0
        } else {
            u128::MAX << (128 - len)
        }
    }

    /// True if `ip` falls inside this prefix.
    pub fn contains(&self, ip: Ipv6Addr) -> bool {
        (u128::from(ip) & Self::mask(self.len)) == u128::from(self.addr)
    }

    /// The `i`-th address of the prefix, if in range (indexing is capped at
    /// 2^64 hosts, which every prefix of len >= 64 fits and wider prefixes
    /// trivially exceed).
    pub fn nth(&self, i: u64) -> Option<Ipv6Addr> {
        if self.len <= 64 {
            // More than 2^64 hosts: any u64 index is in range.
            return Some(Ipv6Addr::from(u128::from(self.addr) + i as u128));
        }
        let size: u128 = 1u128 << (128 - self.len);
        if (i as u128) >= size {
            return None;
        }
        Some(Ipv6Addr::from(u128::from(self.addr) + i as u128))
    }
}

impl std::fmt::Display for Ipv6Prefix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

/// Sequential, seam-free allocator for simulator address space.
///
/// IPv4 prefixes come out of `1.0.0.0`–`126.255.255.0` in /24 steps,
/// skipping `10.0.0.0/8` (private) and `127.0.0.0/8` (loopback). IPv6
/// prefixes come out of `2001:db8::/32` (the documentation range) in /48
/// steps. Allocation order is deterministic, so a seeded world always gets
/// the same address plan.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IpAllocator {
    next_v4_slash24: u32, // index of the next /24 (addr >> 8)
    next_v6_slash48: u32, // index of the next /48 within 2001:db8::/32
}

impl Default for IpAllocator {
    fn default() -> Self {
        Self::new()
    }
}

impl IpAllocator {
    /// A fresh allocator starting at the bottom of the pool.
    pub fn new() -> Self {
        IpAllocator {
            next_v4_slash24: 0x0001_0000, // 1.0.0.0 >> 8
            next_v6_slash48: 0,
        }
    }

    /// Allocates the next free IPv4 /24.
    pub fn alloc_v4_slash24(&mut self) -> Result<Ipv4Prefix, NetsimError> {
        loop {
            let idx = self.next_v4_slash24;
            if idx > 0x007E_FFFF {
                // past 126.255.255.0
                return Err(NetsimError::Ipv4Exhausted);
            }
            self.next_v4_slash24 += 1;
            let first_octet = (idx >> 16) as u8;
            if first_octet == 10 || first_octet == 127 {
                continue; // skip private and loopback /8s
            }
            let addr = Ipv4Addr::from(idx << 8);
            return Ok(Ipv4Prefix::new(addr, 24));
        }
    }

    /// Allocates the next free IPv6 /48 inside `2001:db8::/32`.
    pub fn alloc_v6_slash48(&mut self) -> Result<Ipv6Prefix, NetsimError> {
        if self.next_v6_slash48 == u16::MAX as u32 + 1 {
            return Err(NetsimError::Ipv6Exhausted);
        }
        let idx = self.next_v6_slash48 as u128;
        self.next_v6_slash48 += 1;
        let base: u128 = 0x2001_0db8_0000_0000_0000_0000_0000_0000;
        let addr = Ipv6Addr::from(base | (idx << 80));
        Ok(Ipv6Prefix::new(addr, 48))
    }
}

/// True for addresses this simulator could have allocated to servers.
pub fn is_simulator_address(ip: IpAddr) -> bool {
    match ip {
        IpAddr::V4(v4) => {
            let o = v4.octets()[0];
            (1..=126).contains(&o) && o != 10 && o != 127
        }
        IpAddr::V6(v6) => Ipv6Prefix::new(Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 0), 32).contains(v6),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn v4_prefix_contains_its_addresses() {
        let p = Ipv4Prefix::new(Ipv4Addr::new(1, 2, 3, 99), 24);
        assert_eq!(p.addr, Ipv4Addr::new(1, 2, 3, 0));
        assert!(p.contains(Ipv4Addr::new(1, 2, 3, 0)));
        assert!(p.contains(Ipv4Addr::new(1, 2, 3, 255)));
        assert!(!p.contains(Ipv4Addr::new(1, 2, 4, 0)));
        assert_eq!(p.size(), 256);
    }

    #[test]
    fn v4_nth_and_iter_agree() {
        let p = Ipv4Prefix::new(Ipv4Addr::new(9, 9, 9, 0), 30);
        let all: Vec<_> = p.iter().collect();
        assert_eq!(all.len(), 4);
        assert_eq!(all[0], Ipv4Addr::new(9, 9, 9, 0));
        assert_eq!(all[3], Ipv4Addr::new(9, 9, 9, 3));
        assert_eq!(p.nth(4), None);
    }

    #[test]
    fn allocator_skips_reserved_ranges() {
        let mut a = IpAllocator::new();
        let mut seen_first_octets = std::collections::HashSet::new();
        // Walk far enough to cross the 10/8 hole: 9 * 65536 /24s.
        for _ in 0..(10 * 65536) {
            let p = a.alloc_v4_slash24().unwrap();
            seen_first_octets.insert(p.addr.octets()[0]);
        }
        assert!(seen_first_octets.contains(&1));
        assert!(seen_first_octets.contains(&9));
        assert!(seen_first_octets.contains(&11));
        assert!(!seen_first_octets.contains(&10), "10/8 must be skipped");
        assert!(!seen_first_octets.contains(&0));
    }

    #[test]
    fn allocator_yields_disjoint_prefixes() {
        let mut a = IpAllocator::new();
        let mut prev = None;
        for _ in 0..10_000 {
            let p = a.alloc_v4_slash24().unwrap();
            if let Some(q) = prev {
                assert_ne!(p, q);
                let q: Ipv4Prefix = q;
                assert!(!p.contains(q.addr) && !q.contains(p.addr));
            }
            prev = Some(p);
        }
    }

    #[test]
    fn v6_allocation_is_in_doc_range() {
        let mut a = IpAllocator::new();
        let p1 = a.alloc_v6_slash48().unwrap();
        let p2 = a.alloc_v6_slash48().unwrap();
        assert_ne!(p1, p2);
        let doc = Ipv6Prefix::new("2001:db8::".parse().unwrap(), 32);
        assert!(doc.contains(p1.addr));
        assert!(doc.contains(p2.addr));
        assert!(is_simulator_address(IpAddr::V6(p1.nth(1).unwrap())));
    }

    #[test]
    fn simulator_address_predicate() {
        assert!(is_simulator_address("1.2.3.4".parse().unwrap()));
        assert!(!is_simulator_address("10.0.0.1".parse().unwrap()));
        assert!(!is_simulator_address("127.0.0.1".parse().unwrap()));
        assert!(!is_simulator_address("192.168.1.1".parse().unwrap()));
        assert!(!is_simulator_address("2001:db9::1".parse().unwrap()));
    }

    proptest! {
        #[test]
        fn v4_new_zeroes_host_bits(a in any::<u32>(), len in 0u8..=32) {
            let p = Ipv4Prefix::new(Ipv4Addr::from(a), len);
            prop_assert!(p.contains(p.addr));
            // Network address has no host bits set.
            if len < 32 {
                let host_mask = u32::MAX >> len;
                prop_assert_eq!(u32::from(p.addr) & host_mask, 0);
            }
        }

        #[test]
        fn v4_contains_iff_same_network(a in any::<u32>(), b in any::<u32>(), len in 1u8..=32) {
            let p = Ipv4Prefix::new(Ipv4Addr::from(a), len);
            let q = Ipv4Prefix::new(Ipv4Addr::from(b), len);
            let same = p == q;
            prop_assert_eq!(p.contains(q.addr) && q.contains(p.addr), same);
        }

        #[test]
        fn v6_mask_is_consistent(a in any::<u128>(), len in 32u8..=64) {
            let p = Ipv6Prefix::new(Ipv6Addr::from(a), len);
            prop_assert!(p.contains(p.addr));
        }
    }
}
