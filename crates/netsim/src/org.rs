//! Organizations: the legal entities operating infrastructure.

use serde::{Deserialize, Serialize};
use xborder_geo::CountryCode;

/// Opaque organization identifier (index into the infrastructure registry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OrgId(pub u32);

/// What an organization primarily does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OrgKind {
    /// Advertising / tracking operator (ad network, DSP, SSP, exchange,
    /// analytics, data broker).
    AdTech,
    /// Content delivery or generic hosting.
    Cdn,
    /// Public cloud provider.
    Cloud,
    /// Internet service provider.
    Isp,
    /// Publisher / first-party site operator.
    Publisher,
    /// Other third-party services (chat widgets, comments, fonts, ...).
    OtherService,
}

/// An organization with a legal seat.
///
/// The *legal seat* is load-bearing: commercial geolocation databases tend
/// to geolocate infrastructure IPs to the registrant's seat instead of the
/// server's physical location (paper Sect. 3.4: MaxMind placing Google
/// servers in Mountain View). The registry-database simulator in
/// `xborder-geoloc` reads this field.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Org {
    /// Identifier within the infrastructure registry.
    pub id: OrgId,
    /// Display name, unique within a world.
    pub name: String,
    /// Primary business.
    pub kind: OrgKind,
    /// Country of incorporation (legal seat).
    pub legal_seat: CountryCode,
    /// The organization's autonomous-system number. Every org originates
    /// its prefixes from its own AS (a simplification — real ad-tech also
    /// rents out of cloud ASes — but enough for AS-level aggregation in
    /// reports and WHOIS-style lookups).
    pub asn: u32,
}

/// First ASN handed out (the private-use 32-bit range base keeps simulated
/// ASNs visibly distinct from real ones).
pub const ASN_BASE: u32 = 4_200_000_000;

impl Org {
    /// Creates an organization record; the ASN derives from the registry
    /// id so address plans stay reproducible.
    pub fn new(id: OrgId, name: impl Into<String>, kind: OrgKind, legal_seat: CountryCode) -> Self {
        Org {
            id,
            name: name.into(),
            kind,
            legal_seat,
            asn: ASN_BASE + id.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xborder_geo::cc;

    #[test]
    fn org_construction() {
        let o = Org::new(OrgId(7), "gtrack", OrgKind::AdTech, cc!("US"));
        assert_eq!(o.id, OrgId(7));
        assert_eq!(o.name, "gtrack");
        assert_eq!(o.legal_seat, cc!("US"));
        assert_eq!(o.asn, ASN_BASE + 7);
    }

    #[test]
    fn asns_are_unique_per_org() {
        let a = Org::new(OrgId(1), "a", OrgKind::Cdn, cc!("DE"));
        let b = Org::new(OrgId(2), "b", OrgKind::Cdn, cc!("DE"));
        assert_ne!(a.asn, b.asn);
    }

    #[test]
    fn org_id_is_orderable() {
        assert!(OrgId(1) < OrgId(2));
    }
}
