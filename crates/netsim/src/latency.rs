//! Round-trip-time model between points on the globe.
//!
//! Used in two places: the IPmap-style geolocator measures RTTs from its
//! probe mesh to a target server, and the DNS mapping policies prefer
//! low-RTT PoPs. The model is the standard delay-based-geolocation one:
//! great-circle propagation at ~2/3 c with path stretch, plus a last-mile
//! constant and log-normal-ish queueing jitter.

use rand::Rng;
use serde::{Deserialize, Serialize};
use xborder_geo::{geodesy, LatLon};

/// Parameters of the RTT model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Fixed per-end processing + last-mile delay added to every RTT, ms.
    pub last_mile_ms: f64,
    /// Upper bound of uniformly-sampled queueing jitter added per
    /// measurement, ms.
    pub jitter_ms: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            last_mile_ms: 2.0,
            jitter_ms: 3.0,
        }
    }
}

impl LatencyModel {
    /// Deterministic baseline RTT (no jitter) between two points, ms.
    pub fn baseline_rtt_ms(&self, a: LatLon, b: LatLon) -> f64 {
        let d = geodesy::haversine_km(a, b);
        2.0 * geodesy::propagation_delay_ms(d) + self.last_mile_ms
    }

    /// One sampled queueing-jitter term, ms. Always draws exactly two
    /// values from `rng` (the mixture coin, then the magnitude), so the
    /// stream position never depends on which branch fired.
    pub fn sample_jitter_ms<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Mixture: mostly small jitter, occasionally a queueing spike.
        if rng.gen::<f64>() < 0.9 {
            rng.gen::<f64>() * self.jitter_ms
        } else {
            self.jitter_ms + rng.gen::<f64>() * 4.0 * self.jitter_ms
        }
    }

    /// One measured RTT sample with queueing jitter, ms.
    ///
    /// Jitter is strictly additive: queues only ever slow a packet down, so
    /// the minimum of many samples converges to the baseline — the property
    /// delay-based geolocation relies on.
    pub fn sample_rtt_ms<R: Rng + ?Sized>(&self, a: LatLon, b: LatLon, rng: &mut R) -> f64 {
        self.baseline_rtt_ms(a, b) + self.sample_jitter_ms(rng)
    }

    /// Minimum of `n` RTT samples over a *precomputed* baseline — the hot
    /// path when one endpoint repeats (a geolocation target measured by
    /// many probes pays the haversine once instead of once per sample).
    ///
    /// **Bit-identical** to [`LatencyModel::min_rtt_ms`] on the same RNG
    /// stream: jitter is additive and `x ↦ fl(base + x)` is weakly
    /// monotone in IEEE-754, so `min_i fl(base + jᵢ) == fl(base + min_i jᵢ)`
    /// exactly — pinned by a test below.
    pub fn min_rtt_over_baseline_ms<R: Rng + ?Sized>(
        &self,
        baseline_ms: f64,
        n: usize,
        rng: &mut R,
    ) -> f64 {
        assert!(n > 0, "need at least one sample");
        let min_jitter = (0..n)
            .map(|_| self.sample_jitter_ms(rng))
            .fold(f64::INFINITY, f64::min);
        baseline_ms + min_jitter
    }

    /// Minimum of `n` RTT samples — what an active geolocator actually uses.
    pub fn min_rtt_ms<R: Rng + ?Sized>(&self, a: LatLon, b: LatLon, n: usize, rng: &mut R) -> f64 {
        self.min_rtt_over_baseline_ms(self.baseline_rtt_ms(a, b), n, rng)
    }

    /// Converts a measured RTT back to an upper bound on distance, km.
    ///
    /// Subtracts the last-mile constant first; clamps at zero.
    pub fn rtt_to_max_distance_km(&self, rtt_ms: f64) -> f64 {
        let one_way = ((rtt_ms - self.last_mile_ms) / 2.0).max(0.0);
        geodesy::max_distance_km(one_way)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn ll(lat: f64, lon: f64) -> LatLon {
        LatLon::new(lat, lon)
    }

    #[test]
    fn baseline_grows_with_distance() {
        let m = LatencyModel::default();
        let berlin = ll(52.5, 13.4);
        let paris = ll(48.9, 2.35);
        let tokyo = ll(35.7, 139.7);
        assert!(m.baseline_rtt_ms(berlin, paris) < m.baseline_rtt_ms(berlin, tokyo));
    }

    #[test]
    fn baseline_is_plausible_for_europe() {
        let m = LatencyModel::default();
        // Berlin <-> Paris ~880 km -> ~2*6.6+2 ≈ 15 ms.
        let rtt = m.baseline_rtt_ms(ll(52.5, 13.4), ll(48.9, 2.35));
        assert!((5.0..40.0).contains(&rtt), "got {rtt}");
        // Berlin <-> US east coast: should clearly exceed 60 ms.
        let rtt = m.baseline_rtt_ms(ll(52.5, 13.4), ll(40.7, -74.0));
        assert!(rtt > 60.0, "got {rtt}");
    }

    #[test]
    fn samples_never_undershoot_baseline() {
        let m = LatencyModel::default();
        let mut rng = StdRng::seed_from_u64(1);
        let a = ll(50.0, 8.0);
        let b = ll(41.0, -3.0);
        let base = m.baseline_rtt_ms(a, b);
        for _ in 0..1000 {
            assert!(m.sample_rtt_ms(a, b, &mut rng) >= base);
        }
    }

    #[test]
    fn min_rtt_converges_to_baseline() {
        let m = LatencyModel::default();
        let mut rng = StdRng::seed_from_u64(2);
        let a = ll(50.0, 8.0);
        let b = ll(41.0, -3.0);
        let base = m.baseline_rtt_ms(a, b);
        let min = m.min_rtt_ms(a, b, 50, &mut rng);
        assert!(min >= base && min <= base + m.jitter_ms, "min {min} base {base}");
    }

    #[test]
    fn rtt_distance_roundtrip_bounds_truth() {
        let m = LatencyModel::default();
        let mut rng = StdRng::seed_from_u64(3);
        let a = ll(52.5, 13.4);
        let b = ll(40.4, -3.7); // ~1869 km
        let rtt = m.min_rtt_ms(a, b, 20, &mut rng);
        let bound = m.rtt_to_max_distance_km(rtt);
        // The bound must never be tighter than the true distance.
        assert!(bound >= 1860.0, "bound {bound}");
    }

    #[test]
    fn zero_rtt_maps_to_zero_distance() {
        let m = LatencyModel::default();
        assert_eq!(m.rtt_to_max_distance_km(0.0), 0.0);
    }

    #[test]
    fn min_over_baseline_is_bit_identical_to_min_of_sums() {
        // The refactor pulls the constant baseline out of the per-sample
        // fold. Pin bitwise equality against the pre-refactor formulation
        // (min over per-sample sums) on identical RNG streams.
        let m = LatencyModel::default();
        for seed in 0..50u64 {
            let a = ll(-80.0 + (seed as f64) * 3.1, -170.0 + (seed as f64) * 6.7);
            let b = ll(70.0 - (seed as f64) * 2.3, 160.0 - (seed as f64) * 5.9);
            let n = 1 + (seed as usize % 7);
            let base = m.baseline_rtt_ms(a, b);

            let mut rng_old = StdRng::seed_from_u64(seed);
            let old = (0..n)
                .map(|_| base + m.sample_jitter_ms(&mut rng_old))
                .fold(f64::INFINITY, f64::min);

            let mut rng_new = StdRng::seed_from_u64(seed);
            let new = m.min_rtt_over_baseline_ms(base, n, &mut rng_new);
            assert_eq!(old.to_bits(), new.to_bits(), "seed {seed} n {n}");

            // And the convenience wrapper consumes the same stream.
            let mut rng_wrap = StdRng::seed_from_u64(seed);
            let wrapped = m.min_rtt_ms(a, b, n, &mut rng_wrap);
            assert_eq!(wrapped.to_bits(), new.to_bits(), "seed {seed} n {n}");
        }
    }
}
