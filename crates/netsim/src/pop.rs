//! Points of presence: places where servers can be racked.

use crate::cloud::CloudId;
use serde::{Deserialize, Serialize};
use xborder_geo::{CountryCode, LatLon};

/// Opaque PoP identifier (index into the infrastructure registry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PopId(pub u32);

/// Who operates the facility.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PopKind {
    /// A region/edge location of one of the nine public clouds.
    Cloud(CloudId),
    /// A national colocation datacenter (independent of the big clouds).
    NationalColo,
    /// An organization's own datacenter.
    OwnDatacenter,
}

/// A point of presence with a physical location.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Pop {
    /// Identifier within the infrastructure registry.
    pub id: PopId,
    /// Facility operator.
    pub kind: PopKind,
    /// Country the facility is physically in. This is the geolocation
    /// *ground truth* for every server racked here.
    pub country: CountryCode,
    /// Physical coordinates (sampled inside the country).
    pub location: LatLon,
}

#[cfg(test)]
mod tests {
    use super::*;
    use xborder_geo::cc;

    #[test]
    fn pop_kinds_compare() {
        assert_eq!(PopKind::Cloud(CloudId::Aws), PopKind::Cloud(CloudId::Aws));
        assert_ne!(PopKind::Cloud(CloudId::Aws), PopKind::Cloud(CloudId::Azure));
        assert_ne!(PopKind::NationalColo, PopKind::OwnDatacenter);
    }

    #[test]
    fn pop_is_serializable() {
        let p = Pop {
            id: PopId(3),
            kind: PopKind::NationalColo,
            country: cc!("DE"),
            location: LatLon::new(50.1, 8.7),
        };
        let json = serde_json::to_string(&p).unwrap();
        assert!(json.contains("\"DE\""));
    }
}
