//! Internet infrastructure substrate for the `xborder` reproduction.
//!
//! The paper's measurements ride on real infrastructure: tracking
//! organizations lease servers in datacenters and cloud PoPs, those servers
//! get IP addresses out of the operators' prefixes, and DNS maps users onto
//! them. Since the real infrastructure is unobservable to us, this crate
//! builds a deterministic synthetic equivalent:
//!
//! * [`org::Org`] — an operator (tracker, cloud, ISP, publisher host) with a
//!   *legal seat* country. Registry-style geolocation databases (MaxMind,
//!   ip-api) tend to place infrastructure at the legal seat — exactly the
//!   failure mode the paper quantifies (Sect. 3.4), so the seat is modelled
//!   explicitly.
//! * [`cloud`] — the nine public cloud providers of the paper's Sect. 5.2
//!   with country-level PoP footprints, plus generic national colocation
//!   datacenters so that "in all EU28 countries there is at least one
//!   datacenter" holds, as the paper notes.
//! * [`ip`] — IPv4/IPv6 prefix allocation with a global uniqueness
//!   guarantee; each (org, country) pair gets its own prefixes so reverse
//!   lookups and geolocation have realistic structure.
//! * [`pop`] / [`server`] — points of presence and the server fleet.
//! * [`infra::Infrastructure`] — the assembled registry with lookups by IP,
//!   org, country.
//! * [`latency`] — the RTT model used by the IPmap-style geolocator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cloud;
pub mod infra;
pub mod ip;
pub mod latency;
pub mod org;
pub mod pop;
pub mod server;
pub mod time;

pub use cloud::{CloudId, CloudProvider, CLOUDS};
pub use infra::Infrastructure;
pub use ip::{IpAllocator, Ipv4Prefix, Ipv6Prefix};
pub use latency::LatencyModel;
pub use org::{Org, OrgId, OrgKind};
pub use pop::{Pop, PopId, PopKind};
pub use server::{Server, ServerId, ServerRole};
pub use time::{SimTime, TimeWindow};

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetsimError {
    /// The IPv4 allocation space is exhausted.
    Ipv4Exhausted,
    /// The IPv6 allocation space is exhausted.
    Ipv6Exhausted,
    /// Referenced an organization id that does not exist.
    UnknownOrg(OrgId),
    /// Referenced a PoP id that does not exist.
    UnknownPop(PopId),
    /// Referenced a server id that does not exist.
    UnknownServer(ServerId),
}

impl std::fmt::Display for NetsimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetsimError::Ipv4Exhausted => write!(f, "IPv4 allocation space exhausted"),
            NetsimError::Ipv6Exhausted => write!(f, "IPv6 allocation space exhausted"),
            NetsimError::UnknownOrg(id) => write!(f, "unknown org {id:?}"),
            NetsimError::UnknownPop(id) => write!(f, "unknown pop {id:?}"),
            NetsimError::UnknownServer(id) => write!(f, "unknown server {id:?}"),
        }
    }
}

impl std::error::Error for NetsimError {}
