//! Simulation time.
//!
//! The paper's extension study ran Sep 1, 2017 – mid-Jan 2018 (~4.5 months)
//! and the ISP snapshots were four specific Wednesdays in Nov 2017 – Jun
//! 2018. We model time as seconds since the *experiment epoch* (Sep 1,
//! 2017 00:00 UTC) so datasets, pDNS validity windows and ISP snapshot days
//! can be compared on one axis.

use serde::{Deserialize, Serialize};

/// Seconds since the experiment epoch (2017-09-01T00:00:00Z).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(pub u64);

/// Seconds per day.
pub const SECS_PER_DAY: u64 = 86_400;

impl SimTime {
    /// The experiment epoch itself.
    pub const EPOCH: SimTime = SimTime(0);

    /// A time `days` whole days after the epoch.
    pub const fn from_days(days: u32) -> SimTime {
        SimTime(days as u64 * SECS_PER_DAY)
    }

    /// The day index this instant falls on.
    pub const fn day(&self) -> u32 {
        (self.0 / SECS_PER_DAY) as u32
    }

    /// Seconds into the current day.
    pub const fn second_of_day(&self) -> u32 {
        (self.0 % SECS_PER_DAY) as u32
    }

    /// This instant shifted forward by `secs`.
    pub const fn plus_secs(&self, secs: u64) -> SimTime {
        SimTime(self.0 + secs)
    }

    /// This instant shifted forward by `days`.
    pub const fn plus_days(&self, days: u32) -> SimTime {
        SimTime(self.0 + days as u64 * SECS_PER_DAY)
    }
}

/// A half-open validity window `[start, end)` on the simulation axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeWindow {
    /// Inclusive start.
    pub start: SimTime,
    /// Exclusive end.
    pub end: SimTime,
}

impl TimeWindow {
    /// Builds a window; panics if `end < start`.
    pub fn new(start: SimTime, end: SimTime) -> TimeWindow {
        assert!(end >= start, "window end before start");
        TimeWindow { start, end }
    }

    /// True if `t` falls inside the window.
    pub fn contains(&self, t: SimTime) -> bool {
        t >= self.start && t < self.end
    }

    /// Expands the window minimally so it contains `t`.
    pub fn extend_to(&mut self, t: SimTime) {
        if t < self.start {
            self.start = t;
        }
        if t >= self.end {
            self.end = SimTime(t.0 + 1);
        }
    }

    /// True if the two windows overlap.
    pub fn overlaps(&self, other: &TimeWindow) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// Window length in seconds.
    pub fn len_secs(&self) -> u64 {
        self.end.0 - self.start.0
    }
}

/// Named calendar anchors used by the experiments (offsets from the
/// experiment epoch, Sep 1, 2017).
pub mod anchors {
    use super::SimTime;

    /// Start of the extension study: Sep 1, 2017.
    pub const STUDY_START: SimTime = SimTime::from_days(0);
    /// End of the main extension study: Jan 15, 2018 (~4.5 months).
    pub const STUDY_END: SimTime = SimTime::from_days(136);
    /// ISP snapshot: Wednesday Nov 8, 2017.
    pub const ISP_SNAPSHOT_NOV8: SimTime = SimTime::from_days(68);
    /// ISP snapshot: Wednesday Apr 4, 2018.
    pub const ISP_SNAPSHOT_APR4: SimTime = SimTime::from_days(215);
    /// ISP snapshot: Wednesday May 16, 2018 (pre-GDPR implementation).
    pub const ISP_SNAPSHOT_MAY16: SimTime = SimTime::from_days(257);
    /// GDPR implementation date: May 25, 2018.
    pub const GDPR_IMPLEMENTATION: SimTime = SimTime::from_days(266);
    /// ISP snapshot: Wednesday Jun 20, 2018 (post-GDPR).
    pub const ISP_SNAPSHOT_JUN20: SimTime = SimTime::from_days(292);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn day_arithmetic() {
        let t = SimTime::from_days(10).plus_secs(3600);
        assert_eq!(t.day(), 10);
        assert_eq!(t.second_of_day(), 3600);
        assert_eq!(t.plus_days(2).day(), 12);
    }

    #[test]
    fn window_contains_half_open() {
        let w = TimeWindow::new(SimTime(100), SimTime(200));
        assert!(w.contains(SimTime(100)));
        assert!(w.contains(SimTime(199)));
        assert!(!w.contains(SimTime(200)));
        assert!(!w.contains(SimTime(99)));
        assert_eq!(w.len_secs(), 100);
    }

    #[test]
    fn window_extend() {
        let mut w = TimeWindow::new(SimTime(100), SimTime(200));
        w.extend_to(SimTime(50));
        assert_eq!(w.start, SimTime(50));
        w.extend_to(SimTime(300));
        assert!(w.contains(SimTime(300)));
        assert!(!w.contains(SimTime(301)));
    }

    #[test]
    fn window_overlap() {
        let a = TimeWindow::new(SimTime(0), SimTime(100));
        let b = TimeWindow::new(SimTime(99), SimTime(150));
        let c = TimeWindow::new(SimTime(100), SimTime(150));
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
    }

    #[test]
    #[should_panic(expected = "end before start")]
    fn window_rejects_inverted() {
        TimeWindow::new(SimTime(10), SimTime(5));
    }

    #[test]
    fn anchors_are_ordered() {
        use anchors::*;
        assert!(STUDY_START < STUDY_END);
        assert!(ISP_SNAPSHOT_NOV8 < STUDY_END);
        assert!(STUDY_END < ISP_SNAPSHOT_APR4);
        assert!(ISP_SNAPSHOT_APR4 < ISP_SNAPSHOT_MAY16);
        assert!(ISP_SNAPSHOT_MAY16 < GDPR_IMPLEMENTATION);
        assert!(GDPR_IMPLEMENTATION < ISP_SNAPSHOT_JUN20);
    }
}
