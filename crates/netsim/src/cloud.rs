//! The nine public cloud providers of the paper's Sect. 5.2, with
//! country-level PoP footprints, plus generic national colocation.
//!
//! The paper's "what-if" localization analysis (Tables 5–6) only needs the
//! *set of countries* each provider can serve from, as advertised on the
//! providers' websites in 2018. The footprints below are coarse snapshots of
//! that public information. Two paper facts the tables depend on are
//! preserved:
//!
//! * Cyprus has **no** public-cloud PoP ("none of the nine cloud services in
//!   our study has a presence in the country"), so PoP mirroring cannot help
//!   it; and
//! * every EU28 country still has at least one *national datacenter*
//!   (colocation), which is why "migration to any datacenter" achieves full
//!   national confinement. National colo is modelled by
//!   [`national_colo_countries`].

use serde::{Deserialize, Serialize};
use xborder_geo::{CountryCode, WORLD};

/// Identifier of one of the nine modelled cloud providers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CloudId {
    /// Amazon AWS.
    Aws,
    /// Microsoft Azure.
    Azure,
    /// Google Cloud.
    GoogleCloud,
    /// IBM Cloud (SoftLayer/Bluemix).
    IbmCloud,
    /// Cloudflare's anycast edge.
    Cloudflare,
    /// DigitalOcean.
    DigitalOcean,
    /// Equinix colocation/interconnection.
    Equinix,
    /// Oracle Cloud.
    OracleCloud,
    /// Rackspace.
    Rackspace,
}

impl CloudId {
    /// All nine providers.
    pub const ALL: [CloudId; 9] = [
        CloudId::Aws,
        CloudId::Azure,
        CloudId::GoogleCloud,
        CloudId::IbmCloud,
        CloudId::Cloudflare,
        CloudId::DigitalOcean,
        CloudId::Equinix,
        CloudId::OracleCloud,
        CloudId::Rackspace,
    ];

    /// Provider display name.
    pub fn name(&self) -> &'static str {
        match self {
            CloudId::Aws => "Amazon AWS",
            CloudId::Azure => "Microsoft Azure",
            CloudId::GoogleCloud => "Google Cloud",
            CloudId::IbmCloud => "IBM Cloud",
            CloudId::Cloudflare => "Cloudflare",
            CloudId::DigitalOcean => "DigitalOcean",
            CloudId::Equinix => "Equinix",
            CloudId::OracleCloud => "Oracle Cloud",
            CloudId::Rackspace => "Rackspace",
        }
    }
}

/// A cloud provider with a static country-level PoP footprint.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CloudProvider {
    /// Which provider.
    pub id: CloudId,
    /// Countries with at least one datacenter region / edge PoP (2018-era).
    pub pop_countries: Vec<CountryCode>,
}

impl CloudProvider {
    /// True if the provider has a PoP in `country`.
    pub fn has_pop_in(&self, country: CountryCode) -> bool {
        self.pop_countries.contains(&country)
    }
}

fn codes(list: &[&str]) -> Vec<CountryCode> {
    list.iter()
        .map(|s| {
            let c = CountryCode::parse(s).expect("static cloud footprint code");
            assert!(WORLD.contains(c), "cloud footprint country {c} not in world");
            c
        })
        .collect()
}

/// Builds the static table of the nine providers.
pub fn cloud_providers() -> Vec<CloudProvider> {
    vec![
        CloudProvider {
            id: CloudId::Aws,
            pop_countries: codes(&[
                "US", "CA", "BR", "IE", "DE", "GB", "FR", "SE", "JP", "SG", "KR", "IN", "AU", "CN",
            ]),
        },
        CloudProvider {
            id: CloudId::Azure,
            pop_countries: codes(&[
                "US", "CA", "BR", "IE", "NL", "GB", "FR", "DE", "AT", "JP", "SG", "HK", "KR", "IN",
                "AU",
            ]),
        },
        CloudProvider {
            id: CloudId::GoogleCloud,
            pop_countries: codes(&[
                "US", "BR", "BE", "NL", "GB", "DE", "FI", "JP", "SG", "TW", "IN", "AU",
            ]),
        },
        CloudProvider {
            id: CloudId::IbmCloud,
            pop_countries: codes(&[
                "US", "CA", "BR", "MX", "GB", "DE", "FR", "NL", "IT", "NO", "JP", "SG", "HK", "IN",
                "AU",
            ]),
        },
        CloudProvider {
            id: CloudId::Cloudflare,
            pop_countries: codes(&[
                "US", "CA", "BR", "CL", "AR", "CO", "PA", "GB", "IE", "FR", "DE", "NL", "BE", "ES",
                "PT", "IT", "CH", "AT", "PL", "CZ", "RO", "HU", "BG", "GR", "SE", "DK", "NO", "FI",
                "RU", "UA", "RS", "TR", "JP", "SG", "HK", "TW", "KR", "MY", "TH", "IN", "AE", "IL",
                "AU", "NZ", "ZA", "EG", "KE", "MA",
            ]),
        },
        CloudProvider {
            id: CloudId::DigitalOcean,
            pop_countries: codes(&["US", "CA", "GB", "NL", "DE", "IN", "SG"]),
        },
        CloudProvider {
            id: CloudId::Equinix,
            pop_countries: codes(&[
                "US", "CA", "BR", "GB", "IE", "NL", "DE", "FR", "CH", "IT", "ES", "PL", "SE", "FI",
                "TR", "AE", "JP", "SG", "HK", "AU",
            ]),
        },
        CloudProvider {
            id: CloudId::OracleCloud,
            pop_countries: codes(&["US", "GB", "DE"]),
        },
        CloudProvider {
            id: CloudId::Rackspace,
            pop_countries: codes(&["US", "GB", "DE", "HK", "AU"]),
        },
    ]
}

/// The lazily-built static provider table.
pub static CLOUDS: std::sync::LazyLock<Vec<CloudProvider>> =
    std::sync::LazyLock::new(cloud_providers);

/// Countries where *any* of the nine providers has a PoP.
pub fn any_cloud_countries() -> Vec<CountryCode> {
    let mut set: Vec<CountryCode> = CLOUDS
        .iter()
        .flat_map(|c| c.pop_countries.iter().copied())
        .collect();
    set.sort();
    set.dedup();
    set
}

/// Countries with generic national colocation datacenters.
///
/// The paper notes that every EU28 country has at least one datacenter even
/// if no big cloud is present; we extend that to every country in the world
/// table (a tracking operator *could* rent a rack anywhere).
pub fn national_colo_countries() -> Vec<CountryCode> {
    WORLD.countries().iter().map(|c| c.code).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xborder_geo::cc;

    #[test]
    fn nine_providers() {
        assert_eq!(CLOUDS.len(), 9);
        assert_eq!(CloudId::ALL.len(), 9);
    }

    #[test]
    fn cyprus_has_no_cloud_pop() {
        // Load-bearing for Table 6: Cyprus cannot benefit from cloud
        // migration.
        assert!(!any_cloud_countries().contains(&cc!("CY")));
    }

    #[test]
    fn malta_has_no_cloud_pop() {
        assert!(!any_cloud_countries().contains(&cc!("MT")));
    }

    #[test]
    fn big_hubs_have_many_providers() {
        for hub in [cc!("US"), cc!("GB"), cc!("DE"), cc!("NL")] {
            let n = CLOUDS.iter().filter(|c| c.has_pop_in(hub)).count();
            assert!(n >= 4, "{hub} has only {n} providers");
        }
    }

    #[test]
    fn footprints_are_deduplicated() {
        for c in CLOUDS.iter() {
            let mut v = c.pop_countries.clone();
            v.sort();
            v.dedup();
            assert_eq!(v.len(), c.pop_countries.len(), "{:?} has dup PoPs", c.id);
        }
    }

    #[test]
    fn every_country_has_national_colo() {
        let colo = national_colo_countries();
        assert!(colo.contains(&cc!("CY")));
        assert!(colo.contains(&cc!("MT")));
        assert_eq!(colo.len(), WORLD.countries().len());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(CloudId::Aws.name(), "Amazon AWS");
        assert_eq!(CloudId::Cloudflare.name(), "Cloudflare");
    }
}
