//! The assembled infrastructure registry.
//!
//! [`Infrastructure`] owns every organization, PoP and server in a synthetic
//! world and provides the lookups the rest of the pipeline needs: server by
//! IP (the NetFlow matcher), servers of an organization (DNS zone
//! construction), ground-truth country of an IP (geolocation evaluation).

use crate::cloud::CloudId;
use crate::ip::IpAllocator;
use crate::org::{Org, OrgId, OrgKind};
use crate::pop::{Pop, PopId, PopKind};
use crate::server::{Server, ServerId, ServerRole};
use crate::NetsimError;
use rand::Rng;
use std::collections::HashMap;
use std::net::IpAddr;
use xborder_geo::{CountryCode, LatLon, WORLD};

/// Mutable builder/registry for a world's physical infrastructure.
#[derive(Debug, Default)]
pub struct Infrastructure {
    orgs: Vec<Org>,
    pops: Vec<Pop>,
    servers: Vec<Server>,
    alloc: IpAllocator,
    by_ip: HashMap<IpAddr, ServerId>,
    pops_by_country: HashMap<CountryCode, Vec<PopId>>,
    servers_by_org: HashMap<OrgId, Vec<ServerId>>,
    // (org, country) -> next host offset within the current /24, plus the
    // prefix being filled. Keeps each org+country's servers in contiguous
    // address space, like a real allocation.
    v4_cursor: HashMap<(OrgId, CountryCode), (crate::ip::Ipv4Prefix, u64)>,
}

impl Infrastructure {
    /// An empty registry with a fresh address plan.
    pub fn new() -> Self {
        Infrastructure {
            alloc: IpAllocator::new(),
            ..Default::default()
        }
    }

    /// Registers an organization and returns its id.
    pub fn add_org(&mut self, name: impl Into<String>, kind: OrgKind, legal_seat: CountryCode) -> OrgId {
        let id = OrgId(self.orgs.len() as u32);
        self.orgs.push(Org::new(id, name, kind, legal_seat));
        id
    }

    /// Registers a PoP in `country`, sampling its physical location inside
    /// the country.
    pub fn add_pop<R: Rng + ?Sized>(
        &mut self,
        kind: PopKind,
        country: CountryCode,
        rng: &mut R,
    ) -> Result<PopId, NetsimError> {
        let c = WORLD
            .country(country)
            .map_err(|_| NetsimError::UnknownPop(PopId(u32::MAX)))?;
        let id = PopId(self.pops.len() as u32);
        let location = c.centroid().jitter(c.radius_km * 0.7, rng);
        self.pops.push(Pop {
            id,
            kind,
            country,
            location,
        });
        self.pops_by_country.entry(country).or_default().push(id);
        Ok(id)
    }

    /// Racks a new server for `org` at `pop`, allocating the next IPv4
    /// address from the org's per-country block (or an IPv6 one when
    /// `want_v6`).
    pub fn add_server(
        &mut self,
        org: OrgId,
        pop: PopId,
        role: ServerRole,
        want_v6: bool,
    ) -> Result<ServerId, NetsimError> {
        if org.0 as usize >= self.orgs.len() {
            return Err(NetsimError::UnknownOrg(org));
        }
        let pop_rec = self
            .pops
            .get(pop.0 as usize)
            .ok_or(NetsimError::UnknownPop(pop))?;
        let country = pop_rec.country;

        let ip: IpAddr = if want_v6 {
            let p = self.alloc.alloc_v6_slash48()?;
            // One server per /48 keeps things simple; v6 is <3 % of IPs.
            IpAddr::V6(p.nth(1).expect("/48 has hosts"))
        } else {
            let cursor = self.v4_cursor.entry((org, country));
            let (prefix, used) = match cursor {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let (p, used) = *e.get();
                    if used + 1 < p.size() {
                        e.insert((p, used + 1));
                        (p, used + 1)
                    } else {
                        let np = self.alloc.alloc_v4_slash24()?;
                        e.insert((np, 1));
                        (np, 1)
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    let np = self.alloc.alloc_v4_slash24()?;
                    e.insert((np, 1));
                    (np, 1)
                }
            };
            IpAddr::V4(prefix.nth(used).expect("cursor within /24"))
        };

        let id = ServerId(self.servers.len() as u32);
        self.servers.push(Server {
            id,
            org,
            pop,
            ip,
            role,
        });
        let prev = self.by_ip.insert(ip, id);
        assert!(prev.is_none(), "allocator produced duplicate IP {ip}");
        self.servers_by_org.entry(org).or_default().push(id);
        Ok(id)
    }

    /// All organizations.
    pub fn orgs(&self) -> &[Org] {
        &self.orgs
    }

    /// All PoPs.
    pub fn pops(&self) -> &[Pop] {
        &self.pops
    }

    /// All servers.
    pub fn servers(&self) -> &[Server] {
        &self.servers
    }

    /// Looks up an organization.
    pub fn org(&self, id: OrgId) -> Result<&Org, NetsimError> {
        self.orgs.get(id.0 as usize).ok_or(NetsimError::UnknownOrg(id))
    }

    /// Looks up a PoP.
    pub fn pop(&self, id: PopId) -> Result<&Pop, NetsimError> {
        self.pops.get(id.0 as usize).ok_or(NetsimError::UnknownPop(id))
    }

    /// Looks up a server.
    pub fn server(&self, id: ServerId) -> Result<&Server, NetsimError> {
        self.servers
            .get(id.0 as usize)
            .ok_or(NetsimError::UnknownServer(id))
    }

    /// The server answering at `ip`, if any.
    pub fn server_by_ip(&self, ip: IpAddr) -> Option<&Server> {
        self.by_ip.get(&ip).map(|id| &self.servers[id.0 as usize])
    }

    /// Ground-truth country of `ip` (the country of the PoP its server is
    /// racked in). `None` for addresses without a server.
    pub fn true_country_of(&self, ip: IpAddr) -> Option<CountryCode> {
        let s = self.server_by_ip(ip)?;
        Some(self.pops[s.pop.0 as usize].country)
    }

    /// Ground-truth physical location of `ip`.
    pub fn true_location_of(&self, ip: IpAddr) -> Option<LatLon> {
        let s = self.server_by_ip(ip)?;
        Some(self.pops[s.pop.0 as usize].location)
    }

    /// The autonomous system originating `ip` (the operating org's AS).
    pub fn asn_of(&self, ip: IpAddr) -> Option<u32> {
        let s = self.server_by_ip(ip)?;
        Some(self.orgs[s.org.0 as usize].asn)
    }

    /// Servers operated by `org`.
    pub fn servers_of_org(&self, org: OrgId) -> &[ServerId] {
        self.servers_by_org.get(&org).map(Vec::as_slice).unwrap_or(&[])
    }

    /// PoPs located in `country`.
    pub fn pops_in_country(&self, country: CountryCode) -> &[PopId] {
        self.pops_by_country
            .get(&country)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Finds (or creates) a PoP of the given kind in `country`. Used by the
    /// world generator to avoid duplicating facilities.
    pub fn pop_of_kind_in<R: Rng + ?Sized>(
        &mut self,
        kind: PopKind,
        country: CountryCode,
        rng: &mut R,
    ) -> Result<PopId, NetsimError> {
        if let Some(existing) = self
            .pops_by_country
            .get(&country)
            .and_then(|ids| ids.iter().find(|id| self.pops[id.0 as usize].kind == kind))
        {
            return Ok(*existing);
        }
        self.add_pop(kind, country, rng)
    }

    /// Number of distinct cloud providers with a PoP in `country` in this
    /// registry (not the static table — what was actually built).
    pub fn cloud_presence(&self, country: CountryCode) -> usize {
        let mut seen: Vec<CloudId> = self
            .pops_in_country(country)
            .iter()
            .filter_map(|id| match self.pops[id.0 as usize].kind {
                PopKind::Cloud(c) => Some(c),
                _ => None,
            })
            .collect();
        seen.sort();
        seen.dedup();
        seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use xborder_geo::cc;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn build_small_world() {
        let mut infra = Infrastructure::new();
        let mut rng = rng();
        let org = infra.add_org("tracker-a", OrgKind::AdTech, cc!("US"));
        let pop_de = infra.add_pop(PopKind::NationalColo, cc!("DE"), &mut rng).unwrap();
        let pop_us = infra.add_pop(PopKind::Cloud(CloudId::Aws), cc!("US"), &mut rng).unwrap();
        let s1 = infra.add_server(org, pop_de, ServerRole::DedicatedTracking, false).unwrap();
        let s2 = infra.add_server(org, pop_us, ServerRole::DedicatedTracking, false).unwrap();

        assert_eq!(infra.servers_of_org(org).len(), 2);
        let ip1 = infra.server(s1).unwrap().ip;
        let ip2 = infra.server(s2).unwrap().ip;
        assert_ne!(ip1, ip2);
        assert_eq!(infra.true_country_of(ip1), Some(cc!("DE")));
        assert_eq!(infra.true_country_of(ip2), Some(cc!("US")));
        assert_eq!(infra.server_by_ip(ip1).unwrap().id, s1);
    }

    #[test]
    fn asn_lookup_follows_org() {
        let mut infra = Infrastructure::new();
        let mut rng = rng();
        let a = infra.add_org("a", OrgKind::AdTech, cc!("US"));
        let b = infra.add_org("b", OrgKind::AdTech, cc!("US"));
        let pop = infra.add_pop(PopKind::NationalColo, cc!("DE"), &mut rng).unwrap();
        let sa = infra.add_server(a, pop, ServerRole::DedicatedTracking, false).unwrap();
        let sb = infra.add_server(b, pop, ServerRole::DedicatedTracking, false).unwrap();
        let ip_a = infra.server(sa).unwrap().ip;
        let ip_b = infra.server(sb).unwrap().ip;
        assert_eq!(infra.asn_of(ip_a), Some(infra.org(a).unwrap().asn));
        assert_eq!(infra.asn_of(ip_b), Some(infra.org(b).unwrap().asn));
        assert_ne!(infra.asn_of(ip_a), infra.asn_of(ip_b));
        assert_eq!(infra.asn_of("9.9.9.9".parse().unwrap()), None);
    }

    #[test]
    fn pop_location_is_inside_country_radius() {
        let mut infra = Infrastructure::new();
        let mut rng = rng();
        for _ in 0..50 {
            let id = infra.add_pop(PopKind::NationalColo, cc!("ES"), &mut rng).unwrap();
            let pop = infra.pop(id).unwrap();
            let es = WORLD.country_or_panic(cc!("ES"));
            let d = pop.location.distance_km(&es.centroid());
            assert!(d <= es.radius_km * 0.7 + 20.0, "pop {d} km from centroid");
        }
    }

    #[test]
    fn same_org_country_servers_share_prefix() {
        let mut infra = Infrastructure::new();
        let mut rng = rng();
        let org = infra.add_org("t", OrgKind::AdTech, cc!("US"));
        let pop = infra.add_pop(PopKind::NationalColo, cc!("FR"), &mut rng).unwrap();
        let mut ips = Vec::new();
        for _ in 0..10 {
            let s = infra.add_server(org, pop, ServerRole::DedicatedTracking, false).unwrap();
            ips.push(infra.server(s).unwrap().ip);
        }
        // All ten in one /24.
        if let IpAddr::V4(first) = ips[0] {
            let prefix = crate::ip::Ipv4Prefix::new(first, 24);
            for ip in &ips {
                match ip {
                    IpAddr::V4(v4) => assert!(prefix.contains(*v4)),
                    _ => panic!("expected v4"),
                }
            }
        } else {
            panic!("expected v4");
        }
    }

    #[test]
    fn v24_rollover_allocates_new_prefix() {
        let mut infra = Infrastructure::new();
        let mut rng = rng();
        let org = infra.add_org("t", OrgKind::AdTech, cc!("US"));
        let pop = infra.add_pop(PopKind::NationalColo, cc!("FR"), &mut rng).unwrap();
        let mut ips = std::collections::HashSet::new();
        for _ in 0..600 {
            let s = infra.add_server(org, pop, ServerRole::DedicatedTracking, false).unwrap();
            assert!(ips.insert(infra.server(s).unwrap().ip), "duplicate IP");
        }
        assert_eq!(ips.len(), 600);
    }

    #[test]
    fn v6_servers_get_doc_range_addresses() {
        let mut infra = Infrastructure::new();
        let mut rng = rng();
        let org = infra.add_org("t", OrgKind::AdTech, cc!("US"));
        let pop = infra.add_pop(PopKind::NationalColo, cc!("NL"), &mut rng).unwrap();
        let s = infra.add_server(org, pop, ServerRole::DedicatedTracking, true).unwrap();
        match infra.server(s).unwrap().ip {
            IpAddr::V6(v6) => assert!(v6.segments()[0] == 0x2001 && v6.segments()[1] == 0xdb8),
            _ => panic!("expected v6"),
        }
    }

    #[test]
    fn unknown_ids_error() {
        let infra = Infrastructure::new();
        assert!(infra.org(OrgId(0)).is_err());
        assert!(infra.pop(PopId(0)).is_err());
        assert!(infra.server(ServerId(0)).is_err());
        assert!(infra.server_by_ip("9.9.9.9".parse().unwrap()).is_none());
    }

    #[test]
    fn pop_of_kind_reuses_existing() {
        let mut infra = Infrastructure::new();
        let mut rng = rng();
        let a = infra.pop_of_kind_in(PopKind::Cloud(CloudId::Aws), cc!("IE"), &mut rng).unwrap();
        let b = infra.pop_of_kind_in(PopKind::Cloud(CloudId::Aws), cc!("IE"), &mut rng).unwrap();
        let c = infra.pop_of_kind_in(PopKind::Cloud(CloudId::Azure), cc!("IE"), &mut rng).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(infra.cloud_presence(cc!("IE")), 2);
    }

    #[test]
    fn add_server_rejects_bad_refs() {
        let mut infra = Infrastructure::new();
        let mut rng = rng();
        let org = infra.add_org("t", OrgKind::AdTech, cc!("US"));
        assert!(matches!(
            infra.add_server(org, PopId(99), ServerRole::CdnEdge, false),
            Err(NetsimError::UnknownPop(_))
        ));
        let pop = infra.add_pop(PopKind::NationalColo, cc!("DE"), &mut rng).unwrap();
        assert!(matches!(
            infra.add_server(OrgId(99), pop, ServerRole::CdnEdge, false),
            Err(NetsimError::UnknownOrg(_))
        ));
    }
}
