//! Servers: the terminating end points of tracking flows.

use crate::org::OrgId;
use crate::pop::PopId;
use serde::{Deserialize, Serialize};
use std::net::IpAddr;

/// Opaque server identifier (index into the infrastructure registry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ServerId(pub u32);

/// What a server is used for.
///
/// The paper's dedicated-IP analysis (Fig. 4) found ~85 % of tracking
/// requests hit IPs serving a single TLD, while a small set of
/// *ad-exchange* IPs serve ten or more domains (Fig. 5). The role encodes
/// which behaviour a server exhibits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServerRole {
    /// Dedicated tracking/ad serving for one service.
    DedicatedTracking,
    /// Ad-exchange / RTB auction / cookie-sync front end shared by many
    /// domains.
    AdExchange,
    /// Generic CDN edge (may serve tracking and non-tracking content).
    CdnEdge,
    /// Non-tracking third-party service (chat, comments, fonts, ...).
    OtherService,
    /// First-party web server.
    Publisher,
}

/// A server racked at a PoP with a unique IP.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Server {
    /// Identifier within the infrastructure registry.
    pub id: ServerId,
    /// Operating organization.
    pub org: OrgId,
    /// Facility the server is racked in; its country is the geolocation
    /// ground truth.
    pub pop: PopId,
    /// The server's unique address.
    pub ip: IpAddr,
    /// Primary role.
    pub role: ServerRole,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_identity() {
        let s = Server {
            id: ServerId(1),
            org: OrgId(2),
            pop: PopId(3),
            ip: "1.2.3.4".parse().unwrap(),
            role: ServerRole::DedicatedTracking,
        };
        assert_eq!(s.ip, "1.2.3.4".parse::<IpAddr>().unwrap());
        assert_eq!(s.role, ServerRole::DedicatedTracking);
    }
}
