//! The assembled web graph: publishers, services, orgs, cascades.

use crate::cascade::CascadeTemplate;
use crate::domain::Domain;
use crate::intern::{DomainId, DomainTable};
use crate::publisher::{Publisher, PublisherId};
use crate::service::{ServiceId, ServiceOrg, ServiceOrgId, ThirdPartyService};
use std::collections::HashMap;

/// The static content of a synthetic web: everything `xborder-browser`
/// needs to simulate sessions and everything `xborder-core` needs to build
/// infrastructure and DNS zones.
#[derive(Debug, Default)]
pub struct WebGraph {
    /// Publisher sites, indexed by [`PublisherId`].
    pub publishers: Vec<Publisher>,
    /// Third-party services, indexed by [`ServiceId`].
    pub services: Vec<ThirdPartyService>,
    /// Service organizations, indexed by [`ServiceOrgId`].
    pub orgs: Vec<ServiceOrg>,
    /// RTB cascade template per *ad network* service.
    pub cascades: HashMap<ServiceId, CascadeTemplate>,
    /// Relative market share of each org in embed selection (same index as
    /// `orgs`); majors are head-heavy.
    pub org_weight: Vec<f64>,
    // Derived state rebuilt by `reindex()`. The interner assigns ids in a
    // deterministic order (publisher domains by publisher id, then service
    // hosts by service id), so `DomainId`s are a pure function of the world.
    domains: DomainTable,
    /// `DomainId → ServiceId` (dense; `None` for publisher-only domains).
    host_service: Vec<Option<ServiceId>>,
    /// `PublisherId → DomainId` of the publisher's own domain.
    publisher_domain_ids: Vec<DomainId>,
    /// `ServiceId → DomainId`s of its hosts, parallel to `service.hosts`.
    service_host_ids: Vec<Vec<DomainId>>,
}

impl WebGraph {
    /// Looks up a publisher.
    pub fn publisher(&self, id: PublisherId) -> &Publisher {
        &self.publishers[id.0 as usize]
    }

    /// Looks up a service.
    pub fn service(&self, id: ServiceId) -> &ThirdPartyService {
        &self.services[id.0 as usize]
    }

    /// Looks up a service org.
    pub fn org(&self, id: ServiceOrgId) -> &ServiceOrg {
        &self.orgs[id.0 as usize]
    }

    /// The org operating a service.
    pub fn org_of(&self, id: ServiceId) -> &ServiceOrg {
        self.org(self.service(id).org)
    }

    /// Resolves a request host (FQDN) to the service it belongs to.
    pub fn service_by_host(&self, host: &Domain) -> Option<ServiceId> {
        self.domains.get(host).and_then(|id| self.service_by_host_id(id))
    }

    /// Resolves an interned host id to the service it belongs to. Ids not
    /// in the table (or publisher-only domains) resolve to `None`.
    pub fn service_by_host_id(&self, id: DomainId) -> Option<ServiceId> {
        self.host_service.get(id.0 as usize).copied().flatten()
    }

    /// The worldgen-time domain interner (DESIGN.md §5f). Read-only after
    /// [`reindex`](WebGraph::reindex); ids are stable per world.
    pub fn domains(&self) -> &DomainTable {
        &self.domains
    }

    /// Interned id of a publisher's own domain.
    pub fn publisher_domain_id(&self, id: PublisherId) -> DomainId {
        self.publisher_domain_ids[id.0 as usize]
    }

    /// Interned id of host `idx` of `service` (parallel to
    /// `service.hosts[idx]`).
    pub fn service_host_id(&self, service: ServiceId, idx: usize) -> DomainId {
        self.service_host_ids[service.0 as usize][idx]
    }

    /// Rebuilds the domain interner and host index; called by the
    /// generator after mutation. Intern order is deterministic: publisher
    /// domains in publisher-id order, then service hosts in service-id
    /// order — so `DomainId`s depend only on the world content.
    pub fn reindex(&mut self) {
        let mut domains = DomainTable::new();
        let mut publisher_domain_ids = Vec::with_capacity(self.publishers.len());
        for p in &self.publishers {
            publisher_domain_ids.push(domains.intern(&p.domain));
        }
        let mut host_service: Vec<Option<ServiceId>> = vec![None; domains.len()];
        let mut service_host_ids = Vec::with_capacity(self.services.len());
        for s in &self.services {
            let mut ids = Vec::with_capacity(s.hosts.len());
            for h in &s.hosts {
                let id = domains.intern(h);
                if host_service.len() < domains.len() {
                    host_service.resize(domains.len(), None);
                }
                let slot = &mut host_service[id.0 as usize];
                assert!(slot.is_none(), "host {h} assigned to two services");
                *slot = Some(s.id);
                ids.push(id);
            }
            service_host_ids.push(ids);
        }
        self.domains = domains;
        self.publisher_domain_ids = publisher_domain_ids;
        self.host_service = host_service;
        self.service_host_ids = service_host_ids;
    }

    /// Total number of distinct third-party FQDNs.
    pub fn n_third_party_fqdns(&self) -> usize {
        self.services.iter().map(|s| s.hosts.len()).sum()
    }

    /// Number of distinct tracking pay-level domains (ground truth).
    pub fn n_tracking_tlds(&self) -> usize {
        self.services.iter().filter(|s| s.is_tracking()).count()
    }

    /// Number of distinct tracking FQDNs (ground truth).
    pub fn n_tracking_fqdns(&self) -> usize {
        self.services
            .iter()
            .filter(|s| s.is_tracking())
            .map(|s| s.hosts.len())
            .sum()
    }

    /// Structural invariants; the generator's tests run this on every
    /// configuration.
    pub fn validate(&self) -> Result<(), String> {
        for (i, p) in self.publishers.iter().enumerate() {
            if p.id.0 as usize != i {
                return Err(format!("publisher {i} has id {:?}", p.id));
            }
            for e in &p.embeds {
                if e.service.0 as usize >= self.services.len() {
                    return Err(format!("publisher {} embeds unknown service", p.domain));
                }
                if !(0.0..=1.0).contains(&e.probability) {
                    return Err(format!("embed probability {} out of range", e.probability));
                }
            }
        }
        for (i, s) in self.services.iter().enumerate() {
            if s.id.0 as usize != i {
                return Err(format!("service {i} has id {:?}", s.id));
            }
            if s.org.0 as usize >= self.orgs.len() {
                return Err(format!("service {} has unknown org", s.tld));
            }
            if s.hosts.is_empty() {
                return Err(format!("service {} has no hosts", s.tld));
            }
            for h in &s.hosts {
                if !h.is_subdomain_of(&s.tld) {
                    return Err(format!("host {h} not under service tld {}", s.tld));
                }
                if self.service_by_host(h) != Some(s.id) {
                    return Err(format!("host {h} missing from index"));
                }
            }
        }
        for (i, o) in self.orgs.iter().enumerate() {
            if o.id.0 as usize != i {
                return Err(format!("org {i} has id {:?}", o.id));
            }
            for sid in &o.services {
                if self.service(*sid).org != o.id {
                    return Err(format!("org {} service backlink broken", o.name));
                }
            }
        }
        for (net, t) in &self.cascades {
            if net.0 as usize >= self.services.len() {
                return Err("cascade attached to unknown service".into());
            }
            for step in &t.steps {
                if step.service.0 as usize >= self.services.len() {
                    return Err("cascade step references unknown service".into());
                }
                if !(0.0..=1.0).contains(&step.probability) {
                    return Err(format!("cascade probability {} out of range", step.probability));
                }
            }
        }
        if self.org_weight.len() != self.orgs.len() {
            return Err("org_weight length mismatch".into());
        }
        if self.publisher_domain_ids.len() != self.publishers.len() {
            return Err("publisher domain-id table length mismatch".into());
        }
        if self.service_host_ids.len() != self.services.len() {
            return Err("service host-id table length mismatch".into());
        }
        for (p, &id) in self.publishers.iter().zip(&self.publisher_domain_ids) {
            if self.domains.domain(id) != &p.domain {
                return Err(format!("publisher {} interned under wrong id", p.domain));
            }
        }
        for (s, ids) in self.services.iter().zip(&self.service_host_ids) {
            if ids.len() != s.hosts.len() {
                return Err(format!("service {} host-id list out of sync", s.tld));
            }
            for (h, &id) in s.hosts.iter().zip(ids) {
                if self.domains.domain(id) != h {
                    return Err(format!("host {h} interned under wrong id"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::category::SiteCategory;
    use crate::service::{HostingPolicy, ServiceKind};
    use crate::url::UrlStyle;
    use xborder_geo::cc;

    fn tiny_graph() -> WebGraph {
        let mut g = WebGraph::default();
        g.orgs.push(ServiceOrg {
            id: ServiceOrgId(0),
            name: "t-org".into(),
            legal_seat: cc!("US"),
            hosting: HostingPolicy::HomeOnly,
            services: vec![ServiceId(0)],
        });
        g.org_weight.push(1.0);
        g.services.push(ThirdPartyService {
            id: ServiceId(0),
            org: ServiceOrgId(0),
            tld: Domain::new("track.com"),
            hosts: vec![Domain::new("t.track.com")],
            kind: ServiceKind::Analytics,
            url_style: UrlStyle::Args,
            in_blocklist: true,
            shared_infra: false,
        });
        g.publishers.push(Publisher {
            id: PublisherId(0),
            domain: Domain::new("news.example.com"),
            category: SiteCategory::News,
            audience: crate::publisher::Audience::Global,
            popularity: 1.0,
            embeds: vec![],
        });
        g.reindex();
        g
    }

    #[test]
    fn tiny_graph_validates() {
        let g = tiny_graph();
        assert!(g.validate().is_ok());
        assert_eq!(g.n_third_party_fqdns(), 1);
        assert_eq!(g.n_tracking_tlds(), 1);
    }

    #[test]
    fn host_lookup() {
        let g = tiny_graph();
        assert_eq!(
            g.service_by_host(&Domain::new("t.track.com")),
            Some(ServiceId(0))
        );
        assert_eq!(g.service_by_host(&Domain::new("nope.com")), None);
    }

    #[test]
    fn interned_ids_agree_with_string_lookups() {
        let g = tiny_graph();
        // Publisher domains intern first, service hosts after.
        let pub_id = g.publisher_domain_id(PublisherId(0));
        assert_eq!(g.domains().domain(pub_id).as_str(), "news.example.com");
        let host_id = g.service_host_id(ServiceId(0), 0);
        assert_eq!(g.domains().domain(host_id).as_str(), "t.track.com");
        assert_eq!(g.service_by_host_id(host_id), Some(ServiceId(0)));
        assert_eq!(g.service_by_host_id(pub_id), None, "publisher domain is not a service host");
        assert_eq!(g.domains().get(&Domain::new("t.track.com")), Some(host_id));
    }

    #[test]
    fn validate_catches_host_outside_tld() {
        let mut g = tiny_graph();
        g.services[0].hosts.push(Domain::new("elsewhere.net"));
        g.reindex();
        assert!(g.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "two services")]
    fn reindex_rejects_duplicate_hosts() {
        let mut g = tiny_graph();
        g.orgs[0].services.push(ServiceId(1));
        g.services.push(ThirdPartyService {
            id: ServiceId(1),
            org: ServiceOrgId(0),
            tld: Domain::new("track.com"),
            hosts: vec![Domain::new("t.track.com")],
            kind: ServiceKind::Analytics,
            url_style: UrlStyle::Args,
            in_blocklist: false,
            shared_infra: false,
        });
        g.reindex();
    }
}
