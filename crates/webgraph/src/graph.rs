//! The assembled web graph: publishers, services, orgs, cascades.

use crate::cascade::CascadeTemplate;
use crate::domain::Domain;
use crate::publisher::{Publisher, PublisherId};
use crate::service::{ServiceId, ServiceOrg, ServiceOrgId, ThirdPartyService};
use std::collections::HashMap;

/// The static content of a synthetic web: everything `xborder-browser`
/// needs to simulate sessions and everything `xborder-core` needs to build
/// infrastructure and DNS zones.
#[derive(Debug, Default)]
pub struct WebGraph {
    /// Publisher sites, indexed by [`PublisherId`].
    pub publishers: Vec<Publisher>,
    /// Third-party services, indexed by [`ServiceId`].
    pub services: Vec<ThirdPartyService>,
    /// Service organizations, indexed by [`ServiceOrgId`].
    pub orgs: Vec<ServiceOrg>,
    /// RTB cascade template per *ad network* service.
    pub cascades: HashMap<ServiceId, CascadeTemplate>,
    /// Relative market share of each org in embed selection (same index as
    /// `orgs`); majors are head-heavy.
    pub org_weight: Vec<f64>,
    host_index: HashMap<Domain, ServiceId>,
}

impl WebGraph {
    /// Looks up a publisher.
    pub fn publisher(&self, id: PublisherId) -> &Publisher {
        &self.publishers[id.0 as usize]
    }

    /// Looks up a service.
    pub fn service(&self, id: ServiceId) -> &ThirdPartyService {
        &self.services[id.0 as usize]
    }

    /// Looks up a service org.
    pub fn org(&self, id: ServiceOrgId) -> &ServiceOrg {
        &self.orgs[id.0 as usize]
    }

    /// The org operating a service.
    pub fn org_of(&self, id: ServiceId) -> &ServiceOrg {
        self.org(self.service(id).org)
    }

    /// Resolves a request host (FQDN) to the service it belongs to.
    pub fn service_by_host(&self, host: &Domain) -> Option<ServiceId> {
        self.host_index.get(host).copied()
    }

    /// Rebuilds the host index; called by the generator after mutation.
    pub fn reindex(&mut self) {
        self.host_index.clear();
        for s in &self.services {
            for h in &s.hosts {
                let prev = self.host_index.insert(h.clone(), s.id);
                assert!(prev.is_none(), "host {h} assigned to two services");
            }
        }
    }

    /// Total number of distinct third-party FQDNs.
    pub fn n_third_party_fqdns(&self) -> usize {
        self.services.iter().map(|s| s.hosts.len()).sum()
    }

    /// Number of distinct tracking pay-level domains (ground truth).
    pub fn n_tracking_tlds(&self) -> usize {
        self.services.iter().filter(|s| s.is_tracking()).count()
    }

    /// Number of distinct tracking FQDNs (ground truth).
    pub fn n_tracking_fqdns(&self) -> usize {
        self.services
            .iter()
            .filter(|s| s.is_tracking())
            .map(|s| s.hosts.len())
            .sum()
    }

    /// Structural invariants; the generator's tests run this on every
    /// configuration.
    pub fn validate(&self) -> Result<(), String> {
        for (i, p) in self.publishers.iter().enumerate() {
            if p.id.0 as usize != i {
                return Err(format!("publisher {i} has id {:?}", p.id));
            }
            for e in &p.embeds {
                if e.service.0 as usize >= self.services.len() {
                    return Err(format!("publisher {} embeds unknown service", p.domain));
                }
                if !(0.0..=1.0).contains(&e.probability) {
                    return Err(format!("embed probability {} out of range", e.probability));
                }
            }
        }
        for (i, s) in self.services.iter().enumerate() {
            if s.id.0 as usize != i {
                return Err(format!("service {i} has id {:?}", s.id));
            }
            if s.org.0 as usize >= self.orgs.len() {
                return Err(format!("service {} has unknown org", s.tld));
            }
            if s.hosts.is_empty() {
                return Err(format!("service {} has no hosts", s.tld));
            }
            for h in &s.hosts {
                if !h.is_subdomain_of(&s.tld) {
                    return Err(format!("host {h} not under service tld {}", s.tld));
                }
                if self.host_index.get(h) != Some(&s.id) {
                    return Err(format!("host {h} missing from index"));
                }
            }
        }
        for (i, o) in self.orgs.iter().enumerate() {
            if o.id.0 as usize != i {
                return Err(format!("org {i} has id {:?}", o.id));
            }
            for sid in &o.services {
                if self.service(*sid).org != o.id {
                    return Err(format!("org {} service backlink broken", o.name));
                }
            }
        }
        for (net, t) in &self.cascades {
            if net.0 as usize >= self.services.len() {
                return Err("cascade attached to unknown service".into());
            }
            for step in &t.steps {
                if step.service.0 as usize >= self.services.len() {
                    return Err("cascade step references unknown service".into());
                }
                if !(0.0..=1.0).contains(&step.probability) {
                    return Err(format!("cascade probability {} out of range", step.probability));
                }
            }
        }
        if self.org_weight.len() != self.orgs.len() {
            return Err("org_weight length mismatch".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::category::SiteCategory;
    use crate::service::{HostingPolicy, ServiceKind};
    use crate::url::UrlStyle;
    use xborder_geo::cc;

    fn tiny_graph() -> WebGraph {
        let mut g = WebGraph::default();
        g.orgs.push(ServiceOrg {
            id: ServiceOrgId(0),
            name: "t-org".into(),
            legal_seat: cc!("US"),
            hosting: HostingPolicy::HomeOnly,
            services: vec![ServiceId(0)],
        });
        g.org_weight.push(1.0);
        g.services.push(ThirdPartyService {
            id: ServiceId(0),
            org: ServiceOrgId(0),
            tld: Domain::new("track.com"),
            hosts: vec![Domain::new("t.track.com")],
            kind: ServiceKind::Analytics,
            url_style: UrlStyle::Args,
            in_blocklist: true,
            shared_infra: false,
        });
        g.publishers.push(Publisher {
            id: PublisherId(0),
            domain: Domain::new("news.example.com"),
            category: SiteCategory::News,
            audience: crate::publisher::Audience::Global,
            popularity: 1.0,
            embeds: vec![],
        });
        g.reindex();
        g
    }

    #[test]
    fn tiny_graph_validates() {
        let g = tiny_graph();
        assert!(g.validate().is_ok());
        assert_eq!(g.n_third_party_fqdns(), 1);
        assert_eq!(g.n_tracking_tlds(), 1);
    }

    #[test]
    fn host_lookup() {
        let g = tiny_graph();
        assert_eq!(
            g.service_by_host(&Domain::new("t.track.com")),
            Some(ServiceId(0))
        );
        assert_eq!(g.service_by_host(&Domain::new("nope.com")), None);
    }

    #[test]
    fn validate_catches_host_outside_tld() {
        let mut g = tiny_graph();
        g.services[0].hosts.push(Domain::new("elsewhere.net"));
        g.reindex();
        assert!(g.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "two services")]
    fn reindex_rejects_duplicate_hosts() {
        let mut g = tiny_graph();
        g.orgs[0].services.push(ServiceId(1));
        g.services.push(ThirdPartyService {
            id: ServiceId(1),
            org: ServiceOrgId(0),
            tld: Domain::new("track.com"),
            hosts: vec![Domain::new("t.track.com")],
            kind: ServiceKind::Analytics,
            url_style: UrlStyle::Args,
            in_blocklist: false,
            shared_infra: false,
        });
        g.reindex();
    }
}
