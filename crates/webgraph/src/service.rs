//! Third-party services and the organizations operating them.

use crate::domain::Domain;
use crate::url::UrlStyle;
use serde::{Deserialize, Serialize};
use xborder_geo::CountryCode;

/// Index of a third-party service within a [`crate::WebGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ServiceId(pub u32);

/// Index of a service organization within a [`crate::WebGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ServiceOrgId(pub u32);

/// What a third-party service does.
///
/// The tracking-relevant kinds mirror the RTB ecosystem diagram of the
/// paper's Fig. 1; the non-tracking kinds are the "clean" third-party flows
/// of Fig. 2 (live chat, comments, fonts, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServiceKind {
    /// Ad network front end (initiates ad slots, e.g. syndication hosts).
    AdNetwork,
    /// Ad exchange running RTB auctions.
    AdExchange,
    /// Supply-side platform.
    Ssp,
    /// Demand-side platform / bidder.
    Dsp,
    /// Analytics / audience measurement.
    Analytics,
    /// Cookie-sync / identity-matching endpoint.
    CookieSync,
    /// Content delivery of ad creatives.
    AdCdn,
    /// Live-chat widget (non-tracking).
    ChatWidget,
    /// Commenting platform (non-tracking).
    Comments,
    /// Web fonts / static assets (non-tracking).
    Fonts,
    /// Embedded video player (non-tracking).
    Video,
    /// Social share buttons: tracking in practice.
    SocialWidget,
}

impl ServiceKind {
    /// Ground truth: does this kind of service track users?
    ///
    /// This is the label the classifiers in `xborder-classify` are evaluated
    /// against; they never read it directly.
    pub fn is_tracking(&self) -> bool {
        !matches!(
            self,
            ServiceKind::ChatWidget | ServiceKind::Comments | ServiceKind::Fonts | ServiceKind::Video
        )
    }

    /// Kinds that participate in RTB cascades downstream of an ad network.
    pub fn is_rtb_downstream(&self) -> bool {
        matches!(
            self,
            ServiceKind::AdExchange | ServiceKind::Ssp | ServiceKind::Dsp | ServiceKind::CookieSync | ServiceKind::AdCdn
        )
    }
}

/// Where an organization deploys its servers.
///
/// Expressed as country sets so `xborder-core` can materialize it onto
/// `xborder-netsim` PoPs without a dependency cycle. The variants encode the
/// deployment archetypes behind the paper's findings: big US ad-tech with
/// European PoPs (high EU28 confinement under correct geolocation), US-only
/// niche trackers (leakage), and regional/national players.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum HostingPolicy {
    /// Servers only in the org's home country.
    HomeOnly,
    /// Global anycast-style footprint over the given countries; DNS maps
    /// users to the nearest one.
    Anycast(Vec<CountryCode>),
    /// A single hub country serving a whole region (e.g. Ireland or the
    /// Netherlands for Europe) plus the home country.
    RegionalHub {
        /// Home-country deployment.
        home: CountryCode,
        /// The hub serving the rest of the region.
        hub: CountryCode,
    },
}

impl HostingPolicy {
    /// All countries this policy puts servers in.
    pub fn countries(&self) -> Vec<CountryCode> {
        match self {
            HostingPolicy::HomeOnly => Vec::new(), // resolved against org seat
            HostingPolicy::Anycast(list) => list.clone(),
            HostingPolicy::RegionalHub { home, hub } => vec![*home, *hub],
        }
    }
}

/// An organization operating one or more third-party services.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServiceOrg {
    /// Identifier within the web graph.
    pub id: ServiceOrgId,
    /// Display name; unique within a world.
    pub name: String,
    /// Country of incorporation. Registry geolocation databases place this
    /// org's servers here regardless of physical location.
    pub legal_seat: CountryCode,
    /// Deployment footprint.
    pub hosting: HostingPolicy,
    /// Services (distinct pay-level domains) this org operates.
    pub services: Vec<ServiceId>,
}

/// A third-party service: one pay-level domain with one or more hosts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThirdPartyService {
    /// Identifier within the web graph.
    pub id: ServiceId,
    /// Operating organization.
    pub org: ServiceOrgId,
    /// The service's pay-level domain ("TLD" in paper terms).
    pub tld: Domain,
    /// Concrete request hosts (FQDNs) under [`ThirdPartyService::tld`].
    pub hosts: Vec<Domain>,
    /// Role in the ecosystem.
    pub kind: ServiceKind,
    /// Shape of this service's request URLs.
    pub url_style: UrlStyle,
    /// Whether the easylist/easyprivacy-style blocklists have rules for this
    /// service. Canonical trackers are listed; cascade-only domains mostly
    /// are not — that gap is what the paper's semi-automatic pass closes.
    pub in_blocklist: bool,
    /// Whether this service's servers are *dedicated* (single TLD per IP) or
    /// shared ad-exchange infrastructure serving many domains (paper
    /// Fig. 4/5).
    pub shared_infra: bool,
}

impl ThirdPartyService {
    /// Ground-truth tracking label (never read by classifiers).
    pub fn is_tracking(&self) -> bool {
        self.kind.is_tracking()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xborder_geo::cc;

    #[test]
    fn tracking_ground_truth_by_kind() {
        assert!(ServiceKind::AdExchange.is_tracking());
        assert!(ServiceKind::Analytics.is_tracking());
        assert!(ServiceKind::SocialWidget.is_tracking());
        assert!(!ServiceKind::ChatWidget.is_tracking());
        assert!(!ServiceKind::Fonts.is_tracking());
    }

    #[test]
    fn rtb_downstream_kinds() {
        assert!(ServiceKind::CookieSync.is_rtb_downstream());
        assert!(ServiceKind::Dsp.is_rtb_downstream());
        assert!(!ServiceKind::AdNetwork.is_rtb_downstream());
        assert!(!ServiceKind::Comments.is_rtb_downstream());
    }

    #[test]
    fn hosting_policy_countries() {
        let p = HostingPolicy::RegionalHub {
            home: cc!("US"),
            hub: cc!("IE"),
        };
        assert_eq!(p.countries(), vec![cc!("US"), cc!("IE")]);
        assert!(HostingPolicy::HomeOnly.countries().is_empty());
        let a = HostingPolicy::Anycast(vec![cc!("US"), cc!("DE"), cc!("SG")]);
        assert_eq!(a.countries().len(), 3);
    }
}
