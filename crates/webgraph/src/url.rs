//! A small URL type and synthesis of realistic tracking URLs.
//!
//! The semi-automatic classifier (paper Sect. 3.2) keys on two URL
//! properties: whether the URL string *carries query arguments* (argument
//! passing is how trackers exchange identifiers) and whether it contains
//! *tracking keywords* such as "usermatch", "rtb" or "cookiesync". We model
//! URLs structurally so the classifier can inspect exactly those properties
//! instead of regex-ing opaque strings.

use crate::domain::Domain;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Keywords that mark a URL as tracking-related (paper's empirical list).
pub const TRACKING_KEYWORDS: &[&str] = &[
    "usermatch", "rtb", "cookiesync", "bidder", "pixel", "adsync", "idsync", "retarget",
    "audience", "beacon",
];

/// URL scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// Plain HTTP (port 80).
    Http,
    /// HTTPS (port 443). ~83 % of observed tracking traffic in the paper.
    Https,
}

impl Scheme {
    /// Default TCP port of the scheme.
    pub fn port(&self) -> u16 {
        match self {
            Scheme::Http => 80,
            Scheme::Https => 443,
        }
    }

    /// Scheme string without "://".
    pub fn as_str(&self) -> &'static str {
        match self {
            Scheme::Http => "http",
            Scheme::Https => "https",
        }
    }
}

/// A parsed URL: scheme, host, path, and query arguments.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Url {
    /// Scheme.
    pub scheme: Scheme,
    /// Host domain.
    pub host: Domain,
    /// Path starting with `/`.
    pub path: String,
    /// Query arguments in order of appearance.
    pub query: Vec<(String, String)>,
}

impl Url {
    /// Builds a URL, normalizing the path to start with `/`.
    pub fn new(scheme: Scheme, host: Domain, path: impl Into<String>) -> Self {
        let mut path = path.into();
        if !path.starts_with('/') {
            path.insert(0, '/');
        }
        Url {
            scheme,
            host,
            path,
            query: Vec::new(),
        }
    }

    /// Appends one query argument.
    pub fn with_arg(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.query.push((key.into(), value.into()));
        self
    }

    /// True if the URL carries any query arguments — the first signal of
    /// the semi-automatic classifier.
    pub fn has_args(&self) -> bool {
        !self.query.is_empty()
    }

    /// True if path or any query key/value contains one of
    /// [`TRACKING_KEYWORDS`] — the second signal of the semi-automatic
    /// classifier.
    pub fn has_tracking_keyword(&self) -> bool {
        let lc_path = self.path.to_ascii_lowercase();
        if TRACKING_KEYWORDS.iter().any(|k| lc_path.contains(k)) {
            return true;
        }
        self.query.iter().any(|(k, v)| {
            let k = k.to_ascii_lowercase();
            let v = v.to_ascii_lowercase();
            TRACKING_KEYWORDS.iter().any(|kw| k.contains(kw) || v.contains(kw))
        })
    }

    /// Parses a URL string produced by [`Url::to_string`]. Not a general
    /// RFC 3986 parser — just enough for round-tripping simulator URLs and
    /// for tests feeding hand-written inputs.
    pub fn parse(s: &str) -> Option<Url> {
        let (scheme, rest) = if let Some(r) = s.strip_prefix("https://") {
            (Scheme::Https, r)
        } else if let Some(r) = s.strip_prefix("http://") {
            (Scheme::Http, r)
        } else {
            return None;
        };
        let (host_part, path_query) = match rest.find('/') {
            Some(i) => (&rest[..i], &rest[i..]),
            None => (rest, "/"),
        };
        if host_part.is_empty() {
            return None;
        }
        let (path, query_str) = match path_query.find('?') {
            Some(i) => (&path_query[..i], &path_query[i + 1..]),
            None => (path_query, ""),
        };
        let mut query = Vec::new();
        if !query_str.is_empty() {
            for pair in query_str.split('&') {
                match pair.split_once('=') {
                    Some((k, v)) => query.push((k.to_owned(), v.to_owned())),
                    None => query.push((pair.to_owned(), String::new())),
                }
            }
        }
        Some(Url {
            scheme,
            host: Domain::new(host_part),
            path: path.to_owned(),
            query,
        })
    }
}

impl std::fmt::Display for Url {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}://{}{}", self.scheme.as_str(), self.host, self.path)?;
        for (i, (k, v)) in self.query.iter().enumerate() {
            write!(f, "{}{k}={v}", if i == 0 { '?' } else { '&' })?;
        }
        Ok(())
    }
}

/// How a service's request URLs look; drives what the classifier can see.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UrlStyle {
    /// Plain content fetch: no arguments (`/js/widget.js`).
    Plain,
    /// Carries identifier arguments but no telltale keywords
    /// (`/collect?uid=..&ev=..`).
    Args,
    /// Carries arguments *and* tracking keywords
    /// (`/usermatch?rtb_id=..`).
    ArgsAndKeywords,
}

/// Token alphabet shared by [`token`] and [`identity_token`].
const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";

/// Deterministic ID-ish token from an RNG, used as argument values.
pub fn token<R: Rng + ?Sized>(rng: &mut R, len: usize) -> String {
    (0..len)
        .map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())] as char)
        .collect()
}

/// Eight token bytes from an RNG — the cache-buster payload, drawn with
/// exactly the same RNG consumption as `token(rng, 8)` but without
/// allocating.
fn token_bytes<R: Rng + ?Sized>(rng: &mut R) -> [u8; 8] {
    let mut out = [0u8; 8];
    for b in &mut out {
        *b = ALPHABET[rng.gen_range(0..ALPHABET.len())];
    }
    out
}

/// Renders a 64-bit identity as a stable token (the per-user cookie id a
/// tracker would echo in its URLs).
pub fn identity_token(identity: u64) -> String {
    let mut s = String::with_capacity(13);
    write_identity_token(identity, &mut s);
    s
}

/// The 13 ASCII bytes of [`identity_token`], on the stack — the shared
/// core of the string writer and the byte-stream visitor.
fn identity_token_bytes(identity: u64) -> [u8; 13] {
    // Splitmix-style scramble so adjacent identities produce unrelated
    // tokens (and identity 0 still yields a non-trivial one).
    let mut x = identity
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(0x85EB_CA6B);
    x ^= x >> 31;
    let mut out = [0u8; 13];
    for b in &mut out {
        *b = ALPHABET[(x % 36) as usize];
        x /= 36;
    }
    out
}

/// Appends [`identity_token`]'s 13 characters to `buf` without allocating
/// a fresh `String`.
fn write_identity_token(identity: u64, buf: &mut String) {
    for b in identity_token_bytes(identity) {
        buf.push(b as char);
    }
}

/// Event names trackers tag beacons with.
const EVENTS: &[&str] = &["view", "click", "load", "imp", "scroll"];

/// Content paths used by [`UrlStyle::Plain`] URLs.
const PLAIN_PATHS: &[&str] = &["/js/widget.js", "/static/embed.css", "/img/logo.png", "/v2/chat.js"];

/// Beacon paths used by [`UrlStyle::Args`] URLs.
const ARG_PATHS: &[&str] = &["/collect", "/event", "/t", "/imp", "/log"];

/// Synthesizes a request URL for a host in the given style.
///
/// `identity` is the stable per-(user, service) identifier: the same user
/// revisiting the same tracker produces *recurring* URL strings, which is
/// why the paper's unique-URL counts (Table 2) sit far below its total
/// request counts. Cache busters (`cb`) are added to a fraction of
/// requests only.
pub fn synth_url<R: Rng + ?Sized>(
    rng: &mut R,
    host: &Domain,
    style: UrlStyle,
    https_share: f64,
    identity: u64,
) -> Url {
    EncodedUrl::synth(rng, style, https_share, identity).to_url(host)
}

/// A synthesized URL in compact, allocation-free form (DESIGN.md §5f).
///
/// The study hot path renders requests as `EncodedUrl`s and materializes
/// the string only at the log-emission boundary (into a reused scratch
/// buffer). [`EncodedUrl::synth`] consumes the RNG in *exactly* the same
/// order as the eager [`synth_url`] ever did — the eager path now
/// delegates here, so the two cannot drift — and
/// [`EncodedUrl::write_into`] emits bytes identical to
/// `Url::to_string()` of [`EncodedUrl::to_url`] (property-pinned below).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodedUrl {
    /// Scheme picked by the https-share coin.
    pub scheme: Scheme,
    /// Style the URL was synthesized in (decides the template).
    pub style: UrlStyle,
    /// Index into the style's path table ([`UrlStyle::Plain`] /
    /// [`UrlStyle::Args`]) or into [`TRACKING_KEYWORDS`]
    /// ([`UrlStyle::ArgsAndKeywords`]).
    pub path_idx: u8,
    /// Index into the event-name table ([`UrlStyle::Args`] only).
    pub event_idx: u8,
    /// The stable per-(user, service) identity echoed in argument tokens.
    pub identity: u64,
    /// Cache-buster token bytes, present on ~30 % of argument-style URLs.
    pub cb: Option<[u8; 8]>,
}

impl EncodedUrl {
    /// Synthesizes the compact form. RNG draw order is the contract: https
    /// coin, then per-style path/keyword pick, then (Args) event pick,
    /// then cache-buster coin and, on a hit, eight token draws.
    pub fn synth<R: Rng + ?Sized>(
        rng: &mut R,
        style: UrlStyle,
        https_share: f64,
        identity: u64,
    ) -> EncodedUrl {
        let scheme = if rng.gen::<f64>() < https_share {
            Scheme::Https
        } else {
            Scheme::Http
        };
        let mut enc = EncodedUrl {
            scheme,
            style,
            path_idx: 0,
            event_idx: 0,
            identity,
            cb: None,
        };
        match style {
            UrlStyle::Plain => {
                enc.path_idx = rng.gen_range(0..PLAIN_PATHS.len()) as u8;
            }
            UrlStyle::Args => {
                enc.path_idx = rng.gen_range(0..ARG_PATHS.len()) as u8;
                enc.event_idx = rng.gen_range(0..EVENTS.len()) as u8;
                if rng.gen::<f64>() < 0.3 {
                    enc.cb = Some(token_bytes(rng));
                }
            }
            UrlStyle::ArgsAndKeywords => {
                enc.path_idx = rng.gen_range(0..TRACKING_KEYWORDS.len()) as u8;
                if rng.gen::<f64>() < 0.3 {
                    enc.cb = Some(token_bytes(rng));
                }
            }
        }
        enc
    }

    /// Appends the URL string for `host` to `buf` — byte-identical to
    /// `self.to_url(host).to_string()` without any intermediate
    /// allocation.
    pub fn write_into(&self, host: &str, buf: &mut String) {
        buf.push_str(self.scheme.as_str());
        buf.push_str("://");
        buf.push_str(host);
        match self.style {
            UrlStyle::Plain => {
                buf.push_str(PLAIN_PATHS[self.path_idx as usize]);
            }
            UrlStyle::Args => {
                buf.push_str(ARG_PATHS[self.path_idx as usize]);
                buf.push_str("?uid=");
                write_identity_token(self.identity, buf);
                buf.push_str("&ev=");
                buf.push_str(EVENTS[self.event_idx as usize]);
            }
            UrlStyle::ArgsAndKeywords => {
                buf.push('/');
                buf.push_str(TRACKING_KEYWORDS[self.path_idx as usize]);
                buf.push_str("?partner=");
                write_identity_token(self.identity.rotate_left(17), buf);
                buf.push_str("&rtb_id=");
                write_identity_token(self.identity, buf);
            }
        }
        if let Some(cb) = self.cb {
            buf.push_str("&cb=");
            for b in cb {
                buf.push(b as char);
            }
        }
    }

    /// Streams the exact byte sequence [`EncodedUrl::write_into`] would
    /// append — as a series of slices, in order — without materializing
    /// the string. This is the hook the classify engine's token prefilter
    /// uses to screen a deferred URL *before* deciding whether rendering
    /// it is worthwhile at all (DESIGN.md §5h); the byte-for-byte
    /// agreement with `write_into` is property-pinned below.
    pub fn visit_bytes(&self, host: &str, mut sink: impl FnMut(&[u8])) {
        sink(self.scheme.as_str().as_bytes());
        sink(b"://");
        sink(host.as_bytes());
        match self.style {
            UrlStyle::Plain => {
                sink(PLAIN_PATHS[self.path_idx as usize].as_bytes());
            }
            UrlStyle::Args => {
                sink(ARG_PATHS[self.path_idx as usize].as_bytes());
                sink(b"?uid=");
                sink(&identity_token_bytes(self.identity));
                sink(b"&ev=");
                sink(EVENTS[self.event_idx as usize].as_bytes());
            }
            UrlStyle::ArgsAndKeywords => {
                sink(b"/");
                sink(TRACKING_KEYWORDS[self.path_idx as usize].as_bytes());
                sink(b"?partner=");
                sink(&identity_token_bytes(self.identity.rotate_left(17)));
                sink(b"&rtb_id=");
                sink(&identity_token_bytes(self.identity));
            }
        }
        if let Some(cb) = self.cb {
            sink(b"&cb=");
            sink(&cb);
        }
    }

    /// Materializes the structured [`Url`] (the eager path).
    pub fn to_url(&self, host: &Domain) -> Url {
        let mut url = match self.style {
            UrlStyle::Plain => {
                Url::new(self.scheme, host.clone(), PLAIN_PATHS[self.path_idx as usize])
            }
            UrlStyle::Args => {
                Url::new(self.scheme, host.clone(), ARG_PATHS[self.path_idx as usize])
                    .with_arg("uid", identity_token(self.identity))
                    .with_arg("ev", EVENTS[self.event_idx as usize])
            }
            UrlStyle::ArgsAndKeywords => {
                let kw = TRACKING_KEYWORDS[self.path_idx as usize];
                Url::new(self.scheme, host.clone(), format!("/{kw}"))
                    .with_arg("partner", identity_token(self.identity.rotate_left(17)))
                    .with_arg("rtb_id", identity_token(self.identity))
            }
        };
        if let Some(cb) = self.cb {
            let cb = std::str::from_utf8(&cb).expect("token bytes are ASCII").to_owned();
            url = url.with_arg("cb", cb);
        }
        url
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn display_and_parse_roundtrip() {
        let u = Url::new(Scheme::Https, Domain::new("sync.gtrack.com"), "/usermatch")
            .with_arg("partner", "abc")
            .with_arg("rtb_id", "123");
        let s = u.to_string();
        assert_eq!(s, "https://sync.gtrack.com/usermatch?partner=abc&rtb_id=123");
        assert_eq!(Url::parse(&s).unwrap(), u);
    }

    #[test]
    fn parse_without_path_or_query() {
        let u = Url::parse("http://example.com").unwrap();
        assert_eq!(u.path, "/");
        assert!(!u.has_args());
        assert_eq!(u.scheme, Scheme::Http);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Url::parse("ftp://x.com").is_none());
        assert!(Url::parse("nonsense").is_none());
        assert!(Url::parse("https:///path").is_none());
    }

    #[test]
    fn keyword_detection() {
        let u = Url::new(Scheme::Https, Domain::new("x.com"), "/usermatch");
        assert!(u.has_tracking_keyword());
        let u = Url::new(Scheme::Https, Domain::new("x.com"), "/collect").with_arg("rtb_id", "1");
        assert!(u.has_tracking_keyword());
        let u = Url::new(Scheme::Https, Domain::new("x.com"), "/collect").with_arg("uid", "1");
        assert!(!u.has_tracking_keyword());
    }

    #[test]
    fn synth_styles_have_expected_signals() {
        let mut rng = StdRng::seed_from_u64(5);
        let host = Domain::new("t.example.com");
        for i in 0..100u64 {
            let plain = synth_url(&mut rng, &host, UrlStyle::Plain, 0.83, i);
            assert!(!plain.has_args());
            let args = synth_url(&mut rng, &host, UrlStyle::Args, 0.83, i);
            assert!(args.has_args() && !args.has_tracking_keyword());
            let kw = synth_url(&mut rng, &host, UrlStyle::ArgsAndKeywords, 0.83, i);
            assert!(kw.has_args() && kw.has_tracking_keyword());
        }
    }

    #[test]
    fn identity_tokens_are_stable_and_distinct() {
        assert_eq!(identity_token(42), identity_token(42));
        assert_ne!(identity_token(42), identity_token(43));
        assert_eq!(identity_token(7).len(), 13);
    }

    #[test]
    fn same_identity_produces_recurring_urls() {
        // The same user hitting the same tracker must often produce the
        // exact same URL string (no cache buster ~70 % of the time).
        let mut rng = StdRng::seed_from_u64(8);
        let host = Domain::new("t.example.com");
        let mut seen = std::collections::HashSet::new();
        let n = 200;
        for _ in 0..n {
            seen.insert(synth_url(&mut rng, &host, UrlStyle::Args, 1.0, 99).to_string());
        }
        assert!(seen.len() < n / 2, "{} unique of {n}", seen.len());
    }

    #[test]
    fn https_share_is_respected() {
        let mut rng = StdRng::seed_from_u64(6);
        let host = Domain::new("t.example.com");
        let n = 2000;
        let https = (0..n)
            .filter(|_| {
                synth_url(&mut rng, &host, UrlStyle::Args, 0.83, 5).scheme == Scheme::Https
            })
            .count();
        let share = https as f64 / n as f64;
        assert!((share - 0.83).abs() < 0.05, "share {share}");
    }

    #[test]
    fn port_mapping() {
        assert_eq!(Scheme::Http.port(), 80);
        assert_eq!(Scheme::Https.port(), 443);
    }

    #[test]
    fn parse_bare_key_query() {
        let u = Url::parse("https://x.com/p?flag&k=v").unwrap();
        assert_eq!(u.query.len(), 2);
        assert_eq!(u.query[0], ("flag".to_owned(), String::new()));
    }

    #[test]
    fn deferred_materialization_is_byte_identical_to_eager() {
        // The study hot path renders EncodedUrl + write_into; the eager
        // path materializes a Url and Displays it. Replay the same RNG
        // stream through both and require byte equality plus identical RNG
        // consumption.
        let host = Domain::new("sync.gtrack.com");
        let styles = [UrlStyle::Plain, UrlStyle::Args, UrlStyle::ArgsAndKeywords];
        let mut buf = String::new();
        for seed in 0..50u64 {
            for style in styles {
                for identity in [0u64, 42, u64::MAX, seed.wrapping_mul(0x9E3779B97F4A7C15)] {
                    let mut eager_rng = StdRng::seed_from_u64(seed);
                    let mut deferred_rng = eager_rng.clone();
                    let eager = synth_url(&mut eager_rng, &host, style, 0.83, identity);
                    let enc = EncodedUrl::synth(&mut deferred_rng, style, 0.83, identity);
                    buf.clear();
                    enc.write_into(host.as_str(), &mut buf);
                    assert_eq!(buf, eager.to_string(), "seed {seed} style {style:?}");
                    assert_eq!(enc.to_url(&host), eager);
                    // Same number of draws: the next value must agree.
                    assert_eq!(
                        eager_rng.gen::<u64>(),
                        deferred_rng.gen::<u64>(),
                        "RNG consumption diverged at seed {seed} style {style:?}"
                    );
                }
            }
        }
    }

    proptest! {
        // Satellite: parse ∘ to_string is the identity on simulator-shaped
        // URLs — multi-arg query ordering, empty values, and the empty
        // path all survive the roundtrip.
        #[test]
        fn display_parse_roundtrip_holds(
            https in any::<bool>(),
            label in "[a-z][a-z0-9-]{0,12}",
            tld in "[a-z]{2,6}",
            path in "[a-z0-9._/-]{0,20}",
            n_args in 0usize..5,
            arg_seed in any::<u64>(),
        ) {
            let scheme = if https { Scheme::Https } else { Scheme::Http };
            let mut u = Url::new(scheme, Domain::new(format!("{label}.{tld}")), path);
            let mut arng = StdRng::seed_from_u64(arg_seed);
            for i in 0..n_args {
                let key = format!("k{i}{}", token(&mut arng, 3));
                // Cover empty values and multi-char values alike.
                let len = arng.gen_range(0..6);
                u = u.with_arg(key, token(&mut arng, len));
            }
            let s = u.to_string();
            let back = Url::parse(&s).expect("simulator URLs must parse");
            prop_assert_eq!(&back, &u, "roundtrip of {}", s);
            // And printing again is a fixed point.
            prop_assert_eq!(back.to_string(), s);
        }

        // Satellite: the deferred writer agrees with the eager Display for
        // every reachable EncodedUrl, not just RNG-synthesized ones.
        #[test]
        fn write_into_matches_display_for_all_encodings(
            https in any::<bool>(),
            style_idx in 0usize..3,
            path_idx in 0u8..4,
            event_idx in 0u8..5,
            identity in any::<u64>(),
            has_cb in any::<bool>(),
            cb_seed in any::<u64>(),
        ) {
            let style = [UrlStyle::Plain, UrlStyle::Args, UrlStyle::ArgsAndKeywords][style_idx];
            // Plain URLs never carry a cache buster.
            let cb = if has_cb && style != UrlStyle::Plain {
                let mut rng = StdRng::seed_from_u64(cb_seed);
                Some(super::token_bytes(&mut rng))
            } else {
                None
            };
            let enc = EncodedUrl {
                scheme: if https { Scheme::Https } else { Scheme::Http },
                style,
                path_idx,
                event_idx,
                identity,
                cb,
            };
            let host = Domain::new("t.example.com");
            let mut buf = String::new();
            enc.write_into(host.as_str(), &mut buf);
            prop_assert_eq!(&buf, &enc.to_url(&host).to_string());

            // PR 8: the byte-stream visitor concatenates to the exact same
            // bytes as the string writer, for every reachable encoding.
            let mut streamed = Vec::new();
            enc.visit_bytes(host.as_str(), |chunk| streamed.extend_from_slice(chunk));
            prop_assert_eq!(streamed, buf.into_bytes());
        }
    }
}
