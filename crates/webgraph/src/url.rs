//! A small URL type and synthesis of realistic tracking URLs.
//!
//! The semi-automatic classifier (paper Sect. 3.2) keys on two URL
//! properties: whether the URL string *carries query arguments* (argument
//! passing is how trackers exchange identifiers) and whether it contains
//! *tracking keywords* such as "usermatch", "rtb" or "cookiesync". We model
//! URLs structurally so the classifier can inspect exactly those properties
//! instead of regex-ing opaque strings.

use crate::domain::Domain;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Keywords that mark a URL as tracking-related (paper's empirical list).
pub const TRACKING_KEYWORDS: &[&str] = &[
    "usermatch", "rtb", "cookiesync", "bidder", "pixel", "adsync", "idsync", "retarget",
    "audience", "beacon",
];

/// URL scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// Plain HTTP (port 80).
    Http,
    /// HTTPS (port 443). ~83 % of observed tracking traffic in the paper.
    Https,
}

impl Scheme {
    /// Default TCP port of the scheme.
    pub fn port(&self) -> u16 {
        match self {
            Scheme::Http => 80,
            Scheme::Https => 443,
        }
    }

    /// Scheme string without "://".
    pub fn as_str(&self) -> &'static str {
        match self {
            Scheme::Http => "http",
            Scheme::Https => "https",
        }
    }
}

/// A parsed URL: scheme, host, path, and query arguments.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Url {
    /// Scheme.
    pub scheme: Scheme,
    /// Host domain.
    pub host: Domain,
    /// Path starting with `/`.
    pub path: String,
    /// Query arguments in order of appearance.
    pub query: Vec<(String, String)>,
}

impl Url {
    /// Builds a URL, normalizing the path to start with `/`.
    pub fn new(scheme: Scheme, host: Domain, path: impl Into<String>) -> Self {
        let mut path = path.into();
        if !path.starts_with('/') {
            path.insert(0, '/');
        }
        Url {
            scheme,
            host,
            path,
            query: Vec::new(),
        }
    }

    /// Appends one query argument.
    pub fn with_arg(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.query.push((key.into(), value.into()));
        self
    }

    /// True if the URL carries any query arguments — the first signal of
    /// the semi-automatic classifier.
    pub fn has_args(&self) -> bool {
        !self.query.is_empty()
    }

    /// True if path or any query key/value contains one of
    /// [`TRACKING_KEYWORDS`] — the second signal of the semi-automatic
    /// classifier.
    pub fn has_tracking_keyword(&self) -> bool {
        let lc_path = self.path.to_ascii_lowercase();
        if TRACKING_KEYWORDS.iter().any(|k| lc_path.contains(k)) {
            return true;
        }
        self.query.iter().any(|(k, v)| {
            let k = k.to_ascii_lowercase();
            let v = v.to_ascii_lowercase();
            TRACKING_KEYWORDS.iter().any(|kw| k.contains(kw) || v.contains(kw))
        })
    }

    /// Parses a URL string produced by [`Url::to_string`]. Not a general
    /// RFC 3986 parser — just enough for round-tripping simulator URLs and
    /// for tests feeding hand-written inputs.
    pub fn parse(s: &str) -> Option<Url> {
        let (scheme, rest) = if let Some(r) = s.strip_prefix("https://") {
            (Scheme::Https, r)
        } else if let Some(r) = s.strip_prefix("http://") {
            (Scheme::Http, r)
        } else {
            return None;
        };
        let (host_part, path_query) = match rest.find('/') {
            Some(i) => (&rest[..i], &rest[i..]),
            None => (rest, "/"),
        };
        if host_part.is_empty() {
            return None;
        }
        let (path, query_str) = match path_query.find('?') {
            Some(i) => (&path_query[..i], &path_query[i + 1..]),
            None => (path_query, ""),
        };
        let mut query = Vec::new();
        if !query_str.is_empty() {
            for pair in query_str.split('&') {
                match pair.split_once('=') {
                    Some((k, v)) => query.push((k.to_owned(), v.to_owned())),
                    None => query.push((pair.to_owned(), String::new())),
                }
            }
        }
        Some(Url {
            scheme,
            host: Domain::new(host_part),
            path: path.to_owned(),
            query,
        })
    }
}

impl std::fmt::Display for Url {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}://{}{}", self.scheme.as_str(), self.host, self.path)?;
        for (i, (k, v)) in self.query.iter().enumerate() {
            write!(f, "{}{k}={v}", if i == 0 { '?' } else { '&' })?;
        }
        Ok(())
    }
}

/// How a service's request URLs look; drives what the classifier can see.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UrlStyle {
    /// Plain content fetch: no arguments (`/js/widget.js`).
    Plain,
    /// Carries identifier arguments but no telltale keywords
    /// (`/collect?uid=..&ev=..`).
    Args,
    /// Carries arguments *and* tracking keywords
    /// (`/usermatch?rtb_id=..`).
    ArgsAndKeywords,
}

/// Deterministic ID-ish token from an RNG, used as argument values.
pub fn token<R: Rng + ?Sized>(rng: &mut R, len: usize) -> String {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";
    (0..len)
        .map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())] as char)
        .collect()
}

/// Renders a 64-bit identity as a stable token (the per-user cookie id a
/// tracker would echo in its URLs).
pub fn identity_token(identity: u64) -> String {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";
    // Splitmix-style scramble so adjacent identities produce unrelated
    // tokens (and identity 0 still yields a non-trivial one).
    let mut x = identity
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(0x85EB_CA6B);
    x ^= x >> 31;
    let mut s = String::with_capacity(13);
    for _ in 0..13 {
        s.push(ALPHABET[(x % 36) as usize] as char);
        x /= 36;
    }
    s
}

/// Event names trackers tag beacons with.
const EVENTS: &[&str] = &["view", "click", "load", "imp", "scroll"];

/// Synthesizes a request URL for a host in the given style.
///
/// `identity` is the stable per-(user, service) identifier: the same user
/// revisiting the same tracker produces *recurring* URL strings, which is
/// why the paper's unique-URL counts (Table 2) sit far below its total
/// request counts. Cache busters (`cb`) are added to a fraction of
/// requests only.
pub fn synth_url<R: Rng + ?Sized>(
    rng: &mut R,
    host: &Domain,
    style: UrlStyle,
    https_share: f64,
    identity: u64,
) -> Url {
    let scheme = if rng.gen::<f64>() < https_share {
        Scheme::Https
    } else {
        Scheme::Http
    };
    match style {
        UrlStyle::Plain => {
            let paths = ["/js/widget.js", "/static/embed.css", "/img/logo.png", "/v2/chat.js"];
            Url::new(scheme, host.clone(), paths[rng.gen_range(0..paths.len())])
        }
        UrlStyle::Args => {
            let paths = ["/collect", "/event", "/t", "/imp", "/log"];
            let mut url = Url::new(scheme, host.clone(), paths[rng.gen_range(0..paths.len())])
                .with_arg("uid", identity_token(identity))
                .with_arg("ev", EVENTS[rng.gen_range(0..EVENTS.len())]);
            if rng.gen::<f64>() < 0.3 {
                url = url.with_arg("cb", token(rng, 8));
            }
            url
        }
        UrlStyle::ArgsAndKeywords => {
            let kw = TRACKING_KEYWORDS[rng.gen_range(0..TRACKING_KEYWORDS.len())];
            let mut url = Url::new(scheme, host.clone(), format!("/{kw}"))
                .with_arg("partner", identity_token(identity.rotate_left(17)))
                .with_arg("rtb_id", identity_token(identity));
            if rng.gen::<f64>() < 0.3 {
                url = url.with_arg("cb", token(rng, 8));
            }
            url
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn display_and_parse_roundtrip() {
        let u = Url::new(Scheme::Https, Domain::new("sync.gtrack.com"), "/usermatch")
            .with_arg("partner", "abc")
            .with_arg("rtb_id", "123");
        let s = u.to_string();
        assert_eq!(s, "https://sync.gtrack.com/usermatch?partner=abc&rtb_id=123");
        assert_eq!(Url::parse(&s).unwrap(), u);
    }

    #[test]
    fn parse_without_path_or_query() {
        let u = Url::parse("http://example.com").unwrap();
        assert_eq!(u.path, "/");
        assert!(!u.has_args());
        assert_eq!(u.scheme, Scheme::Http);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Url::parse("ftp://x.com").is_none());
        assert!(Url::parse("nonsense").is_none());
        assert!(Url::parse("https:///path").is_none());
    }

    #[test]
    fn keyword_detection() {
        let u = Url::new(Scheme::Https, Domain::new("x.com"), "/usermatch");
        assert!(u.has_tracking_keyword());
        let u = Url::new(Scheme::Https, Domain::new("x.com"), "/collect").with_arg("rtb_id", "1");
        assert!(u.has_tracking_keyword());
        let u = Url::new(Scheme::Https, Domain::new("x.com"), "/collect").with_arg("uid", "1");
        assert!(!u.has_tracking_keyword());
    }

    #[test]
    fn synth_styles_have_expected_signals() {
        let mut rng = StdRng::seed_from_u64(5);
        let host = Domain::new("t.example.com");
        for i in 0..100u64 {
            let plain = synth_url(&mut rng, &host, UrlStyle::Plain, 0.83, i);
            assert!(!plain.has_args());
            let args = synth_url(&mut rng, &host, UrlStyle::Args, 0.83, i);
            assert!(args.has_args() && !args.has_tracking_keyword());
            let kw = synth_url(&mut rng, &host, UrlStyle::ArgsAndKeywords, 0.83, i);
            assert!(kw.has_args() && kw.has_tracking_keyword());
        }
    }

    #[test]
    fn identity_tokens_are_stable_and_distinct() {
        assert_eq!(identity_token(42), identity_token(42));
        assert_ne!(identity_token(42), identity_token(43));
        assert_eq!(identity_token(7).len(), 13);
    }

    #[test]
    fn same_identity_produces_recurring_urls() {
        // The same user hitting the same tracker must often produce the
        // exact same URL string (no cache buster ~70 % of the time).
        let mut rng = StdRng::seed_from_u64(8);
        let host = Domain::new("t.example.com");
        let mut seen = std::collections::HashSet::new();
        let n = 200;
        for _ in 0..n {
            seen.insert(synth_url(&mut rng, &host, UrlStyle::Args, 1.0, 99).to_string());
        }
        assert!(seen.len() < n / 2, "{} unique of {n}", seen.len());
    }

    #[test]
    fn https_share_is_respected() {
        let mut rng = StdRng::seed_from_u64(6);
        let host = Domain::new("t.example.com");
        let n = 2000;
        let https = (0..n)
            .filter(|_| {
                synth_url(&mut rng, &host, UrlStyle::Args, 0.83, 5).scheme == Scheme::Https
            })
            .count();
        let share = https as f64 / n as f64;
        assert!((share - 0.83).abs() < 0.05, "share {share}");
    }

    #[test]
    fn port_mapping() {
        assert_eq!(Scheme::Http.port(), 80);
        assert_eq!(Scheme::Https.port(), 443);
    }

    #[test]
    fn parse_bare_key_query() {
        let u = Url::parse("https://x.com/p?flag&k=v").unwrap();
        assert_eq!(u.query.len(), 2);
        assert_eq!(u.query[0], ("flag".to_owned(), String::new()));
    }
}
