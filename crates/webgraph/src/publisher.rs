//! Publisher sites: the first parties users actually visit.

use crate::category::SiteCategory;
use crate::domain::Domain;
use crate::service::ServiceId;
use serde::{Deserialize, Serialize};

/// Index of a publisher within a [`crate::WebGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PublisherId(pub u32);

/// How a third-party service is embedded in a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EmbedMode {
    /// Script in the first-party context: its requests carry the
    /// first-party URL as referrer (paper Sect. 3.2 notes exactly this for
    /// ad-slot initialization requests).
    FirstPartyContext,
    /// Iframe / third-party context: downstream requests carry the
    /// embedding third party's URL as referrer.
    ThirdPartyContext,
    /// Fires only after user interaction makes the slot visible (scroll),
    /// one of the reasons crawlers under-count vs. real users.
    OnInteraction,
}

/// One service embedded in a publisher's pages.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Embed {
    /// The embedded service.
    pub service: ServiceId,
    /// Execution context.
    pub mode: EmbedMode,
    /// Probability the embed fires on a given page view (not every page of
    /// a site carries every tag).
    pub probability: f64,
}

/// Who a publisher site is for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Audience {
    /// International audience; visited by users from anywhere.
    Global,
    /// National site; visited predominantly by users from one country.
    /// National sites are where country-local ad networks get embedded,
    /// which (together with tracker PoP placement) drives the paper's
    /// national-confinement differences.
    National(xborder_geo::CountryCode),
}

/// A publisher site.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Publisher {
    /// Identifier within the web graph.
    pub id: PublisherId,
    /// The site's domain.
    pub domain: Domain,
    /// Content category (ground truth for the sensitive-flows analysis).
    pub category: SiteCategory,
    /// Target audience.
    pub audience: Audience,
    /// Popularity weight; visit sampling is proportional to it (Zipf over
    /// rank in the generator).
    pub popularity: f64,
    /// Embedded third-party services.
    pub embeds: Vec<Embed>,
}

impl Publisher {
    /// Expected number of *directly embedded* third-party requests per page
    /// view (cascades not included).
    pub fn expected_direct_requests(&self) -> f64 {
        self.embeds.iter().map(|e| e.probability).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_direct_requests_sums_probabilities() {
        let p = Publisher {
            id: PublisherId(0),
            domain: Domain::new("news.example.com"),
            category: SiteCategory::News,
            audience: Audience::Global,
            popularity: 1.0,
            embeds: vec![
                Embed {
                    service: ServiceId(0),
                    mode: EmbedMode::FirstPartyContext,
                    probability: 0.9,
                },
                Embed {
                    service: ServiceId(1),
                    mode: EmbedMode::OnInteraction,
                    probability: 0.3,
                },
            ],
        };
        assert!((p.expected_direct_requests() - 1.2).abs() < 1e-9);
    }
}
