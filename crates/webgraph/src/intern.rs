//! Domain interning (DESIGN.md §5f).
//!
//! All hosts that can appear in a request log are known when the world is
//! generated: publisher domains and third-party service hosts are minted by
//! worldgen, and nothing else ever resolves. That closed world makes a
//! read-only interner possible — [`WebGraph::reindex`](crate::WebGraph)
//! builds a [`DomainTable`] mapping `Domain ↔ DomainId(u32)` once, and the
//! study hot path then moves 4-byte `Copy` ids instead of cloning
//! heap-allocated `Domain(String)`s per request.
//!
//! The module also hosts the shared FxHash-style hasher the classifier
//! introduced in PR 2 (moved here so every crate uses one implementation).
//! Hash values are an *internal lookup detail only*: they must never feed
//! an RNG stream or decide an output ordering. Every surviving map keyed by
//! this hasher documents at its use site why iteration order (the only
//! hash-dependent observable) cannot reach an output.

use crate::domain::Domain;
use serde::{Deserialize, Serialize, Value, ValueError};
use std::collections::HashMap;
use std::hash::Hasher;

/// Cheap multiplicative string hasher (FxHash-style). The workload's hosts
/// and URLs are short ASCII strings; the default SipHash's per-call
/// overhead dominates lookup cost at this scale. Not DoS-resistant — use
/// only on synthetic, non-adversarial keys, and never let the hash value
/// leak into an RNG stream or an output ordering.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.hash
    }

    fn write(&mut self, bytes: &[u8]) {
        const SEED: u64 = 0x517c_c1b7_2722_0a95;
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let w = u64::from_le_bytes(c.try_into().expect("exact 8-byte chunk"));
            self.hash = (self.hash.rotate_left(5) ^ w).wrapping_mul(SEED);
        }
        let mut tail = 0u64;
        for &b in chunks.remainder() {
            tail = (tail << 8) | b as u64;
        }
        self.hash = (self.hash.rotate_left(5) ^ tail).wrapping_mul(SEED);
    }
}

/// A `HashMap` using [`FxHasher`]. Iteration order depends on hash values —
/// callers must not let that order reach any output (see module docs).
pub type FxMap<K, V> = HashMap<K, V, std::hash::BuildHasherDefault<FxHasher>>;

/// FxHash of a byte string, usable without the `Hasher` plumbing.
pub fn fx_hash(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.hash
}

/// Dense id of an interned [`Domain`] in a [`DomainTable`].
///
/// Ids are assigned in interning order, so for a table built by
/// [`WebGraph::reindex`](crate::WebGraph) they are a deterministic function
/// of the world alone — stable across runs, thread budgets, and serde
/// roundtrips.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct DomainId(pub u32);

/// Interner mapping `Domain ↔ DomainId`.
///
/// Built once at worldgen time and treated as read-only on the study hot
/// path. The reverse index is an [`FxMap`], but it is lookup-only: ids come
/// from the deterministic interning sequence, never from hash or iteration
/// order, so the hasher cannot influence any output.
#[derive(Debug, Clone, Default)]
pub struct DomainTable {
    domains: Vec<Domain>,
    index: FxMap<Domain, u32>,
}

impl DomainTable {
    /// Creates an empty table.
    pub fn new() -> DomainTable {
        DomainTable::default()
    }

    /// Interns `domain`, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, domain: &Domain) -> DomainId {
        if let Some(&id) = self.index.get(domain) {
            return DomainId(id);
        }
        let id = u32::try_from(self.domains.len()).expect("more than u32::MAX domains");
        self.domains.push(domain.clone());
        self.index.insert(domain.clone(), id);
        DomainId(id)
    }

    /// Looks up an already-interned domain.
    pub fn get(&self, domain: &Domain) -> Option<DomainId> {
        self.index.get(domain).map(|&id| DomainId(id))
    }

    /// The domain behind `id`. Panics on an id from another table.
    pub fn domain(&self, id: DomainId) -> &Domain {
        &self.domains[id.0 as usize]
    }

    /// Number of interned domains.
    pub fn len(&self) -> usize {
        self.domains.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }

    /// Iterates `(id, domain)` pairs in id order (deterministic — backed by
    /// the intern-order `Vec`, not the hash index).
    pub fn iter(&self) -> impl Iterator<Item = (DomainId, &Domain)> {
        self.domains
            .iter()
            .enumerate()
            .map(|(i, d)| (DomainId(i as u32), d))
    }
}

// Manual serde impls: only the intern-order `Vec` is data — the hash index
// is derived state, rebuilt on deserialize. Ids are positions in that Vec,
// so they survive the roundtrip bit-identically.
impl Serialize for DomainTable {
    fn to_value(&self) -> Value {
        Value::Object(vec![("domains".to_owned(), self.domains.to_value())])
    }
}

impl<'de> Deserialize<'de> for DomainTable {
    fn from_value(v: &Value) -> Result<Self, ValueError> {
        match v {
            Value::Object(fields) => {
                let domains: Vec<Domain> = serde::from_field(fields, "domains")?;
                let mut table = DomainTable::default();
                for d in &domains {
                    table.intern(d);
                }
                Ok(table)
            }
            _ => Err(ValueError::msg("expected DomainTable object")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(hosts: &[&str]) -> DomainTable {
        let mut t = DomainTable::new();
        for h in hosts {
            t.intern(&Domain::new(h));
        }
        t
    }

    #[test]
    fn intern_is_idempotent_and_ids_are_dense() {
        let mut t = table(&["a.com", "b.org", "c.net"]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.intern(&Domain::new("b.org")), DomainId(1));
        assert_eq!(t.len(), 3, "re-interning must not mint a new id");
        assert_eq!(t.get(&Domain::new("c.net")), Some(DomainId(2)));
        assert_eq!(t.domain(DomainId(0)).as_str(), "a.com");
    }

    #[test]
    fn ids_are_stable_across_serde_roundtrip() {
        let t = table(&["pub.example.org", "t.gtrack.com", "cdn.assets.net"]);
        let v = serde::Serialize::to_value(&t);
        let back: DomainTable = serde::Deserialize::from_value(&v).expect("roundtrip");
        assert_eq!(back.len(), t.len());
        for (id, d) in t.iter() {
            assert_eq!(back.get(d), Some(id), "id of {d} drifted across serde");
            assert_eq!(back.domain(id), d);
        }
    }

    #[test]
    fn unknown_host_falls_back_to_lookup_miss() {
        // Fault plans can mint hosts that were never part of the worldgen
        // set; lookups must miss cleanly (callers then take the slow
        // string path) rather than panic or alias an existing id.
        let t = table(&["known.example.com"]);
        assert_eq!(t.get(&Domain::new("minted.by-faults.example")), None);
        assert_eq!(t.get(&Domain::new("known.example.com")), Some(DomainId(0)));
    }

    #[test]
    fn intern_order_matches_first_occurrence_dedup() {
        // Same contract as the classifier's PR 2 intern pass: the n-th
        // distinct domain (in presentation order) gets id n.
        let stream = ["x.com", "y.com", "x.com", "z.com", "y.com", "x.com"];
        let mut t = DomainTable::new();
        let ids: Vec<DomainId> = stream.iter().map(|h| t.intern(&Domain::new(h))).collect();
        assert_eq!(
            ids,
            [0, 1, 0, 2, 1, 0].map(DomainId).to_vec(),
            "ids must follow first-occurrence order"
        );
        // And mirror a by-hand first-occurrence dedup of the same stream.
        let mut seen: Vec<&str> = Vec::new();
        for h in stream {
            if !seen.contains(&h) {
                seen.push(h);
            }
        }
        for (i, h) in seen.iter().enumerate() {
            assert_eq!(t.get(&Domain::new(h)), Some(DomainId(i as u32)));
        }
    }

    #[test]
    fn iter_is_in_id_order() {
        let t = table(&["a.com", "b.org"]);
        let got: Vec<(u32, String)> =
            t.iter().map(|(id, d)| (id.0, d.as_str().to_owned())).collect();
        assert_eq!(got, vec![(0, "a.com".to_owned()), (1, "b.org".to_owned())]);
    }

    #[test]
    fn fx_hash_matches_hasher_plumbing() {
        use std::hash::BuildHasher;
        let build = std::hash::BuildHasherDefault::<FxHasher>::default();
        for s in ["", "a", "collect", "t.gtrack.com", "a-longer-string-over-8-bytes"] {
            let mut h = build.build_hasher();
            // `str::hash` writes a length prefix too, so hash the Domain's
            // raw bytes the way `fx_hash` consumers do.
            h.write(s.as_bytes());
            assert_eq!(h.finish(), fx_hash(s.as_bytes()));
        }
        // Sanity: FxMap actually distinguishes keys.
        let mut m: FxMap<String, u32> = FxMap::default();
        m.insert("a".to_owned(), 1);
        m.insert("b".to_owned(), 2);
        assert_eq!(m.get("a"), Some(&1));
        assert_eq!(m.get("b"), Some(&2));
    }
}
