//! RTB cascade templates.
//!
//! Rendering an ad slot is not one request: the ad-network snippet calls an
//! exchange, the exchange solicits bidders, winners fire impression pixels
//! and cookie-sync redirects (paper Fig. 1). Blocklists cut the cascade at
//! the first request; the paper's extension *lets it run*, which is exactly
//! why it sees ~2x the tracking flows of a naive blocklist study. The
//! cascade template is the static description of that fan-out for one ad
//! network.

use crate::service::ServiceId;
use serde::{Deserialize, Serialize};

/// One potential downstream request in a cascade.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CascadeStep {
    /// The service receiving the request.
    pub service: ServiceId,
    /// Probability the step fires on a given render (bids are stochastic).
    pub probability: f64,
    /// Cascade depth: 1 = called by the ad network, 2 = called by a depth-1
    /// service, etc. The referrer of a step is a URL of its parent.
    pub depth: u8,
    /// Index into the steps vector of the parent step; `None` for depth-1
    /// steps whose parent is the ad network itself.
    pub parent: Option<u32>,
}

/// The full cascade fan-out of one ad network.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CascadeTemplate {
    /// Potential steps, topologically ordered (parents before children).
    pub steps: Vec<CascadeStep>,
}

impl CascadeTemplate {
    /// Adds a step and returns its index for use as a later parent.
    pub fn push(&mut self, step: CascadeStep) -> u32 {
        if let Some(p) = step.parent {
            assert!(
                (p as usize) < self.steps.len(),
                "cascade parent {p} out of range"
            );
            let parent_depth = self.steps[p as usize].depth;
            assert_eq!(step.depth, parent_depth + 1, "cascade depth mismatch");
        } else {
            assert_eq!(step.depth, 1, "root steps must have depth 1");
        }
        let idx = self.steps.len() as u32;
        self.steps.push(step);
        idx
    }

    /// Expected number of requests per render (sum of unconditional firing
    /// probabilities, accounting for parent gating).
    pub fn expected_requests(&self) -> f64 {
        let mut uncond = vec![0.0f64; self.steps.len()];
        let mut total = 0.0;
        for (i, s) in self.steps.iter().enumerate() {
            let parent_p = match s.parent {
                Some(p) => uncond[p as usize],
                None => 1.0,
            };
            uncond[i] = parent_p * s.probability;
            total += uncond[i];
        }
        total
    }

    /// Maximum depth in the template (0 for an empty cascade).
    pub fn max_depth(&self) -> u8 {
        self.steps.iter().map(|s| s.depth).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(service: u32, p: f64, depth: u8, parent: Option<u32>) -> CascadeStep {
        CascadeStep {
            service: ServiceId(service),
            probability: p,
            depth,
            parent,
        }
    }

    #[test]
    fn build_two_level_cascade() {
        let mut t = CascadeTemplate::default();
        let exch = t.push(step(1, 1.0, 1, None));
        t.push(step(2, 0.5, 2, Some(exch)));
        t.push(step(3, 0.5, 2, Some(exch)));
        assert_eq!(t.max_depth(), 2);
        assert!((t.expected_requests() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn expected_requests_gates_on_parent() {
        let mut t = CascadeTemplate::default();
        let a = t.push(step(1, 0.5, 1, None));
        t.push(step(2, 0.5, 2, Some(a)));
        // 0.5 + 0.5*0.5 = 0.75
        assert!((t.expected_requests() - 0.75).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "depth mismatch")]
    fn push_rejects_wrong_depth() {
        let mut t = CascadeTemplate::default();
        let a = t.push(step(1, 1.0, 1, None));
        t.push(step(2, 1.0, 3, Some(a)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_rejects_forward_parent() {
        let mut t = CascadeTemplate::default();
        t.push(step(1, 1.0, 2, Some(5)));
    }

    #[test]
    fn empty_cascade() {
        let t = CascadeTemplate::default();
        assert_eq!(t.max_depth(), 0);
        assert_eq!(t.expected_requests(), 0.0);
    }
}
