//! Domain names and pay-level-domain extraction.
//!
//! The paper aggregates trackers at two granularities: the fully qualified
//! domain name ("FQDN", e.g. `sync.ads.gtrack.com`) and what it calls the
//! "TLD" — really the pay-level domain / eTLD+1 (`gtrack.com`). We keep the
//! paper's terminology in method names ([`Domain::tld`]) while documenting
//! the distinction.

use serde::{Deserialize, Serialize};

/// Public suffixes the synthetic world uses. A tiny, fixed subset of the
/// real public-suffix list is enough because the generator only mints
/// domains under these suffixes.
pub const PUBLIC_SUFFIXES: &[&str] = &[
    "co.uk", "com.br", "com.au", // two-label suffixes first (matched longest-first)
    "com", "net", "org", "io", "de", "fr", "es", "it", "nl", "pl", "gr", "ro", "cy", "dk", "hu",
    "se", "pt", "cz", "bg", "uk", "ie", "at", "be", "fi", "lt", "lv", "ee", "sk", "si", "hr",
    "lu", "mt", "ru", "ch", "us", "jp", "cn", "in", "br", "tv", "info", "biz", "eu",
];

/// A lowercase domain name (FQDN without trailing dot).
///
/// Construction normalizes to lowercase; comparison and hashing are on the
/// normalized form, so `Domain` can key maps directly.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Domain(String);

impl Domain {
    /// Builds a domain, normalizing case and stripping a trailing dot.
    pub fn new(name: impl AsRef<str>) -> Self {
        let mut s = name.as_ref().trim().to_ascii_lowercase();
        if s.ends_with('.') {
            s.pop();
        }
        Domain(s)
    }

    /// The full name.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Labels from leftmost to rightmost.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.0.split('.')
    }

    /// The pay-level domain (eTLD+1), which the paper calls the "TLD".
    ///
    /// `sync.ads.gtrack.com` → `gtrack.com`; `shop.example.co.uk` →
    /// `example.co.uk`. A name that *is* a public suffix (or has no dot)
    /// returns itself.
    pub fn tld(&self) -> Domain {
        let name = &self.0;
        // Longest matching public suffix wins.
        let mut best: Option<&str> = None;
        for suffix in PUBLIC_SUFFIXES {
            let matches = name == suffix
                || (name.len() > suffix.len()
                    && name.ends_with(suffix)
                    && name.as_bytes()[name.len() - suffix.len() - 1] == b'.');
            if matches && best.is_none_or(|b| suffix.len() > b.len()) {
                best = Some(suffix);
            }
        }
        let Some(suffix) = best else {
            // Unknown suffix: fall back to the last two labels.
            let labels: Vec<&str> = name.split('.').collect();
            if labels.len() <= 2 {
                return self.clone();
            }
            return Domain(labels[labels.len() - 2..].join("."));
        };
        if name == suffix {
            return self.clone();
        }
        let head = &name[..name.len() - suffix.len() - 1];
        match head.rsplit('.').next() {
            Some(label) => Domain(format!("{label}.{suffix}")),
            None => self.clone(),
        }
    }

    /// True if `self` equals `other` or is a subdomain of it.
    pub fn is_subdomain_of(&self, other: &Domain) -> bool {
        self == other
            || (self.0.len() > other.0.len()
                && self.0.ends_with(other.0.as_str())
                && self.0.as_bytes()[self.0.len() - other.0.len() - 1] == b'.')
    }
}

impl std::fmt::Display for Domain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::fmt::Debug for Domain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Domain {
    fn from(s: &str) -> Self {
        Domain::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn normalizes_case_and_trailing_dot() {
        assert_eq!(Domain::new("Ads.GTrack.COM."), Domain::new("ads.gtrack.com"));
    }

    #[test]
    fn tld_simple() {
        assert_eq!(Domain::new("sync.ads.gtrack.com").tld(), Domain::new("gtrack.com"));
        assert_eq!(Domain::new("gtrack.com").tld(), Domain::new("gtrack.com"));
    }

    #[test]
    fn tld_two_label_suffix() {
        assert_eq!(Domain::new("shop.example.co.uk").tld(), Domain::new("example.co.uk"));
        assert_eq!(Domain::new("example.co.uk").tld(), Domain::new("example.co.uk"));
    }

    #[test]
    fn tld_of_bare_suffix_is_itself() {
        assert_eq!(Domain::new("com").tld(), Domain::new("com"));
        assert_eq!(Domain::new("co.uk").tld(), Domain::new("co.uk"));
    }

    #[test]
    fn tld_unknown_suffix_falls_back() {
        assert_eq!(Domain::new("a.b.example.xyz").tld(), Domain::new("example.xyz"));
    }

    #[test]
    fn subdomain_relation() {
        let parent = Domain::new("gtrack.com");
        assert!(Domain::new("ads.gtrack.com").is_subdomain_of(&parent));
        assert!(parent.is_subdomain_of(&parent));
        assert!(!Domain::new("notgtrack.com").is_subdomain_of(&parent));
        assert!(!Domain::new("gtrack.com.evil.net").is_subdomain_of(&parent));
    }

    proptest! {
        #[test]
        fn tld_is_idempotent(label_a in "[a-z]{1,8}", label_b in "[a-z]{1,8}",
                             suffix_idx in 0usize..PUBLIC_SUFFIXES.len()) {
            let d = Domain::new(format!("{label_a}.{label_b}.{}", PUBLIC_SUFFIXES[suffix_idx]));
            let t = d.tld();
            prop_assert_eq!(t.tld(), t.clone());
            prop_assert!(d.is_subdomain_of(&t));
        }

        #[test]
        fn tld_is_suffix(label in "[a-z]{1,10}", suffix_idx in 0usize..PUBLIC_SUFFIXES.len()) {
            let d = Domain::new(format!("{label}.{}", PUBLIC_SUFFIXES[suffix_idx]));
            prop_assert!(d.as_str().ends_with(d.tld().as_str().split('.').next_back().unwrap()));
        }
    }
}
