//! Fixed-size disk-backed segments with a bounded resident window.
//!
//! The million-user refactor (DESIGN.md §5j) shards the study's world
//! state — the request log above all — into fixed-size *segments* so a
//! world can exceed memory: only a small FIFO window of segments stays
//! resident, the rest spill to disk and reload on demand. The design
//! follows Cuely's webgraph (the graph is split into disk-backed segments
//! so the structure can exceed memory), adapted to this repo's
//! determinism contract: the store is driven from the sequential driver
//! loop, so every spill/reload decision — and therefore every statistic
//! it records — is a pure function of (segment sizes, window size), never
//! of the thread budget or wall clock.
//!
//! The store is generic over the payload: anything that can encode itself
//! to bytes and report its resident footprint can be segmented. The
//! columnar study-log block lives in `xborder-browser` (`colog`); this
//! module only knows about opaque payloads and spill files.
//!
//! Spill files are *scratch*, not checkpoints: durability belongs to
//! `xborder-checkpoint`. A spill file is written once, read back at most
//! a handful of times, and deleted when its segment is consumed or the
//! store drops. Corruption is still a typed error (never UB, never a
//! wrong answer): each file carries a magic, a version, a length and an
//! FNV-1a checksum over the payload.

use std::collections::VecDeque;
use std::fmt;
use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Spill-file magic ("xborder segment").
const MAGIC: [u8; 4] = *b"XBSG";
/// Spill-file format version.
const VERSION: u32 = 1;

/// A payload the [`SegmentStore`] can spill and reload.
pub trait SegmentPayload: Sized {
    /// Serializes the payload (the exact bytes [`SegmentPayload::decode`]
    /// reverses).
    fn encode(&self) -> Vec<u8>;
    /// Reverses [`SegmentPayload::encode`]. Returns a human-readable
    /// detail on malformed input (the store wraps it into
    /// [`SegmentError::Corrupt`]).
    fn decode(bytes: &[u8]) -> Result<Self, String>;
    /// Logical resident footprint in bytes, used for the window's
    /// accounting. Must be deterministic (a function of the payload's
    /// contents, not of allocator behavior or thread budget).
    fn resident_bytes(&self) -> usize;
}

/// How a [`SegmentStore`] bounds residency.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SegmentStoreConfig {
    /// Maximum segments resident at once; `0` = unbounded (nothing ever
    /// spills). With a window but no `spill_dir`, the store cannot evict
    /// and also keeps everything resident.
    pub resident_window: usize,
    /// Directory for spill files (created on first spill).
    pub spill_dir: Option<PathBuf>,
}

impl SegmentStoreConfig {
    /// Everything stays resident (the pre-segmentation behavior).
    pub fn unbounded() -> SegmentStoreConfig {
        SegmentStoreConfig::default()
    }

    /// At most `window` segments resident; older segments spill to `dir`.
    pub fn bounded(window: usize, dir: impl Into<PathBuf>) -> SegmentStoreConfig {
        SegmentStoreConfig {
            resident_window: window,
            spill_dir: Some(dir.into()),
        }
    }
}

/// Spill/reload statistics. All values are deterministic under the
/// determinism contract (the store is driven sequentially), but they
/// depend on the segment-size and window knobs — they are observational,
/// reported through `StageTimings`, and excluded from report equality
/// exactly like wall-clock timings.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SegmentStats {
    /// Segments written to spill files.
    pub segments_spilled: u64,
    /// Segments read back from spill files.
    pub segments_reloaded: u64,
    /// Bytes written to spill files (encoded size).
    pub spill_bytes_written: u64,
    /// Current logical resident bytes across resident segments.
    pub resident_bytes: u64,
    /// High-water mark of `resident_bytes`.
    pub peak_resident_bytes: u64,
}

/// Why a segment operation failed.
#[derive(Debug)]
pub enum SegmentError {
    /// A spill-file IO operation failed.
    Io {
        /// File being written or read.
        path: PathBuf,
        /// Operation ("write", "read", "create-dir").
        op: &'static str,
        /// Underlying error.
        source: std::io::Error,
    },
    /// A spill file exists but its frame or payload is malformed.
    Corrupt {
        /// Offending file.
        path: PathBuf,
        /// What was wrong.
        detail: String,
    },
    /// The segment index is out of range or already consumed.
    Missing {
        /// Requested segment.
        index: usize,
    },
}

impl fmt::Display for SegmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SegmentError::Io { path, op, source } => {
                write!(f, "segment spill {op} failed for {}: {source}", path.display())
            }
            SegmentError::Corrupt { path, detail } => {
                write!(f, "segment spill file {} corrupt: {detail}", path.display())
            }
            SegmentError::Missing { index } => {
                write!(f, "segment {index} missing or already consumed")
            }
        }
    }
}

impl std::error::Error for SegmentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SegmentError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// FNV-1a over a byte slice (spill checksums; must match nothing else).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

enum Slot<P> {
    Resident {
        payload: P,
        bytes: u64,
        /// A valid spill file already exists (the segment was evicted and
        /// reloaded); re-evicting it can skip the rewrite because encode
        /// is deterministic.
        on_disk: bool,
    },
    Spilled,
}

/// An append-only sequence of segments with a bounded resident window.
///
/// Segments are appended with [`SegmentStore::push`], addressed by their
/// append index, and either borrowed back ([`SegmentStore::get`]) or
/// consumed ([`SegmentStore::take`]). When a resident window and spill
/// directory are configured, the store keeps at most `resident_window`
/// segments in memory, FIFO: pushing or reloading past the window spills
/// the oldest resident segment to disk. Spill files die with the store.
pub struct SegmentStore<P: SegmentPayload> {
    cfg: SegmentStoreConfig,
    slots: Vec<Option<Slot<P>>>,
    /// FIFO of resident segment indices (front = oldest = next to spill).
    resident: VecDeque<usize>,
    stats: SegmentStats,
    spill_dir_ready: bool,
}

impl<P: SegmentPayload> SegmentStore<P> {
    /// An empty store.
    pub fn new(cfg: SegmentStoreConfig) -> SegmentStore<P> {
        SegmentStore {
            cfg,
            slots: Vec::new(),
            resident: VecDeque::new(),
            stats: SegmentStats::default(),
            spill_dir_ready: false,
        }
    }

    /// Number of segments ever pushed (consumed ones included).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no segment was ever pushed.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Spill/reload statistics so far.
    pub fn stats(&self) -> SegmentStats {
        self.stats
    }

    /// Appends a segment, evicting past the window if needed. Returns the
    /// segment's index.
    pub fn push(&mut self, payload: P) -> Result<usize, SegmentError> {
        let index = self.slots.len();
        let bytes = payload.resident_bytes() as u64;
        self.slots.push(Some(Slot::Resident {
            payload,
            bytes,
            on_disk: false,
        }));
        self.resident.push_back(index);
        self.stats.resident_bytes += bytes;
        self.stats.peak_resident_bytes =
            self.stats.peak_resident_bytes.max(self.stats.resident_bytes);
        self.enforce_window()?;
        Ok(index)
    }

    /// Borrows segment `index`, reloading it from its spill file if it was
    /// evicted (which may in turn evict an older resident segment).
    pub fn get(&mut self, index: usize) -> Result<&P, SegmentError> {
        self.make_resident(index)?;
        match self.slots.get(index).and_then(|s| s.as_ref()) {
            Some(Slot::Resident { payload, .. }) => Ok(payload),
            _ => Err(SegmentError::Missing { index }),
        }
    }

    /// Removes and returns segment `index`, reloading it first if spilled.
    /// Its spill file (if any) is deleted.
    pub fn take(&mut self, index: usize) -> Result<P, SegmentError> {
        self.make_resident(index)?;
        let slot = self
            .slots
            .get_mut(index)
            .and_then(Option::take)
            .ok_or(SegmentError::Missing { index })?;
        match slot {
            Slot::Resident {
                payload,
                bytes,
                on_disk,
            } => {
                self.stats.resident_bytes -= bytes;
                if let Some(pos) = self.resident.iter().position(|&i| i == index) {
                    self.resident.remove(pos);
                }
                if on_disk {
                    let _ = fs::remove_file(self.spill_path(index));
                }
                Ok(payload)
            }
            Slot::Spilled => unreachable!("make_resident loaded the slot"),
        }
    }

    fn spill_path(&self, index: usize) -> PathBuf {
        let dir = self.cfg.spill_dir.as_deref().unwrap_or(Path::new("."));
        dir.join(format!("seg-{index:06}.xbs"))
    }

    fn make_resident(&mut self, index: usize) -> Result<(), SegmentError> {
        match self.slots.get(index) {
            Some(Some(Slot::Resident { .. })) => return Ok(()),
            Some(Some(Slot::Spilled)) => {}
            _ => return Err(SegmentError::Missing { index }),
        }
        let path = self.spill_path(index);
        let payload = read_spill::<P>(&path)?;
        let bytes = payload.resident_bytes() as u64;
        self.slots[index] = Some(Slot::Resident {
            payload,
            bytes,
            on_disk: true,
        });
        self.resident.push_back(index);
        self.stats.segments_reloaded += 1;
        self.stats.resident_bytes += bytes;
        self.stats.peak_resident_bytes =
            self.stats.peak_resident_bytes.max(self.stats.resident_bytes);
        self.enforce_window()
    }

    /// Spills the oldest resident segments until the window holds. A
    /// missing spill directory disables eviction (everything stays
    /// resident), so an unbounded config never touches the filesystem.
    fn enforce_window(&mut self) -> Result<(), SegmentError> {
        if self.cfg.resident_window == 0 || self.cfg.spill_dir.is_none() {
            return Ok(());
        }
        while self.resident.len() > self.cfg.resident_window {
            let victim = self.resident.pop_front().expect("len checked");
            self.spill(victim)?;
        }
        Ok(())
    }

    fn spill(&mut self, index: usize) -> Result<(), SegmentError> {
        let dir = self.cfg.spill_dir.clone().expect("spill dir checked");
        if !self.spill_dir_ready {
            fs::create_dir_all(&dir).map_err(|source| SegmentError::Io {
                path: dir.clone(),
                op: "create-dir",
                source,
            })?;
            self.spill_dir_ready = true;
        }
        let slot = self.slots[index].take().expect("resident slot");
        let (payload, bytes, on_disk) = match slot {
            Slot::Resident {
                payload,
                bytes,
                on_disk,
            } => (payload, bytes, on_disk),
            Slot::Spilled => unreachable!("resident FIFO holds only resident slots"),
        };
        if !on_disk {
            // A reloaded segment's file is still valid (encode is
            // deterministic), so only first evictions write.
            let encoded = payload.encode();
            write_spill(&self.spill_path(index), &encoded)?;
            self.stats.spill_bytes_written += encoded.len() as u64;
        }
        self.stats.segments_spilled += 1;
        self.stats.resident_bytes -= bytes;
        self.slots[index] = Some(Slot::Spilled);
        Ok(())
    }
}

impl<P: SegmentPayload> Drop for SegmentStore<P> {
    fn drop(&mut self) {
        // Spill files are scratch: delete best-effort on drop. Reloaded
        // segments may have left a file behind too, so sweep every index
        // that could ever have spilled.
        if self.cfg.spill_dir.is_some() && self.spill_dir_ready {
            for index in 0..self.slots.len() {
                let _ = fs::remove_file(self.spill_path(index));
            }
        }
    }
}

fn write_spill(path: &Path, payload: &[u8]) -> Result<(), SegmentError> {
    let io = |op: &'static str| {
        let path = path.to_path_buf();
        move |source: std::io::Error| SegmentError::Io { path, op, source }
    };
    let mut frame = Vec::with_capacity(24 + payload.len());
    frame.extend_from_slice(&MAGIC);
    frame.extend_from_slice(&VERSION.to_le_bytes());
    frame.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    frame.extend_from_slice(&fnv1a(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    let mut f = fs::File::create(path).map_err(io("write"))?;
    f.write_all(&frame).map_err(io("write"))?;
    Ok(())
}

fn read_spill<P: SegmentPayload>(path: &Path) -> Result<P, SegmentError> {
    let corrupt = |detail: String| SegmentError::Corrupt {
        path: path.to_path_buf(),
        detail,
    };
    let mut f = fs::File::open(path).map_err(|source| SegmentError::Io {
        path: path.to_path_buf(),
        op: "read",
        source,
    })?;
    let mut frame = Vec::new();
    f.read_to_end(&mut frame).map_err(|source| SegmentError::Io {
        path: path.to_path_buf(),
        op: "read",
        source,
    })?;
    if frame.len() < 24 {
        return Err(corrupt(format!("{} bytes is shorter than the frame header", frame.len())));
    }
    if frame[0..4] != MAGIC {
        return Err(corrupt("bad magic".into()));
    }
    let version = u32::from_le_bytes(frame[4..8].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(corrupt(format!("version {version}, expected {VERSION}")));
    }
    let len = u64::from_le_bytes(frame[8..16].try_into().expect("8 bytes")) as usize;
    let checksum = u64::from_le_bytes(frame[16..24].try_into().expect("8 bytes"));
    let payload = &frame[24..];
    if payload.len() != len {
        return Err(corrupt(format!("payload {} bytes, header says {len}", payload.len())));
    }
    if fnv1a(payload) != checksum {
        return Err(corrupt("checksum mismatch".into()));
    }
    P::decode(payload).map_err(corrupt)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test payload: a vector of bytes.
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Blob(Vec<u8>);

    impl SegmentPayload for Blob {
        fn encode(&self) -> Vec<u8> {
            self.0.clone()
        }
        fn decode(bytes: &[u8]) -> Result<Self, String> {
            Ok(Blob(bytes.to_vec()))
        }
        fn resident_bytes(&self) -> usize {
            self.0.len()
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("xbsg-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn unbounded_store_never_touches_disk() {
        let mut s: SegmentStore<Blob> = SegmentStore::new(SegmentStoreConfig::unbounded());
        for i in 0..10 {
            s.push(Blob(vec![i as u8; 100])).unwrap();
        }
        assert_eq!(s.stats().segments_spilled, 0);
        assert_eq!(s.stats().resident_bytes, 1000);
        assert_eq!(s.stats().peak_resident_bytes, 1000);
        for i in 0..10 {
            assert_eq!(s.get(i).unwrap().0[0], i as u8);
        }
        assert_eq!(s.stats().segments_reloaded, 0);
    }

    #[test]
    fn window_spills_and_reloads_round_trip() {
        let dir = tmpdir("window");
        let mut s: SegmentStore<Blob> =
            SegmentStore::new(SegmentStoreConfig::bounded(2, &dir));
        for i in 0..5u8 {
            s.push(Blob(vec![i; 64])).unwrap();
        }
        // 5 pushed, window 2: the 3 oldest spilled.
        assert_eq!(s.stats().segments_spilled, 3);
        assert_eq!(s.stats().resident_bytes, 128);
        assert_eq!(s.stats().peak_resident_bytes, 192); // push triggers at 3 resident
        // Reading an old segment reloads it (and spills another).
        assert_eq!(s.get(0).unwrap().0, vec![0u8; 64]);
        assert_eq!(s.stats().segments_reloaded, 1);
        assert_eq!(s.stats().segments_spilled, 4);
        // Everything still round-trips.
        for i in 0..5u8 {
            assert_eq!(s.get(i as usize).unwrap().0, vec![i; 64]);
        }
        drop(s);
        // Spill files cleaned up on drop.
        let left = fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0);
        assert_eq!(left, 0, "spill files left behind");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn take_consumes_in_any_order() {
        let dir = tmpdir("take");
        let mut s: SegmentStore<Blob> =
            SegmentStore::new(SegmentStoreConfig::bounded(1, &dir));
        for i in 0..4u8 {
            s.push(Blob(vec![i; 32])).unwrap();
        }
        for i in 0..4usize {
            assert_eq!(s.take(i).unwrap().0, vec![i as u8; 32]);
        }
        assert_eq!(s.stats().resident_bytes, 0);
        assert!(matches!(s.take(0), Err(SegmentError::Missing { index: 0 })));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn window_without_spill_dir_stays_resident() {
        let mut s: SegmentStore<Blob> = SegmentStore::new(SegmentStoreConfig {
            resident_window: 1,
            spill_dir: None,
        });
        for i in 0..5u8 {
            s.push(Blob(vec![i; 16])).unwrap();
        }
        assert_eq!(s.stats().segments_spilled, 0);
        assert_eq!(s.stats().resident_bytes, 80);
    }

    #[test]
    fn torn_spill_file_is_typed_corruption() {
        let dir = tmpdir("torn");
        let mut s: SegmentStore<Blob> =
            SegmentStore::new(SegmentStoreConfig::bounded(1, &dir));
        s.push(Blob(vec![7; 128])).unwrap();
        s.push(Blob(vec![8; 128])).unwrap(); // spills segment 0
        let f = dir.join("seg-000000.xbs");
        let bytes = fs::read(&f).unwrap();
        // Truncation: frame shorter than the header promises.
        fs::write(&f, &bytes[..bytes.len() - 10]).unwrap();
        match s.get(0) {
            Err(SegmentError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        // Bit flip inside the payload: checksum catches it.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        fs::write(&f, &flipped).unwrap();
        match s.get(0) {
            Err(SegmentError::Corrupt { detail, .. }) => {
                assert!(detail.contains("checksum"), "detail: {detail}")
            }
            other => panic!("expected checksum Corrupt, got {other:?}"),
        }
        // Restoring the original bytes restores the segment.
        fs::write(&f, &bytes).unwrap();
        assert_eq!(s.get(0).unwrap().0, vec![7; 128]);
        drop(s);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn peak_accounting_tracks_logical_bytes() {
        let dir = tmpdir("peak");
        let mut s: SegmentStore<Blob> =
            SegmentStore::new(SegmentStoreConfig::bounded(2, &dir));
        s.push(Blob(vec![0; 100])).unwrap();
        s.push(Blob(vec![1; 200])).unwrap();
        assert_eq!(s.stats().peak_resident_bytes, 300);
        s.push(Blob(vec![2; 50])).unwrap();
        // Momentarily 350 before the oldest spills.
        assert_eq!(s.stats().peak_resident_bytes, 350);
        assert_eq!(s.stats().resident_bytes, 250);
        let _ = fs::remove_dir_all(&dir);
    }
}
